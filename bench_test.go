package repro

// One benchmark per reproduction experiment (E1–E14, DESIGN.md §4), each
// timing the exact code path that regenerates that experiment's table, plus
// micro-benchmarks of the DP primitives and an O(n log n) scaling check for
// the paper's efficiency claim (§1: "all our estimators can be implemented
// efficiently in O(n log n) time").
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

const benchN = 10000

func intData(n int, gamma int64) []int64 {
	rng := xrand.New(1)
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int64Range(-gamma/2, gamma/2)
	}
	return out
}

func realData(d dist.Distribution, n int) []float64 {
	return dist.SampleN(d, xrand.New(2), n)
}

// ---------- E1–E4: empirical-setting estimators ----------

func BenchmarkE01Radius(b *testing.B) {
	data := intData(benchN, 1<<30)
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := empirical.Radius(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE02Range(b *testing.B) {
	data := intData(benchN, 1<<16)
	for i := range data {
		data[i] += 1 << 35
	}
	rng := xrand.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := empirical.Range(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE03EmpiricalMean(b *testing.B) {
	data := intData(benchN, 1<<10)
	for i := range data {
		data[i] += 1 << 29
	}
	rng := xrand.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := empirical.Mean(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE04Quantile(b *testing.B) {
	data := intData(benchN, 1<<20)
	rng := xrand.New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := empirical.Quantile(rng, data, benchN/2, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E5: Gaussian mean, ours vs baselines ----------

func BenchmarkE05GaussianMeanOurs(b *testing.B) {
	data := realData(dist.NewNormal(1000, 2), benchN)
	rng := xrand.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMean(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05GaussianMeanKV18(b *testing.B) {
	data := realData(dist.NewNormal(1000, 2), benchN)
	rng := xrand.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.KV18Mean(rng, data, 1e6, 0.5, 4, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05GaussianMeanCoinPress(b *testing.B) {
	data := realData(dist.NewNormal(1000, 2), benchN)
	rng := xrand.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CoinPressMean(rng, data, 1e6, 4, 1.0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05GaussianMeanBS19(b *testing.B) {
	data := realData(dist.NewNormal(1000, 2), benchN)
	rng := xrand.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BS19TrimmedMean(rng, data, 1e6, 0.5, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E6: heavy-tailed mean ----------

func BenchmarkE06HeavyTailMeanOurs(b *testing.B) {
	data := realData(dist.NewPareto(1, 3), benchN)
	rng := xrand.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMean(rng, data, 0.5, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE06HeavyTailMeanKSU20(b *testing.B) {
	data := realData(dist.NewPareto(1, 3), benchN)
	muK := dist.NewPareto(1, 3).CentralMoment(2)
	rng := xrand.New(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.KSU20Mean(rng, data, 100, 2, muK, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E7: IQR lower bound ----------

func BenchmarkE07IQRLowerBound(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IQRLowerBound(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E8: Gaussian variance ----------

func BenchmarkE08GaussianVarianceOurs(b *testing.B) {
	data := realData(dist.NewNormal(0, 3), benchN)
	rng := xrand.New(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateVariance(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE08GaussianVarianceKV18(b *testing.B) {
	data := realData(dist.NewNormal(0, 3), benchN)
	rng := xrand.New(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.KV18Variance(rng, data, 1e-4, 1e4, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE08GaussianVarianceCoinPress(b *testing.B) {
	data := realData(dist.NewNormal(0, 3), benchN)
	rng := xrand.New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CoinPressVariance(rng, data, 1e-4, 1e4, 1.0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E9: heavy-tailed variance ----------

func BenchmarkE09HeavyTailVariance(b *testing.B) {
	data := realData(dist.NewPareto(1, 5), benchN)
	rng := xrand.New(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateVariance(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E10: IQR, ours vs DL09 ----------

func BenchmarkE10IQROurs(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateIQR(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10IQRDL09(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.DL09IQR(rng, data, 1.0, 1e-6); err != nil &&
			err != baseline.ErrUnstable {
			b.Fatal(err)
		}
	}
}

// ---------- E11–E13: robustness matrix and ablations ----------

func BenchmarkE11AssumptionMatrixCell(b *testing.B) {
	// The universal estimator on the A3-violated workload (shifted Pareto).
	data := realData(dist.NewAffine(dist.NewPareto(1, 3), 100, 1), benchN)
	rng := xrand.New(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMean(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12SubsampleAblation(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMeanWithConfig(rng, data, 0.1, 0.1,
			core.MeanConfig{SubsampleSize: benchN / 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13ClippingAblation(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMeanWithConfig(rng, data, 0.1, 0.1,
			core.MeanConfig{FullDataRange: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E14: relational DP SUM ----------

func BenchmarkE14RelationalSum(b *testing.B) {
	rng := xrand.New(23)
	db := dpsql.NewDB()
	tbl, err := db.Create("orders", []dpsql.Column{
		{Name: "user_id", Kind: dpsql.KindString},
		{Name: "amount", Kind: dpsql.KindFloat},
	}, "user_id")
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 2000; u++ {
		for o := 0; o <= u%3; o++ {
			if err := tbl.Insert(dpsql.Str(fmt.Sprintf("u%d", u)),
				dpsql.Float(rng.Pareto(10, 2.5))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(rng, "SELECT SUM(amount) FROM orders", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E15: sum estimation ----------

func BenchmarkE15SumOurs(b *testing.B) {
	data := intData(benchN, 1<<16)
	for i := range data {
		if data[i] < 0 {
			data[i] = -data[i]
		}
	}
	rng := xrand.New(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := empirical.Sum(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15SumR2T(b *testing.B) {
	rng := xrand.New(31)
	data := make([]float64, benchN)
	for i := range data {
		data[i] = rng.Pareto(1, 2.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.R2TSum(rng, data, 1<<40, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- multivariate extension (§1.2) ----------

func BenchmarkMeanVector(b *testing.B) {
	rng := xrand.New(32)
	const d = 4
	data := make([][]float64, 2000)
	for i := range data {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Gaussian() * float64(j+1)
		}
		data[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMeanVector(rng, data, 2.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- primitives ----------

func BenchmarkPrimitiveLaplaceSample(b *testing.B) {
	rng := xrand.New(24)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Laplace(1.0)
	}
	_ = sink
}

func BenchmarkPrimitiveSVT(b *testing.B) {
	rng := xrand.New(25)
	for i := 0; i < b.N; i++ {
		if _, err := dp.SVT(rng, 50, 1.0, func(q int) (float64, bool) {
			return float64(q), true
		}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrimitiveQuantileEM(b *testing.B) {
	data := intData(benchN, 1<<40)
	rng := xrand.New(26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.FiniteDomainQuantile(rng, data, benchN/2,
			-1<<41, 1<<41, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrimitiveClippedMean(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.ClippedMean(rng, data, -3, 3, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- O(n log n) scaling (paper §1 efficiency claim) ----------

func BenchmarkScalingEstimateMean(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := realData(dist.NewNormal(0, 1), n)
			rng := xrand.New(uint64(28 + n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateMean(rng, data, 1.0, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScalingEstimateIQR(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := realData(dist.NewNormal(0, 1), n)
			rng := xrand.New(uint64(29 + n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateIQR(rng, data, 1.0, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- E16–E19: extension experiments ----------

func BenchmarkE16MultiQuantileShared(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rng := xrand.New(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateQuantilesProb(rng, data, ps, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE16MultiQuantileIndependent(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rng := xrand.New(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			tau := int(float64(benchN) * p)
			if _, err := core.EstimateQuantile(rng, data, tau, 1.0/float64(len(ps)), 0.1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE17ScalingVariance(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := realData(dist.NewNormal(0, 1), n)
			rng := xrand.New(uint64(32 + n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateVariance(rng, data, 1.0, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE18QuantileInterval(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.QuantileInterval(rng, data, 0.5, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18MeanInterval(b *testing.B) {
	data := realData(dist.NewNormal(0, 1), benchN)
	rng := xrand.New(34)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MeanInterval(rng, data, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE19TrimmedMean(b *testing.B) {
	data := realData(dist.NewPareto(1, 2), benchN)
	rng := xrand.New(35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrimmedMean(rng, data, 0.1, 1.0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
