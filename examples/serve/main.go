// Multi-tenant DP query service, driven over HTTP: start an in-process
// updp-serve instance, provision two tenants with their own data and ε
// budgets, release statistics concurrently from both, and watch the
// per-tenant ledger refuse the release that would overdraw. The second
// act compares composition backends: a zCDP tenant survives a release
// volume that exhausts its pure-ε twin holding the same nominal (ε, δ)
// budget, because ρ-accounting charges each small ε-release only ε²/2.
// The third act creates an "accounting": "rdp" tenant — Rényi accounting
// over a grid of orders — and reads back its native per-order spend.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sync"

	"repro/internal/serve"
	"repro/internal/xrand"
)

func main() {
	// An in-process server on a loopback port; in production this is
	// `updp-serve -addr :8500` and clients speak plain HTTP+JSON.
	srv := serve.New(serve.Options{Seed: 42})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving at %s\n\n", base)

	// Two tenants: a hospital with a tight budget and a retailer with a
	// loose one. Each gets its own table; nothing is shared.
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "hospital", Epsilon: 2.0})
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "retailer", Epsilon: 50.0})
	for _, tenant := range []string{"hospital", "retailer"} {
		mustPost(base, "/v1/tenants/"+tenant+"/tables", serve.CreateTableRequest{
			Name: "records",
			Columns: []serve.ColumnSpec{
				{Name: "uid", Kind: "string"},
				{Name: "value", Kind: "float"},
			},
			UserColumn: "uid",
		})
	}

	// Ingest: lengths of stay for the hospital (lognormal, days), basket
	// totals for the retailer (heavier tail). No range hints anywhere —
	// the universal estimators do not need them.
	rng := xrand.New(7)
	for _, load := range []struct {
		tenant string
		gen    func() float64
	}{
		{"hospital", func() float64 { return math.Exp(1.2 + 0.5*rng.Gaussian()) }},
		{"retailer", func() float64 { return math.Exp(3.5 + 1.1*rng.Gaussian()) }},
	} {
		rows := make([][]any, 0, 4000)
		for u := 0; u < 2000; u++ {
			uid := fmt.Sprintf("u%04d", u)
			rows = append(rows, []any{uid, load.gen()}, []any{uid, load.gen()})
		}
		mustPost(base, "/v1/tenants/"+load.tenant+"/tables/records/rows",
			serve.InsertRowsRequest{Rows: rows})
	}

	// Concurrent mixed traffic: estimator calls and SQL against both
	// tenants at once — the server runs them through its worker pool while
	// each tenant's accountant tracks its own spend.
	var wg sync.WaitGroup
	release := func(tenant, label, path string, body any) {
		defer wg.Done()
		code, reply := post(base, path, body)
		if code == http.StatusOK {
			fmt.Printf("%-9s %-28s -> %s\n", tenant, label, reply)
		} else {
			fmt.Printf("%-9s %-28s -> HTTP %d %s\n", tenant, label, code, reply)
		}
	}
	wg.Add(4)
	go release("hospital", "median stay (eps=0.5)", "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "median", Epsilon: 0.5})
	go release("hospital", "iqr of stay (eps=0.5)", "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "iqr", Epsilon: 0.5})
	go release("retailer", "SELECT AVG(value) (eps=1)", "/v1/tenants/retailer/query",
		serve.QueryRequest{SQL: "SELECT AVG(value) FROM records", Epsilon: 1})
	go release("retailer", "p90 basket (eps=1)", "/v1/tenants/retailer/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "quantile", P: 0.9, Epsilon: 1})
	wg.Wait()

	// The hospital has spent 1.0 of its 2.0 budget. A 1.5-ε release must
	// be refused outright — and the refusal itself releases nothing.
	fmt.Println()
	code, reply := post(base, "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "mean", Epsilon: 1.5})
	fmt.Printf("hospital  mean at eps=1.5           -> HTTP %d (%s)\n", code, reply)

	for _, tenant := range []string{"hospital", "retailer"} {
		var st serve.TenantStatus
		get(base, "/v1/tenants/"+tenant, &st)
		fmt.Printf("%-9s budget: total %.1f, spent %.1f, remaining %.1f (refusals: %d)\n",
			tenant, st.Total, st.Spent, st.Remaining, st.Refusals)
	}

	// Act two — composition backends. Twin tenants with the same nominal
	// budget (ε = 0.2, δ = 1e-6): "pure-twin" composes basic (each
	// release at ε₀ costs ε₀), "zcdp-twin" accounts in zCDP ρ (the same
	// release costs ε₀²/2). Under a dashboard-style stream of small
	// distinct releases, basic composition dies at ε/ε₀ = 100 releases;
	// the zCDP twin is still answering when the stream ends.
	fmt.Println("\n--- composition backends: pure-eps twin vs zCDP twin (same nominal budget) ---")
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "pure-twin", Epsilon: 0.2})
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "zcdp-twin", Epsilon: 0.2, Accounting: "zcdp"})
	for _, tenant := range []string{"pure-twin", "zcdp-twin"} {
		mustPost(base, "/v1/tenants/"+tenant+"/tables", serve.CreateTableRequest{
			Name:       "records",
			Columns:    []serve.ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "value", Kind: "float"}},
			UserColumn: "uid",
		})
		rows := make([][]any, 0, 1000)
		for u := 0; u < 1000; u++ {
			rows = append(rows, []any{fmt.Sprintf("u%04d", u), math.Exp(2 + 0.8*rng.Gaussian())})
		}
		mustPost(base, "/v1/tenants/"+tenant+"/tables/records/rows", serve.InsertRowsRequest{Rows: rows})
	}
	const (
		releases   = 150   // volume that exhausts the pure twin at 100
		releaseEps = 0.002 // small per-release budget, the zCDP sweet spot
	)
	for _, tenant := range []string{"pure-twin", "zcdp-twin"} {
		survived, refusedAt := 0, -1
		for i := 0; i < releases; i++ {
			// Distinct quantile ranks: identical requests would be free
			// cache replays and exhaust nothing.
			p := 0.01 + 0.98*float64(i)/releases
			code, _ := post(base, "/v1/tenants/"+tenant+"/estimate", serve.EstimateRequest{
				Table: "records", Column: "value", Stat: "quantile", P: p, Epsilon: releaseEps,
			})
			switch code {
			case http.StatusOK:
				survived++
			case http.StatusTooManyRequests:
				if refusedAt < 0 {
					refusedAt = i
				}
			}
		}
		var st serve.TenantStatus
		get(base, "/v1/tenants/"+tenant, &st)
		if refusedAt >= 0 {
			fmt.Printf("%-9s (%s) exhausted after %d of %d releases — spent %.4g %s of %.4g\n",
				tenant, st.Accounting, refusedAt, releases, st.Spent, st.Unit, st.Total)
		} else {
			fmt.Printf("%-9s (%s) survived all %d releases — spent %.4g %s of %.4g (≈ ε %.3f of %.1f at δ=%.0e)\n",
				tenant, st.Accounting, releases, st.Spent, st.Unit, st.Total,
				st.SpentEpsilon, st.TotalEpsilon, st.Delta)
		}
	}

	// Act three — Rényi accounting. An "rdp" tenant accounts at a whole
	// grid of Rényi orders α at once: every release contributes its full
	// RDP curve ε(α) — a Laplace release via the tight pure-DP→RDP bound
	// (strictly below the ε²/2·α line zCDP uses), a native Gaussian count
	// via ρα — and the per-order spends simply add. The budget is
	// enforced on the best conversion over the grid, so rdp is never
	// looser than zcdp and wins outright on mixed Laplace+Gaussian
	// traffic.
	fmt.Println("\n--- Rényi accounting: an \"rdp\" tenant and its per-order spend ---")
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{
		ID: "rdp-twin", Epsilon: 2.0, Accounting: "rdp",
		// A compact grid keeps the readout short; omit "orders" for the
		// default α ∈ [1.25, 64]. Small ε at small δ needs larger orders —
		// see docs/ACCOUNTING.md.
		Orders: []float64{2, 4, 8, 16, 32, 64},
	})
	mustPost(base, "/v1/tenants/rdp-twin/tables", serve.CreateTableRequest{
		Name:       "records",
		Columns:    []serve.ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "value", Kind: "float"}},
		UserColumn: "uid",
	})
	rows := make([][]any, 0, 1000)
	for u := 0; u < 1000; u++ {
		rows = append(rows, []any{fmt.Sprintf("u%04d", u), math.Exp(2 + 0.8*rng.Gaussian())})
	}
	mustPost(base, "/v1/tenants/rdp-twin/tables/records/rows", serve.InsertRowsRequest{Rows: rows})
	// A mixed pair: a Laplace median (charged in ε) and a natively-ρ
	// Gaussian count (which a pure tenant would refuse outright).
	mustPost(base, "/v1/tenants/rdp-twin/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "median", Epsilon: 0.2})
	mustPost(base, "/v1/tenants/rdp-twin/estimate",
		serve.EstimateRequest{Table: "records", Stat: "count", Rho: 0.005})
	var st serve.TenantStatus
	get(base, "/v1/tenants/rdp-twin", &st)
	// Reading the per-order spend: spent_rdp[i] is the cumulative RDP
	// spend at orders[i] — here PureRDP(α, 0.2) from the median plus
	// 0.005·α from the count. Each order converts to (ε, δ)-DP as
	// spent(α) + ln(1/δ)/(α−1); small α pays a huge ln(1/δ) surcharge,
	// huge α pays linearly for every Gaussian — best_order is the interior
	// sweet spot the scalar "spent" figure comes from, and it drifts as
	// the workload mix shifts.
	fmt.Printf("rdp-twin  budget: nominal ε %.1f at δ=%.0e, spent ε %.4f (certified at α=%g)\n",
		st.TotalEpsilon, st.Delta, st.SpentEpsilon, st.BestOrder)
	fmt.Printf("          per-order spend ε(α), composed by addition:\n")
	for i, a := range st.Orders {
		fmt.Printf("            α=%-4g rdp spend %.6f -> (ε, δ) reading %.4f\n",
			a, st.SpentRDP[i], st.SpentRDP[i]+math.Log(1/st.Delta)/(a-1))
	}
}

func post(base, path string, body any) (int, string) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, string(bytes.TrimSpace(buf.Bytes()))
}

func mustPost(base, path string, body any) {
	if code, reply := post(base, path, body); code >= 300 {
		log.Fatalf("POST %s: HTTP %d %s", path, code, reply)
	}
}

func get(base, path string, out any) {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
