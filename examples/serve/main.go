// Multi-tenant DP query service, driven over HTTP: start an in-process
// updp-serve instance, provision two tenants with their own data and ε
// budgets, release statistics concurrently from both, and watch the
// per-tenant accountant refuse the release that would overdraw.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sync"

	"repro/internal/serve"
	"repro/internal/xrand"
)

func main() {
	// An in-process server on a loopback port; in production this is
	// `updp-serve -addr :8500` and clients speak plain HTTP+JSON.
	srv := serve.New(serve.Options{Seed: 42})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving at %s\n\n", base)

	// Two tenants: a hospital with a tight budget and a retailer with a
	// loose one. Each gets its own table; nothing is shared.
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "hospital", Epsilon: 2.0})
	mustPost(base, "/v1/tenants", serve.CreateTenantRequest{ID: "retailer", Epsilon: 50.0})
	for _, tenant := range []string{"hospital", "retailer"} {
		mustPost(base, "/v1/tenants/"+tenant+"/tables", serve.CreateTableRequest{
			Name: "records",
			Columns: []serve.ColumnSpec{
				{Name: "uid", Kind: "string"},
				{Name: "value", Kind: "float"},
			},
			UserColumn: "uid",
		})
	}

	// Ingest: lengths of stay for the hospital (lognormal, days), basket
	// totals for the retailer (heavier tail). No range hints anywhere —
	// the universal estimators do not need them.
	rng := xrand.New(7)
	for _, load := range []struct {
		tenant string
		gen    func() float64
	}{
		{"hospital", func() float64 { return math.Exp(1.2 + 0.5*rng.Gaussian()) }},
		{"retailer", func() float64 { return math.Exp(3.5 + 1.1*rng.Gaussian()) }},
	} {
		rows := make([][]any, 0, 4000)
		for u := 0; u < 2000; u++ {
			uid := fmt.Sprintf("u%04d", u)
			rows = append(rows, []any{uid, load.gen()}, []any{uid, load.gen()})
		}
		mustPost(base, "/v1/tenants/"+load.tenant+"/tables/records/rows",
			serve.InsertRowsRequest{Rows: rows})
	}

	// Concurrent mixed traffic: estimator calls and SQL against both
	// tenants at once — the server runs them through its worker pool while
	// each tenant's accountant tracks its own spend.
	var wg sync.WaitGroup
	release := func(tenant, label, path string, body any) {
		defer wg.Done()
		code, reply := post(base, path, body)
		if code == http.StatusOK {
			fmt.Printf("%-9s %-28s -> %s\n", tenant, label, reply)
		} else {
			fmt.Printf("%-9s %-28s -> HTTP %d %s\n", tenant, label, code, reply)
		}
	}
	wg.Add(4)
	go release("hospital", "median stay (eps=0.5)", "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "median", Epsilon: 0.5})
	go release("hospital", "iqr of stay (eps=0.5)", "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "iqr", Epsilon: 0.5})
	go release("retailer", "SELECT AVG(value) (eps=1)", "/v1/tenants/retailer/query",
		serve.QueryRequest{SQL: "SELECT AVG(value) FROM records", Epsilon: 1})
	go release("retailer", "p90 basket (eps=1)", "/v1/tenants/retailer/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "quantile", P: 0.9, Epsilon: 1})
	wg.Wait()

	// The hospital has spent 1.0 of its 2.0 budget. A 1.5-ε release must
	// be refused outright — and the refusal itself releases nothing.
	fmt.Println()
	code, reply := post(base, "/v1/tenants/hospital/estimate",
		serve.EstimateRequest{Table: "records", Column: "value", Stat: "mean", Epsilon: 1.5})
	fmt.Printf("hospital  mean at eps=1.5           -> HTTP %d (%s)\n", code, reply)

	for _, tenant := range []string{"hospital", "retailer"} {
		var st serve.TenantStatus
		get(base, "/v1/tenants/"+tenant, &st)
		fmt.Printf("%-9s budget: total %.1f, spent %.1f, remaining %.1f (refusals: %d)\n",
			tenant, st.Total, st.Spent, st.Remaining, st.Refusals)
	}
}

func post(base, path string, body any) (int, string) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, string(bytes.TrimSpace(buf.Bytes()))
}

func mustPost(base, path string, body any) {
	if code, reply := post(base, path, body); code >= 300 {
		log.Fatalf("POST %s: HTTP %d %s", path, code, reply)
	}
}

func get(base, path string, out any) {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
