// A/B test: compare two variants privately, with scale sanity checks.
//
// Two checkout flows produce order values with unknown (and possibly
// heavy-tailed) distributions. We release each variant's mean under ε-DP,
// plus a private IQR bracket (the §1.3 privatized-bounds direction) used
// as a guardrail: if the data's scale bracket is wildly wide, the mean
// difference is not trustworthy yet. Multi-dimensional per-user metrics
// (order value, items per order) go through the §1.2 multivariate
// extension in one call.
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/xrand"
	"repro/updp"
)

func main() {
	rng := xrand.New(404)

	// Variant A: baseline flow. Variant B: +4% order value, slightly
	// heavier tail. 60k users each. Metrics per user: order value
	// (log-normal-ish) and session minutes (continuous — the universal
	// estimators assume continuous data; for quantized metrics like item
	// counts, use updp.WithDither at the quantization step instead).
	sample := func(n int, lift, tail float64) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			value := 35 * lift * math.Exp(tail*rng.Gaussian())
			minutes := 2 + 5*rng.Exponential()
			rows[i] = []float64{value, minutes}
		}
		return rows
	}
	varA := sample(60000, 1.00, 0.50)
	varB := sample(60000, 1.04, 0.55)

	col := func(rows [][]float64, j int) []float64 {
		out := make([]float64, len(rows))
		for i, r := range rows {
			out[i] = r[j]
		}
		return out
	}

	// Guardrail: private scale brackets for the order values.
	brA, err := updp.IQRBracket(col(varA, 0), 0.5, updp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	brB, err := updp.IQRBracket(col(varB, 0), 0.5, updp.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale bracket A: [%.2f, %.2f]   B: [%.2f, %.2f]\n",
		brA.Lo, brA.Hi, brB.Lo, brB.Hi)

	// Per-variant vector release: (mean order value, mean items).
	mA, err := updp.MeanVector(varA, 2.0, updp.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	mB, err := updp.MeanVector(varB, 2.0, updp.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("variant A: value %.2f, minutes %.2f\n", mA[0], mA[1])
	fmt.Printf("variant B: value %.2f, minutes %.2f\n", mB[0], mB[1])
	liftPct := 100 * (mB[0] - mA[0]) / mA[0]
	fmt.Printf("estimated order-value lift: %+.2f%%\n", liftPct)

	// Crude decision rule: require the measured lift to exceed the noise
	// scale implied by the wider of the two brackets.
	noiseScale := 100 * math.Max(brA.Hi, brB.Hi) / (0.25 * 60000 * mA[0])
	switch {
	case liftPct > noiseScale:
		fmt.Printf("verdict: B wins (lift %.2f%% > noise floor %.3f%%)\n", liftPct, noiseScale)
	case liftPct < -noiseScale:
		fmt.Printf("verdict: A wins\n")
	default:
		fmt.Printf("verdict: keep collecting (noise floor %.3f%%)\n", noiseScale)
	}
}
