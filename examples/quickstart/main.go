// Quickstart: release private statistics about a dataset with a total
// privacy budget — no range, scale, or distribution hints.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/xrand"
	"repro/updp"
)

func main() {
	// Synthetic "household income"-like data: log-normal, long tail, and
	// centred far from zero — exactly the shape that breaks estimators
	// needing an a-priori range [-R, R] or a variance bound.
	rng := xrand.New(2024)
	data := make([]float64, 50000)
	for i := range data {
		data[i] = 40000 * math.Exp(0.6*rng.Gaussian())
	}

	// One Estimator = one total privacy budget across all questions.
	est, err := updp.NewEstimator(data, 4.0, updp.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	mean, err := est.Mean(1.0)
	if err != nil {
		log.Fatal(err)
	}
	median, err := est.Median(1.0)
	if err != nil {
		log.Fatal(err)
	}
	std, err := est.StdDev(1.0)
	if err != nil {
		log.Fatal(err)
	}
	iqr, err := est.IQR(1.0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("private release (total ε = 4.0):")
	fmt.Printf("  mean   ≈ %10.0f\n", mean)
	fmt.Printf("  median ≈ %10.0f\n", median)
	fmt.Printf("  stddev ≈ %10.0f\n", std)
	fmt.Printf("  IQR    ≈ %10.0f\n", iqr)
	fmt.Printf("  budget left: %.2f\n", est.Remaining())

	// The budget is enforced: the next call must fail.
	if _, err := est.Mean(1.0); err != nil {
		fmt.Printf("  further queries refused: %v\n", err)
	}
}
