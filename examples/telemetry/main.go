// Telemetry: private latency monitoring over heavy-tailed data.
//
// Service latencies are the canonical heavy-tailed workload (the paper's
// §1.1.2 heavy-tailed regime): most requests are fast, stragglers are
// orders of magnitude slower, and there is no sensible a-priori upper
// bound to clip at. The universal estimators release the latency profile
// (mean, p50/p95/p99, dispersion) without any such bound, and this example
// shows the cost of guessing a clipping bound wrong.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/stats"
	"repro/internal/xrand"
	"repro/updp"
)

func main() {
	// Request latencies in ms: 1ms floor, Pareto tail with α=2.2 (finite
	// mean and variance, but wild upper outliers).
	rng := xrand.New(99)
	lat := make([]float64, 200000)
	for i := range lat {
		lat[i] = rng.Pareto(1.0, 2.2)
	}

	est, err := updp.NewEstimator(lat, 4.0, updp.WithSeed(123))
	if err != nil {
		log.Fatal(err)
	}
	mean, _ := est.Mean(1.0)
	p50, _ := est.Median(1.0)
	p95, _ := est.Quantile(0.95, 1.0)
	p99, _ := est.Quantile(0.99, 1.0)

	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[int(p*float64(len(lat)))] }
	fmt.Println("latency profile (ms)       private(ε=1 each)    true")
	fmt.Printf("  mean                     %10.3f     %10.3f\n", mean, stats.Mean(lat))
	fmt.Printf("  p50                      %10.3f     %10.3f\n", p50, q(0.50))
	fmt.Printf("  p95                      %10.3f     %10.3f\n", p95, q(0.95))
	fmt.Printf("  p99                      %10.3f     %10.3f\n", p99, q(0.99))

	// The alternative everyone reaches for: clip at a guessed bound C and
	// average with Laplace noise. Too low a C hides the stragglers; too
	// high a C drowns the answer in noise.
	fmt.Println("\nfixed-bound clipped mean (the assumption-bound alternative):")
	n := float64(len(lat))
	for _, c := range []float64{2, 20, 20000} {
		clipped := stats.ClippedMean(lat, 0, c)
		noisy := clipped + rng.Laplace(c/(1.0*n))
		fmt.Printf("  clip at %7.0f ms:  %8.3f   (true mean %.3f)\n",
			c, noisy, stats.Mean(lat))
	}
	fmt.Println("\nthe universal estimator needs no clip bound at all.")
}
