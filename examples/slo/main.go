// SLO reporting: release a full latency percentile profile (p50/p90/p99)
// plus distribution-free confidence intervals under one privacy budget.
//
// Latency data is the classic "no prior bounds" case: tails are heavy
// (retries, GC pauses, cold caches), the scale drifts across services, and
// per-user traces are sensitive. The universal estimators need no upper
// bound on latency and no distributional model.
//
//	go run ./examples/slo
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/xrand"
	"repro/updp"
)

func main() {
	// Synthetic request latencies in milliseconds: a log-normal body with
	// a Pareto retry tail — heavy enough that no variance bound exists to
	// hand a bounded-domain mechanism.
	rng := xrand.New(7)
	n := 40000
	lat := make([]float64, n)
	for i := range lat {
		ms := 20 * math.Exp(0.5*rng.Gaussian()) // ~20ms median body
		if rng.Float64() < 0.03 {               // 3% retried requests
			ms += 100 * rng.Pareto(1, 1.5) // infinite-variance tail
		}
		lat[i] = ms
	}

	// One shared privatized range serves all three percentiles: far better
	// than three independent releases at ε/3 (see experiment E16).
	ps := []float64{0.5, 0.9, 0.99}
	qs, err := updp.Quantiles(lat, ps, 1.0, updp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("private latency profile (ε = 1.0):")
	for i, p := range ps {
		fmt.Printf("  p%-4.0f ≈ %8.2f ms\n", p*100, qs[i])
	}

	// Distribution-free confidence interval for the p90: covers the true
	// population p90 with 90% probability for ANY continuous distribution —
	// the universal-coverage answer to the paper's §1.3 open problem.
	ci, err := updp.QuantileInterval(lat, 0.9, 1.0, updp.WithSeed(2), updp.WithBeta(0.1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np90 90%%-confidence interval (ε = 1.0): [%.2f, %.2f] ms\n", ci.Lo, ci.Hi)

	// SLO check: is the p90 under 75ms? Use the CI's upper end for a
	// conservative, privately-derived verdict.
	const slo = 75.0
	verdict := "PASS"
	if ci.Hi >= slo {
		verdict = "AT RISK"
	}
	fmt.Printf("SLO p90 < %.0f ms: %s (certified upper end %.2f ms)\n", slo, verdict, ci.Hi)

	// A robust location summary that ignores the retry tail entirely.
	tm, err := updp.TrimmedMean(lat, 0.05, 1.0, updp.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5%%-trimmed mean latency (ε = 1.0): %.2f ms\n", tm)
	fmt.Println("\ntotal spend across releases: ε = 3.0 (basic composition)")
}
