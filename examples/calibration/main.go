// Calibration: Gaussian mean and variance with no prior bounds.
//
// A fleet of sensors reports readings N(µ, σ²) where the offset µ and
// noise σ drift over time and are exactly what we want to learn — so the
// usual "assume µ ∈ [-R, R], σ ∈ [σmin, σmax]" (A1/A2) is circular. The
// paper's Theorems 4.6 and 5.3 give Gaussian-rate estimates without those
// assumptions; this example tracks a drifting sensor privately and flags
// recalibration.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/xrand"
	"repro/updp"
)

func main() {
	rng := xrand.New(31)

	// Five daily batches; the sensor drifts and its noise degrades.
	type batch struct {
		mu, sigma float64
	}
	days := []batch{
		{0.02, 0.50},
		{0.05, 0.52},
		{0.40, 0.55}, // offset drift begins
		{1.10, 0.90}, // drift + noise blow-up
		{2.50, 1.40},
	}
	const nPerDay = 40000
	const epsPerDay = 2.0

	fmt.Println("day   µ̂ (ε=1)    σ̂ (ε=1)    status")
	for i, b := range days {
		data := make([]float64, nPerDay)
		for j := range data {
			data[j] = b.mu + b.sigma*rng.Gaussian()
		}
		est, err := updp.NewEstimator(data, epsPerDay, updp.WithSeed(uint64(100+i)))
		if err != nil {
			log.Fatal(err)
		}
		muHat, err := est.Mean(1.0)
		if err != nil {
			log.Fatal(err)
		}
		sigmaHat, err := est.StdDev(1.0)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if math.Abs(muHat) > 0.25 || sigmaHat > 0.75 {
			status = "RECALIBRATE"
		}
		fmt.Printf("%3d   %8.4f   %8.4f    %s   (true µ=%.2f σ=%.2f)\n",
			i+1, muHat, sigmaHat, status, b.mu, b.sigma)
	}
}
