// SQL analytics report: drive the user-level-DP relational engine (the
// paper's §1.1.1 database application) entirely through SQL — DDL, DML,
// and multi-aggregate GROUP BY queries with an enforced total budget.
//
//	go run ./examples/sqlreport
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dpsql"
	"repro/internal/xrand"
)

func main() {
	db := dpsql.NewDB()

	// Schema: one order row per purchase; user_id is the privacy unit, so
	// neighboring databases differ by ALL rows of one customer (user-level
	// DP) — no bound on how many orders one customer placed is needed.
	if err := db.Run(`CREATE TABLE orders (
		user_id STRING USER,
		region  STRING,
		amount  FLOAT
	)`); err != nil {
		log.Fatal(err)
	}

	// Synthetic marketplace: order counts per user are heavy-tailed (a few
	// whales), and so are amounts.
	rng := xrand.New(11)
	regions := []string{"emea", "amer", "apac"}
	for u := 0; u < 3000; u++ {
		region := regions[u%len(regions)]
		orders := 1 + int(math.Floor(rng.Pareto(1, 1.8))) // heavy-tailed count
		if orders > 200 {
			orders = 200
		}
		for o := 0; o < orders; o++ {
			amt := 30 * math.Exp(0.8*rng.Gaussian())
			stmt := fmt.Sprintf(`INSERT INTO orders VALUES ('u%d', '%s', %.2f)`, u, region, amt)
			if err := db.Run(stmt); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Total budget enforced across every query on this handle.
	if err := db.SetBudget(5.0); err != nil {
		log.Fatal(err)
	}
	rngq := xrand.New(12)

	run := func(sql string, eps float64) {
		res, err := db.Exec(rngq, sql, eps)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Printf("\nε=%.1f  %s\n", eps, sql)
		for _, row := range res.Rows {
			if row.HasGroup {
				fmt.Printf("  %-6s", row.Group.String())
			} else {
				fmt.Printf("  %-6s", "-")
			}
			for _, v := range row.Values {
				fmt.Printf("  %12.2f", v)
			}
			fmt.Println()
		}
	}

	run("SELECT COUNT(*) FROM orders", 0.5)
	run("SELECT SUM(amount), AVG(amount) FROM orders", 1.5)
	run("SELECT MEDIAN(amount), IQR(amount) FROM orders GROUP BY region", 2.0)
	run("SELECT QUANTILE(amount, 0.9) FROM orders WHERE region != 'apac'", 1.0)

	fmt.Printf("\nremaining budget: %.2f\n", db.Remaining())

	// The accountant refuses once the budget is spent.
	if _, err := db.Exec(rngq, "SELECT AVG(amount) FROM orders", 1.0); err != nil {
		fmt.Printf("next query refused: %v\n", err)
	}
}
