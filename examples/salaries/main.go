// Salaries: user-level differentially private SQL over a relation.
//
// This is the paper's §1.1.1 database application (DFY+22): aggregation
// queries answered with the universal estimators, so no bound on any
// user's total contribution is ever configured. The privacy unit is the
// employee — all of their pay rows together.
//
//	go run ./examples/salaries
package main

import (
	"fmt"
	"log"

	"repro/internal/dpsql"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(7)

	db := dpsql.NewDB()
	tbl, err := db.Create("payroll", []dpsql.Column{
		{Name: "employee", Kind: dpsql.KindString},
		{Name: "dept", Kind: dpsql.KindString},
		{Name: "pay", Kind: dpsql.KindFloat},
	}, "employee")
	if err != nil {
		log.Fatal(err)
	}

	// 3000 employees across three departments, 1-6 pay rows each
	// (multiple pay periods), log-normal-ish pay.
	depts := []struct {
		name string
		base float64
	}{{"eng", 11000}, {"sales", 7000}, {"support", 5000}}
	for e := 0; e < 3000; e++ {
		d := depts[e%3]
		rows := 1 + rng.Intn(6)
		for r := 0; r < rows; r++ {
			pay := d.base * (1 + 0.25*rng.Gaussian())
			if err := tbl.Insert(
				dpsql.Str(fmt.Sprintf("emp-%04d", e)),
				dpsql.Str(d.name),
				dpsql.Float(pay),
			); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Enforce a total budget over the whole analysis session.
	if err := db.SetBudget(6.0); err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		sql string
		eps float64
	}{
		{"SELECT COUNT(*) FROM payroll", 0.5},
		{"SELECT AVG(pay) FROM payroll", 1.0},
		{"SELECT MEDIAN(pay) FROM payroll WHERE dept = 'eng'", 1.0},
		{"SELECT AVG(pay) FROM payroll GROUP BY dept", 3.0},
	}
	for _, q := range queries {
		res, err := db.Exec(rng, q.sql, q.eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ε=%.1f  %s\n", q.eps, q.sql)
		for _, row := range res.Rows {
			if row.HasGroup {
				fmt.Printf("    %-8s %12.2f\n", row.Group.String(), row.Value)
			} else {
				fmt.Printf("    %12.2f\n", row.Value)
			}
		}
	}
	fmt.Printf("budget remaining: %.2f\n", db.Remaining())

	// The next query exceeds the session budget and is refused.
	if _, err := db.Exec(rng, "SELECT AVG(pay) FROM payroll", 1.0); err != nil {
		fmt.Printf("over-budget query refused: %v\n", err)
	}
}
