package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rt(id string, outcome string, start time.Time) *RecordedTrace {
	status := 200
	switch outcome {
	case "error":
		status = 500
	case "shed":
		status = 503
	}
	return &RecordedTrace{ID: id, Tenant: "acme", Path: "/v1/query",
		Status: status, Outcome: outcome, Start: start, Total: time.Millisecond}
}

func TestRecorderTailSampling(t *testing.T) {
	r := NewRecorder(8)
	base := time.Now()
	// One noteworthy trace, then a flood of 100 healthy ones: the flood
	// must not evict the slow trace.
	r.Record(rt("r-slow-1", "slow", base), true)
	for i := 0; i < 100; i++ {
		r.Record(rt(fmt.Sprintf("r-ok-%d", i), "ok", base.Add(time.Duration(i+1))), false)
	}
	if _, ok := r.Get("r-slow-1"); !ok {
		t.Fatal("slow trace evicted by healthy flood")
	}
	got := r.Traces()
	if len(got) != 9 { // 8 recent + 1 tail
		t.Fatalf("retained %d traces, want 9", len(got))
	}
	if got[len(got)-1].ID != "r-slow-1" {
		t.Errorf("oldest retained should be the slow trace, got %s", got[len(got)-1].ID)
	}
	// Newest first.
	if got[0].ID != "r-ok-99" {
		t.Errorf("newest trace should lead, got %s", got[0].ID)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	const ringCap = 64
	r := NewRecorder(ringCap)
	base := time.Now()

	const writers = 8
	const perWriter = 200
	// Each writer interleaves healthy and noteworthy traces; readers
	// scrape and retrieve concurrently. Run under -race this exercises
	// recorder writes vs list vs get.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Traces()
				_, _ = r.Get("r-w0-t1")
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("r-w%d-o%d", w, i)
				out := "ok"
				tail := false
				if i%50 == 1 { // 4 noteworthy per writer, 32 total < cap
					id = fmt.Sprintf("r-w%d-t%d", w, i/50)
					out = "error"
					tail = true
				}
				r.Record(rt(id, out, base.Add(time.Duration(w*perWriter+i))), tail)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-time.After(5 * time.Millisecond)
	close(stop)
	<-done

	// 100% tail retention: every noteworthy trace is retrievable (the
	// tail count, 32, fits the ring cap).
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter/50; i++ {
			id := fmt.Sprintf("r-w%d-t%d", w, i)
			if _, ok := r.Get(id); !ok {
				t.Errorf("noteworthy trace %s dropped", id)
			}
		}
	}
	// Memory bound: never more than 2·cap retained despite 1600 records.
	if got := len(r.Traces()); got > 2*ringCap {
		t.Errorf("retained %d traces, bound is %d", got, 2*ringCap)
	}
}
