// Package obs is the repository's zero-dependency telemetry layer:
// atomic counters, gauges, fixed-bucket histograms (plain or labeled),
// a registry that renders them in the Prometheus text exposition format
// (version 0.0.4), and a request-scoped trace context (trace.go) that
// carries a release ID through the serve → dpsql → mechanism → store
// pipeline.
//
// Design constraints, in order:
//
//   - Hot-path writes must be wait-free reads-and-adds: a release path
//     observing a stage latency touches one atomic add per bucket plus a
//     CAS loop on the sum — no locks, no allocation. The serve layer
//     threads these through paths that run millions of times per hour.
//   - Reads (a /metrics scrape, /v1/stats) take consistent-enough
//     snapshots from the same atomics, so the JSON stats and the
//     Prometheus exposition report from one source of truth.
//   - No third-party dependency: the container bakes in nothing beyond
//     the standard library, so the exposition writer is hand-rolled
//     against the documented text format.
//
// Metric names are validated at registration against the Prometheus
// naming convention (ValidName); registering an invalid name panics —
// it is a programmer error, caught by the first test that touches the
// registry, never a runtime condition.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nameRe is the Prometheus metric naming convention the CI guard test
// enforces; label names drop the colon (reserved for recording rules).
var (
	nameRe  = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// ValidName reports whether name matches the Prometheus metric naming
// convention (^[a-z_:][a-z0-9_:]*$).
func ValidName(name string) bool { return nameRe.MatchString(name) }

// ValidLabel reports whether name is usable as a label name.
func ValidLabel(name string) bool { return labelRe.MatchString(name) }

// ---------- instruments ----------

// Counter is a monotonically increasing atomic counter. The zero value
// is unusable — obtain counters from a Registry so they render on
// /metrics; the serve layer's JSON stats read the same atomic.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 (current value, may go down).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size histogram: per-bucket atomic
// counters plus an atomic sum, wait-free on the observe path. Bucket
// bounds are upper bounds in ascending order; the +Inf bucket is
// implicit. Observations are in the metric's base unit (seconds for the
// repository's *_seconds histograms). Each bucket additionally holds one
// exemplar slot — the most recent (value, trace ID) observed into it via
// ObserveExemplar — rendered in OpenMetrics exemplar syntax when the
// registry opts in (SetExemplars), so a dashboard's p99 bucket links
// straight to a retained release trace.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; [len(bounds)] is +Inf
	ex      []atomic.Pointer[exemplar]
	count   atomic.Int64
	sumBits atomic.Uint64
}

// exemplar is one bucket's most recent traced observation.
type exemplar struct {
	id string // release/trace ID (rendered as the release_id label)
	v  float64
	ts time.Time
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
		ex:      make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; linear is faster for the
	// typical ~16 buckets but sort.SearchFloat64s keeps it obviously right.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar is Observe plus an exemplar: the bucket the value
// falls in remembers (id, v, now) as its most recent traced
// observation. One extra atomic pointer store over Observe — cheap
// enough to call unconditionally; whether exemplars RENDER is the
// registry's opt-in.
func (h *Histogram) ObserveExemplar(v float64, id string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&exemplar{id: id, v: v, ts: time.Now()})
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total observation count.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reads the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is the default bound set for the repository's latency
// histograms, in seconds: 10µs to 10s, roughly 1-2.5-5 per decade. WAL
// fsyncs sit in the 100µs–10ms range on real disks, release scans in
// the 10µs–100ms range — both well inside the grid.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
}

// ---------- registry ----------

// metricKind is the TYPE line a family renders.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: help, type, label schema, and the children
// keyed by joined label values (one unlabeled child for plain metrics).
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | *Histogram
	keys     []string       // insertion-independent render order (sorted)

	bounds  []float64             // histogram families
	collect func(emit EmitGauge)  // gauge-func families: sampled at render
}

// EmitGauge receives one sample from a gauge-func collector; labelValues
// must parallel the family's label names.
type EmitGauge func(v float64, labelValues ...string)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Create with NewRegistry; safe for concurrent
// registration, writes, and rendering.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted at render

	// exemplars opts the exposition into OpenMetrics exemplar suffixes
	// on histogram bucket lines. Off by default: exemplar syntax is not
	// part of text format 0.0.4, so the default rendering stays strictly
	// 0.0.4-valid for scrapers (and tests) that parse it line by line.
	exemplars atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// SetExemplars opts histogram bucket lines into (or out of) OpenMetrics
// exemplar suffixes: `... 5 # {release_id="r-ab12cd-7"} 0.034 <ts>`.
// Safe to flip at any time; rendering reads it per scrape.
func (r *Registry) SetExemplars(on bool) { r.exemplars.Store(on) }

// register adds a family, panicking on duplicate or invalid names —
// both are programmer errors the first test run catches.
func (r *Registry) register(f *family) *family {
	if !ValidName(f.name) {
		panic(fmt.Sprintf("obs: metric name %q violates ^[a-z_:][a-z0-9_:]*$", f.name))
	}
	for _, l := range f.labels {
		if !ValidLabel(l) {
			panic(fmt.Sprintf("obs: label name %q on %q violates ^[a-z_][a-z0-9_]*$", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	f.children = map[string]any{}
	r.families[f.name] = f
	r.names = append(r.names, f.name)
	return f
}

// child returns the family's child for the given label values, creating
// it on first use.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinLabelValues(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c2 any
	switch f.kind {
	case kindCounter:
		c2 = &Counter{}
	case kindGauge:
		c2 = &Gauge{}
	case kindHistogram:
		c2 = newHistogram(f.bounds)
	}
	f.children[key] = c2
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	return c2
}

// Counter registers a plain (unlabeled) counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: kindCounter})
	return f.child(nil).(*Counter)
}

// CounterVec registers a labeled counter family; obtain children with
// With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, kind: kindCounter, labels: labels})}
}

// Gauge registers a plain (unlabeled) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: kindGauge})
	return f.child(nil).(*Gauge)
}

// GaugeFunc registers a gauge family whose samples are produced by
// collect at every render — the right shape for values derived from
// live state (queue depths, per-tenant budget odometers) rather than
// accumulated by callers. collect must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect func(emit EmitGauge)) {
	r.register(&family{name: name, help: help, kind: kindGauge, labels: labels, collect: collect})
}

// Histogram registers a plain (unlabeled) histogram over the given
// ascending bucket upper bounds (+Inf implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, kind: kindHistogram, bounds: bounds})
	return f.child(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{name: name, help: help, kind: kindHistogram, labels: labels, bounds: bounds})}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (parallel
// to the registered label names), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// ---------- exposition ----------

// Names returns the registered metric family names, sorted — the CI
// naming-guard test walks these.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	sort.Strings(out)
	return out
}

// Render writes every family in the Prometheus text exposition format
// (version 0.0.4), families sorted by name, children by label values.
// Families with no children and no collector render nothing.
func (r *Registry) Render(sb *strings.Builder) {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	ex := r.exemplars.Load()
	for _, f := range fams {
		f.render(sb, ex)
	}
}

// RenderText is Render into a fresh string.
func (r *Registry) RenderText() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// gaugeSample is one collected gauge-func sample.
type gaugeSample struct {
	key string
	v   float64
}

func (f *family) render(sb *strings.Builder, exemplars bool) {
	if f.collect != nil {
		var samples []gaugeSample
		f.collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("obs: gauge-func %q wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
			}
			samples = append(samples, gaugeSample{key: joinLabelValues(labelValues), v: v})
		})
		if len(samples) == 0 {
			return
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i].key < samples[j].key })
		f.header(sb)
		for _, s := range samples {
			sb.WriteString(f.name)
			writeLabels(sb, f.labels, splitLabelValues(s.key, len(f.labels)), "", 0)
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.v))
			sb.WriteByte('\n')
		}
		return
	}
	f.mu.RLock()
	keys := make([]string, len(f.keys))
	copy(keys, f.keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}
	f.header(sb)
	for i, key := range keys {
		values := splitLabelValues(key, len(f.labels))
		switch c := children[i].(type) {
		case *Counter:
			sb.WriteString(f.name)
			writeLabels(sb, f.labels, values, "", 0)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(c.Value(), 10))
			sb.WriteByte('\n')
		case *Gauge:
			sb.WriteString(f.name)
			writeLabels(sb, f.labels, values, "", 0)
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(c.Value()))
			sb.WriteByte('\n')
		case *Histogram:
			// Buckets are cumulative in the exposition format; read the
			// per-bucket atomics once and accumulate. A scrape racing
			// observations may see a bucket ahead of the count by a hair —
			// the standard, documented looseness of lock-free histograms.
			cum := int64(0)
			for b := range c.buckets {
				cum += c.buckets[b].Load()
				le := "+Inf"
				if b < len(c.bounds) {
					le = formatFloat(c.bounds[b])
				}
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				writeLabels(sb, f.labels, values, "le", -1)
				// writeLabels wrote up to the le marker; finish it here.
				sb.WriteString(`le="`)
				sb.WriteString(le)
				sb.WriteString("\"} ")
				sb.WriteString(strconv.FormatInt(cum, 10))
				if exemplars {
					// The exemplar belongs to the bucket the observation
					// actually fell in (non-cumulative), per OpenMetrics.
					if e := c.ex[b].Load(); e != nil {
						sb.WriteString(` # {release_id="`)
						sb.WriteString(escapeLabel(e.id))
						sb.WriteString(`"} `)
						sb.WriteString(formatFloat(e.v))
						sb.WriteByte(' ')
						sb.WriteString(strconv.FormatFloat(float64(e.ts.UnixNano())/1e9, 'f', 3, 64))
					}
				}
				sb.WriteByte('\n')
			}
			sb.WriteString(f.name)
			sb.WriteString("_sum")
			writeLabels(sb, f.labels, values, "", 0)
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(c.Sum()))
			sb.WriteByte('\n')
			sb.WriteString(f.name)
			sb.WriteString("_count")
			writeLabels(sb, f.labels, values, "", 0)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(c.Count(), 10))
			sb.WriteByte('\n')
		}
	}
}

func (f *family) header(sb *strings.Builder) {
	sb.WriteString("# HELP ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(escapeHelp(f.help))
	sb.WriteByte('\n')
	sb.WriteString("# TYPE ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(string(f.kind))
	sb.WriteByte('\n')
}

// writeLabels renders {a="x",b="y"}. With trailing == "le" and extra ==
// -1 it leaves the brace open ending in a comma (or just "{") so the
// caller can append the le pair — keeping the histogram hot loop free of
// slice allocation.
func writeLabels(sb *strings.Builder, names, values []string, trailing string, extra int) {
	if len(names) == 0 && trailing == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if trailing != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		return // caller completes `le="..."}`
	}
	sb.WriteByte('}')
}

// labelSep joins label values into child map keys; 0x1f (unit
// separator) cannot appear in reasonable label values, and even if it
// does the worst case is two label sets sharing a child, never a panic.
const labelSep = "\x1f"

func joinLabelValues(values []string) string { return strings.Join(values, labelSep) }

func splitLabelValues(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, labelSep, n)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: shortest round-trip form, +Inf
// and -Inf spelled the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
