package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a request-scoped span collector: one per release, carrying
// the release ID from the HTTP handler through the dpsql fan-out, the
// mechanism, and the store fsync. Spans form a shallow tree: the coarse
// pipeline stages ("scan", "deduct") are roots, and work that resolves
// below a stage — one shard of a fanned scan, the fsync inside a commit
// barrier — records as a child naming its parent stage. The operator
// question graduates from "where did the 40ms go" to "which shard
// straggled inside the scan", and the tree is retained by a Recorder so
// the question can be asked after the fact.
type Trace struct {
	ID    string
	start time.Time

	mu    sync.Mutex
	spans []Span
	end   time.Time // frozen by Finish; zero while the release is in flight
}

// Attr is one integer attribute on a span ("shard"=3, "rows"=12840).
// Integer-valued because every attribute the release path records is a
// count or an index; strings belong on the trace's recorded envelope
// (tenant, path, mechanism), not on spans.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Span is one completed piece of a release. Parent names the stage this
// span nests under ("" for a root stage); linking by stage name rather
// than span index lets children record before their parent closes —
// a fanned shard span completes before the enclosing "scan" stage does.
// Start is the offset from the trace's start (derived at record time, so
// concurrent recording stays lock-free on the caller's side).
type Span struct {
	Stage  string        `json:"stage"`
	Parent string        `json:"parent,omitempty"`
	Start  time.Duration `json:"start"`
	D      time.Duration `json:"d"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// NewTrace starts a trace for the given release ID (use NewID).
func NewTrace(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// Start reports when the trace began.
func (t *Trace) Start() time.Time { return t.start }

// StartSpan begins timing a root stage; the returned func records the
// span when called. Safe for concurrent use.
func (t *Trace) StartSpan(stage string) func() {
	return t.StartChild(stage, "")
}

// StartChild begins timing a span under the named parent stage ("" for a
// root); the returned func records it, with any attributes attached.
func (t *Trace) StartChild(stage, parent string, attrs ...Attr) func() {
	t0 := time.Now()
	return func() { t.ObserveChild(stage, parent, time.Since(t0), attrs...) }
}

// Observe records an already-measured root stage duration.
func (t *Trace) Observe(stage string, d time.Duration) {
	t.ObserveChild(stage, "", d)
}

// ObserveChild records an already-measured span under the named parent
// stage. The span's start offset is derived from the record time (now −
// duration), which is exact for the spans the release path records at
// their own completion.
func (t *Trace) ObserveChild(stage, parent string, d time.Duration, attrs ...Attr) {
	start := time.Since(t.start) - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Parent: parent, Start: start, D: d, Attrs: attrs})
	t.mu.Unlock()
}

// Spans returns the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Finish freezes the trace's end time. Idempotent: the first call wins,
// so a total read later (slow-log formatting, retained-trace JSON)
// reports the real end-to-end latency instead of inflating with the
// reader's clock.
func (t *Trace) Finish() {
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Total is the end-to-end release latency: wall time from start to
// Finish, frozen once the release completes. Before Finish it reads the
// live clock (the release is still running). Not the sum of spans —
// stages overlap with untimed glue.
func (t *Trace) Total() time.Duration {
	t.mu.Lock()
	end := t.end
	t.mu.Unlock()
	if end.IsZero() {
		return time.Since(t.start)
	}
	return end.Sub(t.start)
}

// String renders "stage=1.2ms stage=800µs ..." for the slow-release log
// line — root stages only, so a 16-shard fan-out does not turn the line
// into a wall of per-shard entries (the full tree is in the retained
// trace, keyed by the same release ID the line carries).
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, s := range t.spans {
		if s.Parent != "" {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", s.Stage, s.D.Round(time.Microsecond))
	}
	return sb.String()
}

// Release IDs: "r-<6 random hex>-<counter>". The random prefix is drawn
// once per process so IDs from different server incarnations never
// collide in aggregated logs; the counter makes them cheap and ordered
// within a process. Nothing secret rides on them — they name releases
// in logs, response headers, and the audit trail.
var (
	idPrefix = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a clock-derived prefix; uniqueness within the
			// process still holds via the counter.
			now := time.Now().UnixNano()
			b[0], b[1], b[2] = byte(now>>16), byte(now>>8), byte(now)
		}
		return hex.EncodeToString(b[:])
	}()
	idCounter atomic.Uint64
)

// NewID returns a fresh process-unique release ID.
func NewID() string {
	return fmt.Sprintf("r-%s-%d", idPrefix, idCounter.Add(1))
}
