package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a request-scoped span collector: one per release, carrying
// the release ID from the HTTP handler through the dpsql fan-out, the
// mechanism, and the store fsync. Spans are coarse named stages, not a
// general tree — the release path is a straight pipeline and the
// operator question is "where did the 40ms go", which a flat stage list
// answers exactly.
type Trace struct {
	ID    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one completed stage of a release.
type Span struct {
	Stage string
	D     time.Duration
}

// NewTrace starts a trace for the given release ID (use NewID).
func NewTrace(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// StartSpan begins timing a stage; the returned func records the span
// when called. Safe for concurrent use.
func (t *Trace) StartSpan(stage string) func() {
	t0 := time.Now()
	return func() { t.Observe(stage, time.Since(t0)) }
}

// Observe records an already-measured stage duration.
func (t *Trace) Observe(stage string, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, D: d})
	t.mu.Unlock()
}

// Spans returns the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Total is the wall time since the trace started — end-to-end release
// latency, not the sum of spans (stages overlap with untimed glue).
func (t *Trace) Total() time.Duration { return time.Since(t.start) }

// String renders "stage=1.2ms stage=800µs ..." for the slow-release
// log line.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", s.Stage, s.D.Round(time.Microsecond))
	}
	return sb.String()
}

// Release IDs: "r-<6 random hex>-<counter>". The random prefix is drawn
// once per process so IDs from different server incarnations never
// collide in aggregated logs; the counter makes them cheap and ordered
// within a process. Nothing secret rides on them — they name releases
// in logs, response headers, and the audit trail.
var (
	idPrefix = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a clock-derived prefix; uniqueness within the
			// process still holds via the counter.
			now := time.Now().UnixNano()
			b[0], b[1], b[2] = byte(now>>16), byte(now>>8), byte(now)
		}
		return hex.EncodeToString(b[:])
	}()
	idCounter atomic.Uint64
)

// NewID returns a fresh process-unique release ID.
func NewID() string {
	return fmt.Sprintf("r-%s-%d", idPrefix, idCounter.Add(1))
}
