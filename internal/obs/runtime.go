package obs

import (
	"math"
	"runtime/metrics"
)

// Runtime gauge names exported by RegisterRuntimeGauges. The watchdog's
// incident bundles and docs/OBSERVABILITY.md reference these by name.
const (
	runtimeGoroutines = "updp_runtime_goroutines"
	runtimeGCPause    = "updp_runtime_gc_pause_p99_seconds"
	runtimeSchedLat   = "updp_runtime_sched_latency_p99_seconds"
	runtimeHeapBytes  = "updp_runtime_heap_live_bytes"
)

// runtimeSamples is the runtime/metrics batch one render samples. Kept
// as a package-level template; metrics.Read fills values in place on a
// per-call copy so concurrent renders never share sample slots.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
	"/gc/pauses:seconds",
	"/gc/heap/live:bytes",
}

// RegisterRuntimeGauges exports the Go runtime's own health signals —
// goroutine count, p99 GC pause, p99 scheduler latency, live heap — as
// gauges on r, sampled from runtime/metrics at every render. These are
// the signals the self-watchdog snapshots into incident bundles: a p99
// latency breach with a spiking sched-latency gauge reads "CPU
// saturation", with a spiking GC pause reads "allocation storm", and
// with neither reads "look at the traces".
func RegisterRuntimeGauges(r *Registry) {
	sample := func() []metrics.Sample {
		s := make([]metrics.Sample, len(runtimeSampleNames))
		for i, n := range runtimeSampleNames {
			s[i].Name = n
		}
		metrics.Read(s)
		return s
	}
	r.GaugeFunc(runtimeGoroutines,
		"Current number of live goroutines.", nil,
		func(emit EmitGauge) {
			s := sample()
			emit(sampleValue(s[0]))
		})
	r.GaugeFunc(runtimeSchedLat,
		"Approximate p99 of time goroutines spent runnable before running, over the process lifetime.", nil,
		func(emit EmitGauge) {
			s := sample()
			emit(histQuantile(s[1], 0.99))
		})
	r.GaugeFunc(runtimeGCPause,
		"Approximate p99 of stop-the-world GC pause durations, over the process lifetime.", nil,
		func(emit EmitGauge) {
			s := sample()
			emit(histQuantile(s[2], 0.99))
		})
	r.GaugeFunc(runtimeHeapBytes,
		"Heap memory occupied by live objects at the last GC.", nil,
		func(emit EmitGauge) {
			s := sample()
			emit(sampleValue(s[3]))
		})
}

// sampleValue flattens a scalar runtime/metrics sample to float64.
func sampleValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// histQuantile reads quantile q from a runtime/metrics histogram
// sample. The runtime's buckets are fixed-resolution; we take the upper
// bound of the bucket where the cumulative count crosses q, which is
// the same "conservative upper estimate" a Prometheus histogram_quantile
// would give.
func histQuantile(s metrics.Sample, q float64) float64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(float64(total) * q)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > thresh {
			// Buckets[i+1] is this bucket's upper bound; the final
			// bucket's bound can be +Inf, in which case fall back to
			// its (finite) lower bound.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) || math.IsNaN(ub) {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
