package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: a fixed-size, lock-free ring of
// recently completed traces, tail-sampled so the traces an operator
// actually wants — slow, errored, shed — are never evicted by the flood
// of healthy ones. Two rings share the work:
//
//   - the recent ring keeps the last N traces of any kind, so "show me
//     what the service is doing right now" always has material;
//   - the tail ring keeps the last N noteworthy traces (the caller
//     decides what is noteworthy: over the slow threshold, status >= 500,
//     shed), so a burst of fast healthy releases can never push the one
//     slow release an operator is hunting out of memory.
//
// Writes are wait-free: one atomic counter add picks the slot, one
// atomic pointer store publishes the trace. Reads (the /v1/traces
// handlers, an incident bundle) walk the slots with atomic loads — a
// read racing a write sees the old trace or the new one, both complete.
// Memory is bounded at 2N trace pointers regardless of load; beyond N
// noteworthy traces the oldest noteworthy ones are evicted (the ring
// retains 100% of the tail only while it fits, which is what a fixed
// memory budget can promise).
type Recorder struct {
	recent ring
	tail   ring
}

// RecordedTrace is one completed release's retained record: the
// envelope the serve layer stamps (tenant, path, mechanism, status,
// outcome) plus the frozen span tree. Immutable once recorded.
type RecordedTrace struct {
	ID      string
	Tenant  string
	Path    string
	Mech    string
	Status  int
	Outcome string // "ok", "slow", "error", or "shed"
	Start   time.Time
	Total   time.Duration
	Spans   []Span
}

type ring struct {
	slots []atomic.Pointer[RecordedTrace]
	next  atomic.Uint64
}

func (r *ring) store(rt *RecordedTrace) {
	slot := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(rt)
}

func (r *ring) collect(out []*RecordedTrace) []*RecordedTrace {
	for i := range r.slots {
		if rt := r.slots[i].Load(); rt != nil {
			out = append(out, rt)
		}
	}
	return out
}

// NewRecorder returns a recorder retaining the last n traces plus the
// last n noteworthy (slow/error/shed) traces. n <= 0 defaults to 256.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 256
	}
	return &Recorder{
		recent: ring{slots: make([]atomic.Pointer[RecordedTrace], n)},
		tail:   ring{slots: make([]atomic.Pointer[RecordedTrace], n)},
	}
}

// Cap reports the per-ring capacity (total retention is at most 2·Cap).
func (r *Recorder) Cap() int { return len(r.recent.slots) }

// Record retains one completed trace. tail marks it noteworthy (slow,
// errored, or shed): noteworthy traces go to the tail ring, where only
// other noteworthy traces can evict them. Wait-free.
func (r *Recorder) Record(rt *RecordedTrace, tail bool) {
	if tail {
		r.tail.store(rt)
		return
	}
	r.recent.store(rt)
}

// Traces returns every retained trace, newest first. Each trace lives
// in exactly one ring, so there are no duplicates to collapse.
func (r *Recorder) Traces() []*RecordedTrace {
	out := make([]*RecordedTrace, 0, 2*len(r.recent.slots))
	out = r.recent.collect(out)
	out = r.tail.collect(out)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Get retrieves a retained trace by release ID (the X-Release-Id header
// value). A linear scan over at most 2N slots — retrieval is a human
// debugging action, not a hot path.
func (r *Recorder) Get(id string) (*RecordedTrace, bool) {
	for _, ring := range []*ring{&r.tail, &r.recent} {
		for i := range ring.slots {
			if rt := ring.slots[i].Load(); rt != nil && rt.ID == id {
				return rt, true
			}
		}
	}
	return nil, false
}
