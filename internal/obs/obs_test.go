package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// The golden exposition test: exact rendered text for a registry holding
// one of each instrument kind, pinning the Prometheus text format 0.0.4
// details (HELP/TYPE headers, label quoting, cumulative buckets, +Inf,
// _sum/_count, family and child ordering).
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("updp_requests_total", "Requests handled.")
	c.Add(3)
	g := r.Gauge("updp_queue_depth", "Jobs queued.")
	g.Set(2)
	cv := r.CounterVec("updp_hits_total", "Hits by kind.", "kind")
	cv.With("sql").Add(2)
	cv.With("estimate").Inc()
	h := r.Histogram("updp_latency_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	want := strings.Join([]string{
		`# HELP updp_hits_total Hits by kind.`,
		`# TYPE updp_hits_total counter`,
		`updp_hits_total{kind="estimate"} 1`,
		`updp_hits_total{kind="sql"} 2`,
		`# HELP updp_latency_seconds Latency.`,
		`# TYPE updp_latency_seconds histogram`,
		`updp_latency_seconds_bucket{le="0.01"} 1`,
		`updp_latency_seconds_bucket{le="0.1"} 2`,
		`updp_latency_seconds_bucket{le="+Inf"} 3`,
		`updp_latency_seconds_sum 5.055`,
		`updp_latency_seconds_count 3`,
		`# HELP updp_queue_depth Jobs queued.`,
		`# TYPE updp_queue_depth gauge`,
		`updp_queue_depth 2`,
		`# HELP updp_requests_total Requests handled.`,
		`# TYPE updp_requests_total counter`,
		`updp_requests_total 3`,
	}, "\n") + "\n"
	if got := r.RenderText(); got != want {
		t.Errorf("rendered exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("updp_stage_seconds", "Stage latency.", []float64{0.5}, "stage")
	hv.With("scan").Observe(0.25)
	hv.With("scan").Observe(0.75)
	out := r.RenderText()
	for _, line := range []string{
		`updp_stage_seconds_bucket{stage="scan",le="0.5"} 1`,
		`updp_stage_seconds_bucket{stage="scan",le="+Inf"} 2`,
		`updp_stage_seconds_sum{stage="scan"} 1`,
		`updp_stage_seconds_count{stage="scan"} 2`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestGaugeFuncCollector(t *testing.T) {
	r := NewRegistry()
	vals := map[string]float64{"a": 1.5, "b": math.Inf(1)}
	r.GaugeFunc("updp_budget_remaining", "Remaining budget.", []string{"tenant"}, func(emit EmitGauge) {
		for k, v := range vals {
			emit(v, k)
		}
	})
	out := r.RenderText()
	for _, line := range []string{
		`updp_budget_remaining{tenant="a"} 1.5`,
		`updp_budget_remaining{tenant="b"} +Inf`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	// Samples must render sorted regardless of map order: "a" before "b".
	if strings.Index(out, `tenant="a"`) > strings.Index(out, `tenant="b"`) {
		t.Errorf("gauge-func samples not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("updp_weird_total", "Weird labels.", "name")
	cv.With(`a"b\c` + "\n").Inc()
	want := `updp_weird_total{name="a\"b\\c\n"} 1`
	if out := r.RenderText(); !strings.Contains(out, want+"\n") {
		t.Errorf("escaped label line %q missing in:\n%s", want, out)
	}
}

func TestNameValidation(t *testing.T) {
	for _, ok := range []string{"updp_x_total", "x", "_x", "a:b", "x9"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9x", "x-y", "X", "updp.total", "a b"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("registering an invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("Bad-Name", "nope")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("updp_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("updp_dup_total", "second")
}

// Concurrent updates + concurrent renders; run with -race. The final
// totals must be exact (atomic adds lose nothing).
func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("updp_c_total", "c")
	h := r.HistogramVec("updp_h_seconds", "h", LatencyBuckets(), "stage")
	g := r.Gauge("updp_g", "g")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.With("scan").Observe(float64(i%100) / 1e4)
				if i%64 == 0 {
					_ = r.RenderText()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.With("scan").Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	// Cumulative bucket invariant: last bucket count equals total count.
	out := r.RenderText()
	if !strings.Contains(out, `updp_h_seconds_count{stage="scan"} 16000`) {
		t.Errorf("histogram count line missing in:\n%s", out)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace(NewID())
	stop := tr.StartSpan("scan")
	time.Sleep(time.Millisecond)
	stop()
	tr.Observe("noise", 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "scan" || spans[1].Stage != "noise" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].D <= 0 {
		t.Errorf("scan span duration = %v", spans[0].D)
	}
	if s := tr.String(); !strings.Contains(s, "scan=") || !strings.Contains(s, "noise=5ms") {
		t.Errorf("trace string = %q", s)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate release id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "r-") {
			t.Fatalf("id %q lacks the r- prefix", id)
		}
	}
}

func TestExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("updp_ex_seconds", "exemplar test", []float64{0.01, 0.1})
	h.ObserveExemplar(0.05, "r-abc-1")
	h.Observe(0.002) // plain observation: no exemplar on the 0.01 bucket

	// Default rendering stays plain Prometheus text — no exemplar
	// syntax, so the golden-format consumers are unaffected.
	if out := r.RenderText(); strings.Contains(out, "#") && strings.Contains(out, "release_id") {
		t.Fatalf("exemplars rendered while disabled:\n%s", out)
	}

	r.SetExemplars(true)
	out := r.RenderText()
	if !strings.Contains(out, `le="0.1"} 2 # {release_id="r-abc-1"} 0.05 `) {
		t.Errorf("exemplar line missing or malformed in:\n%s", out)
	}
	if strings.Contains(out, `le="0.01"} 1 #`) {
		t.Errorf("bucket without exemplar grew one:\n%s", out)
	}

	// A later observation in the same bucket replaces the exemplar:
	// "most recent release per bucket".
	h.ObserveExemplar(0.09, "r-abc-2")
	out = r.RenderText()
	if !strings.Contains(out, `# {release_id="r-abc-2"} 0.09 `) {
		t.Errorf("exemplar not replaced by newer observation:\n%s", out)
	}
	if strings.Contains(out, "r-abc-1") {
		t.Errorf("stale exemplar survived:\n%s", out)
	}
}

func TestTraceChildSpans(t *testing.T) {
	tr := NewTrace(NewID())
	// Shard children record before the parent "scan" stage closes, as in
	// the real fan-out.
	tr.ObserveChild("scan_shard", "scan", time.Millisecond,
		Attr{Key: "shard", Value: 3}, Attr{Key: "rows", Value: 12840})
	tr.ObserveChild("scan_shard", "scan", 2*time.Millisecond,
		Attr{Key: "shard", Value: 7}, Attr{Key: "rows", Value: 99})
	tr.Observe("scan", 3*time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %+v", spans)
	}
	if spans[0].Parent != "scan" || spans[1].Parent != "scan" || spans[2].Parent != "" {
		t.Errorf("parent links wrong: %+v", spans)
	}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[0].Key != "shard" || spans[0].Attrs[0].Value != 3 {
		t.Errorf("attrs wrong: %+v", spans[0].Attrs)
	}
	for _, s := range spans {
		if s.Start < 0 {
			t.Errorf("negative start offset: %+v", s)
		}
	}
	// The slow-log line renders roots only: no per-shard explosion.
	if s := tr.String(); strings.Contains(s, "scan_shard") {
		t.Errorf("child span leaked into log line: %q", s)
	} else if !strings.Contains(s, "scan=3ms") {
		t.Errorf("root span missing from log line: %q", s)
	}
}

func TestTraceTotalFrozen(t *testing.T) {
	tr := NewTrace(NewID())
	time.Sleep(2 * time.Millisecond)
	tr.Finish()
	frozen := tr.Total()
	if frozen < 2*time.Millisecond {
		t.Fatalf("total %v shorter than the release", frozen)
	}
	time.Sleep(5 * time.Millisecond)
	if again := tr.Total(); again != frozen {
		t.Errorf("Total moved after Finish: %v then %v", frozen, again)
	}
	tr.Finish() // idempotent: second Finish must not move the end
	if again := tr.Total(); again != frozen {
		t.Errorf("second Finish moved the end: %v then %v", frozen, again)
	}
}
