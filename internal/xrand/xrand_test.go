package xrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var or uint64
	for i := 0; i < 10; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("seed 0 produced all-zero outputs")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(7)
	p2.Uint64() // parent consumed one value to split
	equal := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() == p2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("child replays parent: %d/64 equal", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 1000; i++ {
			v := r.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n = 10
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	for i, c := range counts {
		exp := float64(trials) / n
		if math.Abs(float64(c)-exp) > 5*math.Sqrt(exp) {
			t.Errorf("bucket %d: count %d, expected ~%.0f", i, c, exp)
		}
	}
}

func TestInt64Range(t *testing.T) {
	r := New(13)
	cases := []struct{ lo, hi int64 }{
		{0, 0}, {-5, 5}, {math.MinInt64 / 2, math.MaxInt64 / 2}, {100, 101},
	}
	for _, c := range cases {
		for i := 0; i < 1000; i++ {
			v := r.Int64Range(c.lo, c.hi)
			if v < c.lo || v > c.hi {
				t.Fatalf("Int64Range(%d,%d) = %d", c.lo, c.hi, v)
			}
		}
	}
}

func TestInt64RangeFullSpan(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		_ = r.Int64Range(math.MinInt64, math.MaxInt64) // must not panic
	}
}

// meanStd returns the sample mean and standard deviation of draws from f.
func meanStd(n int, f func() float64) (mean, std float64) {
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := f()
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	std = math.Sqrt(sumsq/float64(n) - mean*mean)
	return
}

func TestExponentialMoments(t *testing.T) {
	r := New(19)
	mean, std := meanStd(200000, r.Exponential)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exponential mean = %v, want ~1", mean)
	}
	if math.Abs(std-1) > 0.02 {
		t.Errorf("Exponential std = %v, want ~1", std)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(23)
	const scale = 2.5
	mean, std := meanStd(400000, func() float64 { return r.Laplace(scale) })
	if math.Abs(mean) > 0.03 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := scale * math.Sqrt2 // Var = 2 scale^2
	if math.Abs(std-want) > 0.05 {
		t.Errorf("Laplace std = %v, want ~%v", std, want)
	}
}

func TestLaplaceTailProbability(t *testing.T) {
	// P(|Lap(b)| > t) = exp(-t/b).
	r := New(29)
	const scale = 1.0
	const thresh = 2.0
	n, hits := 300000, 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Laplace(scale)) > thresh {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	want := math.Exp(-thresh / scale)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Laplace tail prob = %v, want ~%v", got, want)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(31)
	mean, std := meanStd(400000, r.Gaussian)
	if math.Abs(mean) > 0.01 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(std-1) > 0.01 {
		t.Errorf("Gaussian std = %v, want ~1", std)
	}
}

func TestGaussianKurtosis(t *testing.T) {
	r := New(37)
	var m4, m2 float64
	const n = 400000
	for i := 0; i < n; i++ {
		v := r.Gaussian()
		m2 += v * v
		m4 += v * v * v * v
	}
	m2 /= n
	m4 /= n
	kurt := m4 / (m2 * m2)
	if math.Abs(kurt-3) > 0.15 {
		t.Errorf("Gaussian kurtosis = %v, want ~3", kurt)
	}
}

func TestGumbelMoments(t *testing.T) {
	r := New(41)
	mean, std := meanStd(400000, r.Gumbel)
	const euler = 0.5772156649015329
	if math.Abs(mean-euler) > 0.02 {
		t.Errorf("Gumbel mean = %v, want ~%v", mean, euler)
	}
	want := math.Pi / math.Sqrt(6)
	if math.Abs(std-want) > 0.02 {
		t.Errorf("Gumbel std = %v, want ~%v", std, want)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(43)
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		mean, std := meanStd(300000, func() float64 { return r.Gamma(shape) })
		if math.Abs(mean-shape) > 0.05*math.Max(1, shape) {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
		want := math.Sqrt(shape)
		if math.Abs(std-want) > 0.05*math.Max(1, want) {
			t.Errorf("Gamma(%v) std = %v, want ~%v", shape, std, want)
		}
	}
}

func TestChiSquareMean(t *testing.T) {
	r := New(47)
	for _, df := range []float64{1, 3, 10} {
		mean, _ := meanStd(200000, func() float64 { return r.ChiSquare(df) })
		if math.Abs(mean-df) > 0.05*math.Max(1, df) {
			t.Errorf("ChiSquare(%v) mean = %v", df, mean)
		}
	}
}

func TestParetoMoments(t *testing.T) {
	r := New(53)
	xm, alpha := 1.0, 4.0
	mean, _ := meanStd(400000, func() float64 { return r.Pareto(xm, alpha) })
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want) > 0.02 {
		t.Errorf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(59)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestStudentTSymmetricAndHeavy(t *testing.T) {
	r := New(61)
	const nu = 5.0
	mean, std := meanStd(400000, func() float64 { return r.StudentT(nu) })
	if math.Abs(mean) > 0.02 {
		t.Errorf("StudentT mean = %v, want ~0", mean)
	}
	want := math.Sqrt(nu / (nu - 2))
	if math.Abs(std-want) > 0.05 {
		t.Errorf("StudentT std = %v, want ~%v", std, want)
	}
}

func TestUniformKS(t *testing.T) {
	// Kolmogorov–Smirnov test of Float64 against U(0,1).
	r := New(67)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sort.Float64s(xs)
	var d float64
	for i, x := range xs {
		lo := math.Abs(x - float64(i)/n)
		hi := math.Abs(x - float64(i+1)/n)
		d = math.Max(d, math.Max(lo, hi))
	}
	// Critical value at alpha=0.001 is ~1.95/sqrt(n).
	if d > 1.95/math.Sqrt(n) {
		t.Errorf("KS statistic %v too large", d)
	}
}

func TestPerm(t *testing.T) {
	r := New(71)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
}

func TestSampleIndicesDistinct(t *testing.T) {
	r := New(73)
	if err := quick.Check(func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % (n + 1)
		rr := New(seed)
		idx := rr.SampleIndices(n, m)
		if len(idx) != m {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}, &quick.Config{MaxCount: 300, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSampleIndicesUniform(t *testing.T) {
	// Each index should appear with probability m/n.
	r := New(79)
	const n, m, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, j := range r.SampleIndices(n, m) {
			counts[j]++
		}
	}
	exp := float64(trials) * m / n
	for i, c := range counts {
		if math.Abs(float64(c)-exp) > 6*math.Sqrt(exp) {
			t.Errorf("index %d sampled %d times, expected ~%.0f", i, c, exp)
		}
	}
}

func TestSampleIndicesFull(t *testing.T) {
	r := New(83)
	idx := r.SampleIndices(5, 5)
	sort.Ints(idx)
	for i, v := range idx {
		if v != i {
			t.Fatalf("full sample is not a permutation: %v", idx)
		}
	}
}

func TestGaussianCacheConsistency(t *testing.T) {
	// Consuming an odd number of Gaussians must not corrupt the stream.
	a := New(89)
	b := New(89)
	_ = a.Gaussian()
	_ = a.Uint64()
	_ = b.Gaussian()
	_ = b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("stream mismatch after Gaussian")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New(1).Laplace(-1) },
		func() { New(1).Gamma(0) },
		func() { New(1).Pareto(0, 1) },
		func() { New(1).Pareto(1, 0) },
		func() { New(1).StudentT(0) },
		func() { New(1).Int63n(0) },
		func() { New(1).Int64Range(3, 2) },
		func() { New(1).SampleIndices(3, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
