// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator together with the samplers the differential-privacy
// mechanisms and the synthetic-workload generators need (uniform,
// exponential, Laplace, Gaussian, Gumbel, gamma, chi-square, Pareto,
// Student-t).
//
// The generator is xoshiro256** seeded through SplitMix64. It is not
// cryptographically secure; it is meant for reproducible experiments.
// Every estimator in this repository takes an explicit *RNG so that a run
// is a pure function of (data, parameters, seed).
package xrand

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"math"
)

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; use Split to derive independent generators per goroutine.
type RNG struct {
	s [4]uint64

	// cached second output of the polar Gaussian sampler
	haveGauss bool
	gauss     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding only.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewRandomSeed returns a generator seeded from the operating system's
// entropy source. Use this when reproducibility is not required (e.g. in the
// public API's default configuration).
func NewRandomSeed() *RNG {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Entropy failure is unrecoverable for a privacy mechanism: falling
		// back to a fixed seed silently would make noise predictable.
		panic("xrand: reading OS entropy: " + err.Error())
	}
	return New(binary.LittleEndian.Uint64(b[:]))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is independent of the
// receiver's future outputs. The receiver is advanced.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in the open interval (0, 1).
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u != 0 {
			return u
		}
	}
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top of the range to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Int64Range returns a uniform value in the inclusive interval [lo, hi].
// It panics if lo > hi. The span hi-lo may be up to 2^63-2.
func (r *RNG) Int64Range(lo, hi int64) int64 {
	if lo > hi {
		panic("xrand: Int64Range with lo > hi")
	}
	span := uint64(hi - lo) // correct even when lo<0<hi as long as span < 2^63
	if span == math.MaxUint64 {
		return int64(r.Uint64())
	}
	return lo + int64(r.Uint64n(span+1))
}

// Exponential returns an Exponential(1) variate (mean 1).
func (r *RNG) Exponential() float64 {
	return -math.Log(r.Float64Open())
}

// Laplace returns a Laplace variate with location 0 and the given scale
// (density 1/(2b)·exp(-|x|/b)). Implemented as the difference of two
// independent exponentials, which avoids the |u|→0.5 cancellation of the
// inverse-CDF method.
func (r *RNG) Laplace(scale float64) float64 {
	if scale < 0 {
		panic("xrand: Laplace with negative scale")
	}
	return scale * (r.Exponential() - r.Exponential())
}

// Gaussian returns a standard normal variate using Marsaglia's polar method
// with caching of the second output.
func (r *RNG) Gaussian() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// Gumbel returns a standard Gumbel variate (location 0, scale 1). Adding
// independent Gumbel noise to log-weights and taking the argmax samples from
// the corresponding softmax distribution (the "Gumbel-max trick"), which is
// how the exponential mechanism is implemented.
func (r *RNG) Gumbel() float64 {
	return -math.Log(r.Exponential())
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang method.
// It panics if shape <= 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with shape <= 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		return r.Gamma(shape+1) * math.Pow(r.Float64Open(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Gaussian()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ChiSquare returns a chi-square variate with df degrees of freedom.
func (r *RNG) ChiSquare(df float64) float64 {
	return 2 * r.Gamma(df/2)
}

// Pareto returns a Pareto(xm, alpha) variate (support [xm, inf)).
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: Pareto requires xm > 0 and alpha > 0")
	}
	return xm * math.Pow(r.Float64Open(), -1/alpha)
}

// StudentT returns a Student-t variate with nu degrees of freedom.
func (r *RNG) StudentT(nu float64) float64 {
	if nu <= 0 {
		panic("xrand: StudentT with nu <= 0")
	}
	return r.Gaussian() / math.Sqrt(r.ChiSquare(nu)/nu)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleIndices returns m distinct indices drawn uniformly without
// replacement from [0, n), in random order, using a partial Fisher–Yates
// walk over a sparse map (O(m) memory). It panics if m > n or m < 0.
func (r *RNG) SampleIndices(n, m int) []int {
	if m < 0 || m > n {
		panic("xrand: SampleIndices with m out of range")
	}
	moved := make(map[int]int, m)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		vi, ok := moved[i]
		if !ok {
			vi = i
		}
		vj, ok := moved[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		moved[j] = vi
	}
	return out
}
