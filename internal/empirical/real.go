package empirical

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// ErrBadBucket reports a non-positive or non-finite bucket size.
var ErrBadBucket = errors.New("empirical: bucket size must be positive and finite")

// Discretize maps a real value to its bucket index round(x/b), clamped to
// ±2^61 (§3.5). The clamp is a deterministic per-record map, so it preserves
// neighboring relations and hence ε-DP; it only affects utility for inputs
// beyond 2^61·b.
func Discretize(x, b float64) int64 {
	v := math.Round(x / b)
	if math.IsNaN(v) {
		return 0
	}
	if v >= float64(maxAbs) {
		return maxAbs
	}
	if v <= -float64(maxAbs) {
		return -maxAbs
	}
	return int64(v)
}

// DiscretizeAll maps a real dataset to bucket indices.
func DiscretizeAll(xs []float64, b float64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = Discretize(x, b)
	}
	return out
}

// RealRadius is the real-domain radius estimator (Theorem 3.6): discretize
// with bucket size b, run Algorithm 3, and scale back. The result satisfies
// r̃ad <= 2·rad(D) + 3b with the same outlier bound as the integer case.
func RealRadius(rng *xrand.RNG, data []float64, b, eps, beta float64) (float64, error) {
	if !(b > 0) || math.IsInf(b, 1) {
		return 0, ErrBadBucket
	}
	r, err := Radius(rng, DiscretizeAll(data, b), eps, beta)
	if err != nil {
		return 0, err
	}
	// A value in bucket k may be as large as (k+1/2)b.
	return (float64(r) + 0.5) * b, nil
}

// RealRange is the real-domain range estimator (Theorem 3.7):
// |R̃(D)| <= 4γ(D) + 6b with the integer outlier bound.
func RealRange(rng *xrand.RNG, data []float64, b, eps, beta float64) (lo, hi float64, err error) {
	if !(b > 0) || math.IsInf(b, 1) {
		return 0, 0, ErrBadBucket
	}
	ilo, ihi, err := Range(rng, DiscretizeAll(data, b), eps, beta)
	if err != nil {
		return 0, 0, err
	}
	return (float64(ilo) - 0.5) * b, (float64(ihi) + 0.5) * b, nil
}

// RealMean is the real-domain mean estimator (Theorem 3.8): error
// O((γ(D)+b)/(εn)·log(log(γ(D)/b)/β)). It finds the range on the
// discretized data but computes the clipped mean on the original reals, so
// the only discretization cost is the slightly wider range.
func RealMean(rng *xrand.RNG, data []float64, b, eps, beta float64) (float64, error) {
	if !(b > 0) || math.IsInf(b, 1) {
		return 0, ErrBadBucket
	}
	lo, hi, err := RealRange(rng, data, b, 4*eps/5, beta/2)
	if err != nil {
		return 0, err
	}
	return dp.ClippedMean(rng, data, lo, hi, eps/5)
}

// RealQuantile is the real-domain quantile estimator (Theorem 3.9): rank
// error O(log(γ(D)/(bβ))/ε) plus an additive b from discretization.
func RealQuantile(rng *xrand.RNG, data []float64, tau int, b, eps, beta float64) (float64, error) {
	if !(b > 0) || math.IsInf(b, 1) {
		return 0, ErrBadBucket
	}
	q, err := Quantile(rng, DiscretizeAll(data, b), tau, eps, beta)
	if err != nil {
		return 0, err
	}
	return float64(q) * b, nil
}
