package empirical

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// ErrNoQuantiles reports an empty rank list.
var ErrNoQuantiles = errors.New("empirical: need at least one quantile rank")

// Quantiles releases k order statistics of an unbounded integer dataset
// under a single eps-DP budget. It runs Algorithm 4 once (4ε/5) and then one
// finite-domain inverse-sensitivity quantile (Algorithm 2) per *distinct*
// requested rank with budget (ε/5)/k each — so the range-finding cost,
// which dominates for small k, is paid once rather than k times (experiment
// E16 quantifies the win over k independent Algorithm 6 calls), and
// duplicate ranks cost nothing extra.
//
// The distinct releases are sorted and re-matched to their ranks as
// post-processing (Lemma 2.1), so the output is always monotone in tau —
// taus[i] <= taus[j] implies out[i] <= out[j] — and equal ranks receive
// equal values. The re-matching cannot increase the maximum rank error:
// each value keeps its multiset membership and crossing pairs only move
// values toward their correct side.
func Quantiles(rng *xrand.RNG, data []int64, taus []int, eps, beta float64) ([]int64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return nil, err
	}
	if len(taus) == 0 {
		return nil, ErrNoQuantiles
	}
	if len(data) == 0 {
		return nil, dp.ErrEmptyData
	}
	uniq := distinctSorted(taus)
	k := float64(len(uniq))

	lo, hi, err := Range(rng, data, 4*eps/5, beta/2)
	if err != nil {
		return nil, err
	}
	clamped := clampAll(data)

	vals := make([]int64, len(uniq))
	for i, tau := range uniq {
		q, err := dp.FiniteDomainQuantile(rng, clamped, tau, lo, hi, eps/5/k, beta/2/k)
		if err != nil {
			return nil, err
		}
		vals[i] = q
	}
	// Monotone projection: uniq is strictly increasing, so sorting the
	// released values and matching by position enforces monotonicity.
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })

	byRank := make(map[int]int64, len(uniq))
	for i, tau := range uniq {
		byRank[tau] = vals[i]
	}
	out := make([]int64, len(taus))
	for i, tau := range taus {
		out[i] = byRank[tau]
	}
	return out, nil
}

// RealQuantiles is the real-domain version of Quantiles (§3.5): discretize
// with bucket b, release the ranks, and scale back. Each value carries an
// extra additive b of discretization error.
func RealQuantiles(rng *xrand.RNG, data []float64, taus []int, b, eps, beta float64) ([]float64, error) {
	if !(b > 0) || math.IsInf(b, 1) {
		return nil, ErrBadBucket
	}
	qs, err := Quantiles(rng, DiscretizeAll(data, b), taus, eps, beta)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = float64(q) * b
	}
	return out, nil
}

// distinctSorted returns the distinct values of taus in increasing order.
func distinctSorted(taus []int) []int {
	uniq := append([]int(nil), taus...)
	sort.Ints(uniq)
	w := 0
	for i, v := range uniq {
		if i == 0 || v != uniq[w-1] {
			uniq[w] = v
			w++
		}
	}
	return uniq[:w]
}
