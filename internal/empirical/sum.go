package empirical

import (
	"repro/internal/xrand"
)

// Sum releases an eps-DP estimate of the empirical sum Σ X_i over the
// unbounded integer domain. Under the paper's swap-model neighbors the
// dataset size n is public, so Sum(D) = n·µ(D) and the Algorithm 5 mean
// estimator gives error O(γ(D)/ε · log log γ(D)) — the improvement over
// the domain-bounded state of the art the paper points out in §1.1.1:
// DFY+22 achieve O(rad(D)/ε · log N · log log N) and additionally require
// the domain bound N. Sum estimation is exactly answering self-join-free
// aggregation queries under user-level DP in a relational database.
func Sum(rng *xrand.RNG, data []int64, eps, beta float64) (float64, error) {
	m, err := Mean(rng, data, eps, beta)
	if err != nil {
		return 0, err
	}
	return m * float64(len(data)), nil
}

// RealSum is the real-domain version of Sum with bucket size b (§3.5).
func RealSum(rng *xrand.RNG, data []float64, b, eps, beta float64) (float64, error) {
	m, err := RealMean(rng, data, b, eps, beta)
	if err != nil {
		return 0, err
	}
	return m * float64(len(data)), nil
}
