// Package empirical implements the paper's Section 3: instance-optimal
// eps-DP estimators for the empirical mean and quantiles of a dataset drawn
// from the *unbounded* integer domain Z, plus the real-domain variants
// obtained by discretizing R with a bucket size b (§3.5).
//
// The pipeline is: privatize the radius rad(D) = max|X_i| with an SVT over
// doubling counts (Algorithm 3), locate the data with a private median and
// re-privatize the radius of the recentred data to get a range R̃(D)
// (Algorithm 4), then run the clipped mean (Algorithm 5) or the
// finite-domain inverse-sensitivity quantile (Algorithm 6) inside R̃(D).
//
// Utility (constant success probability): the mean has error
// O(γ(D)/(εn)·log log γ(D)) — inward-neighborhood optimal with optimality
// ratio O(log log γ(D)/ε) (Theorems 3.3 and 3.4) — and quantiles have rank
// error O(log γ(D)/ε) (Theorem 3.5).
package empirical

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// maxAbs is the magnitude bound enforced on integer inputs. Values are
// clamped to ±maxAbs on entry — a deterministic per-record map that
// preserves neighboring relations (hence DP) and guarantees that the
// recentring subtraction in Algorithm 4 cannot overflow int64.
const maxAbs = int64(1) << 61

// maxRadiusQueries caps Algorithm 3's SVT sequence. The sequence reaches
// Count(D, 2^62) >= n at query index 64, past every clamped input, so the
// cap is data-independent and unreachable in the absence of extreme noise.
const maxRadiusQueries = 70

// ErrTooFewSamples reports a dataset too small for the requested mechanism.
var ErrTooFewSamples = errors.New("empirical: dataset too small")

// clampInt64 clamps v into [-maxAbs, maxAbs].
func clampInt64(v int64) int64 {
	if v > maxAbs {
		return maxAbs
	}
	if v < -maxAbs {
		return -maxAbs
	}
	return v
}

// clampAll returns a clamped copy of data.
func clampAll(data []int64) []int64 {
	out := make([]int64, len(data))
	for i, v := range data {
		out[i] = clampInt64(v)
	}
	return out
}

// Radius is Algorithm 3 (InfiniteDomainRadius): an eps-DP estimate r̃ad(D)
// with r̃ad(D) <= 2·rad(D) while [-r̃ad, r̃ad] misses only
// O(log(log(rad(D))/beta)/eps) elements of D, with probability >= 1-beta
// (Theorem 3.1).
func Radius(rng *xrand.RNG, data []int64, eps, beta float64) (int64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, dp.ErrEmptyData
	}
	xs := clampAll(data)
	n := float64(len(xs))

	threshold := n - dp.SVTLemma26Slack(eps, beta)
	idx, err := dp.SVT(rng, threshold, eps, func(i int) (float64, bool) {
		// Query 1 is Count(D, 0); query i >= 2 is Count(D, 2^(i-2)).
		var bound int64
		if i == 1 {
			bound = 0
		} else {
			shift := uint(i - 2)
			if shift >= 63 {
				bound = math.MaxInt64
			} else {
				bound = int64(1) << shift
			}
		}
		cnt := 0
		for _, v := range xs {
			if v >= -bound && v <= bound {
				cnt++
			}
		}
		return float64(cnt), true
	}, maxRadiusQueries)
	if err != nil {
		// The cap is unreachable except under extreme noise; fall back to
		// the largest representable radius (a data-independent constant).
		return maxAbs, nil
	}
	if idx == 1 {
		return 0, nil
	}
	shift := uint(idx - 2)
	if shift >= 62 {
		return maxAbs, nil
	}
	return int64(1) << shift, nil
}

// Range is Algorithm 4 (InfiniteDomainRange): an eps-DP range R̃(D) with
// |R̃(D)| <= 4·γ(D) missing only O(log(log(γ(D))/beta)/eps) elements of D,
// with probability >= 1-beta, provided n > (c1/eps)·log(rad(D)/beta)
// (Theorem 3.2). The budget splits ε/8 + ε/8 + 3ε/4 across the radius,
// median, and recentred-radius steps, per the paper.
func Range(rng *xrand.RNG, data []int64, eps, beta float64) (lo, hi int64, err error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, 0, err
	}
	if len(data) == 0 {
		return 0, 0, dp.ErrEmptyData
	}
	xs := clampAll(data)

	rad1, err := Radius(rng, xs, eps/8, beta/3)
	if err != nil {
		return 0, 0, err
	}

	// Clip into [-rad1, rad1] and take a private median over that finite
	// domain (Algorithm 4 lines 2-3). FiniteDomainQuantile clips internally.
	med, err := dp.FiniteDomainQuantile(rng, xs, len(xs)/2, -rad1, rad1, eps/8, beta/3)
	if err != nil {
		return 0, 0, err
	}

	// Recentre (|med| <= rad1 <= maxAbs and |x| <= maxAbs, so the
	// subtraction stays within int64) and re-estimate the radius.
	shifted := make([]int64, len(xs))
	for i, v := range xs {
		shifted[i] = v - med
	}
	rad2, err := Radius(rng, shifted, 3*eps/4, beta/3)
	if err != nil {
		return 0, 0, err
	}

	// [med - rad2, med + rad2], saturating.
	lo = saturatingSub(med, rad2)
	hi = saturatingAdd(med, rad2)
	return lo, hi, nil
}

func saturatingAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

func saturatingSub(a, b int64) int64 {
	if b == math.MinInt64 {
		return saturatingAdd(a, math.MaxInt64)
	}
	return saturatingAdd(a, -b)
}

// Mean is Algorithm 5 (InfiniteDomainMean): an eps-DP estimate of the
// empirical mean over Z with error O(γ(D)/(εn)·log(log(γ(D))/β)) w.p.
// >= 1-beta (Theorem 3.3). Budget: 4ε/5 for the range, ε/5 for the
// clipped-mean Laplace noise (scale 5|R̃|/(εn), as in the paper).
func Mean(rng *xrand.RNG, data []int64, eps, beta float64) (float64, error) {
	lo, hi, err := Range(rng, data, 4*eps/5, beta/2)
	if err != nil {
		return 0, err
	}
	fs := make([]float64, len(data))
	for i, v := range data {
		fs[i] = float64(clampInt64(v))
	}
	return dp.ClippedMean(rng, fs, float64(lo), float64(hi), eps/5)
}

// Quantile is Algorithm 6 (InfiniteDomainQuantile): an eps-DP estimate of
// the tau-th order statistic (1-based) over Z with rank error
// O(log(γ(D)/β)/ε) w.p. >= 1-beta (Theorem 3.5). Budget: 4ε/5 range +
// ε/5 finite-domain quantile.
func Quantile(rng *xrand.RNG, data []int64, tau int, eps, beta float64) (int64, error) {
	lo, hi, err := Range(rng, data, 4*eps/5, beta/2)
	if err != nil {
		return 0, err
	}
	return dp.FiniteDomainQuantile(rng, clampAll(data), tau, lo, hi, eps/5, beta/2)
}
