package empirical

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestSumTracksTrueSum(t *testing.T) {
	rng := xrand.New(1)
	const n = 20000
	data := make([]int64, n)
	var trueSum float64
	for i := range data {
		data[i] = 1000 + rng.Int64Range(-50, 50)
		trueSum += float64(data[i])
	}
	errs := make([]float64, 15)
	for i := range errs {
		s, err := Sum(rng, data, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(s-trueSum) / trueSum
	}
	// Median relative error well under 1%.
	med := medianF(errs)
	if med > 0.01 {
		t.Errorf("sum median rel err %v", med)
	}
}

func TestSumErrorScalesWithGammaNotRadius(t *testing.T) {
	// Same width, hugely different radius: error should be comparable
	// (§1.1.1 — the improvement over domain-bounded sum estimation).
	rng := xrand.New(2)
	const n = 10000
	mk := func(center int64) []int64 {
		data := make([]int64, n)
		for i := range data {
			data[i] = center + rng.Int64Range(-100, 100)
		}
		return data
	}
	medErr := func(data []int64) float64 {
		var trueSum float64
		for _, v := range data {
			trueSum += float64(v)
		}
		errs := make([]float64, 15)
		for i := range errs {
			s, err := Sum(rng, data, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(s - trueSum)
		}
		return medianF(errs)
	}
	near := medErr(mk(0))
	far := medErr(mk(1 << 40))
	if far > 100*near+1000 {
		t.Errorf("absolute sum error should track γ, not radius: near=%v far=%v", near, far)
	}
}

func TestRealSum(t *testing.T) {
	rng := xrand.New(3)
	const n = 20000
	data := make([]float64, n)
	var trueSum float64
	for i := range data {
		data[i] = 50 + rng.Gaussian()
		trueSum += data[i]
	}
	s, err := RealSum(rng, data, 0.01, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-trueSum)/trueSum > 0.01 {
		t.Errorf("RealSum = %v, want ~%v", s, trueSum)
	}
}

func TestRealSumBadBucket(t *testing.T) {
	rng := xrand.New(4)
	if _, err := RealSum(rng, []float64{1, 2}, 0, 1, 0.1); err == nil {
		t.Error("bad bucket should fail")
	}
}

func medianF(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
