package empirical

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/xrand"
)

func sortedCopyInt64(xs []int64) []int64 {
	out := make([]int64, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestQuantilesRankError(t *testing.T) {
	// Each released value must sit within a modest rank window of its
	// target, like the single-quantile mechanism (Theorem 3.5 per rank).
	rng := xrand.New(11)
	n := 5000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i) - 2500
	}
	taus := []int{n / 4, n / 2, 3 * n / 4}
	sorted := sortedCopyInt64(data)

	fails := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		qs, err := Quantiles(rng, data, taus, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for i, tau := range taus {
			// Rank window: mechanism slack is O(log γ/ε); γ=5000 here, so
			// several hundred ranks is generous but non-vacuous (n/10).
			loIdx, hiIdx := tau-500, tau+500
			if loIdx < 1 {
				loIdx = 1
			}
			if hiIdx > n {
				hiIdx = n
			}
			if qs[i] < sorted[loIdx-1] || qs[i] > sorted[hiIdx-1] {
				fails++
			}
		}
	}
	if fails > trials*len(taus)/5 {
		t.Errorf("rank window violated %d/%d times", fails, trials*len(taus))
	}
}

func TestQuantilesMonotoneInRank(t *testing.T) {
	// The projection must make outputs monotone in tau even when taus are
	// passed out of order.
	rng := xrand.New(12)
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(rng.Intn(100000))
	}
	taus := []int{900, 100, 500, 100, 999}
	for trial := 0; trial < 25; trial++ {
		qs, err := Quantiles(rng, data, taus, 0.5, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range taus {
			for j := range taus {
				if taus[i] <= taus[j] && qs[i] > qs[j] {
					t.Fatalf("monotonicity violated: tau %d -> %d but tau %d -> %d",
						taus[i], qs[i], taus[j], qs[j])
				}
			}
		}
	}
}

func TestQuantilesMatchesSingleOnOneRank(t *testing.T) {
	// With a single rank, Quantiles must behave like Quantile (same budget
	// split), not identically (different randomness) but with similar error.
	rng := xrand.New(13)
	data := make([]int64, 2000)
	for i := range data {
		data[i] = int64(i)
	}
	qs, err := Quantiles(rng, data, []int{1000}, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(qs[0])-1000) > 400 {
		t.Errorf("single-rank Quantiles far off: got %d want ~1000", qs[0])
	}
}

func TestQuantilesErrors(t *testing.T) {
	rng := xrand.New(14)
	data := []int64{1, 2, 3, 4}
	if _, err := Quantiles(rng, data, nil, 1, 0.1); !errors.Is(err, ErrNoQuantiles) {
		t.Errorf("want ErrNoQuantiles, got %v", err)
	}
	if _, err := Quantiles(rng, nil, []int{1}, 1, 0.1); !errors.Is(err, dp.ErrEmptyData) {
		t.Errorf("want ErrEmptyData, got %v", err)
	}
	if _, err := Quantiles(rng, data, []int{1}, -1, 0.1); !errors.Is(err, dp.ErrInvalidEpsilon) {
		t.Errorf("want ErrInvalidEpsilon, got %v", err)
	}
	if _, err := Quantiles(rng, data, []int{1}, 1, 2); !errors.Is(err, dp.ErrInvalidBeta) {
		t.Errorf("want ErrInvalidBeta, got %v", err)
	}
}

func TestRealQuantilesBucketScaling(t *testing.T) {
	// Real-domain wrapper: results should track the continuous quantiles
	// within a few buckets plus rank error.
	rng := xrand.New(15)
	n := 4000
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i) / 100 // uniform grid on [0, 40)
	}
	qs, err := RealQuantiles(rng, data, []int{n / 4, 3 * n / 4}, 0.01, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qs[0]-10) > 4 || math.Abs(qs[1]-30) > 4 {
		t.Errorf("real quantiles off: got %v want ~[10, 30]", qs)
	}
}

func TestRealQuantilesBadBucket(t *testing.T) {
	rng := xrand.New(16)
	data := []float64{1, 2, 3, 4}
	for _, b := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := RealQuantiles(rng, data, []int{1}, b, 1, 0.1); !errors.Is(err, ErrBadBucket) {
			t.Errorf("bucket %v: want ErrBadBucket, got %v", b, err)
		}
	}
}

func TestDistinctSortedProperty(t *testing.T) {
	// Property: distinctSorted returns a strictly increasing slice covering
	// exactly the set of inputs.
	f := func(taus []int16) bool {
		if len(taus) == 0 {
			return true
		}
		in := make([]int, len(taus))
		set := map[int]bool{}
		for i, v := range taus {
			in[i] = int(v)
			set[int(v)] = true
		}
		out := distinctSorted(in)
		if len(out) != len(set) {
			return false
		}
		for i, v := range out {
			if !set[v] {
				return false
			}
			if i > 0 && out[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantilesDuplicateRanksEqualValues(t *testing.T) {
	// Duplicate ranks must receive identical values (and cost no extra
	// budget, since only distinct ranks are released).
	rng := xrand.New(17)
	data := make([]int64, 500)
	for i := range data {
		data[i] = int64(i)
	}
	qs, err := Quantiles(rng, data, []int{250, 100, 250, 250}, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != qs[2] || qs[0] != qs[3] {
		t.Errorf("duplicate ranks got different values: %v", qs)
	}
	if qs[1] > qs[0] {
		t.Errorf("rank 100 value %d above rank 250 value %d", qs[1], qs[0])
	}
}
