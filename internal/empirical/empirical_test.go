package empirical

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// ---------- Radius (Algorithm 3, Theorem 3.1) ----------

func TestRadiusUpperBound(t *testing.T) {
	// r̃ad <= 2·rad must hold with probability >= 1-beta.
	rng := xrand.New(1)
	for _, radius := range []int64{8, 1 << 10, 1 << 20, 1 << 40} {
		data := make([]int64, 2000)
		for i := range data {
			data[i] = rng.Int64Range(-radius, radius)
		}
		data[0] = radius // pin the true radius
		fails := 0
		for trial := 0; trial < 50; trial++ {
			r, err := Radius(rng, data, 1.0, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if r > 2*radius {
				fails++
			}
		}
		if fails > 8 {
			t.Errorf("rad=%d: r̃ad > 2·rad in %d/50 trials", radius, fails)
		}
	}
}

func TestRadiusCoversMostPoints(t *testing.T) {
	rng := xrand.New(2)
	const n = 5000
	const radius = int64(1) << 30
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int64Range(-radius, radius)
	}
	const eps, beta = 1.0, 0.05
	// Theorem 3.1 outlier bound with a generous constant.
	bound := 60 / eps * math.Log(math.Log(float64(radius))/beta)
	fails := 0
	for trial := 0; trial < 30; trial++ {
		r, err := Radius(rng, data, eps, beta)
		if err != nil {
			t.Fatal(err)
		}
		outside := n - stats.CountInInt64(data, -r, r)
		if float64(outside) > bound {
			fails++
		}
	}
	if fails > 5 {
		t.Errorf("too many outliers in %d/30 trials (bound %.0f)", fails, bound)
	}
}

func TestRadiusAllZeros(t *testing.T) {
	rng := xrand.New(3)
	data := make([]int64, 1000)
	zeros := 0
	for trial := 0; trial < 50; trial++ {
		r, err := Radius(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r == 0 {
			zeros++
		}
	}
	if zeros < 40 {
		t.Errorf("all-zero data yielded rad 0 only %d/50 times", zeros)
	}
}

func TestRadiusHugeValuesClamped(t *testing.T) {
	rng := xrand.New(4)
	data := []int64{math.MaxInt64, math.MinInt64, 0, 0, 0, 0, 0, 0, 0, 0}
	r, err := Radius(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 {
		t.Errorf("negative radius %d", r)
	}
}

func TestRadiusSmallEpsStillValid(t *testing.T) {
	// Tiny eps: noisy, but result must remain a valid radius (>= 0).
	rng := xrand.New(5)
	data := []int64{5, -3, 2, 1, 0, 7, -6, 4, 2, 2}
	for trial := 0; trial < 20; trial++ {
		r, err := Radius(rng, data, 0.01, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0 {
			t.Errorf("negative radius %d", r)
		}
	}
}

func TestRadiusErrors(t *testing.T) {
	rng := xrand.New(6)
	if _, err := Radius(rng, nil, 1, 0.1); !errors.Is(err, dp.ErrEmptyData) {
		t.Error("empty data")
	}
	if _, err := Radius(rng, []int64{1}, 0, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := Radius(rng, []int64{1}, 1, 0); err == nil {
		t.Error("bad beta")
	}
}

// ---------- Range (Algorithm 4, Theorem 3.2) ----------

func TestRangeWidthBound(t *testing.T) {
	// |R̃(D)| <= 4γ(D) even when the data sit far from the origin
	// (rad ≫ γ), which is the whole point of the recentring step.
	rng := xrand.New(7)
	const n = 20000
	const center = int64(1) << 35
	const gamma = int64(1 << 12)
	data := make([]int64, n)
	for i := range data {
		data[i] = center + rng.Int64Range(-gamma/2, gamma/2)
	}
	trueWidth := stats.WidthInt64(data)
	fails := 0
	for trial := 0; trial < 30; trial++ {
		lo, hi, err := Range(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if hi-lo > 4*trueWidth {
			fails++
		}
	}
	if fails > 5 {
		t.Errorf("|R̃| > 4γ in %d/30 trials", fails)
	}
}

func TestRangeCoversMostPoints(t *testing.T) {
	rng := xrand.New(8)
	const n = 20000
	data := make([]int64, n)
	for i := range data {
		data[i] = 1_000_000 + rng.Int64Range(0, 1<<16)
	}
	const eps, beta = 1.0, 0.05
	gamma := float64(stats.WidthInt64(data))
	bound := 80 / eps * math.Log(math.Log(gamma)/beta)
	fails := 0
	for trial := 0; trial < 30; trial++ {
		lo, hi, err := Range(rng, data, eps, beta)
		if err != nil {
			t.Fatal(err)
		}
		outside := n - stats.CountInInt64(data, lo, hi)
		if float64(outside) > bound {
			fails++
		}
	}
	if fails > 5 {
		t.Errorf("range missed too many points in %d/30 trials (bound %.0f)", fails, bound)
	}
}

func TestRangeValidInterval(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		data := make([]int64, 500)
		for i := range data {
			data[i] = rng.Int64Range(-1000, 1000)
		}
		lo, hi, err := Range(rng, data, 0.5, 0.2)
		return err == nil && lo <= hi
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// ---------- Mean (Algorithm 5, Theorems 3.3 / 3.4) ----------

func TestMeanInstanceOptimalError(t *testing.T) {
	// Error should scale like γ(D)/(εn)·loglog γ, not rad(D)/(εn):
	// data concentrated at a huge offset must still be estimated well.
	rng := xrand.New(9)
	const n = 50000
	const center = float64(1 << 40)
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(center) + rng.Int64Range(-500, 500)
	}
	trueMean := meanInt64(data)
	gamma := float64(stats.WidthInt64(data))
	const eps = 1.0
	// Theorem 3.3 bound with a generous constant (beta folded in).
	bound := 200 * gamma / (eps * n) * math.Log(math.Log(gamma)/0.05)
	fails := 0
	for trial := 0; trial < 30; trial++ {
		m, err := Mean(rng, data, eps, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-trueMean) > bound {
			fails++
		}
	}
	if fails > 5 {
		t.Errorf("mean error above instance bound %.3f in %d/30 trials", bound, fails)
	}
}

func TestMeanPackingHardInstance(t *testing.T) {
	// The Theorem 3.4 lower-bound construction: mostly zeros with
	// loglog(N)/eps copies of 2^i. The estimator should still return
	// something in [0, 2^i] — sanity, not tightness.
	rng := xrand.New(10)
	const n = 10000
	const eps = 1.0
	const big = int64(1) << 20
	k := int(math.Log(math.Log2(float64(big)))/eps) + 1
	data := make([]int64, n)
	for i := 0; i < k; i++ {
		data[i] = big
	}
	m, err := Mean(rng, data, eps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m < -float64(big) || m > float64(big) {
		t.Errorf("packing instance mean %v wildly out of range", m)
	}
}

func meanInt64(xs []int64) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s / float64(len(xs))
}

// ---------- Quantile (Algorithm 6, Theorem 3.5) ----------

func TestQuantileRankErrorLogGamma(t *testing.T) {
	rng := xrand.New(11)
	const n = 20000
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int64Range(0, 1<<20)
	}
	sorted := append([]int64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	const eps, beta = 1.0, 0.05
	gamma := float64(stats.WidthInt64(data))
	bound := 40 / eps * math.Log(gamma/beta)
	for _, tau := range []int{n / 4, n / 2, 3 * n / 4} {
		fails := 0
		for trial := 0; trial < 20; trial++ {
			q, err := Quantile(rng, data, tau, eps, beta)
			if err != nil {
				t.Fatal(err)
			}
			re := rankErrSorted(sorted, tau, q)
			if float64(re) > bound {
				fails++
			}
		}
		if fails > 4 {
			t.Errorf("tau=%d: rank error above %.0f in %d/20 trials", tau, bound, fails)
		}
	}
}

func rankErrSorted(sorted []int64, tau int, y int64) int {
	target := sorted[tau-1]
	lo, hi := target, y
	if lo > hi {
		lo, hi = hi, lo
	}
	cnt := 0
	for _, v := range sorted {
		if v > lo && v < hi {
			cnt++
		}
	}
	return cnt
}

// ---------- Real-domain variants (§3.5, Theorems 3.6-3.9) ----------

func TestDiscretizeRounding(t *testing.T) {
	if Discretize(2.6, 1) != 3 || Discretize(-2.6, 1) != -3 {
		t.Error("rounding")
	}
	if Discretize(0.2, 0.5) != 0 {
		t.Error("bucket scaling")
	}
	if Discretize(1e300, 1) != maxAbs {
		t.Error("overflow clamp high")
	}
	if Discretize(-1e300, 1) != -maxAbs {
		t.Error("overflow clamp low")
	}
	if Discretize(math.NaN(), 1) != 0 {
		t.Error("NaN maps to 0")
	}
}

func TestRealMeanGaussian(t *testing.T) {
	rng := xrand.New(12)
	const n = 50000
	const mu, sigma = 123.456, 2.0
	data := make([]float64, n)
	for i := range data {
		data[i] = mu + sigma*rng.Gaussian()
	}
	b := sigma / 100
	fails := 0
	for trial := 0; trial < 20; trial++ {
		m, err := RealMean(rng, data, b, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-mu) > 1.0 {
			fails++
		}
	}
	if fails > 4 {
		t.Errorf("real mean off in %d/20 trials", fails)
	}
}

func TestRealQuantileMedian(t *testing.T) {
	rng := xrand.New(13)
	const n = 20000
	data := make([]float64, n)
	for i := range data {
		data[i] = 50 + 10*rng.Gaussian()
	}
	fails := 0
	for trial := 0; trial < 20; trial++ {
		q, err := RealQuantile(rng, data, n/2, 0.1, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q-50) > 2 {
			fails++
		}
	}
	if fails > 4 {
		t.Errorf("median off in %d/20 trials", fails)
	}
}

func TestRealRadiusBound(t *testing.T) {
	rng := xrand.New(14)
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.Laplace(3)
	}
	trueRad := stats.Radius(data)
	const b = 0.01
	fails := 0
	for trial := 0; trial < 20; trial++ {
		r, err := RealRadius(rng, data, b, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r > 2*trueRad+3*b {
			fails++
		}
	}
	if fails > 4 {
		t.Errorf("real radius bound violated in %d/20 trials", fails)
	}
}

func TestRealRangeContainsBulk(t *testing.T) {
	rng := xrand.New(15)
	const n = 20000
	data := make([]float64, n)
	for i := range data {
		data[i] = -7 + 0.5*rng.Gaussian()
	}
	lo, hi, err := RealRange(rng, data, 0.01, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	inside := stats.CountIn(data, lo, hi)
	if inside < n*9/10 {
		t.Errorf("range [%v,%v] covers only %d/%d points", lo, hi, inside, n)
	}
}

func TestRealBadBucket(t *testing.T) {
	rng := xrand.New(16)
	data := []float64{1, 2, 3}
	for _, b := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := RealMean(rng, data, b, 1, 0.1); !errors.Is(err, ErrBadBucket) {
			t.Errorf("bucket %v should fail", b)
		}
		if _, err := RealQuantile(rng, data, 1, b, 1, 0.1); !errors.Is(err, ErrBadBucket) {
			t.Errorf("quantile bucket %v should fail", b)
		}
		if _, _, err := RealRange(rng, data, b, 1, 0.1); !errors.Is(err, ErrBadBucket) {
			t.Errorf("range bucket %v should fail", b)
		}
		if _, err := RealRadius(rng, data, b, 1, 0.1); !errors.Is(err, ErrBadBucket) {
			t.Errorf("radius bucket %v should fail", b)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if saturatingAdd(math.MaxInt64, 1) != math.MaxInt64 {
		t.Error("add overflow")
	}
	if saturatingAdd(math.MinInt64, -1) != math.MinInt64 {
		t.Error("add underflow")
	}
	if saturatingSub(0, math.MinInt64) != math.MaxInt64 {
		t.Error("sub MinInt64")
	}
	if saturatingAdd(1, 2) != 3 || saturatingSub(5, 2) != 3 {
		t.Error("basic arithmetic")
	}
}
