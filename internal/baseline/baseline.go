// Package baseline implements the prior private estimators the paper
// compares against in §1.1 and Table 1, plus non-private references. Each
// baseline keeps the assumption profile (A1: mean range, A2: variance
// range, A3: distribution family) and the error *rate* of the original;
// see DESIGN.md §1 for the substitution notes.
//
//   - KV18Mean / KV18Variance   — histogram localization, A1+A2(+A3)
//   - CoinPressMean / -Variance — KLSU19/BDKU20-style iterative refinement,
//     A1+A2, Laplace noise so the guarantee stays pure DP
//   - KSU20Mean                 — heavy-tailed mean with a given k-th
//     central moment bound, A1+A2
//   - BS19TrimmedMean           — private-quartile trimmed mean, A1+A2
//   - DL09IQR                   — (ε,δ)-DP propose-test-release scale
//     estimator with the α ∝ 1/(ε log n) rate
//   - NonPrivate*               — the empirical estimators of §1
package baseline

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Errors returned by the baselines.
var (
	// ErrBadParams reports invalid assumption parameters (R, sigma bounds…).
	ErrBadParams = errors.New("baseline: invalid assumption parameters")
	// ErrUnstable reports a propose-test-release test failure (DL09's ⊥).
	ErrUnstable = errors.New("baseline: propose-test-release test failed")
)

// NonPrivateMean is the empirical mean µ(D) (§1).
func NonPrivateMean(data []float64) float64 { return stats.Mean(data) }

// NonPrivateVariance is the empirical variance σ²(D) (§1).
func NonPrivateVariance(data []float64) float64 { return stats.Variance(data) }

// NonPrivateIQR is the empirical IQR X_{3n/4} - X_{n/4} (§1).
func NonPrivateIQR(data []float64) float64 { return stats.IQR(data) }

// KV18Mean is the Karwa–Vadhan-style pure-DP Gaussian mean estimator under
// A1 (|mu| <= R) and A2 (sigma in [sigmaMin, sigmaMax]): a histogram with
// sigmaMax-width bins over [-R, R] localizes the mean via report-noisy-max
// (the 1/ε·log(R/σ) term of its sample complexity), then a clipped mean
// with an O(sigmaMax·sqrt(log n)) radius releases the estimate. Total
// budget: ε/2 + ε/2.
//
// When the assumptions are violated (mu outside [-R, R], or sigma above
// sigmaMax) the estimate degrades arbitrarily — that is Table 1's point.
func KV18Mean(rng *xrand.RNG, data []float64, r, sigmaMin, sigmaMax, eps float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, dp.ErrEmptyData
	}
	if !(r > 0) || !(sigmaMin > 0) || sigmaMax < sigmaMin {
		return 0, ErrBadParams
	}
	n := float64(len(data))
	w := sigmaMax
	nBins := int(math.Ceil(2*r/w)) + 1
	if nBins < 1 {
		nBins = 1
	}
	const maxBins = 1 << 26
	if nBins > maxBins {
		return 0, ErrBadParams // R/sigmaMax too extreme to materialize
	}
	counts := make([]float64, nBins)
	for _, x := range data {
		b := int((stats.Clip(x, -r, r) + r) / w)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	best := dp.ReportNoisyMax(rng, counts, 1, eps/2)
	center := -r + (float64(best)+0.5)*w

	radius := sigmaMax * (2 + math.Sqrt(2*math.Log(2*n)))
	return dp.ClippedMean(rng, data, center-radius, center+radius, eps/2)
}

// KV18Variance is the Karwa–Vadhan-style pure-DP Gaussian variance
// estimator under A2: pair differences W = (X-X')/√2 ~ N(0, σ²) are
// localized on a log₂ grid spanning [sigmaMin, sigmaMax] via noisy max —
// the 1/ε·log log(σmax/σmin) term of (10) — and the clipped mean of W²
// over [0, O(σ̂²·log n)] is released. Budget: ε/2 + ε/2.
func KV18Variance(rng *xrand.RNG, data []float64, sigmaMin, sigmaMax, eps float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) < 4 {
		return 0, dp.ErrEmptyData
	}
	if !(sigmaMin > 0) || sigmaMax < sigmaMin {
		return 0, ErrBadParams
	}
	n := float64(len(data))

	perm := rng.Perm(len(data))
	w := make([]float64, 0, len(data)/2)
	for i := 0; i+1 < len(perm); i += 2 {
		w = append(w, (data[perm[i]]-data[perm[i+1]])/math.Sqrt2)
	}

	jLo := int(math.Floor(math.Log2(sigmaMin))) - 1
	jHi := int(math.Ceil(math.Log2(sigmaMax))) + 1
	counts := make([]float64, jHi-jLo+1)
	for _, v := range w {
		a := math.Abs(v)
		if a == 0 {
			continue
		}
		j := int(math.Floor(math.Log2(a)))
		if j < jLo {
			j = jLo
		}
		if j > jHi {
			j = jHi
		}
		counts[j-jLo]++
	}
	best := dp.ReportNoisyMax(rng, counts, 1, eps/2)
	sigmaHat := math.Pow(2, float64(best+jLo)+1)

	hi := sigmaHat * sigmaHat * 2 * math.Log(2*n)
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v * v
	}
	return dp.ClippedMean(rng, z, 0, hi, eps/2)
}

// CoinPressMean is the KLSU19/BDKU20-style iterative mean estimator under
// A1+A2, using Laplace noise in place of the original Gaussian noise so the
// guarantee remains pure ε-DP. Each of t steps clips to the current
// confidence interval, releases a noisy mean with budget ε/t, and shrinks
// the interval to sigmaMax·O(√log n) plus the noise tail. Its
// 1/ε·log(R/σmax) behaviour comes from needing t ≈ log(R/σmax) steps.
func CoinPressMean(rng *xrand.RNG, data []float64, r, sigmaMax, eps float64, steps int) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, dp.ErrEmptyData
	}
	if !(r > 0) || !(sigmaMax > 0) {
		return 0, ErrBadParams
	}
	if steps <= 0 {
		steps = int(math.Max(1, math.Ceil(math.Log2(r/sigmaMax))))
		if steps > 30 {
			steps = 30
		}
	}
	n := float64(len(data))
	epsStep := eps / float64(steps)
	const betaStep = 0.01

	center := 0.0
	radius := r + sigmaMax
	var est float64
	for i := 0; i < steps; i++ {
		var err error
		est, err = dp.ClippedMean(rng, data, center-radius, center+radius, epsStep)
		if err != nil {
			return 0, err
		}
		// New radius: sampling spread + clipping slack + Laplace tail.
		tail := dp.LaplaceTail(2*radius/(epsStep*n), betaStep)
		next := sigmaMax*(1+math.Sqrt(2*math.Log(2*n/betaStep))) + tail
		if next >= radius {
			break // no further shrinkage possible at this budget
		}
		center, radius = est, next
	}
	return est, nil
}

// CoinPressVariance is the iterative variance analogue under A2: pair
// squares Z = (X-X')² (E[Z] = 2σ²) with a shrinking upper clip bound.
func CoinPressVariance(rng *xrand.RNG, data []float64, sigmaMin, sigmaMax, eps float64, steps int) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) < 4 {
		return 0, dp.ErrEmptyData
	}
	if !(sigmaMin > 0) || sigmaMax < sigmaMin {
		return 0, ErrBadParams
	}
	if steps <= 0 {
		steps = int(math.Max(1, math.Ceil(math.Log2(sigmaMax/sigmaMin))))
		if steps > 30 {
			steps = 30
		}
	}
	h := stats.PairSquares(rng, data)
	nP := float64(len(h))
	epsStep := eps / float64(steps)
	const betaStep = 0.01

	upper := 2 * sigmaMax * sigmaMax * math.Log(2*nP/betaStep)
	floor := 2 * sigmaMin * sigmaMin
	var est float64
	for i := 0; i < steps; i++ {
		var err error
		est, err = dp.ClippedMean(rng, h, 0, upper, epsStep)
		if err != nil {
			return 0, err
		}
		tail := dp.LaplaceTail(upper/(epsStep*nP), betaStep)
		next := math.Max((est+tail)*2*math.Log(2*nP/betaStep), floor)
		if next >= upper {
			break
		}
		upper = next
	}
	return est / 2, nil
}

// KSU20Mean is the Kamath–Singhal–Ullman heavy-tailed mean estimator under
// A1 (|mu| <= R) and A2 (k-th central moment bounded by mukBar): a coarse
// histogram over [-R, R] with (mukBar)^{1/k}-width bins localizes the mean,
// then the clipped mean over a ±O((εn·mukBar)^{1/k}) window is released.
// Its error carries mukBar^{1/k}, so a misspecified moment bound inflates
// the estimate — the comparison Theorem 4.9 targets.
func KSU20Mean(rng *xrand.RNG, data []float64, r float64, k int, mukBar, eps float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, dp.ErrEmptyData
	}
	if !(r > 0) || k < 2 || !(mukBar > 0) {
		return 0, ErrBadParams
	}
	n := float64(len(data))
	w := 2 * math.Pow(mukBar, 1/float64(k))
	// Validate the bin count in float64 BEFORE converting: for extreme
	// r/mukBar the float exceeds the int range and the conversion is
	// undefined (it can come out negative and defeat the cap check).
	const maxBins = 1 << 26
	binsF := math.Ceil(2 * r / w)
	if !(binsF >= 1) || binsF > maxBins {
		return 0, ErrBadParams
	}
	nBins := int(binsF) + 1
	counts := make([]float64, nBins)
	for _, x := range data {
		b := int((stats.Clip(x, -r, r) + r) / w)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	best := dp.ReportNoisyMax(rng, counts, 1, eps/2)
	center := -r + (float64(best)+0.5)*w

	xi := 2 * math.Pow(eps*n*mukBar, 1/float64(k))
	return dp.ClippedMean(rng, data, center-xi-w, center+xi+w, eps/2)
}

// BS19TrimmedMean is the Bun–Steinke-style trimmed mean under A1+A2: the
// quartiles are found privately over the [-R, R] domain discretized at
// sigmaMin (the log(R/σmin) range dependence of (7)), the data are clipped
// to a constant inflation of the interquartile interval, and a noisy mean
// is released. Budget: ε/3 per quartile + ε/3 for the mean.
func BS19TrimmedMean(rng *xrand.RNG, data []float64, r, sigmaMin, eps float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	n := len(data)
	if n == 0 {
		return 0, dp.ErrEmptyData
	}
	if !(r > 0) || !(sigmaMin > 0) {
		return 0, ErrBadParams
	}
	b := sigmaMin
	lim := int64(math.Ceil(r / b))
	scaled := make([]int64, n)
	for i, x := range data {
		scaled[i] = int64(math.Round(stats.Clip(x, -r, r) / b))
	}
	q1i, err := dp.FiniteDomainQuantile(rng, scaled, n/4, -lim, lim, eps/3, 0.05)
	if err != nil {
		return 0, err
	}
	q3i, err := dp.FiniteDomainQuantile(rng, scaled, 3*n/4, -lim, lim, eps/3, 0.05)
	if err != nil {
		return 0, err
	}
	q1, q3 := float64(q1i)*b, float64(q3i)*b
	if q3 < q1 {
		q1, q3 = q3, q1
	}
	spread := (q3 - q1) + b
	return dp.ClippedMean(rng, data, q1-2*spread, q3+2*spread, eps/3)
}

// DL09IQR is the Dwork–Lei propose-test-release scale estimator — the only
// prior universal IQR estimator, and only (ε, δ)-DP. The empirical IQR is
// binned on a log scale with granularity 1/ln(n); the distance to the
// nearest dataset whose bin differs (computed from order-statistic shifts,
// sensitivity 1) is tested against ln(1/δ)/ε with Laplace noise; on pass,
// the noisy bin is released. The release error is ≈ IQR·(1+1/ε)/ln(n) —
// DL09's α ∝ 1/(ε log n) rate, exponentially slower in n than Algorithm 10.
// On fail it returns ErrUnstable (the paper's ⊥).
func DL09IQR(rng *xrand.RNG, data []float64, eps, delta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if !(delta > 0 && delta < 1) {
		return 0, ErrBadParams
	}
	n := len(data)
	if n < 8 {
		return 0, dp.ErrEmptyData
	}
	s := stats.Sorted(data)
	iqrOf := func(k int) (lo, hi float64) {
		// IQR extremes reachable by changing k records: ranks shift by ±k.
		loIdx := func(i int) float64 { return stats.OrderStat(s, i) }
		q1, q3 := int(math.Ceil(float64(n)/4)), int(math.Ceil(3*float64(n)/4))
		hi = loIdx(q3+k) - loIdx(q1-k)
		lo = loIdx(q3-k) - loIdx(q1+k)
		return lo, hi
	}
	base := stats.IQR(data)
	if !(base > 0) {
		return 0, ErrUnstable
	}
	nu := 1 / math.Log(float64(n))
	bin := math.Floor(math.Log(base) / nu)

	// Distance to instability: smallest k whose reachable IQR range leaves
	// the bin.
	kStar := n / 4
	for k := 1; k <= n/4; k++ {
		lo, hi := iqrOf(k)
		outLo := !(lo > 0) || math.Floor(math.Log(lo)/nu) != bin
		outHi := math.Floor(math.Log(hi)/nu) != bin
		if outLo || outHi {
			kStar = k - 1
			break
		}
	}

	if float64(kStar)+rng.Laplace(1/eps) <= 1+math.Log(1/delta)/eps {
		return 0, ErrUnstable
	}
	release := math.Exp(nu * (bin + 0.5 + rng.Laplace(1/eps)))
	return release, nil
}
