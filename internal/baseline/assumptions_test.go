package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/xrand"
)

// These tests pin the baselines' assumption profiles (Table 1): accurate
// in-assumption, degraded out-of-assumption, and strict about parameters.

func TestKSU20MeanInAssumption(t *testing.T) {
	rng := xrand.New(301)
	d := dist.NewPareto(1, 3) // mu = 1.5, mu_2 finite
	data := dist.SampleN(d, rng, 20000)
	muk := d.CentralMoment(2)
	var errSum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		m, err := KSU20Mean(rng, data, 100, 2, muk, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(m - d.Mean())
	}
	if errSum/trials > 0.5 {
		t.Errorf("in-assumption error %v too large", errSum/trials)
	}
}

func TestKSU20MeanMisspecifiedMomentDegrades(t *testing.T) {
	// The comparison Theorem 4.9 targets: a 100x inflated moment bound
	// must visibly inflate the error (wider clip window, more noise).
	rng := xrand.New(302)
	d := dist.NewPareto(1, 3)
	data := dist.SampleN(d, rng, 8000)
	muk := d.CentralMoment(2)
	errAt := func(bound float64) float64 {
		var s float64
		const trials = 12
		for i := 0; i < trials; i++ {
			m, err := KSU20Mean(rng, data, 1000, 2, bound, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			s += math.Abs(m - d.Mean())
		}
		return s / trials
	}
	exact, inflated := errAt(muk), errAt(100*muk)
	if inflated < 2*exact {
		t.Errorf("100x moment misspecification: error %v -> %v, want clear degradation",
			exact, inflated)
	}
}

func TestKSU20MeanParamValidation(t *testing.T) {
	rng := xrand.New(303)
	data := []float64{1, 2, 3, 4}
	cases := []struct {
		r   float64
		k   int
		muk float64
	}{
		{-1, 2, 1},       // bad range
		{10, 1, 1},       // k < 2
		{10, 2, 0},       // bad moment bound
		{1e18, 2, 1e-30}, // bin count overflow guard
	}
	for _, c := range cases {
		if _, err := KSU20Mean(rng, data, c.r, c.k, c.muk, 1); !errors.Is(err, ErrBadParams) {
			t.Errorf("r=%v k=%d muk=%v: want ErrBadParams, got %v", c.r, c.k, c.muk, err)
		}
	}
	if _, err := KSU20Mean(rng, nil, 10, 2, 1, 1); !errors.Is(err, dp.ErrEmptyData) {
		t.Errorf("want ErrEmptyData, got %v", err)
	}
}

func TestBS19TrimmedMeanInAssumption(t *testing.T) {
	rng := xrand.New(304)
	d := dist.NewNormal(3, 2)
	data := dist.SampleN(d, rng, 20000)
	var errSum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		m, err := BS19TrimmedMean(rng, data, 100, 0.1, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(m - 3)
	}
	if errSum/trials > 0.5 {
		t.Errorf("in-assumption error %v too large", errSum/trials)
	}
}

func TestBS19TrimmedMeanA1ViolationBias(t *testing.T) {
	// µ far outside [-R, R]: the estimate is pinned near the boundary —
	// Table 1's A1 dependence.
	rng := xrand.New(305)
	data := dist.SampleN(dist.NewNormal(1e6, 1), rng, 4000)
	m, err := BS19TrimmedMean(rng, data, 100, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1e6) < 1e5 {
		t.Errorf("A1-violating release %v should be far from the true mean 1e6", m)
	}
}

func TestBS19TrimmedMeanParamValidation(t *testing.T) {
	rng := xrand.New(306)
	data := []float64{1, 2, 3, 4}
	if _, err := BS19TrimmedMean(rng, data, 0, 1, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("r=0: want ErrBadParams, got %v", err)
	}
	if _, err := BS19TrimmedMean(rng, data, 10, 0, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("sigmaMin=0: want ErrBadParams, got %v", err)
	}
	if _, err := BS19TrimmedMean(rng, nil, 10, 1, 1); !errors.Is(err, dp.ErrEmptyData) {
		t.Errorf("want ErrEmptyData, got %v", err)
	}
	if _, err := BS19TrimmedMean(rng, data, 10, 1, -1); !errors.Is(err, dp.ErrInvalidEpsilon) {
		t.Errorf("want ErrInvalidEpsilon, got %v", err)
	}
}

func TestNonPrivateReferences(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := NonPrivateMean(data); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := NonPrivateIQR(data); got <= 0 {
		t.Errorf("IQR = %v", got)
	}
	if got := NonPrivateVariance(data); got <= 0 {
		t.Errorf("variance = %v", got)
	}
}
