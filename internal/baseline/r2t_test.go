package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestR2TSumAccurateWithTightBound(t *testing.T) {
	rng := xrand.New(1)
	d := dist.NewPareto(1, 2.5)
	const n = 20000
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, n)
		trueSum := stats.Sum(data)
		got, err := R2TSum(rng, data, 1<<20, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(got-trueSum) / trueSum
	}
	if med := medianAbsErr(errs); med > 0.05 {
		t.Errorf("R2T median rel err %v", med)
	}
}

func TestR2TSumNeverWildlyOverestimates(t *testing.T) {
	// The penalty keeps the max from racing past the true sum w.h.p.
	rng := xrand.New(2)
	d := dist.NewPareto(1, 2.5)
	const n = 5000
	over := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		data := dist.SampleN(d, rng, n)
		trueSum := stats.Sum(data)
		got, err := R2TSum(rng, data, 1<<20, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got > trueSum*1.05 {
			over++
		}
	}
	if over > trials/5 {
		t.Errorf("R2T overestimated by >5%% in %d/%d trials", over, trials)
	}
}

func TestR2TSumLooseBoundCostsAccuracy(t *testing.T) {
	// The error scales with log N: a 2^60 domain bound should hurt
	// relative to 2^12 on the same data.
	rng := xrand.New(3)
	d := dist.NewPareto(1, 2.5)
	const n = 2000
	medFor := func(bound float64) float64 {
		errs := make([]float64, 21)
		for i := range errs {
			data := dist.SampleN(d, rng, n)
			trueSum := stats.Sum(data)
			got, err := R2TSum(rng, data, bound, 0.5, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(got - trueSum)
		}
		return medianAbsErr(errs)
	}
	tight, loose := medFor(1<<12), medFor(math.Pow(2, 60))
	if loose < 1.5*tight {
		t.Errorf("loose domain bound should cost accuracy: tight=%v loose=%v", tight, loose)
	}
}

func TestR2TSumErrors(t *testing.T) {
	rng := xrand.New(4)
	if _, err := R2TSum(rng, nil, 10, 1, 0.1); err == nil {
		t.Error("empty data")
	}
	if _, err := R2TSum(rng, []float64{1}, 1, 1, 0.1); !errors.Is(err, ErrBadParams) {
		t.Error("bound < 2")
	}
	if _, err := R2TSum(rng, []float64{1}, 10, 0, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := R2TSum(rng, []float64{1}, 10, 1, 0); err == nil {
		t.Error("bad beta")
	}
}

func TestHLY21MeanAccurate(t *testing.T) {
	rng := xrand.New(5)
	const n = 20000
	data := make([]int64, n)
	for i := range data {
		data[i] = 5000 + rng.Int64Range(-100, 100)
	}
	var trueMean float64
	for _, v := range data {
		trueMean += float64(v)
	}
	trueMean /= n
	errs := make([]float64, 15)
	for i := range errs {
		m, err := HLY21Mean(rng, data, 1<<20, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - trueMean)
	}
	if med := medianAbsErr(errs); med > 5 {
		t.Errorf("HLY21 median err %v", med)
	}
}

func TestHLY21DomainDependence(t *testing.T) {
	// The log N optimality ratio: HLY21 clips Θ(log N/ε) points from each
	// end, so on SKEWED data (one-sided tail, bias cannot cancel) a 2^50
	// domain must be noticeably worse than a 2^14 domain. On symmetric
	// data deeper trimming is harmless — the asymmetry is the point.
	rng := xrand.New(6)
	const n = 5000
	data := make([]int64, n)
	for i := range data {
		v := int64(rng.Exponential() * 200)
		if v > 4000 {
			v = 4000
		}
		data[i] = v
	}
	medFor := func(bound int64) float64 {
		errs := make([]float64, 21)
		for i := range errs {
			m, err := HLY21Mean(rng, data, bound, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(m - meanOf(data))
		}
		return medianAbsErr(errs)
	}
	tight, loose := medFor(1<<14), medFor(1<<50)
	if loose < tight {
		t.Errorf("larger domain should not improve HLY21 on skewed data: tight=%v loose=%v", tight, loose)
	}
}

func meanOf(xs []int64) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s / float64(len(xs))
}

func TestHLY21Errors(t *testing.T) {
	rng := xrand.New(7)
	if _, err := HLY21Mean(rng, nil, 10, 1); err == nil {
		t.Error("empty")
	}
	if _, err := HLY21Mean(rng, []int64{1}, 0, 1); !errors.Is(err, ErrBadParams) {
		t.Error("bad bound")
	}
	if _, err := HLY21Mean(rng, []int64{1}, 10, -1); err == nil {
		t.Error("bad eps")
	}
}
