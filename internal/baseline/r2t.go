package baseline

import (
	"math"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// R2TSum is the DFY+22 "Race-to-the-Top" sum estimator the paper compares
// against in §1.1.1, specialized to non-negative scalar contributions. It
// requires an a-priori domain bound N (values are clipped into [0, N]) and
// achieves error O(max(D)/ε · log N · log log N):
//
// For each candidate truncation threshold τ_j = 2^j, j = 1..L = log2(N),
// it releases the truncated sum with Laplace noise Lap(L·τ_j/ε) (the L
// queries compose to ε) minus a high-probability penalty, and returns the
// maximum: under-truncation loses real mass, over-truncation pays more
// noise and penalty, and the max "races to the top" near the right τ.
func R2TSum(rng *xrand.RNG, data []float64, bound float64, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, dp.ErrEmptyData
	}
	if !(bound >= 2) {
		return 0, ErrBadParams
	}
	l := int(math.Ceil(math.Log2(bound)))
	if l < 1 {
		l = 1
	}
	best := 0.0
	for j := 1; j <= l; j++ {
		tau := math.Pow(2, float64(j))
		if tau > bound {
			tau = bound
		}
		var trunc float64
		for _, x := range data {
			v := x
			if v < 0 {
				v = 0
			}
			if v > tau {
				v = tau
			}
			trunc += v
		}
		scale := float64(l) * tau / eps
		penalty := scale * math.Log(float64(l)/beta)
		if cand := trunc + rng.Laplace(scale) - penalty; cand > best {
			best = cand
		}
	}
	return best, nil
}

// HLY21Mean is the Huang–Liang–Yi instance-optimal empirical mean over the
// *finite* domain [-N, N] — the prior state of the art the paper improves
// on in §1.1.1. It clips at private quantiles of rank Θ(log N/ε) from each
// end and releases the clipped mean with Laplace noise; its optimality
// ratio is O(log N/ε), versus O(log log γ(D)/ε) for Algorithm 5 — the
// exponential improvement experiment E3 measures. Budget: ε/3 per quantile
// + ε/3 for the mean.
func HLY21Mean(rng *xrand.RNG, data []int64, bound int64, eps float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	n := len(data)
	if n == 0 {
		return 0, dp.ErrEmptyData
	}
	if bound <= 0 {
		return 0, ErrBadParams
	}
	const beta = 0.1
	k := int(math.Ceil(4/eps*math.Log(2*float64(bound)+1))) + 1
	if k > n/2 {
		k = n / 2
	}
	if k < 1 {
		k = 1
	}
	lo, err := dp.FiniteDomainQuantile(rng, data, k, -bound, bound, eps/3, beta)
	if err != nil {
		return 0, err
	}
	hi, err := dp.FiniteDomainQuantile(rng, data, n-k+1, -bound, bound, eps/3, beta)
	if err != nil {
		return 0, err
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	fs := make([]float64, n)
	for i, v := range data {
		fs[i] = float64(v)
	}
	return dp.ClippedMean(rng, fs, float64(lo), float64(hi), eps/3)
}
