package baseline

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func medianAbsErr(errs []float64) float64 {
	cp := append([]float64(nil), errs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func TestNonPrivate(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if NonPrivateMean(xs) != 2.5 {
		t.Error("mean")
	}
	if math.Abs(NonPrivateVariance(xs)-1.25) > 1e-12 {
		t.Error("variance")
	}
	if NonPrivateIQR(xs) != 2 {
		t.Error("iqr") // X_3 - X_1 = 3 - 1
	}
}

// ---------- KV18 ----------

func TestKV18MeanInAssumptions(t *testing.T) {
	rng := xrand.New(1)
	const mu, sigma = 40.0, 2.0
	d := dist.NewNormal(mu, sigma)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 20000)
		m, err := KV18Mean(rng, data, 1000, 0.5, 4, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - mu)
	}
	if med := medianAbsErr(errs); med > sigma/5 {
		t.Errorf("KV18 in-assumption median error %v", med)
	}
}

func TestKV18MeanViolatedA1(t *testing.T) {
	// mu = 500 with R = 100: the estimate cannot leave [-R-pad, R+pad].
	rng := xrand.New(2)
	d := dist.NewNormal(500, 1)
	data := dist.SampleN(d, rng, 20000)
	m, err := KV18Mean(rng, data, 100, 0.5, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-500) < 300 {
		t.Errorf("A1 violation should be catastrophic; error only %v", math.Abs(m-500))
	}
}

func TestKV18MeanLooseSigmaMaxInflatesError(t *testing.T) {
	// sigmaMax = 100·sigma: noise floor grows with sigmaMax.
	rng := xrand.New(3)
	d := dist.NewNormal(0, 1)
	med := func(sigmaMax float64) float64 {
		errs := make([]float64, 21)
		for i := range errs {
			data := dist.SampleN(d, rng, 2000)
			m, err := KV18Mean(rng, data, 1000, 0.5, sigmaMax, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(m)
		}
		return medianAbsErr(errs)
	}
	tight, loose := med(2), med(200)
	if loose < 3*tight {
		t.Errorf("loose sigmaMax should inflate error: tight=%v loose=%v", tight, loose)
	}
}

func TestKV18MeanBadParams(t *testing.T) {
	rng := xrand.New(4)
	if _, err := KV18Mean(rng, []float64{1}, -1, 1, 2, 1); !errors.Is(err, ErrBadParams) {
		t.Error("bad R")
	}
	if _, err := KV18Mean(rng, []float64{1}, 1, 2, 1, 1); !errors.Is(err, ErrBadParams) {
		t.Error("sigmaMax < sigmaMin")
	}
	if _, err := KV18Mean(rng, nil, 1, 1, 2, 1); err == nil {
		t.Error("empty data")
	}
}

func TestKV18Variance(t *testing.T) {
	rng := xrand.New(5)
	const sigma = 3.0
	d := dist.NewNormal(-7, sigma)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 20000)
		v, err := KV18Variance(rng, data, 0.1, 100, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - sigma*sigma)
	}
	if med := medianAbsErr(errs); med > sigma*sigma/4 {
		t.Errorf("KV18 variance median error %v", med)
	}
}

// ---------- CoinPress ----------

func TestCoinPressMeanConverges(t *testing.T) {
	rng := xrand.New(6)
	const mu, sigma = -250.0, 1.5
	d := dist.NewNormal(mu, sigma)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 20000)
		m, err := CoinPressMean(rng, data, 1000, 2, 1.0, 0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - mu)
	}
	if med := medianAbsErr(errs); med > sigma/3 {
		t.Errorf("CoinPress median error %v", med)
	}
}

func TestCoinPressMeanBeatsOneShot(t *testing.T) {
	// Iterative refinement should beat a single clipped mean at [-R, R].
	rng := xrand.New(7)
	d := dist.NewNormal(3, 1)
	const R = 100000.0
	medFor := func(steps int) float64 {
		errs := make([]float64, 15)
		for i := range errs {
			data := dist.SampleN(d, rng, 5000)
			m, err := CoinPressMean(rng, data, R, 1, 0.5, steps)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(m - 3)
		}
		return medianAbsErr(errs)
	}
	if one, multi := medFor(1), medFor(0); multi > one {
		t.Errorf("iterations did not help: 1-step %v vs auto %v", one, multi)
	}
}

func TestCoinPressVariance(t *testing.T) {
	rng := xrand.New(8)
	const sigma = 2.0
	d := dist.NewNormal(10, sigma)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 20000)
		v, err := CoinPressVariance(rng, data, 0.01, 1000, 1.0, 0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - sigma*sigma)
	}
	if med := medianAbsErr(errs); med > sigma*sigma/4 {
		t.Errorf("CoinPress variance median error %v", med)
	}
}

// ---------- KSU20 ----------

func TestKSU20MeanWithTrueMoment(t *testing.T) {
	rng := xrand.New(9)
	d := dist.NewPareto(1, 3)
	muK := d.CentralMoment(2)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 50000)
		m, err := KSU20Mean(rng, data, 100, 2, muK, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - d.Mean())
	}
	if med := medianAbsErr(errs); med > 0.2 {
		t.Errorf("KSU20 median error %v", med)
	}
}

func TestKSU20MisspecifiedMomentHurts(t *testing.T) {
	rng := xrand.New(10)
	d := dist.NewPareto(1, 3)
	muK := d.CentralMoment(2)
	medFor := func(bar float64) float64 {
		errs := make([]float64, 21)
		for i := range errs {
			data := dist.SampleN(d, rng, 5000)
			m, err := KSU20Mean(rng, data, 100, 2, bar, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(m - d.Mean())
		}
		return medianAbsErr(errs)
	}
	exact, loose := medFor(muK), medFor(100*muK)
	if loose < 2*exact {
		t.Errorf("100x moment misspecification should hurt: exact=%v loose=%v", exact, loose)
	}
}

// ---------- BS19 ----------

func TestBS19TrimmedMean(t *testing.T) {
	rng := xrand.New(11)
	const mu = 12.0
	d := dist.NewNormal(mu, 2)
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, 20000)
		m, err := BS19TrimmedMean(rng, data, 1000, 0.01, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - mu)
	}
	if med := medianAbsErr(errs); med > 0.5 {
		t.Errorf("BS19 median error %v", med)
	}
}

func TestBS19RobustToOutliers(t *testing.T) {
	// Trimming must cap the influence of a few wild points.
	rng := xrand.New(12)
	d := dist.NewNormal(0, 1)
	data := dist.SampleN(d, rng, 10000)
	for i := 0; i < 20; i++ {
		data[i] = 900 // inside [-R, R] but far in the tail
	}
	m, err := BS19TrimmedMean(rng, data, 1000, 0.01, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m) > 1 {
		t.Errorf("outliers moved trimmed mean to %v", m)
	}
}

// ---------- DL09 ----------

func TestDL09IQRPassesOnGaussian(t *testing.T) {
	rng := xrand.New(13)
	d := dist.NewNormal(0, 1)
	trueIQR := dist.IQROf(d)
	pass, good := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		data := dist.SampleN(d, rng, 20000)
		v, err := DL09IQR(rng, data, 1.0, 1e-6)
		if errors.Is(err, ErrUnstable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		pass++
		if math.Abs(v-trueIQR) < 0.5*trueIQR {
			good++
		}
	}
	if pass < trials/2 {
		t.Errorf("PTR passed only %d/%d times on a well-behaved Gaussian", pass, trials)
	}
	if good < pass*2/3 {
		t.Errorf("only %d/%d passing releases were accurate", good, pass)
	}
}

func TestDL09IQRSlowRate(t *testing.T) {
	// The binning alone forces error ~ IQR/ln(n): going from n=10000 to
	// n=100000 should improve the error by only a small factor (vs 10x
	// for a 1/(eps n) method). We compare at n where the PTR test passes;
	// at n=1000 DL09 returns ⊥ almost always (measured in E10).
	rng := xrand.New(14)
	d := dist.NewNormal(0, 1)
	trueIQR := dist.IQROf(d)
	medFor := func(n int) float64 {
		errs := []float64{}
		for i := 0; i < 21; i++ {
			data := dist.SampleN(d, rng, n)
			v, err := DL09IQR(rng, data, 1.0, 1e-6)
			if err != nil {
				continue
			}
			errs = append(errs, math.Abs(v-trueIQR))
		}
		if len(errs) == 0 {
			return math.Inf(1)
		}
		return medianAbsErr(errs)
	}
	small, large := medFor(10000), medFor(100000)
	if math.IsInf(small, 1) || math.IsInf(large, 1) {
		t.Fatalf("PTR failed at every trial (small=%v large=%v)", small, large)
	}
	if large < small/5 {
		t.Errorf("DL09 improved too fast (%v -> %v); rate should be ~1/log n", small, large)
	}
}

func TestDL09IQRUnstableOnDegenerate(t *testing.T) {
	rng := xrand.New(15)
	data := make([]float64, 100)
	if _, err := DL09IQR(rng, data, 1.0, 1e-6); !errors.Is(err, ErrUnstable) {
		t.Errorf("degenerate data should fail PTR, got %v", err)
	}
}

func TestDL09BadParams(t *testing.T) {
	rng := xrand.New(16)
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	if _, err := DL09IQR(rng, data, 1.0, 0); !errors.Is(err, ErrBadParams) {
		t.Error("delta = 0 must be rejected (pure DP is impossible for PTR)")
	}
	if _, err := DL09IQR(rng, data, -1, 1e-6); err == nil {
		t.Error("bad eps")
	}
}
