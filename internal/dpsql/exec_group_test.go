package dpsql

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// buildClampFix creates a table where every user contributes rows to
// three groups in a known per-user first-seen order: user i's rows
// arrive in group order (i%3, i+1%3, i+2%3), so the admitted group set
// at any contribution bound is exactly predictable. 12 users, groups
// a/b/c with 4 users first-seen in each.
func buildClampFix(t *testing.T, shards int) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	db.SetDefaultShards(shards)
	tab, err := db.Create("events",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "grp", Kind: KindString}},
		"uid")
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b", "c"}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 12; i++ {
			uid := fmt.Sprintf("u%02d", i)
			if err := tab.Insert(Str(uid), Float(float64(10*i+pass)), Str(groups[(i+pass)%3])); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, tab
}

// groupCounts runs COUNT(*) GROUP BY grp at a huge ε (noise ~1e-6) and
// rounds, so the released counts equal the exact post-clamp user counts.
func groupCounts(t *testing.T, db *DB, bound int) map[string]int {
	t.Helper()
	res, err := db.ExecTraced(xrand.New(11), "SELECT COUNT(*) FROM events GROUP BY grp", 1e6, ExecOpts{GroupBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, r := range res.Rows {
		out[r.Group.String()] = int(math.Round(r.Value))
	}
	return out
}

// TestGroupedContributionClamp: the per-user group-membership cap admits
// each user to its first `bound` distinct groups in its own row order
// and drops the rest; -1 disables clamping. Counts are checked exactly
// (huge ε), on single-shard and sharded twins.
func TestGroupedContributionClamp(t *testing.T) {
	for _, shards := range []int{1, 4} {
		db, _ := buildClampFix(t, shards)
		// Bound 1: each user lands only in its first-seen group -> 4 users
		// per group. Default (0) must behave identically.
		for _, b := range []int{0, 1} {
			got := groupCounts(t, db, b)
			want := map[string]int{"a": 4, "b": 4, "c": 4}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d bound=%d: counts %v, want %v", shards, b, got, want)
			}
		}
		// Bound 2: first two groups admitted -> 8 users per group.
		if got, want := groupCounts(t, db, 2), map[string]int{"a": 8, "b": 8, "c": 8}; !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d bound=2: counts %v, want %v", shards, got, want)
		}
		// Unbounded legacy mode: nothing dropped -> all 12 users everywhere.
		if got, want := groupCounts(t, db, -1), map[string]int{"a": 12, "b": 12, "c": 12}; !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d bound=-1: counts %v, want %v", shards, got, want)
		}
	}
}

// TestGroupedParallelPricing: one grouped release over k groups charges
// exactly ONE release's cost — on the pure, zCDP, and RDP backends (the
// RDP per-order vector checked componentwise) — regardless of k, and
// the bound>1 / unbounded modes still charge the requested total.
func TestGroupedParallelPricing(t *testing.T) {
	const eps = 0.5
	const q = "SELECT AVG(v) FROM events GROUP BY grp" // k=3 groups

	run := func(led dp.Ledger, bound int) *Result {
		t.Helper()
		db, _ := buildTwin(t, 4)
		db.SetLedger(led)
		res, err := db.ExecTraced(xrand.New(3), q, eps, ExecOpts{GroupBound: bound})
		if err != nil {
			t.Fatal(err)
		}
		if res.EpsSpent != eps {
			t.Fatalf("EpsSpent = %v, want %v", res.EpsSpent, eps)
		}
		return res
	}

	// Pure ε: spend is exactly eps, not 3·eps and not eps/3-per-group sums.
	bl, err := dp.NewBasicLedger(10)
	if err != nil {
		t.Fatal(err)
	}
	run(bl, 0)
	if got := bl.Spent(); got != eps {
		t.Fatalf("pure spend = %v, want %v", got, eps)
	}

	// zCDP: the one deduction converts to ε²/2.
	zl, err := dp.NewZCDPLedger(4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	run(zl, 0)
	if got, want := zl.Spent(), dp.PureToZCDP(eps); math.Abs(got-want) > 1e-15 {
		t.Fatalf("zcdp spend = %v, want %v", got, want)
	}

	// RDP: the per-order spent vector equals one pure-ε release's curve.
	rl, err := dp.NewRDPLedger(2, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	run(rl, 0)
	orders := rl.Orders()
	for i, s := range rl.SpentByOrder() {
		if want := dp.PureRDP(orders[i], eps); math.Abs(s-want) > 1e-12 {
			t.Fatalf("rdp spend at alpha=%v: %v, want %v", orders[i], s, want)
		}
	}

	// Bound 2 (sequential fallback) and -1 (legacy even split) both still
	// charge the requested total — the bound moves per-group accuracy,
	// never the bill.
	for _, b := range []int{2, -1} {
		bl2, err := dp.NewBasicLedger(10)
		if err != nil {
			t.Fatal(err)
		}
		run(bl2, b)
		if got := bl2.Spent(); got != eps {
			t.Fatalf("bound=%d: pure spend = %v, want %v", b, got, eps)
		}
	}
}

// TestGroupedWindowedRefill: a grouped release drains a windowed budget,
// a second inside the same window overdraws, and the next window refills
// it — the decorator composes with parallel-priced grouped spends.
func TestGroupedWindowedRefill(t *testing.T) {
	db, _ := buildTwin(t, 4)
	inner, err := dp.NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := dp.NewWindowedLedger(inner, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	wl.SetNow(func() time.Time { return now })
	db.SetLedger(wl)

	const q = "SELECT AVG(v) FROM events GROUP BY grp"
	if _, err := db.Exec(xrand.New(5), q, 1); err != nil {
		t.Fatalf("first grouped release: %v", err)
	}
	if _, err := db.Exec(xrand.New(5), q, 1); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("same-window overdraw: got %v, want ErrBudgetExhausted", err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := db.Exec(xrand.New(5), q, 1); err != nil {
		t.Fatalf("grouped release after window roll: %v", err)
	}
}

// TestGroupedOverdraw: a grouped release that exceeds the budget fails
// with errors.Is(…, dp.ErrBudgetExhausted) and burns nothing, and the
// budget remains usable for a smaller grouped release.
func TestGroupedOverdraw(t *testing.T) {
	db, _ := buildTwin(t, 4)
	led, err := dp.NewBasicLedger(0.4)
	if err != nil {
		t.Fatal(err)
	}
	db.SetLedger(led)
	const q = "SELECT AVG(v) FROM events GROUP BY grp"
	if _, err := db.Exec(xrand.New(5), q, 0.5); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("overdraw: got %v, want ErrBudgetExhausted", err)
	}
	if got := led.Spent(); got != 0 {
		t.Fatalf("failed release burned budget: spent %v", got)
	}
	if _, err := db.Exec(xrand.New(5), q, 0.3); err != nil {
		t.Fatalf("affordable grouped release after refusal: %v", err)
	}
}

// TestGroupedBadBound: bounds below -1 are rejected before any spend.
func TestGroupedBadBound(t *testing.T) {
	db, _ := buildTwin(t, 1)
	led, err := dp.NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	db.SetLedger(led)
	_, err = db.ExecTraced(xrand.New(1), "SELECT COUNT(*) FROM events GROUP BY grp", 0.5, ExecOpts{GroupBound: -2})
	if !errors.Is(err, ErrBadGroupBound) {
		t.Fatalf("got %v, want ErrBadGroupBound", err)
	}
	if led.Spent() != 0 {
		t.Fatalf("invalid bound burned budget: spent %v", led.Spent())
	}
}

// TestGroupedMixedPlacementFallback: a hand-built TableState may place
// one user's rows on several shards, which would defeat the per-shard
// clamp. The executor must detect the mixed placement and fall back to
// the sequential arrival-order walk, matching the single-shard twin.
func TestGroupedMixedPlacementFallback(t *testing.T) {
	// Four users, two rows each in different groups; ShardOf deliberately
	// splits every user across both shards.
	st := TableState{
		Name:    "events",
		Columns: []Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "grp", Kind: KindString}},
		UserCol: "uid",
		Shards:  2,
	}
	groups := []string{"a", "b"}
	for i := 0; i < 4; i++ {
		uid := fmt.Sprintf("u%d", i)
		for j := 0; j < 2; j++ {
			st.Rows = append(st.Rows, []Value{Str(uid), Float(float64(i + j)), Str(groups[j])})
			st.ShardOf = append(st.ShardOf, j)
		}
	}

	db2 := NewDB()
	db2.SetDefaultShards(2)
	tab2, err := db2.Import(st)
	if err != nil {
		t.Fatal(err)
	}
	if !tab2.mixedPlacement.Load() {
		t.Fatal("import with straddling placement did not flag mixedPlacement")
	}
	db1 := NewDB()
	db1.SetDefaultShards(1)
	if _, err := db1.Import(st); err != nil {
		t.Fatal(err)
	}

	// Bound 1: every user's first-seen group is "a", so "b" must release
	// an (exact, huge-ε) count of 0 admitted users — or not at all. The
	// per-shard clamp would wrongly admit each user on both shards.
	for _, db := range []*DB{db1, db2} {
		got := map[string]int{}
		res, err := db.ExecTraced(xrand.New(9), "SELECT COUNT(*) FROM events GROUP BY grp", 1e6, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Rows {
			got[r.Group.String()] = int(math.Round(r.Value))
		}
		if want := map[string]int{"a": 4}; !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: counts %v, want %v", db.DefaultShards(), got, want)
		}
	}

	// Hash-routed tables must never trip the fallback flag.
	_, tab := buildTwin(t, 4)
	if tab.mixedPlacement.Load() {
		t.Fatal("hash-routed table flagged mixedPlacement")
	}
	dbr := NewDB()
	dbr.SetDefaultShards(4)
	tabr, err := dbr.Import(tab.Export())
	if err != nil {
		t.Fatal(err)
	}
	if tabr.mixedPlacement.Load() {
		t.Fatal("same-topology reimport of a hash-routed table flagged mixedPlacement")
	}
}
