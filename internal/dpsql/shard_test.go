package dpsql

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// buildTwin creates a table with the given shard count and loads a fixed
// heavy-tailed dataset with several rows per user, interleaved so users
// arrive out of order (the shape that would expose ordering bugs in the
// shard merge).
func buildTwin(t *testing.T, shards int) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	db.SetDefaultShards(shards)
	tab, err := db.Create("events",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "n", Kind: KindInt}, {Name: "grp", Kind: KindString}},
		"uid")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	groups := []string{"a", "b", "c"}
	for i := 0; i < 900; i++ {
		uid := fmt.Sprintf("u%03d", i%137) // ~137 users, ~6-7 rows each, interleaved
		v := math.Exp(2 + rng.Gaussian())  // lognormal, no natural bound
		n := int64(i%17) - 8
		if err := tab.Insert(Str(uid), Float(v), Int(n), Str(groups[i%3])); err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

// TestShardReaderEquivalence: every reader must be bit-for-bit identical
// between a sharded table and its unsharded twin — the merge of per-shard
// partials is pure reorganization, not approximation.
func TestShardReaderEquivalence(t *testing.T) {
	_, t1 := buildTwin(t, 1)
	for _, n := range []int{2, 4, 16} {
		_, tn := buildTwin(t, n)
		if tn.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", tn.NumShards(), n)
		}
		if t1.NumRows() != tn.NumRows() || t1.NumUsers() != tn.NumUsers() {
			t.Fatalf("N=%d: rows/users %d/%d vs %d/%d", n, tn.NumRows(), tn.NumUsers(), t1.NumRows(), t1.NumUsers())
		}
		m1, err := t1.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		mn, err := tn.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1, mn) {
			t.Fatalf("N=%d: UserMeans diverged", n)
		}
		z1, _ := t1.UserIntSums("n")
		zn, _ := tn.UserIntSums("n")
		if !reflect.DeepEqual(z1, zn) {
			t.Fatalf("N=%d: UserIntSums diverged", n)
		}
		f1, _ := t1.ColumnFloats("v")
		fn, _ := tn.ColumnFloats("v")
		if !reflect.DeepEqual(f1, fn) {
			t.Fatalf("N=%d: ColumnFloats lost insertion order", n)
		}
		i1, _ := t1.ColumnInts("n")
		in, _ := tn.ColumnInts("n")
		if !reflect.DeepEqual(i1, in) {
			t.Fatalf("N=%d: ColumnInts lost insertion order", n)
		}
	}
}

// TestShardExecEquivalence: for a fixed RNG seed, released SQL answers
// (WHERE + GROUP BY + every aggregate family) must be identical across
// shard counts — the fan-out scan merges before the mechanism runs.
func TestShardExecEquivalence(t *testing.T) {
	db1, _ := buildTwin(t, 1)
	db4, _ := buildTwin(t, 4)
	queries := []string{
		"SELECT AVG(v) FROM events",
		"SELECT SUM(v), COUNT(*) FROM events WHERE v < 20",
		"SELECT MEDIAN(v) FROM events GROUP BY grp",
		"SELECT VAR(v), P75(v) FROM events GROUP BY grp",
	}
	for _, q := range queries {
		r1, err := db1.Exec(xrand.New(7), q, 2)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		r4, err := db4.Exec(xrand.New(7), q, 2)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(r1.Rows) != len(r4.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(r1.Rows), len(r4.Rows))
		}
		for i := range r1.Rows {
			if !reflect.DeepEqual(r1.Rows[i].Values, r4.Rows[i].Values) {
				t.Fatalf("%s row %d: %v (N=1) vs %v (N=4)", q, i, r1.Rows[i].Values, r4.Rows[i].Values)
			}
			if r1.Rows[i].Group.String() != r4.Rows[i].Group.String() {
				t.Fatalf("%s row %d: group %q vs %q", q, i, r1.Rows[i].Group, r4.Rows[i].Group)
			}
		}
	}
}

// TestShardExportImportRoundTrip: a sharded export carries topology, and
// importing it rebuilds the same partitioning and the same answers.
func TestShardExportImportRoundTrip(t *testing.T) {
	_, tab := buildTwin(t, 4)
	st := tab.Export()
	if st.Shards != 4 || len(st.ShardOf) != len(st.Rows) {
		t.Fatalf("export topology: shards=%d shard_of=%d rows=%d", st.Shards, len(st.ShardOf), len(st.Rows))
	}
	db2 := NewDB()
	db2.SetDefaultShards(4)
	tab2, err := db2.Import(st)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.NumShards() != 4 {
		t.Fatalf("imported shards = %d", tab2.NumShards())
	}
	f1, _ := tab.ColumnFloats("v")
	f2, _ := tab2.ColumnFloats("v")
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("round-trip lost insertion order")
	}
	st2 := tab2.Export()
	if !reflect.DeepEqual(st.ShardOf, st2.ShardOf) {
		t.Fatal("round-trip changed row placement")
	}
}

// TestShardImportReshards: importing under a different target shard count
// reshards by hash — readers are unchanged, only storage moves.
func TestShardImportReshards(t *testing.T) {
	_, tab := buildTwin(t, 4)
	st := tab.Export()
	for _, target := range []int{1, 2, 16} {
		db2 := NewDB()
		db2.SetDefaultShards(target)
		tab2, err := db2.Import(st)
		if err != nil {
			t.Fatal(err)
		}
		if tab2.NumShards() != target {
			t.Fatalf("imported shards = %d, want %d", tab2.NumShards(), target)
		}
		m1, _ := tab.UserMeans("v")
		m2, _ := tab2.UserMeans("v")
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("reshard to %d changed UserMeans", target)
		}
		f1, _ := tab.ColumnFloats("v")
		f2, _ := tab2.ColumnFloats("v")
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("reshard to %d changed insertion order", target)
		}
	}
}

// TestShardImportPreShardState: a TableState written before sharding (no
// Shards, no ShardOf) imports cleanly into a single shard, and into a
// sharded target by hash.
func TestShardImportPreShardState(t *testing.T) {
	st := TableState{
		Name:    "legacy",
		Columns: []Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}},
		UserCol: "uid",
		Rows: [][]Value{
			{Str("u1"), Float(1)}, {Str("u2"), Float(2)}, {Str("u1"), Float(3)},
		},
	}
	db := NewDB()
	tab, err := db.Import(st)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumShards() != 1 || tab.NumRows() != 3 {
		t.Fatalf("legacy import: shards=%d rows=%d", tab.NumShards(), tab.NumRows())
	}
	db4 := NewDB()
	db4.SetDefaultShards(4)
	tab4, err := db4.Import(st)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := tab.UserMeans("v")
	m4, _ := tab4.UserMeans("v")
	if !reflect.DeepEqual(m1, m4) {
		t.Fatal("legacy state resharded into different answers")
	}
}

// TestInsertShardRouting: a user's rows always land in one shard, Insert
// and AppendRows agree on the destination, and InsertShard reports it.
func TestInsertShardRouting(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateSharded("r",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}}, "uid", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i := 0; i < 50; i++ {
		uid := fmt.Sprintf("user-%d", i%10)
		si, err := tab.InsertShard(Str(uid), Float(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := want[uid]; ok && prev != si {
			t.Fatalf("user %q split across shards %d and %d", uid, prev, si)
		}
		want[uid] = si
	}
	if err := tab.AppendRows([][]Value{{Str("user-3"), Float(99)}}); err != nil {
		t.Fatal(err)
	}
	st := tab.Export()
	last := st.ShardOf[len(st.ShardOf)-1]
	if last != want["user-3"] {
		t.Fatalf("AppendRows routed user-3 to shard %d, Insert used %d", last, want["user-3"])
	}
}

// TestShardFanout: an installed Fanout is actually used by the fan-out
// readers and changes no answers.
func TestShardFanout(t *testing.T) {
	db, tab := buildTwin(t, 4)
	seqMeans, err := tab.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	db.SetFanout(func(n int, run func(int)) {
		calls.Add(1)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	})
	fanMeans, err := tab.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("fanout not used")
	}
	if !reflect.DeepEqual(seqMeans, fanMeans) {
		t.Fatal("parallel fan-out changed answers")
	}
	if _, err := db.Exec(xrand.New(3), "SELECT AVG(v) FROM events GROUP BY grp", 1); err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 2 {
		t.Fatal("Exec scan did not use the fanout")
	}
}
