package dpsql

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// The shard benchmarks feed the CI bench-smoke artifact: ingest measures
// concurrent Insert striping across per-shard locks, the scan benchmarks
// measure the fan-out release readers. Run them alone with:
//
//	go test -bench BenchmarkShard -run '^$' ./internal/dpsql/

func benchSchema() []Column {
	return []Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}}
}

func BenchmarkShardIngest(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db := NewDB()
			tab, err := db.CreateSharded("m", benchSchema(), "uid", n)
			if err != nil {
				b.Fatal(err)
			}
			uids := make([]Value, 4096)
			for i := range uids {
				uids[i] = Str(fmt.Sprintf("u%04d", i))
			}
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					if err := tab.Insert(uids[i&4095], Float(float64(i))); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// goFanout is a goroutine-per-shard Fanout, standing in for the serve
// layer's worker-pool fan.
func goFanout(n int, run func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); run(i) }(i)
	}
	wg.Wait()
}

func benchFilled(b *testing.B, shards, rows int) (*DB, *Table) {
	b.Helper()
	db := NewDB()
	tab, err := db.CreateSharded("m", benchSchema(), "uid", shards)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]Value, rows)
	for i := range batch {
		batch[i] = []Value{Str(fmt.Sprintf("u%05d", i%5000)), Float(float64(i % 997))}
	}
	if err := tab.AppendRows(batch); err != nil {
		b.Fatal(err)
	}
	db.SetFanout(goFanout)
	return db, tab
}

func BenchmarkShardUserMeans(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			_, tab := benchFilled(b, n, 20000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tab.UserMeans("v"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShardColumnFloats(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			_, tab := benchFilled(b, n, 20000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tab.ColumnFloats("v"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupedScan measures the bounded-contribution grouped release
// end to end: per-shard first-seen clamping (slot windows over the group
// ordinals), the shard-order merge of group selections, and one noisy
// release per group — the scan a histogram or GROUP BY query pays.
func BenchmarkGroupedScan(b *testing.B) {
	schema := []Column{
		{Name: "uid", Kind: KindString},
		{Name: "v", Kind: KindFloat},
		{Name: "grp", Kind: KindString},
	}
	groups := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db := NewDB()
			tab, err := db.CreateSharded("m", schema, "uid", n)
			if err != nil {
				b.Fatal(err)
			}
			const rows = 20000
			batch := make([][]Value, rows)
			for i := range batch {
				batch[i] = []Value{
					Str(fmt.Sprintf("u%05d", i%5000)),
					Float(float64(i % 997)),
					Str(groups[i%len(groups)]),
				}
			}
			if err := tab.AppendRows(batch); err != nil {
				b.Fatal(err)
			}
			db.SetFanout(goFanout)
			rng := xrand.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(rng, "SELECT COUNT(*) FROM m GROUP BY grp", 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnarScan measures the Exec release scan — vectorized
// predicate over the typed float column, per-shard grouped selection,
// and the map-based user collapse — end to end through a released
// answer (the mechanism itself is O(users) and cheap at this scale).
func BenchmarkColumnarScan(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db, _ := benchFilled(b, n, 20000)
			rng := xrand.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(rng, "SELECT AVG(v) FROM m WHERE v < 500", 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
