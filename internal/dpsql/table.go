package dpsql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dp"
)

// Errors returned by the schema layer.
var (
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("dpsql: no such table")
	// ErrNoColumn reports an unknown column name.
	ErrNoColumn = errors.New("dpsql: no such column")
	// ErrSchema reports an invalid schema or row.
	ErrSchema = errors.New("dpsql: schema error")
)

// Column describes one table column. The JSON tags are the durable
// store's snapshot encoding (Kind values are stable: 0 float, 1 int,
// 2 string).
type Column struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
}

// Table is an in-memory relation with a designated user column (the unit
// of privacy). Schema fields (Name, Columns, UserCol, byName, userIx) are
// immutable after Create; the row store is guarded by mu, so concurrent
// Insert and Exec calls are safe — ingestion can stream in while queries
// run against a consistent snapshot.
type Table struct {
	Name    string
	Columns []Column
	UserCol string

	mu     sync.RWMutex
	rows   [][]Value
	byName map[string]int
	userIx int
}

// DB is a collection of tables with an optional shared privacy budget.
// The table registry and the ledger pointer are guarded by mu; a DB is
// safe for concurrent Create/TableByName/Exec/Run use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	led    dp.Ledger
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create registers a new table. userCol must name one of the columns; it
// identifies the privacy unit.
func (db *DB) Create(name string, cols []Column, userCol string) (*Table, error) {
	lname := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[lname]; dup {
		return nil, fmt.Errorf("%w: table %q already exists", ErrSchema, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %q needs at least one column", ErrSchema, name)
	}
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		UserCol: userCol,
		byName:  make(map[string]int, len(cols)),
		userIx:  -1,
	}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.byName[lc]; dup {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSchema, c.Name)
		}
		t.byName[lc] = i
		if strings.EqualFold(c.Name, userCol) {
			t.userIx = i
		}
	}
	if t.userIx < 0 {
		return nil, fmt.Errorf("%w: user column %q not in schema", ErrSchema, userCol)
	}
	db.tables[lname] = t
	return t, nil
}

// Drop removes a table from the registry, if present. The serve layer's
// durable path uses it to roll back a created table whose DDL could not
// be persisted, keeping the in-memory and durable views consistent.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	delete(db.tables, strings.ToLower(name))
	db.mu.Unlock()
}

// TableByName looks a table up case-insensitively.
func (db *DB) TableByName(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// ColumnIndex resolves a column name case-insensitively.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %q in table %q", ErrNoColumn, name, t.Name)
	}
	return i, nil
}

// convertRow validates one row against the schema and returns the
// kind-coerced copy (ints are accepted into float columns; integral
// floats into int columns). It is deterministic, so replaying the same
// raw row from a WAL converges on the same stored row.
func (t *Table) convertRow(vals []Value) ([]Value, error) {
	if len(vals) != len(t.Columns) {
		return nil, fmt.Errorf("%w: got %d values for %d columns", ErrSchema, len(vals), len(t.Columns))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		want := t.Columns[i].Kind
		switch {
		case v.Kind == want:
		case want == KindFloat && v.Kind == KindInt:
			v = Float(v.F)
		case want == KindInt && v.Kind == KindFloat && v.F == float64(int64(v.F)):
			v = Int(int64(v.F))
		default:
			return nil, fmt.Errorf("%w: column %q wants %s, got %s",
				ErrSchema, t.Columns[i].Name, want, v.Kind)
		}
		row[i] = v
	}
	return row, nil
}

// Insert appends one row; values must match the schema's kinds (ints are
// accepted into float columns).
func (t *Table) Insert(vals ...Value) error {
	row, err := t.convertRow(vals)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.mu.Unlock()
	return nil
}

// AppendRows validates and appends a batch of rows under one lock — the
// bulk path snapshot import and WAL replay use. The batch is validated in
// full before any row is stored, so a bad row rejects the whole batch.
func (t *Table) AppendRows(rows [][]Value) error {
	conv := make([][]Value, len(rows))
	for i, r := range rows {
		row, err := t.convertRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		conv[i] = row
	}
	t.mu.Lock()
	t.rows = append(t.rows, conv...)
	t.mu.Unlock()
	return nil
}

// NumRows returns the raw number of stored rows. It is not itself a DP
// release: callers either keep it out of released output (tests, data
// loading) or privatize it first (the serve layer's record-unit COUNT
// feeds it through a sensitivity-1 noise mechanism).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// snapshot returns the current row set. Rows are append-only and a stored
// row is never mutated, so handing out the slice header taken under the
// read lock yields a consistent point-in-time view even while concurrent
// Inserts grow (and possibly reallocate) the backing array.
func (t *Table) snapshot() [][]Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// userAgg is one user's accumulated contribution to a numeric column.
type userAgg struct {
	sum   float64
	count int
}

// collapseByUser folds rows into one accumulator per user, returned in
// deterministic (sorted user id) order. This is the replace-one-user
// privacy reduction every release path shares: the result changes in one
// position between neighboring databases, so feeding it to a record-level
// eps-DP mechanism yields a user-level eps-DP release. colIx < 0
// accumulates row counts only (COUNT). The deterministic order matters
// beyond reproducibility: the estimators' pairing/subsampling consume the
// seeded RNG in input order.
func (t *Table) collapseByUser(rows [][]Value, colIx int) []userAgg {
	users := map[string]*userAgg{}
	ids := make([]string, 0, 64)
	for _, row := range rows {
		uid := row[t.userIx].String()
		u, ok := users[uid]
		if !ok {
			u = &userAgg{}
			users[uid] = u
			ids = append(ids, uid)
		}
		if colIx >= 0 {
			u.sum += row[colIx].F
		}
		u.count++
	}
	sort.Strings(ids)
	out := make([]userAgg, len(ids))
	for i, uid := range ids {
		out[i] = *users[uid]
	}
	return out
}

// UserMeans collapses the named numeric column to one contribution per
// user — the mean of that user's rows — via collapseByUser over a
// consistent snapshot. This is the estimate endpoint's input.
func (t *Table) UserMeans(col string) ([]float64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind == KindString {
		return nil, fmt.Errorf("dpsql: column %q is %s, need numeric", col, KindString)
	}
	users := t.collapseByUser(t.snapshot(), ix)
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = u.sum / float64(u.count)
	}
	return out, nil
}

// NumUsers returns the number of distinct users in a consistent snapshot
// — the unit count a user-level COUNT release privatizes (sensitivity 1
// under a one-user change). Unlike the column readers it needs no column:
// the user column alone determines it.
func (t *Table) NumUsers() int {
	seen := map[string]struct{}{}
	for _, row := range t.snapshot() {
		seen[row[t.userIx].String()] = struct{}{}
	}
	return len(seen)
}

// ColumnFloats returns the named numeric column's raw per-row values from
// a consistent snapshot, in insertion order — the record-level-DP input
// shape for datasets where a row IS a user (no per-user collapse). Feeding
// it to a record-level ε-DP mechanism yields record-level ε-DP only; use
// UserMeans when one user may own several rows.
func (t *Table) ColumnFloats(col string) ([]float64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind == KindString {
		return nil, fmt.Errorf("dpsql: column %q is %s, need numeric", col, KindString)
	}
	rows := t.snapshot()
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = row[ix].F
	}
	return out, nil
}

// ColumnInts returns the named INT column's raw per-row values from a
// consistent snapshot, in insertion order — the record-level input to the
// paper's empirical-setting estimators (Section 3) when a row IS a user.
func (t *Table) ColumnInts(col string) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	rows := t.snapshot()
	out := make([]int64, len(rows))
	for i, row := range rows {
		out[i] = int64(row[ix].F)
	}
	return out, nil
}

// UserIntSums collapses the named INT column to one integer contribution
// per user (the sum of that user's rows) in deterministic order — the
// input shape the paper's empirical-setting estimators (Section 3) take.
// It accumulates in int64 rather than through collapseByUser's float64
// sums so integer totals stay exact.
func (t *Table) UserIntSums(col string) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	users := map[string]int64{}
	for _, row := range t.snapshot() {
		users[row[t.userIx].String()] += int64(row[ix].F)
	}
	ids := make([]string, 0, len(users))
	for uid := range users {
		ids = append(ids, uid)
	}
	sort.Strings(ids)
	out := make([]int64, len(ids))
	for i, uid := range ids {
		out[i] = users[uid]
	}
	return out, nil
}
