package dpsql

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dp"
)

// Errors returned by the schema layer.
var (
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("dpsql: no such table")
	// ErrNoColumn reports an unknown column name.
	ErrNoColumn = errors.New("dpsql: no such column")
	// ErrSchema reports an invalid schema or row.
	ErrSchema = errors.New("dpsql: schema error")
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Table is an in-memory relation with a designated user column (the unit
// of privacy).
type Table struct {
	Name    string
	Columns []Column
	UserCol string

	rows   [][]Value
	byName map[string]int
	userIx int
}

// DB is a collection of tables with an optional shared privacy budget.
type DB struct {
	tables map[string]*Table
	acct   *dp.Accountant
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create registers a new table. userCol must name one of the columns; it
// identifies the privacy unit.
func (db *DB) Create(name string, cols []Column, userCol string) (*Table, error) {
	lname := strings.ToLower(name)
	if _, dup := db.tables[lname]; dup {
		return nil, fmt.Errorf("%w: table %q already exists", ErrSchema, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %q needs at least one column", ErrSchema, name)
	}
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		UserCol: userCol,
		byName:  make(map[string]int, len(cols)),
		userIx:  -1,
	}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.byName[lc]; dup {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSchema, c.Name)
		}
		t.byName[lc] = i
		if strings.EqualFold(c.Name, userCol) {
			t.userIx = i
		}
	}
	if t.userIx < 0 {
		return nil, fmt.Errorf("%w: user column %q not in schema", ErrSchema, userCol)
	}
	db.tables[lname] = t
	return t, nil
}

// TableByName looks a table up case-insensitively.
func (db *DB) TableByName(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// ColumnIndex resolves a column name case-insensitively.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %q in table %q", ErrNoColumn, name, t.Name)
	}
	return i, nil
}

// Insert appends one row; values must match the schema's kinds (ints are
// accepted into float columns).
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrSchema, len(vals), len(t.Columns))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		want := t.Columns[i].Kind
		switch {
		case v.Kind == want:
		case want == KindFloat && v.Kind == KindInt:
			v = Float(v.F)
		case want == KindInt && v.Kind == KindFloat && v.F == float64(int64(v.F)):
			v = Int(int64(v.F))
		default:
			return fmt.Errorf("%w: column %q wants %s, got %s",
				ErrSchema, t.Columns[i].Name, want, v.Kind)
		}
		row[i] = v
	}
	t.rows = append(t.rows, row)
	return nil
}

// NumRows returns the (non-private) number of stored rows; intended for
// tests and data loading, not for release.
func (t *Table) NumRows() int { return len(t.rows) }
