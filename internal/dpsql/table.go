package dpsql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
)

// Errors returned by the schema layer.
var (
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("dpsql: no such table")
	// ErrNoColumn reports an unknown column name.
	ErrNoColumn = errors.New("dpsql: no such column")
	// ErrSchema reports an invalid schema or row.
	ErrSchema = errors.New("dpsql: schema error")
)

// Column describes one table column. The JSON tags are the durable
// store's snapshot encoding (Kind values are stable: 0 float, 1 int,
// 2 string).
type Column struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
}

// Table is an in-memory relation with a designated user column (the unit
// of privacy). Schema fields (Name, Columns, UserCol, byName, userIx) and
// the shard topology are immutable after Create; the row store is
// partitioned into nshards shards by a hash of the user id, each guarded
// by its own lock (see shard.go), so concurrent Inserts stripe across
// shards instead of serializing, and release scans fan out over shards
// and merge per-user partials over consistent per-shard snapshots.
type Table struct {
	Name    string
	Columns []Column
	UserCol string

	byName map[string]int
	userIx int

	nshards int
	shards  []*tableShard

	// nextSeq is the table-global insertion sequence number, bumped by
	// every striped writer on every shard — the one cache line all cores
	// share on the ingest path. The padding gives it a 64-byte line to
	// itself so the contended CAS traffic does not false-share with the
	// neighboring read-mostly fields (shards, fan), which every insert
	// and scan also touches.
	_       [64]byte
	nextSeq atomic.Uint64 // next global insertion sequence number
	_       [56]byte

	fan atomic.Value // Fanout installed by the owning DB (may be nil)
}

// DB is a collection of tables with an optional shared privacy budget.
// The table registry and the ledger pointer are guarded by mu; a DB is
// safe for concurrent Create/TableByName/Exec/Run use.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	led       dp.Ledger
	defShards int    // shard count new tables get (0 means 1)
	fan       Fanout // shard fan-out installed on every table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// SetDefaultShards sets the shard count tables created afterwards get
// (clamped to [1, MaxShards]; 0 means 1). The serve layer calls it with
// the tenant's configured topology before creating or importing tables.
func (db *DB) SetDefaultShards(n int) {
	db.mu.Lock()
	db.defShards = n
	db.mu.Unlock()
}

// DefaultShards reports the configured default shard count (0 means 1).
func (db *DB) DefaultShards() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.defShards
}

// SetFanout installs the shard fan-out used by release scans on every
// table, existing and future. The serve layer installs a worker-pool
// backed implementation; nil (the default) scans shards sequentially.
func (db *DB) SetFanout(f Fanout) {
	db.mu.Lock()
	db.fan = f
	tabs := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tabs = append(tabs, t)
	}
	db.mu.Unlock()
	for _, t := range tabs {
		t.setFanout(f)
	}
}

// setFanout installs (or clears) the table's shard fan-out.
func (t *Table) setFanout(f Fanout) {
	// atomic.Value refuses nil; store a typed nil Fanout instead.
	t.fan.Store(f)
}

// clampShards normalizes a requested shard count.
func clampShards(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return n
}

// Create registers a new table with the DB's default shard count. userCol
// must name one of the columns; it identifies the privacy unit.
func (db *DB) Create(name string, cols []Column, userCol string) (*Table, error) {
	return db.CreateSharded(name, cols, userCol, 0)
}

// CreateSharded registers a new table partitioned into shards (0 means
// the DB default, itself defaulting to 1; clamped to [1, MaxShards]).
func (db *DB) CreateSharded(name string, cols []Column, userCol string, shards int) (*Table, error) {
	lname := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[lname]; dup {
		return nil, fmt.Errorf("%w: table %q already exists", ErrSchema, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %q needs at least one column", ErrSchema, name)
	}
	if shards == 0 {
		shards = db.defShards
	}
	shards = clampShards(shards)
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		UserCol: userCol,
		byName:  make(map[string]int, len(cols)),
		userIx:  -1,
		nshards: shards,
		shards:  make([]*tableShard, shards),
	}
	for i := range t.shards {
		t.shards[i] = &tableShard{}
	}
	t.setFanout(db.fan)
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.byName[lc]; dup {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSchema, c.Name)
		}
		t.byName[lc] = i
		if strings.EqualFold(c.Name, userCol) {
			t.userIx = i
		}
	}
	if t.userIx < 0 {
		return nil, fmt.Errorf("%w: user column %q not in schema", ErrSchema, userCol)
	}
	db.tables[lname] = t
	return t, nil
}

// Drop removes a table from the registry, if present. The serve layer's
// durable path uses it to roll back a created table whose DDL could not
// be persisted, keeping the in-memory and durable views consistent.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	delete(db.tables, strings.ToLower(name))
	db.mu.Unlock()
}

// TableByName looks a table up case-insensitively.
func (db *DB) TableByName(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// ColumnIndex resolves a column name case-insensitively.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %q in table %q", ErrNoColumn, name, t.Name)
	}
	return i, nil
}

// convertRow validates one row against the schema and returns the
// kind-coerced copy (ints are accepted into float columns; integral
// floats into int columns). It is deterministic, so replaying the same
// raw row from a WAL converges on the same stored row.
func (t *Table) convertRow(vals []Value) ([]Value, error) {
	if len(vals) != len(t.Columns) {
		return nil, fmt.Errorf("%w: got %d values for %d columns", ErrSchema, len(vals), len(t.Columns))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		want := t.Columns[i].Kind
		switch {
		case v.Kind == want:
		case want == KindFloat && v.Kind == KindInt:
			v = Float(v.F)
		case want == KindInt && v.Kind == KindFloat && v.F == float64(int64(v.F)):
			v = Int(int64(v.F))
		default:
			return nil, fmt.Errorf("%w: column %q wants %s, got %s",
				ErrSchema, t.Columns[i].Name, want, v.Kind)
		}
		row[i] = v
	}
	return row, nil
}

// Insert appends one row; values must match the schema's kinds (ints are
// accepted into float columns).
func (t *Table) Insert(vals ...Value) error {
	_, err := t.InsertShard(vals...)
	return err
}

// InsertShard appends one row and reports the shard it was routed to (by
// user-id hash) — the ingest handler needs the destination to tag the
// row's WAL record. Only the destination shard's lock is taken, so
// concurrent inserts to different shards do not contend.
func (t *Table) InsertShard(vals ...Value) (int, error) {
	row, err := t.convertRow(vals)
	if err != nil {
		return 0, err
	}
	si := t.shardFor(row[t.userIx].String())
	sh := t.shards[si]
	sh.mu.Lock()
	// The sequence number is assigned under the shard lock so each
	// shard's seqs stay strictly increasing (the k-way merge invariant).
	sh.rows = append(sh.rows, row)
	sh.seqs = append(sh.seqs, t.nextSeq.Add(1)-1)
	sh.mu.Unlock()
	return si, nil
}

// AppendRows validates and appends a batch of rows — the bulk path
// snapshot import and WAL replay use. The batch is validated in full
// before any row is stored, so a bad row rejects the whole batch; every
// shard lock is held while the batch lands, so the batch becomes visible
// atomically and in its original order. Rows are routed by user-id hash.
func (t *Table) AppendRows(rows [][]Value) error {
	return t.appendRouted(rows, nil)
}

// appendRouted stores a validated batch. shardOf, when non-nil, overrides
// hash routing with an explicit destination per row (snapshot import
// preserving recorded topology); entries out of range fall back to the
// hash. All shard locks are taken (in index order) so sequence numbers
// follow batch order exactly.
func (t *Table) appendRouted(rows [][]Value, shardOf []int) error {
	conv := make([][]Value, len(rows))
	for i, r := range rows {
		row, err := t.convertRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		conv[i] = row
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
	}
	for i, row := range conv {
		si := -1
		if shardOf != nil && i < len(shardOf) && shardOf[i] >= 0 && shardOf[i] < t.nshards {
			si = shardOf[i]
		}
		if si < 0 {
			si = t.shardFor(row[t.userIx].String())
		}
		sh := t.shards[si]
		sh.rows = append(sh.rows, row)
		sh.seqs = append(sh.seqs, t.nextSeq.Add(1)-1)
	}
	for _, sh := range t.shards {
		sh.mu.Unlock()
	}
	return nil
}

// NumRows returns the raw number of stored rows. It is not itself a DP
// release: callers either keep it out of released output (tests, data
// loading) or privatize it first (the serve layer's record-unit COUNT
// feeds it through a sensitivity-1 noise mechanism).
func (t *Table) NumRows() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += len(sh.rows)
		sh.mu.RUnlock()
	}
	return n
}

// snapshot returns a point-in-time view of the full row set in global
// insertion order, merged across shards by sequence number. Rows are
// append-only and a stored row is never mutated, so the per-shard slice
// headers taken under read locks stay consistent while concurrent
// Inserts grow (and possibly reallocate) the backing arrays.
func (t *Table) snapshot() [][]Value {
	return mergeBySeq(t.shardSnapshots(), nil)
}

// userAgg is one user's accumulated contribution to a numeric column.
type userAgg struct {
	sum   float64
	count int
}

// collapseByUser folds rows into one accumulator per user, returned in
// deterministic (sorted user id) order. This is the replace-one-user
// privacy reduction every release path shares: the result changes in one
// position between neighboring databases, so feeding it to a record-level
// eps-DP mechanism yields a user-level eps-DP release. colIx < 0
// accumulates row counts only (COUNT). The deterministic order matters
// beyond reproducibility: the estimators' pairing/subsampling consume the
// seeded RNG in input order. (The full-table readers below reach the same
// collapse by merging per-shard partials instead — see shard.go.)
func (t *Table) collapseByUser(rows [][]Value, colIx int) []userAgg {
	users := map[string]*userAgg{}
	ids := make([]string, 0, 64)
	for _, row := range rows {
		uid := row[t.userIx].String()
		u, ok := users[uid]
		if !ok {
			u = &userAgg{}
			users[uid] = u
			ids = append(ids, uid)
		}
		if colIx >= 0 {
			u.sum += row[colIx].F
		}
		u.count++
	}
	sort.Strings(ids)
	out := make([]userAgg, len(ids))
	for i, uid := range ids {
		out[i] = *users[uid]
	}
	return out
}

// numericIndex resolves col and refuses string columns.
func (t *Table) numericIndex(col string) (int, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return 0, err
	}
	if t.Columns[ix].Kind == KindString {
		return 0, fmt.Errorf("dpsql: column %q is %s, need numeric", col, KindString)
	}
	return ix, nil
}

// UserMeans collapses the named numeric column to one contribution per
// user — the mean of that user's rows. The scan fans out over the shards
// (parallel under an installed Fanout), producing partial per-user
// accumulators that merge by addition; because users are hash-routed the
// merged collapse is bit-for-bit the monolithic one. This is the estimate
// endpoint's input. Optional observers receive one sample per shard of
// the fan (see ShardObserver).
func (t *Table) UserMeans(col string, obs ...ShardObserver) ([]float64, error) {
	ix, err := t.numericIndex(col)
	if err != nil {
		return nil, err
	}
	ids, users := mergeUserAggs(t.fanUserAggs(ix, obs...))
	out := make([]float64, len(ids))
	for i, uid := range ids {
		u := users[uid]
		out[i] = u.sum / float64(u.count)
	}
	return out, nil
}

// NumUsers returns the number of distinct users across every shard — the
// unit count a user-level COUNT release privatizes (sensitivity 1 under a
// one-user change). Per-shard counts cannot simply be summed while legacy
// data replayed into shard 0 may share users with hash-routed rows, so
// the ids are unioned.
func (t *Table) NumUsers(obs ...ShardObserver) int {
	ids, _ := mergeUserAggs(t.fanUserAggs(-1, obs...))
	return len(ids)
}

// ColumnFloats returns the named numeric column's raw per-row values in
// global insertion order (merged across shards by sequence number) — the
// record-level-DP input shape for datasets where a row IS a user (no
// per-user collapse). Feeding it to a record-level ε-DP mechanism yields
// record-level ε-DP only; use UserMeans when one user may own several
// rows.
func (t *Table) ColumnFloats(col string) ([]float64, error) {
	ix, err := t.numericIndex(col)
	if err != nil {
		return nil, err
	}
	rows := t.snapshot()
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = row[ix].F
	}
	return out, nil
}

// ColumnInts returns the named INT column's raw per-row values in global
// insertion order — the record-level input to the paper's
// empirical-setting estimators (Section 3) when a row IS a user.
func (t *Table) ColumnInts(col string) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	rows := t.snapshot()
	out := make([]int64, len(rows))
	for i, row := range rows {
		out[i] = int64(row[ix].F)
	}
	return out, nil
}

// UserIntSums collapses the named INT column to one integer contribution
// per user (the sum of that user's rows) in deterministic order — the
// input shape the paper's empirical-setting estimators (Section 3) take.
// The scan fans out over shards into partial int64 sums (exact, unlike
// float accumulation) that merge by addition. Optional observers receive
// one sample per shard of the fan (see ShardObserver).
func (t *Table) UserIntSums(col string, obs ...ShardObserver) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	snaps := t.shardSnapshots()
	parts := make([]map[string]int64, len(snaps))
	t.runFan(len(snaps), func(i int) {
		s0 := time.Now()
		part := make(map[string]int64, 64)
		for _, row := range snaps[i].rows {
			part[row[t.userIx].String()] += int64(row[ix].F)
		}
		parts[i] = part
		for _, ob := range obs {
			ob(i, len(snaps[i].rows), time.Since(s0))
		}
	})
	users := parts[0]
	if len(parts) > 1 {
		users = map[string]int64{}
		for _, part := range parts {
			for uid, s := range part {
				users[uid] += s
			}
		}
	}
	ids := make([]string, 0, len(users))
	for uid := range users {
		ids = append(ids, uid)
	}
	sort.Strings(ids)
	out := make([]int64, len(ids))
	for i, uid := range ids {
		out[i] = users[uid]
	}
	return out, nil
}
