package dpsql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
)

// Errors returned by the schema layer.
var (
	// ErrNoTable reports an unknown table name.
	ErrNoTable = errors.New("dpsql: no such table")
	// ErrNoColumn reports an unknown column name.
	ErrNoColumn = errors.New("dpsql: no such column")
	// ErrSchema reports an invalid schema or row.
	ErrSchema = errors.New("dpsql: schema error")
)

// Column describes one table column. The JSON tags are the durable
// store's snapshot encoding (Kind values are stable: 0 float, 1 int,
// 2 string).
type Column struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
}

// Table is an in-memory relation with a designated user column (the unit
// of privacy). Schema fields (Name, Columns, UserCol, byName, userIx) and
// the shard topology are immutable after Create; storage is partitioned
// into nshards columnar shards by a hash of the user id, each guarded by
// its own lock (see shard.go), so concurrent Inserts stripe across
// shards instead of serializing, and release scans fan out over shards
// and merge per-user partials over consistent per-shard snapshots.
type Table struct {
	Name    string
	Columns []Column
	UserCol string

	byName map[string]int
	userIx int

	nshards int
	shards  []*tableShard

	// nextSeq is the table-global insertion sequence number, bumped by
	// every striped writer on every shard — the one cache line all cores
	// share on the ingest path. The padding gives it a 64-byte line to
	// itself so the contended CAS traffic does not false-share with the
	// neighboring read-mostly fields (shards, fan), which every insert
	// and scan also touches.
	_       [64]byte
	nextSeq atomic.Uint64 // next global insertion sequence number
	_       [56]byte

	fan atomic.Value // Fanout installed by the owning DB (may be nil)

	// mixedPlacement records that at least one row was imported with an
	// explicit shard assignment that disagrees with the hash route for
	// its user — only hand-built TableStates can do this. Such a user's
	// rows may straddle shards, which breaks the per-shard contribution
	// clamp of bounded GROUP BY; ExecQueryTraced checks this flag and
	// falls back to a sequential arrival-order clamp walk.
	mixedPlacement atomic.Bool
}

// DB is a collection of tables with an optional shared privacy budget.
// The table registry and the ledger pointer are guarded by mu; a DB is
// safe for concurrent Create/TableByName/Exec/Run use.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	led       dp.Ledger
	defShards int    // shard count new tables get (0 means 1)
	fan       Fanout // shard fan-out installed on every table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// SetDefaultShards sets the shard count tables created afterwards get
// (clamped to [1, MaxShards]; 0 means 1). The serve layer calls it with
// the tenant's configured topology before creating or importing tables.
func (db *DB) SetDefaultShards(n int) {
	db.mu.Lock()
	db.defShards = n
	db.mu.Unlock()
}

// DefaultShards reports the configured default shard count (0 means 1).
func (db *DB) DefaultShards() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.defShards
}

// SetFanout installs the shard fan-out used by release scans on every
// table, existing and future. The serve layer installs a worker-pool
// backed implementation; nil (the default) scans shards sequentially.
func (db *DB) SetFanout(f Fanout) {
	db.mu.Lock()
	db.fan = f
	tabs := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tabs = append(tabs, t)
	}
	db.mu.Unlock()
	for _, t := range tabs {
		t.setFanout(f)
	}
}

// setFanout installs (or clears) the table's shard fan-out.
func (t *Table) setFanout(f Fanout) {
	// atomic.Value refuses nil; store a typed nil Fanout instead.
	t.fan.Store(f)
}

// clampShards normalizes a requested shard count.
func clampShards(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return n
}

// Create registers a new table with the DB's default shard count. userCol
// must name one of the columns; it identifies the privacy unit.
func (db *DB) Create(name string, cols []Column, userCol string) (*Table, error) {
	return db.CreateSharded(name, cols, userCol, 0)
}

// CreateSharded registers a new table partitioned into shards (0 means
// the DB default, itself defaulting to 1; clamped to [1, MaxShards]).
func (db *DB) CreateSharded(name string, cols []Column, userCol string, shards int) (*Table, error) {
	lname := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[lname]; dup {
		return nil, fmt.Errorf("%w: table %q already exists", ErrSchema, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %q needs at least one column", ErrSchema, name)
	}
	if shards == 0 {
		shards = db.defShards
	}
	shards = clampShards(shards)
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		UserCol: userCol,
		byName:  make(map[string]int, len(cols)),
		userIx:  -1,
		nshards: shards,
		shards:  make([]*tableShard, shards),
	}
	for i := range t.shards {
		t.shards[i] = newTableShard(len(cols))
	}
	t.setFanout(db.fan)
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.byName[lc]; dup {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSchema, c.Name)
		}
		t.byName[lc] = i
		if strings.EqualFold(c.Name, userCol) {
			t.userIx = i
		}
	}
	if t.userIx < 0 {
		return nil, fmt.Errorf("%w: user column %q not in schema", ErrSchema, userCol)
	}
	db.tables[lname] = t
	return t, nil
}

// Drop removes a table from the registry, if present. The serve layer's
// durable path uses it to roll back a created table whose DDL could not
// be persisted, keeping the in-memory and durable views consistent.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	delete(db.tables, strings.ToLower(name))
	db.mu.Unlock()
}

// TableByName looks a table up case-insensitively.
func (db *DB) TableByName(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// ColumnIndex resolves a column name case-insensitively.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %q in table %q", ErrNoColumn, name, t.Name)
	}
	return i, nil
}

// convertRow validates one row against the schema and returns the
// kind-coerced copy (ints are accepted into float columns; integral
// floats into int columns). It is deterministic, so replaying the same
// raw row from a WAL converges on the same stored row.
func (t *Table) convertRow(vals []Value) ([]Value, error) {
	if len(vals) != len(t.Columns) {
		return nil, fmt.Errorf("%w: got %d values for %d columns", ErrSchema, len(vals), len(t.Columns))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		want := t.Columns[i].Kind
		switch {
		case v.Kind == want:
		case want == KindFloat && v.Kind == KindInt:
			v = Float(v.F)
		case want == KindInt && v.Kind == KindFloat && v.F == float64(int64(v.F)):
			v = Int(int64(v.F))
		default:
			return nil, fmt.Errorf("%w: column %q wants %s, got %s",
				ErrSchema, t.Columns[i].Name, want, v.Kind)
		}
		row[i] = v
	}
	return row, nil
}

// Insert appends one row; values must match the schema's kinds (ints are
// accepted into float columns).
func (t *Table) Insert(vals ...Value) error {
	_, err := t.InsertShard(vals...)
	return err
}

// InsertShard appends one row and reports the shard it was routed to (by
// user-id hash) — the ingest handler needs the destination to tag the
// row's WAL record. Only the destination shard's lock is taken, so
// concurrent inserts to different shards do not contend.
func (t *Table) InsertShard(vals ...Value) (int, error) {
	row, err := t.convertRow(vals)
	if err != nil {
		return 0, err
	}
	si := t.shardFor(row[t.userIx].String())
	sh := t.shards[si]
	sh.mu.Lock()
	// The sequence number is assigned under the shard lock so each
	// shard's seqs stay strictly increasing (the k-way merge invariant).
	sh.appendRow(t, row, t.nextSeq.Add(1)-1)
	sh.mu.Unlock()
	return si, nil
}

// AppendRows validates and appends a batch of rows — the bulk path
// snapshot import and WAL replay use. The batch is validated in full
// before any row is stored, so a bad row rejects the whole batch; every
// shard lock is held while the batch lands, so the batch becomes visible
// atomically and in its original order. Rows are routed by user-id hash.
func (t *Table) AppendRows(rows [][]Value) error {
	return t.appendRouted(rows, nil)
}

// appendRouted stores a validated batch. shardOf, when non-nil, overrides
// hash routing with an explicit destination per row (snapshot import
// preserving recorded topology); entries out of range fall back to the
// hash. All shard locks are taken (in index order) so sequence numbers
// follow batch order exactly.
func (t *Table) appendRouted(rows [][]Value, shardOf []int) error {
	conv := make([][]Value, len(rows))
	for i, r := range rows {
		row, err := t.convertRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		conv[i] = row
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
	}
	for i, row := range conv {
		si := -1
		if shardOf != nil && i < len(shardOf) && shardOf[i] >= 0 && shardOf[i] < t.nshards {
			si = shardOf[i]
			if t.nshards > 1 && si != t.shardFor(row[t.userIx].String()) {
				t.mixedPlacement.Store(true)
			}
		}
		if si < 0 {
			si = t.shardFor(row[t.userIx].String())
		}
		t.shards[si].appendRow(t, row, t.nextSeq.Add(1)-1)
	}
	for _, sh := range t.shards {
		sh.mu.Unlock()
	}
	return nil
}

// NumRows returns the raw number of stored rows. It is not itself a DP
// release: callers either keep it out of released output (tests, data
// loading) or privatize it first (the serve layer's record-unit COUNT
// feeds it through a sensitivity-1 noise mechanism).
func (t *Table) NumRows() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += len(sh.seqs)
		sh.mu.RUnlock()
	}
	return n
}

// snapshot materializes a point-in-time view of the full row set in
// global insertion order, merged across shards by sequence number. Rows
// are rebuilt from the typed columns, bit-identical to the rows the
// table was fed — the persistence path (Export) and tests use it; the
// scan paths never box rows.
func (t *Table) snapshot() [][]Value {
	return mergeBySeq(t, t.shardSnapshots(), nil)
}

// userAgg is one user's accumulated contribution to a numeric column.
type userAgg struct {
	sum   float64
	count int
}

// selPart is one shard's share of a filtered selection: row indices into
// that shard's snapshot, in row (= arrival) order. Exec's scan produces
// a []selPart per group, in shard order, instead of materializing rows.
type selPart struct {
	shard int
	idx   []int32
}

// collapseSelection folds a filtered selection into one accumulator per
// user, returned in deterministic (sorted user id) order. This is the
// replace-one-user privacy reduction every release path shares: the
// result changes in one position between neighboring databases, so
// feeding it to a record-level eps-DP mechanism yields a user-level
// eps-DP release. colIx < 0 accumulates row counts only (COUNT). The
// deterministic order matters beyond reproducibility: the estimators'
// pairing/subsampling consume the seeded RNG in input order. Parts are
// walked in shard order, rows in selection order — the exact fold the
// row store ran over shard-order-concatenated group rows, so the bits
// match even for a user whose rows span shards (pre-shard data replayed
// into shard 0). (The full-table readers reach the same collapse by
// merging dense per-shard partials instead — see shard.go.)
func (t *Table) collapseSelection(snaps []shardSnap, parts []selPart, colIx int) []userAgg {
	var kind Kind
	if colIx >= 0 {
		kind = t.Columns[colIx].Kind
	}
	// Fast path: dense per-shard accumulation indexed by the shard's user
	// dictionary — no map in the per-row loop. Within a shard the dense
	// fold adds rows in selection order, exactly the fold above; across
	// shards users are disjoint under hash routing, so each user's whole
	// fold happens inside one shard and merging is pure concatenation.
	// A user CAN span shards (a hand-built TableState's recorded
	// placement is honored verbatim), and merging dense partials would
	// re-associate that user's additions — so the merge detects the
	// collision and falls back to the sequential map fold, keeping the
	// bit contract without taxing the overwhelmingly common case.
	var (
		ids  []string
		aggs []userAgg
	)
	for _, p := range parts {
		sn := snaps[p.shard]
		dense := make([]userAgg, sn.nu)
		if colIx >= 0 {
			for _, i := range p.idx {
				u := sn.uix[i]
				dense[u].sum += sn.float(kind, colIx, int(i))
				dense[u].count++
			}
		} else {
			for _, i := range p.idx {
				dense[sn.uix[i]].count++
			}
		}
		for u := range dense {
			if dense[u].count > 0 {
				ids = append(ids, sn.uids[u])
				aggs = append(aggs, dense[u])
			}
		}
	}
	ord := make([]int, len(ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ids[ord[a]] < ids[ord[b]] })
	out := make([]userAgg, len(ids))
	for i, j := range ord {
		if i > 0 && ids[j] == ids[ord[i-1]] {
			return t.collapseSelectionSeq(snaps, parts, colIx) // straddler: exact fold
		}
		out[i] = aggs[j]
	}
	return out
}

// collapseSelectionSeq is the sequential reference fold: one map pass in
// shard order, rows in selection order — the exact fold the row store
// ran. collapseSelection delegates here when a user's rows span shards.
func (t *Table) collapseSelectionSeq(snaps []shardSnap, parts []selPart, colIx int) []userAgg {
	var kind Kind
	if colIx >= 0 {
		kind = t.Columns[colIx].Kind
	}
	users := map[string]*userAgg{}
	ids := make([]string, 0, 64)
	for _, p := range parts {
		sn := snaps[p.shard]
		for _, i := range p.idx {
			uid := sn.uid(int(i))
			u, ok := users[uid]
			if !ok {
				u = &userAgg{}
				users[uid] = u
				ids = append(ids, uid)
			}
			if colIx >= 0 {
				u.sum += sn.float(kind, colIx, int(i))
			}
			u.count++
		}
	}
	sort.Strings(ids)
	out := make([]userAgg, len(ids))
	for i, uid := range ids {
		out[i] = *users[uid]
	}
	return out
}

// numericIndex resolves col and refuses string columns.
func (t *Table) numericIndex(col string) (int, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return 0, err
	}
	if t.Columns[ix].Kind == KindString {
		return 0, fmt.Errorf("dpsql: column %q is %s, need numeric", col, KindString)
	}
	return ix, nil
}

// UserMeans collapses the named numeric column to one contribution per
// user — the mean of that user's rows. The scan fans out over the shards
// (parallel under an installed Fanout), each shard folding its typed
// column into dense per-user partials that merge by addition; because
// users are hash-routed the merged collapse is bit-for-bit the
// monolithic one. This is the estimate endpoint's input. Optional
// observers receive one sample per shard of the fan (see ShardObserver).
func (t *Table) UserMeans(col string, obs ...ShardObserver) ([]float64, error) {
	ix, err := t.numericIndex(col)
	if err != nil {
		return nil, err
	}
	_, aggs := mergeUserAggs(t.fanUserAggs(ix, obs...))
	out := make([]float64, len(aggs))
	for i, u := range aggs {
		out[i] = u.sum / float64(u.count)
	}
	return out, nil
}

// NumUsers returns the number of distinct users across every shard — the
// unit count a user-level COUNT release privatizes (sensitivity 1 under a
// one-user change). Per-shard counts cannot simply be summed while legacy
// data replayed into shard 0 may share users with hash-routed rows, so
// the ids are unioned.
func (t *Table) NumUsers(obs ...ShardObserver) int {
	ids, _ := mergeUserAggs(t.fanUserAggs(-1, obs...))
	return len(ids)
}

// ColumnFloats returns the named numeric column's raw per-row values in
// global insertion order (merged across shards by sequence number) — the
// record-level-DP input shape for datasets where a row IS a user (no
// per-user collapse). Feeding it to a record-level ε-DP mechanism yields
// record-level ε-DP only; use UserMeans when one user may own several
// rows.
func (t *Table) ColumnFloats(col string) ([]float64, error) {
	ix, err := t.numericIndex(col)
	if err != nil {
		return nil, err
	}
	kind := t.Columns[ix].Kind
	snaps := t.shardSnapshots()
	if len(snaps) == 1 {
		sn := snaps[0]
		out := make([]float64, sn.n)
		if kind == KindInt {
			for i, v := range sn.cols[ix].is {
				out[i] = float64(v)
			}
		} else {
			copy(out, sn.cols[ix].fs)
		}
		return out, nil
	}
	total := 0
	for _, sn := range snaps {
		total += sn.n
	}
	out := make([]float64, 0, total)
	mergeOrder(snaps, func(s, i int) {
		out = append(out, snaps[s].float(kind, ix, i))
	})
	return out, nil
}

// ColumnInts returns the named INT column's raw per-row values in global
// insertion order — the record-level input to the paper's
// empirical-setting estimators (Section 3) when a row IS a user.
func (t *Table) ColumnInts(col string) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	snaps := t.shardSnapshots()
	if len(snaps) == 1 {
		return append([]int64(nil), snaps[0].cols[ix].is...), nil
	}
	total := 0
	for _, sn := range snaps {
		total += sn.n
	}
	out := make([]int64, 0, total)
	mergeOrder(snaps, func(s, i int) {
		out = append(out, snaps[s].cols[ix].is[i])
	})
	return out, nil
}

// UserIntSums collapses the named INT column to one integer contribution
// per user (the sum of that user's rows) in deterministic order — the
// input shape the paper's empirical-setting estimators (Section 3) take.
// Each shard folds its int column into dense per-user partial sums
// (exact, unlike float accumulation — chunked shards just add per-chunk
// partials, integer addition being associative) that merge by addition.
// Optional observers receive one sample per shard of the fan (see
// ShardObserver).
func (t *Table) UserIntSums(col string, obs ...ShardObserver) ([]int64, error) {
	ix, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	if t.Columns[ix].Kind != KindInt {
		return nil, fmt.Errorf("dpsql: column %q is %s, need %s for an empirical release",
			col, t.Columns[ix].Kind, KindInt)
	}
	snaps := t.shardSnapshots()
	type shardSums struct {
		uids []string
		sums []int64
	}
	parts := make([]shardSums, len(snaps))
	t.runFan(len(snaps), func(si int) {
		s0 := time.Now()
		sn := snaps[si]
		sums := make([]int64, sn.nu)
		is := sn.cols[ix].is
		if k := chunksFor(sn.n); k > 1 && t.fanout() != nil {
			// Per-chunk dense partials, added in chunk order — exact.
			chunk := make([][]int64, k)
			t.runFan(k, func(c int) {
				cs := make([]int64, sn.nu)
				lo, hi := c*sn.n/k, (c+1)*sn.n/k
				for i := lo; i < hi; i++ {
					cs[sn.uix[i]] += is[i]
				}
				chunk[c] = cs
			})
			for _, cs := range chunk {
				for u, s := range cs {
					sums[u] += s
				}
			}
		} else {
			for i, u := range sn.uix {
				sums[u] += is[i]
			}
		}
		parts[si] = shardSums{uids: sn.uids, sums: sums}
		for _, ob := range obs {
			ob(si, sn.n, time.Since(s0))
		}
	})
	// Concatenate in shard order and sort with the concatenation index as
	// tiebreak — the same map-free merge mergeUserAggs uses: equal uids
	// combine in shard order (integer addition is associative anyway).
	var (
		ids  []string
		sums []int64
	)
	if len(parts) == 1 {
		ids = parts[0].uids
		sums = parts[0].sums
	} else {
		total := 0
		for _, p := range parts {
			total += len(p.uids)
		}
		ids = make([]string, 0, total)
		sums = make([]int64, 0, total)
		for _, p := range parts {
			ids = append(ids, p.uids...)
			sums = append(sums, p.sums...)
		}
	}
	ord := make([]int, len(ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if ids[ia] != ids[ib] {
			return ids[ia] < ids[ib]
		}
		return ia < ib
	})
	out := make([]int64, 0, len(ids))
	prev := ""
	for _, j := range ord {
		if len(out) > 0 && ids[j] == prev {
			out[len(out)-1] += sums[j]
			continue
		}
		out = append(out, sums[j])
		prev = ids[j]
	}
	return out, nil
}
