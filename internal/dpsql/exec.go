package dpsql

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// Execution errors.
var (
	// ErrTooFewUsers reports a group with fewer users than the universal
	// estimators require.
	ErrTooFewUsers = errors.New("dpsql: group has too few users (need >= 4)")
	// ErrNotNumeric reports aggregation over a non-numeric column.
	ErrNotNumeric = errors.New("dpsql: aggregate column must be numeric")
)

// ResultRow is one released result row (per group when GROUP BY is
// present). Values holds one release per aggregate in the SELECT list;
// Value mirrors Values[0] for the common single-aggregate case.
type ResultRow struct {
	Group    Value // group key (zero Value when the query has no GROUP BY)
	HasGroup bool
	Value    float64
	Values   []float64
}

// Result is a released query answer.
type Result struct {
	Query    *Query
	Rows     []ResultRow
	EpsSpent float64
}

// SetBudget installs a total privacy budget enforced across Exec calls
// (basic composition of pure ε, Lemma 2.2). A nil-budget DB never refuses
// queries. For a different composition backend use SetLedger.
func (db *DB) SetBudget(totalEps float64) error {
	led, err := dp.NewBasicLedger(totalEps)
	if err != nil {
		return err
	}
	db.SetLedger(led)
	return nil
}

// SetLedger installs a composition backend enforced across Exec calls,
// letting several release paths (e.g. a tenant's SQL queries and its
// direct estimator calls in the serve layer) draw from one budget. The
// backend decides how ε costs compose: dp.BasicLedger adds them linearly,
// dp.ZCDPLedger charges ε²/2 in ρ, dp.WindowedLedger renews any inner
// budget on a wall-clock cadence.
func (db *DB) SetLedger(led dp.Ledger) {
	db.mu.Lock()
	db.led = led
	db.mu.Unlock()
}

// SetAccountant installs a pure-ε accountant as the ledger — the legacy
// entry point, equivalent to SetLedger(acct.Ledger()); both views share
// one budget.
func (db *DB) SetAccountant(acct *dp.Accountant) {
	db.SetLedger(acct.Ledger())
}

// Ledger returns the installed composition backend (nil when no budget is
// set).
func (db *DB) Ledger() dp.Ledger {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.led
}

// Remaining reports the unspent budget in the ledger's native unit; +Inf
// when no budget is set.
func (db *DB) Remaining() float64 {
	led := db.Ledger()
	if led == nil {
		return math.Inf(1)
	}
	return led.Remaining()
}

// ExecOpts carries the per-call knobs of ExecTraced. The zero value
// reproduces Exec exactly.
type ExecOpts struct {
	// Ledger overrides the DB's installed ledger for this call — the
	// serve layer passes a per-release wrapper here so the one deduction
	// a query charges can be attributed to its release ID. Nil uses the
	// installed ledger.
	Ledger dp.Ledger
	// Observe, when set, receives per-stage wall times: "scan" (the
	// fanned shard scan, filter, group, and merge) and "noise" (the
	// per-user collapse plus every mechanism release). The deduction
	// between them is timed by the caller's ledger wrapper, not here.
	Observe func(stage string, d time.Duration)
	// ObserveShard, when set, receives one sample per shard of the
	// fanned scan: the shard index, the row count it walked, and its
	// wall time. Called from the fan-out workers, so it must be safe
	// for concurrent use. The serve layer records these as child spans
	// under "scan", which is what makes a straggler shard visible.
	ObserveShard func(shard, rows int, d time.Duration)
}

// Exec parses and answers sql under user-level eps-DP.
//
// Privacy semantics: the privacy unit is one user (the table's user
// column); neighboring databases replace all rows of one user. Row sets are
// first collapsed to one contribution per user (sum for SUM, mean for the
// location aggregates), then released through the repository's universal
// estimators, which need no bound on per-user contributions — the §1.1.1
// (DFY+22) application. GROUP BY keys are released as-is and must be public
// categories; the budget is split evenly across groups because one user may
// appear in several groups.
func (db *DB) Exec(rng *xrand.RNG, sql string, eps float64) (*Result, error) {
	return db.ExecTraced(rng, sql, eps, ExecOpts{})
}

// ExecTraced is Exec with an optional ledger override and per-stage
// timing callback — identical parsing, privacy semantics, and spend.
func (db *DB) ExecTraced(rng *xrand.RNG, sql string, eps float64, opts ExecOpts) (*Result, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	t, err := db.TableByName(q.Table)
	if err != nil {
		return nil, err
	}
	aggIx := make([]int, len(q.Aggs))
	for i, spec := range q.Aggs {
		aggIx[i] = -1
		if spec.Kind != AggCount || spec.Col != "" {
			ix, err := t.ColumnIndex(spec.Col)
			if err != nil {
				return nil, err
			}
			if t.Columns[ix].Kind == KindString {
				return nil, fmt.Errorf("%w: %q is %s", ErrNotNumeric, spec.Col, KindString)
			}
			aggIx[i] = ix
		}
	}
	groupIx := -1
	if q.GroupBy != "" {
		groupIx, err = t.ColumnIndex(q.GroupBy)
		if err != nil {
			return nil, err
		}
	}
	if q.Where != nil {
		// Static WHERE check (columns exist, kinds comparable) before the
		// Spend below: a data-independent mistake must not cost budget.
		if err := q.Where.validate(t); err != nil {
			return nil, err
		}
	}

	led := opts.Ledger
	if led == nil {
		led = db.Ledger()
	}
	if led != nil {
		if err := led.Spend(dp.EpsCost(eps)); err != nil {
			return nil, err
		}
	}
	observe := opts.Observe
	if observe == nil {
		observe = func(string, time.Duration) {}
	}
	scanStart := time.Now()

	// Filter and group point-in-time per-shard snapshots. The scan fans
	// out over the table's columnar shards (parallel under an installed
	// Fanout — the serve layer backs it with its worker pool): each shard
	// evaluates the WHERE predicate as one vectorized pass over its typed
	// column slices into a selection bitmap, then partitions the selected
	// row indices by group key — no per-row []Value is ever built. The
	// per-shard index fragments are then concatenated in shard order.
	// Users are hash-routed to shards, so a user's rows stay contiguous
	// and in arrival order within one fragment and the per-user collapse
	// below accumulates exactly as a monolithic scan would — fan-out
	// changes wall-clock, not answers.
	type shardGroup struct {
		key Value
		idx []int32
	}
	type shardScan struct {
		groups map[string]*shardGroup
		order  []string // first-seen group keys, shard-local
	}
	var groupKind Kind
	if groupIx >= 0 {
		groupKind = t.Columns[groupIx].Kind
	}
	snaps := t.shardSnapshots()
	scans := make([]shardScan, len(snaps))
	t.runFan(len(snaps), func(si int) {
		shardStart := time.Now()
		sn := snaps[si]
		var sel []bool
		if q.Where != nil {
			sel = make([]bool, sn.n)
			q.Where.evalShard(t, sn, sel)
		}
		sc := shardScan{groups: map[string]*shardGroup{}}
		if groupIx < 0 {
			// Single implicit group: the selection is one index run.
			g := &shardGroup{}
			for i := 0; i < sn.n; i++ {
				if sel == nil || sel[i] {
					g.idx = append(g.idx, int32(i))
				}
			}
			if len(g.idx) > 0 {
				sc.groups[""] = g
				sc.order = append(sc.order, "")
			}
		} else {
			for i := 0; i < sn.n; i++ {
				if sel != nil && !sel[i] {
					continue
				}
				key := sn.keyString(groupKind, groupIx, i)
				g, ok := sc.groups[key]
				if !ok {
					g = &shardGroup{key: sn.value(groupKind, groupIx, i)}
					sc.groups[key] = g
					sc.order = append(sc.order, key)
				}
				g.idx = append(g.idx, int32(i))
			}
		}
		scans[si] = sc
		if opts.ObserveShard != nil {
			opts.ObserveShard(si, sn.n, time.Since(shardStart))
		}
	})
	type groupSel struct {
		key   Value
		parts []selPart // one per contributing shard, in shard order
	}
	groups := map[string]*groupSel{}
	var order []string
	for si, sc := range scans {
		for _, key := range sc.order {
			sg := sc.groups[key]
			g, ok := groups[key]
			if !ok {
				g = &groupSel{key: sg.key}
				groups[key] = g
				order = append(order, key)
			}
			g.parts = append(g.parts, selPart{shard: si, idx: sg.idx})
		}
	}
	sort.Strings(order)
	observe("scan", time.Since(scanStart))
	if len(order) == 0 {
		// No matching rows: release an empty result (the absence of public
		// group keys reveals only the public category list).
		return &Result{Query: q, EpsSpent: eps}, nil
	}

	// Budget: even split across groups (a user may appear in several), then
	// across the aggregates in the SELECT list (basic composition).
	epsG := eps / float64(len(order)) / float64(len(q.Aggs))
	noiseStart := time.Now()
	defer func() { observe("noise", time.Since(noiseStart)) }()
	res := &Result{Query: q, EpsSpent: eps}
	for _, key := range order {
		g := groups[key]
		values := make([]float64, len(q.Aggs))
		for i, spec := range q.Aggs {
			v, err := db.aggregate(rng, t, spec, snaps, g.parts, aggIx[i], epsG)
			if err != nil {
				return nil, fmt.Errorf("group %q: %w", key, err)
			}
			values[i] = v
		}
		res.Rows = append(res.Rows, ResultRow{
			Group:    g.key,
			HasGroup: groupIx >= 0,
			Value:    values[0],
			Values:   values,
		})
	}
	return res, nil
}

// aggregate collapses a group's filtered selection to per-user
// contributions (the shared replace-one-user reduction,
// Table.collapseSelection) and releases the requested aggregate with
// budget eps.
func (db *DB) aggregate(rng *xrand.RNG, t *Table, spec AggSpec, snaps []shardSnap, parts []selPart, aggIx int, eps float64) (float64, error) {
	users := t.collapseSelection(snaps, parts, aggIx)
	nUsers := len(users)

	if spec.Kind == AggCount {
		// Count of matching users; sensitivity 1 under a one-user change.
		return dp.NoisyCount(rng, nUsers, eps), nil
	}
	if nUsers < 4 {
		return 0, ErrTooFewUsers
	}

	sums := make([]float64, 0, nUsers)
	means := make([]float64, 0, nUsers)
	for _, u := range users {
		sums = append(sums, u.sum)
		means = append(means, u.sum/float64(u.count))
	}

	const beta = 0.1
	switch spec.Kind {
	case AggSum:
		// SUM = n_users · mean(per-user sums); n_users is fixed across
		// replace-one-user neighbors, so only the mean needs privatizing.
		m, err := privateMeanAuto(rng, sums, eps, beta)
		if err != nil {
			return 0, err
		}
		return m * float64(nUsers), nil
	case AggAvg:
		return privateMeanAuto(rng, means, eps, beta)
	case AggMedian:
		return privateQuantileAuto(rng, means, (nUsers+1)/2, eps, beta)
	case AggP25:
		return privateQuantileAuto(rng, means, (nUsers+3)/4, eps, beta)
	case AggP75:
		return privateQuantileAuto(rng, means, (3*nUsers+3)/4, eps, beta)
	case AggVar:
		return core.EstimateVariance(rng, means, eps, beta)
	case AggStdDev:
		v, err := core.EstimateVariance(rng, means, eps, beta)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v), nil
	case AggIQR:
		v, err := core.EstimateIQR(rng, means, eps, beta)
		if err != nil {
			return 0, err
		}
		// A scale parameter is non-negative; the raw release can be
		// negative at small budgets (difference of two noisy quantiles),
		// and projection is free post-processing.
		if v < 0 {
			v = 0
		}
		return v, nil
	case AggQuantile:
		tau := int(math.Ceil(spec.P * float64(nUsers)))
		if tau < 1 {
			tau = 1
		}
		if tau > nUsers {
			tau = nUsers
		}
		return privateQuantileAuto(rng, means, tau, eps, beta)
	case AggMin:
		// Extreme quantiles: Algorithm 2 clamps the target rank away from
		// the boundary by its slack, so MIN/MAX are conservative — they
		// release roughly the slack-th smallest/largest per-user value.
		// (An exact private min/max is impossible with bounded error.)
		return privateQuantileAuto(rng, means, 1, eps, beta)
	case AggMax:
		return privateQuantileAuto(rng, means, nUsers, eps, beta)
	default:
		return 0, fmt.Errorf("%w: unsupported aggregate %v", ErrSyntax, spec.Kind)
	}
}

// privateMeanAuto releases the empirical mean of contributions with no
// domain bound: Algorithm 7 learns a bucket (ε/4), then the §3.5
// infinite-domain mean runs with the rest (3ε/4).
func privateMeanAuto(rng *xrand.RNG, xs []float64, eps, beta float64) (float64, error) {
	b, err := core.IQRLowerBound(rng, xs, eps/4, beta/2)
	if err != nil {
		return 0, err
	}
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	return empirical.RealMean(rng, xs, b, 3*eps/4, beta/2)
}

// privateQuantileAuto releases the tau-th order statistic of contributions
// with no domain bound (bucket ε/2, quantile ε/2).
func privateQuantileAuto(rng *xrand.RNG, xs []float64, tau int, eps, beta float64) (float64, error) {
	b, err := core.IQRLowerBound(rng, xs, eps/2, beta/2)
	if err != nil {
		return 0, err
	}
	bn := b / float64(len(xs))
	if !(bn > 0) {
		bn = math.SmallestNonzeroFloat64
	}
	return empirical.RealQuantile(rng, xs, tau, bn, eps/2, beta/2)
}
