package dpsql

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// Execution errors.
var (
	// ErrTooFewUsers reports a group with fewer users than the universal
	// estimators require.
	ErrTooFewUsers = errors.New("dpsql: group has too few users (need >= 4)")
	// ErrNotNumeric reports aggregation over a non-numeric column.
	ErrNotNumeric = errors.New("dpsql: aggregate column must be numeric")
	// ErrBadGroupBound reports an invalid per-user group contribution
	// bound (valid: -1 for unbounded, or any cap >= 1).
	ErrBadGroupBound = errors.New("dpsql: group contribution bound must be -1 (unbounded) or >= 1")
)

// ResultRow is one released result row (per group when GROUP BY is
// present). Values holds one release per aggregate in the SELECT list;
// Value mirrors Values[0] for the common single-aggregate case.
type ResultRow struct {
	Group    Value // group key (zero Value when the query has no GROUP BY)
	HasGroup bool
	Value    float64
	Values   []float64
}

// Result is a released query answer.
type Result struct {
	Query    *Query
	Rows     []ResultRow
	EpsSpent float64
}

// SetBudget installs a total privacy budget enforced across Exec calls
// (basic composition of pure ε, Lemma 2.2). A nil-budget DB never refuses
// queries. For a different composition backend use SetLedger.
func (db *DB) SetBudget(totalEps float64) error {
	led, err := dp.NewBasicLedger(totalEps)
	if err != nil {
		return err
	}
	db.SetLedger(led)
	return nil
}

// SetLedger installs a composition backend enforced across Exec calls,
// letting several release paths (e.g. a tenant's SQL queries and its
// direct estimator calls in the serve layer) draw from one budget. The
// backend decides how ε costs compose: dp.BasicLedger adds them linearly,
// dp.ZCDPLedger charges ε²/2 in ρ, dp.WindowedLedger renews any inner
// budget on a wall-clock cadence.
func (db *DB) SetLedger(led dp.Ledger) {
	db.mu.Lock()
	db.led = led
	db.mu.Unlock()
}

// SetAccountant installs a pure-ε accountant as the ledger — the legacy
// entry point, equivalent to SetLedger(acct.Ledger()); both views share
// one budget.
func (db *DB) SetAccountant(acct *dp.Accountant) {
	db.SetLedger(acct.Ledger())
}

// Ledger returns the installed composition backend (nil when no budget is
// set).
func (db *DB) Ledger() dp.Ledger {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.led
}

// Remaining reports the unspent budget in the ledger's native unit; +Inf
// when no budget is set.
func (db *DB) Remaining() float64 {
	led := db.Ledger()
	if led == nil {
		return math.Inf(1)
	}
	return led.Remaining()
}

// ExecOpts carries the per-call knobs of ExecTraced. The zero value
// reproduces Exec exactly.
type ExecOpts struct {
	// Ledger overrides the DB's installed ledger for this call — the
	// serve layer passes a per-release wrapper here so the one deduction
	// a query charges can be attributed to its release ID. Nil uses the
	// installed ledger.
	Ledger dp.Ledger
	// Observe, when set, receives per-stage wall times: "scan" (the
	// fanned shard scan, filter, group, and merge) and "noise" (the
	// per-user collapse plus every mechanism release). The deduction
	// between them is timed by the caller's ledger wrapper, not here.
	Observe func(stage string, d time.Duration)
	// ObserveShard, when set, receives one sample per shard of the
	// fanned scan: the shard index, the row count it walked, and its
	// wall time. Called from the fan-out workers, so it must be safe
	// for concurrent use. The serve layer records these as child spans
	// under "scan", which is what makes a straggler shard visible.
	ObserveShard func(shard, rows int, d time.Duration)
	// GroupBound caps how many distinct groups one user may contribute
	// to in a GROUP BY query. 0 means the default bound of 1 (groups
	// partition the users and the grouped release is priced by parallel
	// composition); c >= 1 clamps each user to its first c groups and
	// prices by c-fold sequential composition; -1 disables clamping and
	// falls back to the legacy even ε-split across groups. Ignored for
	// queries without GROUP BY. See dp.ParallelCost.
	GroupBound int
}

// Exec parses and answers sql under user-level eps-DP.
//
// Privacy semantics: the privacy unit is one user (the table's user
// column); neighboring databases replace all rows of one user. Row sets are
// first collapsed to one contribution per user (sum for SUM, mean for the
// location aggregates), then released through the repository's universal
// estimators, which need no bound on per-user contributions — the §1.1.1
// (DFY+22) application. GROUP BY keys are released as-is and must be public
// categories. Grouped releases are priced by parallel composition
// (dp.ParallelCost): during the scan each user is clamped to its
// first-seen group (contribution bound 1 by default, configurable via
// ExecOpts.GroupBound), so groups are disjoint in users and the whole
// grouped answer costs ONE release at the full ε — not ε/k per group. A
// bound c > 1 keeps per-group accuracy at ε/c and charges the honest
// c-fold sequential composition. ExecOpts.GroupBound -1 restores the
// legacy unbounded mode: no rows are dropped and the budget is split
// evenly across groups, because one user may then appear in all of them.
func (db *DB) Exec(rng *xrand.RNG, sql string, eps float64) (*Result, error) {
	return db.ExecTraced(rng, sql, eps, ExecOpts{})
}

// ExecTraced is Exec with an optional ledger override and per-stage
// timing callback — identical parsing, privacy semantics, and spend.
func (db *DB) ExecTraced(rng *xrand.RNG, sql string, eps float64, opts ExecOpts) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecQueryTraced(rng, q, eps, opts)
}

// ExecQueryTraced answers an already-parsed query — the serve layer's
// histogram endpoint and grouped estimates build Query values directly
// instead of round-tripping through SQL text. Parsing aside, it is
// ExecTraced exactly: same validation, privacy semantics, and spend.
func (db *DB) ExecQueryTraced(rng *xrand.RNG, q *Query, eps float64, opts ExecOpts) (*Result, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	bound := opts.GroupBound
	if bound == 0 {
		bound = 1
	}
	if bound < -1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadGroupBound, opts.GroupBound)
	}
	t, err := db.TableByName(q.Table)
	if err != nil {
		return nil, err
	}
	aggIx := make([]int, len(q.Aggs))
	for i, spec := range q.Aggs {
		aggIx[i] = -1
		if spec.Kind != AggCount || spec.Col != "" {
			ix, err := t.ColumnIndex(spec.Col)
			if err != nil {
				return nil, err
			}
			if t.Columns[ix].Kind == KindString {
				return nil, fmt.Errorf("%w: %q is %s", ErrNotNumeric, spec.Col, KindString)
			}
			aggIx[i] = ix
		}
	}
	groupIx := -1
	if q.GroupBy != "" {
		groupIx, err = t.ColumnIndex(q.GroupBy)
		if err != nil {
			return nil, err
		}
	}
	if q.Where != nil {
		// Static WHERE check (columns exist, kinds comparable) before the
		// Spend below: a data-independent mistake must not cost budget.
		if err := q.Where.validate(t); err != nil {
			return nil, err
		}
	}

	led := opts.Ledger
	if led == nil {
		led = db.Ledger()
	}
	if led != nil {
		// One deduction per release, charged before the scan (the price is
		// data-independent). A bounded grouped query is priced by parallel
		// composition over its per-group budget eps/bound — at bound 1
		// that is exactly one release of the full eps, and at bound c the
		// honest c-fold sequential fallback; either way the total charged
		// equals the requested eps, the same as a scalar query or the
		// legacy unbounded split.
		cost := dp.EpsCost(eps)
		if groupIx >= 0 && bound >= 1 {
			cost = dp.ParallelCost(dp.EpsCost(eps/float64(bound)), bound)
		}
		if err := led.Spend(cost); err != nil {
			return nil, err
		}
	}
	observe := opts.Observe
	if observe == nil {
		observe = func(string, time.Duration) {}
	}
	scanStart := time.Now()

	// Filter and group point-in-time per-shard snapshots. The scan fans
	// out over the table's columnar shards (parallel under an installed
	// Fanout — the serve layer backs it with its worker pool): each shard
	// evaluates the WHERE predicate as one vectorized pass over its typed
	// column slices into a selection bitmap, then partitions the selected
	// row indices by group key — no per-row []Value is ever built. The
	// per-shard index fragments are then concatenated in shard order.
	// Users are hash-routed to shards, so a user's rows stay contiguous
	// and in arrival order within one fragment and the per-user collapse
	// below accumulates exactly as a monolithic scan would — fan-out
	// changes wall-clock, not answers.
	type shardGroup struct {
		key Value
		ord int32 // shard-local first-seen ordinal (the clamp's slot id)
		idx []int32
	}
	type shardScan struct {
		groups map[string]*shardGroup
		order  []string // first-seen group keys, shard-local
	}
	var groupKind Kind
	if groupIx >= 0 {
		groupKind = t.Columns[groupIx].Kind
	}
	clamped := groupIx >= 0 && bound >= 1
	snaps := t.shardSnapshots()
	// A user whose recorded placement disagrees with the hash route
	// (possible only for hand-built imported TableStates) may have rows in
	// several shards, and per-shard clamp slots would grant it bound slots
	// per shard. Such tables take the sequential fallback below: the WHERE
	// predicate still fans out, but the clamp + group walk runs once over
	// the global arrival order.
	seqClamp := clamped && len(snaps) > 1 && t.mixedPlacement.Load()
	scans := make([]shardScan, len(snaps))
	sels := make([][]bool, len(snaps))
	t.runFan(len(snaps), func(si int) {
		shardStart := time.Now()
		sn := snaps[si]
		var sel []bool
		if q.Where != nil {
			sel = make([]bool, sn.n)
			q.Where.evalShard(t, sn, sel)
		}
		if seqClamp {
			sels[si] = sel
			if opts.ObserveShard != nil {
				opts.ObserveShard(si, sn.n, time.Since(shardStart))
			}
			return
		}
		sc := shardScan{groups: map[string]*shardGroup{}}
		if groupIx < 0 {
			// Single implicit group: the selection is one index run.
			g := &shardGroup{}
			for i := 0; i < sn.n; i++ {
				if sel == nil || sel[i] {
					g.idx = append(g.idx, int32(i))
				}
			}
			if len(g.idx) > 0 {
				sc.groups[""] = g
				sc.order = append(sc.order, "")
			}
		} else {
			// Clamp slots: a user contributes to its first `bound` distinct
			// groups in its own row order; rows for any later group are
			// dropped. Hash routing keeps all of a user's rows in one shard
			// in arrival order, so the admitted set — and therefore every
			// group's user set — is identical at every shard count.
			var slots []int32
			if clamped {
				slots = make([]int32, int(sn.nu)*bound)
				for j := range slots {
					slots[j] = -1
				}
			}
			for i := 0; i < sn.n; i++ {
				if sel != nil && !sel[i] {
					continue
				}
				key := sn.keyString(groupKind, groupIx, i)
				g, ok := sc.groups[key]
				if clamped {
					us := slots[int(sn.uix[i])*bound : (int(sn.uix[i])+1)*bound]
					admitted, free := false, -1
					for s, v := range us {
						if ok && v == g.ord {
							admitted = true
							break
						}
						if v < 0 && free < 0 {
							free = s
						}
					}
					if !admitted {
						if free < 0 {
							continue // cap reached: drop the row
						}
						if !ok {
							g = &shardGroup{key: sn.value(groupKind, groupIx, i), ord: int32(len(sc.order))}
							sc.groups[key] = g
							sc.order = append(sc.order, key)
						}
						us[free] = g.ord
					}
				} else if !ok {
					g = &shardGroup{key: sn.value(groupKind, groupIx, i)}
					sc.groups[key] = g
					sc.order = append(sc.order, key)
				}
				g.idx = append(g.idx, int32(i))
			}
		}
		scans[si] = sc
		if opts.ObserveShard != nil {
			opts.ObserveShard(si, sn.n, time.Since(shardStart))
		}
	})
	observe("scan", time.Since(scanStart))

	// Merge the per-shard partial group lists map-free: concatenate them in
	// shard order, stable-sort by key (stability keeps each group's shard
	// fragments in shard order), and fold equal-key runs into one group.
	// The output lands directly in the released sorted-key order.
	type groupSel struct {
		key   Value
		keyS  string
		parts []selPart // one per contributing shard, in shard order
	}
	mergeStart := time.Now()
	var flat []groupSel
	if seqClamp {
		// Global arrival-order clamp walk: the k-way merge on sequence
		// numbers visits rows exactly as a single-shard table stores them,
		// so admitted sets match the single-shard twin bit for bit even for
		// users whose rows straddle shards. Sequential by construction —
		// the price of honoring hand-built placements.
		type seqGroup struct {
			key Value
			idx [][]int32 // per shard, row indices in row order
		}
		gm := map[string]*seqGroup{}
		var order []string
		admitted := map[string][]string{} // uid -> admitted group keys (<= bound)
		mergeOrder(snaps, func(s, i int) {
			if sels[s] != nil && !sels[s][i] {
				return
			}
			sn := snaps[s]
			key := sn.keyString(groupKind, groupIx, i)
			uid := sn.uid(i)
			in := false
			for _, k := range admitted[uid] {
				if k == key {
					in = true
					break
				}
			}
			if !in {
				if len(admitted[uid]) >= bound {
					return // cap reached: drop the row
				}
				admitted[uid] = append(admitted[uid], key)
			}
			g, ok := gm[key]
			if !ok {
				g = &seqGroup{key: sn.value(groupKind, groupIx, i), idx: make([][]int32, len(snaps))}
				gm[key] = g
				order = append(order, key)
			}
			g.idx[s] = append(g.idx[s], int32(i))
		})
		for _, key := range order {
			g := gm[key]
			gs := groupSel{key: g.key, keyS: key}
			for s, idx := range g.idx {
				if len(idx) > 0 {
					gs.parts = append(gs.parts, selPart{shard: s, idx: idx})
				}
			}
			flat = append(flat, gs)
		}
	} else {
		for si := range scans {
			sc := &scans[si]
			for _, key := range sc.order {
				sg := sc.groups[key]
				flat = append(flat, groupSel{key: sg.key, keyS: key, parts: []selPart{{shard: si, idx: sg.idx}}})
			}
		}
	}
	sort.SliceStable(flat, func(a, b int) bool { return flat[a].keyS < flat[b].keyS })
	groups := make([]groupSel, 0, len(flat))
	for _, g := range flat {
		if n := len(groups); n > 0 && groups[n-1].keyS == g.keyS {
			groups[n-1].parts = append(groups[n-1].parts, g.parts...)
			continue
		}
		groups = append(groups, g)
	}
	if groupIx >= 0 {
		observe("group_merge", time.Since(mergeStart))
	}
	if len(groups) == 0 {
		// No matching rows: release an empty result (the absence of public
		// group keys reveals only the public category list).
		return &Result{Query: q, EpsSpent: eps}, nil
	}

	// Per-group budget. With a contribution bound every group receives the
	// full per-partition budget eps/bound (then split across the SELECT
	// list's aggregates by basic composition) no matter how many groups
	// exist — the parallel-composition payoff. The legacy unbounded mode
	// (GroupBound -1) splits eps evenly across the k released groups,
	// because an unclamped user may appear in all of them.
	var epsG float64
	if clamped {
		epsG = eps / float64(bound) / float64(len(q.Aggs))
	} else {
		epsG = eps / float64(len(groups)) / float64(len(q.Aggs))
	}
	noiseStart := time.Now()
	defer func() { observe("noise", time.Since(noiseStart)) }()
	res := &Result{Query: q, EpsSpent: eps}
	for _, g := range groups {
		values := make([]float64, len(q.Aggs))
		for i, spec := range q.Aggs {
			v, err := db.aggregate(rng, t, spec, snaps, g.parts, aggIx[i], epsG)
			if err != nil {
				return nil, fmt.Errorf("group %q: %w", g.keyS, err)
			}
			values[i] = v
		}
		res.Rows = append(res.Rows, ResultRow{
			Group:    g.key,
			HasGroup: groupIx >= 0,
			Value:    values[0],
			Values:   values,
		})
	}
	return res, nil
}

// aggregate collapses a group's filtered selection to per-user
// contributions (the shared replace-one-user reduction,
// Table.collapseSelection) and releases the requested aggregate with
// budget eps.
func (db *DB) aggregate(rng *xrand.RNG, t *Table, spec AggSpec, snaps []shardSnap, parts []selPart, aggIx int, eps float64) (float64, error) {
	users := t.collapseSelection(snaps, parts, aggIx)
	nUsers := len(users)

	if spec.Kind == AggCount {
		// Count of matching users; sensitivity 1 under a one-user change.
		return dp.NoisyCount(rng, nUsers, eps), nil
	}
	if nUsers < 4 {
		return 0, ErrTooFewUsers
	}

	sums := make([]float64, 0, nUsers)
	means := make([]float64, 0, nUsers)
	for _, u := range users {
		sums = append(sums, u.sum)
		means = append(means, u.sum/float64(u.count))
	}

	const beta = 0.1
	switch spec.Kind {
	case AggSum:
		// SUM = n_users · mean(per-user sums); n_users is fixed across
		// replace-one-user neighbors, so only the mean needs privatizing.
		m, err := privateMeanAuto(rng, sums, eps, beta)
		if err != nil {
			return 0, err
		}
		return m * float64(nUsers), nil
	case AggAvg:
		return privateMeanAuto(rng, means, eps, beta)
	case AggMedian:
		return privateQuantileAuto(rng, means, (nUsers+1)/2, eps, beta)
	case AggP25:
		return privateQuantileAuto(rng, means, (nUsers+3)/4, eps, beta)
	case AggP75:
		return privateQuantileAuto(rng, means, (3*nUsers+3)/4, eps, beta)
	case AggVar:
		return core.EstimateVariance(rng, means, eps, beta)
	case AggStdDev:
		v, err := core.EstimateVariance(rng, means, eps, beta)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v), nil
	case AggIQR:
		v, err := core.EstimateIQR(rng, means, eps, beta)
		if err != nil {
			return 0, err
		}
		// A scale parameter is non-negative; the raw release can be
		// negative at small budgets (difference of two noisy quantiles),
		// and projection is free post-processing.
		if v < 0 {
			v = 0
		}
		return v, nil
	case AggQuantile:
		tau := int(math.Ceil(spec.P * float64(nUsers)))
		if tau < 1 {
			tau = 1
		}
		if tau > nUsers {
			tau = nUsers
		}
		return privateQuantileAuto(rng, means, tau, eps, beta)
	case AggMin:
		// Extreme quantiles: Algorithm 2 clamps the target rank away from
		// the boundary by its slack, so MIN/MAX are conservative — they
		// release roughly the slack-th smallest/largest per-user value.
		// (An exact private min/max is impossible with bounded error.)
		return privateQuantileAuto(rng, means, 1, eps, beta)
	case AggMax:
		return privateQuantileAuto(rng, means, nUsers, eps, beta)
	default:
		return 0, fmt.Errorf("%w: unsupported aggregate %v", ErrSyntax, spec.Kind)
	}
}

// privateMeanAuto releases the empirical mean of contributions with no
// domain bound: Algorithm 7 learns a bucket (ε/4), then the §3.5
// infinite-domain mean runs with the rest (3ε/4).
func privateMeanAuto(rng *xrand.RNG, xs []float64, eps, beta float64) (float64, error) {
	b, err := core.IQRLowerBound(rng, xs, eps/4, beta/2)
	if err != nil {
		return 0, err
	}
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	return empirical.RealMean(rng, xs, b, 3*eps/4, beta/2)
}

// privateQuantileAuto releases the tau-th order statistic of contributions
// with no domain bound (bucket ε/2, quantile ε/2).
func privateQuantileAuto(rng *xrand.RNG, xs []float64, tau int, eps, beta float64) (float64, error) {
	b, err := core.IQRLowerBound(rng, xs, eps/2, beta/2)
	if err != nil {
		return 0, err
	}
	bn := b / float64(len(xs))
	if !(bn > 0) {
		bn = math.SmallestNonzeroFloat64
	}
	return empirical.RealQuantile(rng, xs, tau, bn, eps/2, beta/2)
}
