package dpsql

import (
	"encoding/json"
	"errors"
	"testing"
)

func seedTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	tab, err := db.Create("events", []Column{
		{Name: "uid", Kind: KindString},
		{Name: "v", Kind: KindFloat},
		{Name: "n", Kind: KindInt},
	}, "uid")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tab.Insert(Str("u"+string(rune('a'+i))), Float(float64(i)+0.5), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

func TestTableExportImportRoundTrip(t *testing.T) {
	_, tab := seedTable(t)
	st := tab.Export()

	// Through JSON, as the durable store serializes it.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back TableState
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	tab2, err := db2.Import(back)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Name != "events" || tab2.UserCol != "uid" || len(tab2.Columns) != 3 {
		t.Fatalf("schema mismatch: %+v", tab2)
	}
	if tab2.NumRows() != tab.NumRows() {
		t.Fatalf("rows %d != %d", tab2.NumRows(), tab.NumRows())
	}
	m1, err := tab.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tab2.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatalf("user count %d != %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("user mean %d: %v != %v", i, m1[i], m2[i])
		}
	}
	zs, err := tab2.UserIntSums("n")
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 10 || zs[3] != 3 {
		t.Fatalf("int column corrupted: %v", zs)
	}
}

func TestDBExportSortedAndComplete(t *testing.T) {
	db := NewDB()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := db.Create(name, []Column{{Name: "u", Kind: KindString}}, "u"); err != nil {
			t.Fatal(err)
		}
	}
	states := db.Export()
	if len(states) != 3 {
		t.Fatalf("exported %d tables", len(states))
	}
	if states[0].Name != "alpha" || states[1].Name != "mid" || states[2].Name != "zeta" {
		t.Fatalf("not sorted: %v %v %v", states[0].Name, states[1].Name, states[2].Name)
	}
}

func TestImportRevalidatesRows(t *testing.T) {
	db := NewDB()
	st := TableState{
		Name:    "bad",
		Columns: []Column{{Name: "u", Kind: KindString}, {Name: "v", Kind: KindFloat}},
		UserCol: "u",
		Rows:    [][]Value{{Str("u1"), Str("not-a-number")}},
	}
	if _, err := db.Import(st); !errors.Is(err, ErrSchema) {
		t.Fatalf("import of schema-violating row: %v", err)
	}
	// The failed import must not leave a half-imported table behind with
	// rows... the table exists (Create ran) but with zero rows.
	tab, err := db.TableByName("bad")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 0 {
		t.Fatalf("half-imported rows: %d", tab.NumRows())
	}
}

func TestAppendRowsAllOrNothing(t *testing.T) {
	_, tab := seedTable(t)
	n := tab.NumRows()
	err := tab.AppendRows([][]Value{
		{Str("ok"), Float(1), Int(1)},
		{Str("bad"), Str("oops"), Int(2)},
	})
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("append of bad batch: %v", err)
	}
	if tab.NumRows() != n {
		t.Fatalf("partial batch stored: %d rows, want %d", tab.NumRows(), n)
	}
}

func TestValueCompactJSON(t *testing.T) {
	b, err := json.Marshal([]Value{Float(2.5), Int(3), Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"f":2.5},{"k":1,"f":3},{"k":2,"s":"x"}]`
	if string(b) != want {
		t.Fatalf("encoding drifted: %s (want %s) — stored WALs depend on it", b, want)
	}
	var back []Value
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Kind != KindFloat || back[0].F != 2.5 ||
		back[1].Kind != KindInt || back[1].F != 3 ||
		back[2].Kind != KindString || back[2].S != "x" {
		t.Fatalf("decoded %+v", back)
	}
}
