package dpsql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax reports a lexical or grammatical error in a query.
var ErrSyntax = errors.New("dpsql: syntax error")

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokOp // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits a query into tokens. Identifiers and keywords are returned as
// tokIdent (keyword recognition happens in the parser, case-insensitively).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=', c == '<', c == '>', c == '!':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			}
			op := input[start:i]
			if op == "!" {
				return nil, fmt.Errorf("%w: stray '!' at offset %d", ErrSyntax, start)
			}
			if op == "<>" { // unreachable via scan above, kept for clarity
				op = "!="
			}
			toks = append(toks, token{tokOp, op, start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("%w: unterminated string at offset %d", ErrSyntax, start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || c == '.' ||
			(c == '-' && i+1 < n && (input[i+1] >= '0' && input[i+1] <= '9' || input[i+1] == '.')):
			start := i
			if c == '-' {
				i++
			}
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				switch {
				case d >= '0' && d <= '9':
					i++
				case d == '.' && !seenDot && !seenExp:
					seenDot = true
					i++
				case (d == 'e' || d == 'E') && !seenExp:
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				default:
					goto doneNumber
				}
			}
		doneNumber:
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
