package dpsql

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"unsafe"

	"repro/internal/xrand"
)

// The columnar engine's contract is that it is a pure storage
// reorganization: every reader, predicate, and release must produce the
// exact bits a row-oriented store folding rows in insertion order would.
// The shard twin tests (shard_test.go) check topologies against each
// other; the tests here check the engine against an independent
// row-oriented reference implementation, force the chunked parallel
// collapse on small fixtures, and stress ingest against vectorized scans
// under the race detector.

// rowFixture builds a table at the given shard count and returns the
// exact rows fed to it, in insertion order — the reference a row store
// would hold.
func rowFixture(t *testing.T, shards, n int) (*DB, *Table, [][]Value) {
	t.Helper()
	db := NewDB()
	db.SetDefaultShards(shards)
	tab, err := db.Create("events",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "n", Kind: KindInt}, {Name: "grp", Kind: KindString}},
		"uid")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)
	groups := []string{"x", "y", "z"}
	var rows [][]Value
	for i := 0; i < n; i++ {
		row := []Value{
			Str(fmt.Sprintf("u%03d", i%101)),
			Float(math.Exp(1 + rng.Gaussian())),
			Int(int64(i%23) - 11),
			Str(groups[i%3]),
		}
		if err := tab.Insert(row...); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	return db, tab, rows
}

// refUserMeans is the row-oriented reference: walk rows in insertion
// order, fold each user's values left to right, means sorted by id.
func refUserMeans(rows [][]Value, col int) []float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	var ids []string
	for _, r := range rows {
		uid := r[0].S
		if _, ok := counts[uid]; !ok {
			ids = append(ids, uid)
		}
		sums[uid] += r[col].F
		counts[uid]++
	}
	sort.Strings(ids)
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = sums[id] / float64(counts[id])
	}
	return out
}

func refUserIntSums(rows [][]Value, col int) []int64 {
	sums := map[string]int64{}
	var ids []string
	for _, r := range rows {
		uid := r[0].S
		if _, ok := sums[uid]; !ok {
			ids = append(ids, uid)
		}
		sums[uid] += int64(r[col].F)
	}
	sort.Strings(ids)
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = sums[id]
	}
	return out
}

// TestColumnarRowReference: the typed-column readers must be bit-for-bit
// identical to a row store's insertion-order fold, at every topology.
func TestColumnarRowReference(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		_, tab, rows := rowFixture(t, shards, 700)

		want := refUserMeans(rows, 1)
		got, err := tab.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: UserMeans diverged from row reference", shards)
		}

		wantSums := refUserIntSums(rows, 2)
		gotSums, err := tab.UserIntSums("n")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotSums, wantSums) {
			t.Fatalf("shards=%d: UserIntSums diverged from row reference", shards)
		}

		if nu := tab.NumUsers(); nu != len(want) {
			t.Fatalf("shards=%d: NumUsers = %d, want %d", shards, nu, len(want))
		}

		wantF := make([]float64, len(rows))
		wantI := make([]int64, len(rows))
		for i, r := range rows {
			wantF[i] = r[1].F
			wantI[i] = int64(r[2].F)
		}
		gotF, _ := tab.ColumnFloats("v")
		gotI, _ := tab.ColumnInts("n")
		if !reflect.DeepEqual(gotF, wantF) {
			t.Fatalf("shards=%d: ColumnFloats lost insertion order", shards)
		}
		if !reflect.DeepEqual(gotI, wantI) {
			t.Fatalf("shards=%d: ColumnInts lost insertion order", shards)
		}
	}
}

// TestColumnarPredicateRowReference: the vectorized evalShard must agree
// with the scalar row Eval on every row, for every comparison shape —
// including NaN, which Value.Compare treats as equal to everything.
func TestColumnarPredicateRowReference(t *testing.T) {
	db := NewDB()
	db.SetDefaultShards(3)
	tab, err := db.Create("p",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "n", Kind: KindInt}, {Name: "g", Kind: KindString}},
		"uid")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]Value
	for i := 0; i < 200; i++ {
		v := float64(i%13) - 6
		if i%17 == 0 {
			v = math.NaN()
		}
		row := []Value{Str(fmt.Sprintf("u%02d", i%29)), Float(v), Int(int64(i % 7)), Str([]string{"a", "b"}[i%2])}
		if err := tab.Insert(row...); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	for _, where := range []string{
		"v < 3", "v <= 3", "v = 0", "v != 0", "v >= -2", "v > -2",
		"n = 4", "n < 2", "g = 'a'", "g != 'b'",
		"v < 3 AND n > 1", "g = 'a' OR v > 4", "NOT v < 0",
		"v < 2 AND (g = 'b' OR n = 3)",
	} {
		q, err := Parse("SELECT COUNT(*) FROM p WHERE " + where)
		if err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		if err := q.Where.validate(tab); err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		// Scalar reference over the retained rows, in insertion order.
		want := make([]bool, len(rows))
		for i, r := range rows {
			ok, err := q.Where.Eval(tab, r)
			if err != nil {
				t.Fatalf("%s row %d: %v", where, i, err)
			}
			want[i] = ok
		}
		// Vectorized evaluation per shard, scattered back to global order
		// via each row's sequence number.
		got := make([]bool, len(rows))
		for _, sn := range tab.shardSnapshots() {
			sel := make([]bool, sn.n)
			q.Where.evalShard(tab, sn, sel)
			for i := 0; i < sn.n; i++ {
				got[sn.seqs[i]] = sel[i]
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("WHERE %s: vectorized selection diverged from row Eval", where)
		}
	}
}

// TestColumnarChunkedCollapseExact: the parallel chunked collapse must
// return the same bits as the sequential per-shard fold — the fixture is
// small, so the chunk knobs are shrunk to force chunking, and a real
// goroutine fanout is installed so the chunk fan actually runs nested
// inside the shard fan.
func TestColumnarChunkedCollapseExact(t *testing.T) {
	_, tab, _ := rowFixture(t, 2, 1200)
	seqMeans, err := tab.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	seqSums, err := tab.UserIntSums("n")
	if err != nil {
		t.Fatal(err)
	}

	defer func(r, m, x int) { scanChunkRows, scanChunkMin, scanChunkMax = r, m, x }(scanChunkRows, scanChunkMin, scanChunkMax)
	scanChunkRows, scanChunkMin, scanChunkMax = 64, 128, 32
	tab.setFanout(func(n int, run func(int)) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	})
	defer tab.setFanout(nil)

	for trial := 0; trial < 5; trial++ { // schedule-independence, not luck
		chMeans, err := tab.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(chMeans, seqMeans) {
			t.Fatal("chunked UserMeans diverged from sequential fold")
		}
		chSums, err := tab.UserIntSums("n")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(chSums, seqSums) {
			t.Fatal("chunked UserIntSums diverged from sequential fold")
		}
	}
}

// TestColumnarExecSeedStability: same seed, same query, same answer bits
// — across shard counts AND with chunked scans forced. Releases are where
// bit drift would become user-visible, so this is the end-to-end check.
func TestColumnarExecSeedStability(t *testing.T) {
	queries := []string{
		"SELECT AVG(v) FROM events WHERE v < 10",
		"SELECT SUM(n), COUNT(*) FROM events GROUP BY grp",
		"SELECT MEDIAN(v), P25(v) FROM events GROUP BY grp",
	}
	db1, _, _ := rowFixture(t, 1, 700)
	ref := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := db1.Exec(xrand.New(11), q, 2)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		ref[i] = r
	}
	defer func(r, m, x int) { scanChunkRows, scanChunkMin, scanChunkMax = r, m, x }(scanChunkRows, scanChunkMin, scanChunkMax)
	scanChunkRows, scanChunkMin, scanChunkMax = 32, 64, 32
	for _, shards := range []int{3, 16} {
		db, _, _ := rowFixture(t, shards, 700)
		db.SetFanout(func(n int, run func(int)) {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) { defer wg.Done(); run(i) }(i)
			}
			wg.Wait()
		})
		for i, q := range queries {
			r, err := db.Exec(xrand.New(11), q, 2)
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, q, err)
			}
			if len(r.Rows) != len(ref[i].Rows) {
				t.Fatalf("shards=%d %s: %d vs %d rows", shards, q, len(r.Rows), len(ref[i].Rows))
			}
			for j := range r.Rows {
				if !reflect.DeepEqual(r.Rows[j].Values, ref[i].Rows[j].Values) {
					t.Fatalf("shards=%d %s row %d: %v vs %v", shards, q, j, r.Rows[j].Values, ref[i].Rows[j].Values)
				}
			}
		}
	}
}

// TestColumnarImportRoundTripBits: Export -> Import -> Export must be a
// fixed point, and a pre-columnar TableState (plain rows, no topology)
// must import into the columnar engine with identical reader bits.
func TestColumnarImportRoundTripBits(t *testing.T) {
	_, tab, rows := rowFixture(t, 4, 500)
	st := tab.Export()
	db2 := NewDB()
	db2.SetDefaultShards(4)
	tab2, err := db2.Import(st)
	if err != nil {
		t.Fatal(err)
	}
	st2 := tab2.Export()
	if !reflect.DeepEqual(st, st2) {
		t.Fatal("Export -> Import -> Export is not a fixed point")
	}

	// A pre-columnar, pre-shard snapshot is just rows: importing it must
	// land the same bits the live inserts produced.
	legacy := TableState{Name: "events", Columns: st.Columns, UserCol: "uid", Rows: rows}
	db3 := NewDB()
	tab3, err := db3.Import(legacy)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := tab.UserMeans("v")
	m3, _ := tab3.UserMeans("v")
	if !reflect.DeepEqual(m1, m3) {
		t.Fatal("pre-columnar state imported into different UserMeans")
	}
	f1, _ := tab.ColumnFloats("v")
	f3, _ := tab3.ColumnFloats("v")
	if !reflect.DeepEqual(f1, f3) {
		t.Fatal("pre-columnar state imported into different row order")
	}
}

// TestTableShardCacheLines: tableShard is sized to a whole number of
// 64-byte cache lines so the shard array never false-shares a line
// between two shards' write locks (PR 7's nextSeq cliff, shard edition).
func TestTableShardCacheLines(t *testing.T) {
	if sz := unsafe.Sizeof(tableShard{}); sz%64 != 0 {
		t.Fatalf("tableShard is %d bytes — not a whole number of cache lines; adjacent shards will false-share", sz)
	}
}

// TestColumnarConcurrentStress: concurrent ingest, vectorized scans,
// releases, and exports on the same table — the race detector's view of
// the columnar engine's locking (run under -race in CI).
func TestColumnarConcurrentStress(t *testing.T) {
	db := NewDB()
	db.SetDefaultShards(4)
	tab, err := db.Create("s",
		[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "n", Kind: KindInt}},
		"uid")
	if err != nil {
		t.Fatal(err)
	}
	db.SetFanout(func(n int, run func(int)) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	})
	defer func(r, m, x int) { scanChunkRows, scanChunkMin, scanChunkMax = r, m, x }(scanChunkRows, scanChunkMin, scanChunkMax)
	scanChunkRows, scanChunkMin, scanChunkMax = 64, 128, 32

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				uid := fmt.Sprintf("w%d-u%02d", w, i%37)
				if err := tab.Insert(Str(uid), Float(float64(i)), Int(int64(i%5))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := tab.UserMeans("v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Exec(xrand.New(uint64(i)), "SELECT AVG(v) FROM s WHERE n < 3", 1); err != nil {
					t.Error(err)
					return
				}
				if st := tab.Export(); len(st.Rows) != len(st.ShardOf) {
					t.Error("export tore rows from placement")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := tab.NumRows(); got != 3*400 {
		t.Fatalf("lost rows: %d of %d", got, 3*400)
	}
}
