// Package dpsql is a small in-memory relational engine that answers
// self-join-free aggregation queries under user-level differential privacy,
// the database application the paper highlights in §1.1.1 (DFY+22): sum
// estimation over an unbounded domain is exactly the private aggregation
// problem, and the paper's empirical estimators answer it with
// instance-optimal error and no domain-size assumption.
//
// The engine supports a restricted SQL subset:
//
//	SELECT <agg>(<col>) FROM <table> [WHERE <predicate>] [GROUP BY <col>]
//
// with agg ∈ {COUNT, SUM, AVG, MEDIAN, P25, P75, VAR, STDDEV} and
// predicates built from comparisons, AND, OR, NOT, and parentheses.
//
// Privacy model: every table designates a user column; one *user* (all of
// their rows) is the unit of privacy. Aggregations first collapse rows to
// one contribution per user and then run the repository's universal
// estimators over the per-user contributions, so no bounds on user
// contributions are required. GROUP BY keys are released as-is and must be
// public categories (the standard assumption for partitioned release);
// the per-query budget is split evenly across groups because a user may
// contribute to several groups.
package dpsql

import (
	"fmt"
	"strconv"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	KindFloat Kind = iota
	KindInt
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "FLOAT"
	case KindInt:
		return "INT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed cell. The JSON encoding is compact (short
// keys, zero fields omitted) because the durable store serializes every
// stored row through it — see TableState.
type Value struct {
	Kind Kind    `json:"k,omitempty"`
	F    float64 `json:"f,omitempty"` // numeric payload (KindFloat and KindInt)
	S    string  `json:"s,omitempty"` // string payload (KindString)
}

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int wraps an int64 (stored as float64; exact below 2^53).
func Int(i int64) Value { return Value{Kind: KindInt, F: float64(i)} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// IsNumeric reports whether the value carries a number.
func (v Value) IsNumeric() bool { return v.Kind == KindFloat || v.Kind == KindInt }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(int64(v.F), 10)
	default:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
}

// Compare orders two values of the same kind: -1, 0, or +1. Comparing
// incompatible kinds returns an error.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNumeric() != o.IsNumeric() {
		return 0, fmt.Errorf("dpsql: cannot compare %s with %s", v.Kind, o.Kind)
	}
	if v.IsNumeric() {
		switch {
		case v.F < o.F:
			return -1, nil
		case v.F > o.F:
			return 1, nil
		default:
			return 0, nil
		}
	}
	switch {
	case v.S < o.S:
		return -1, nil
	case v.S > o.S:
		return 1, nil
	default:
		return 0, nil
	}
}
