package dpsql

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/xrand"
)

func newPopulatedDB(t *testing.T, users, rowsPer int) *DB {
	t.Helper()
	db := NewDB()
	if err := db.Run("CREATE TABLE events (uid STRING USER, v FLOAT, grp STRING)"); err != nil {
		t.Fatal(err)
	}
	tab, err := db.TableByName("events")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	for u := 0; u < users; u++ {
		for r := 0; r < rowsPer; r++ {
			g := "a"
			if u%2 == 1 {
				g = "b"
			}
			err := tab.Insert(Str(fmt.Sprintf("u%04d", u)), Float(100+rng.Gaussian()), Str(g))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// Parallel Exec against a shared DB: every query must succeed and return a
// sane release while others run. Run with -race.
func TestExecConcurrent(t *testing.T) {
	db := newPopulatedDB(t, 200, 3)
	queries := []string{
		"SELECT AVG(v) FROM events",
		"SELECT COUNT(*) FROM events",
		"SELECT MEDIAN(v) FROM events GROUP BY grp",
		"SELECT SUM(v) FROM events WHERE grp = 'a'",
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + i))
			res, err := db.Exec(rng, queries[i%len(queries)], 1.0)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			if len(res.Rows) == 0 {
				t.Errorf("worker %d: empty result", i)
			}
		}(i)
	}
	wg.Wait()
}

// Queries racing streaming ingestion: Exec sees a consistent snapshot and
// never fails, even as Insert grows the table under it. Run with -race.
func TestExecDuringInsert(t *testing.T) {
	db := newPopulatedDB(t, 50, 2)
	tab, err := db.TableByName("events")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				uid := fmt.Sprintf("w%d-%d", w, i)
				if err := tab.Insert(Str(uid), Float(99.5), Str("a")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		rng := xrand.New(uint64(i))
		if _, err := db.Exec(rng, "SELECT AVG(v) FROM events", 0.5); err != nil {
			t.Errorf("exec %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// A shared budget enforced across racing queries: no overdraw, ever.
func TestExecConcurrentBudget(t *testing.T) {
	db := newPopulatedDB(t, 100, 1)
	const perQuery = 0.5
	const allowed = 20
	if err := db.SetBudget(allowed * perQuery); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, refused := 0, 0
	for i := 0; i < 2*allowed; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := xrand.New(uint64(i))
			_, err := db.Exec(rng, "SELECT AVG(v) FROM events", perQuery)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, dp.ErrBudgetExhausted):
				refused++
			default:
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ok != allowed || refused != allowed {
		t.Errorf("ok=%d refused=%d, want %d each", ok, refused, allowed)
	}
}

// A statically invalid WHERE clause (unknown column, incomparable kinds)
// must be refused before the budget Spend: data-independent mistakes are
// free, per the serve layer's budget model.
func TestInvalidWhereCostsNoBudget(t *testing.T) {
	db := newPopulatedDB(t, 20, 1)
	if err := db.SetBudget(10); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	for _, sql := range []string{
		"SELECT AVG(v) FROM events WHERE nosuch > 1",
		"SELECT AVG(v) FROM events WHERE grp > 5",
		"SELECT AVG(v) FROM events WHERE v = 'abc'",
	} {
		if _, err := db.Exec(rng, sql, 1.0); err == nil {
			t.Errorf("%q: want error", sql)
		}
	}
	if rem := db.Remaining(); rem != 10 {
		t.Errorf("invalid WHERE clauses consumed budget: remaining %v, want 10", rem)
	}
	// A valid WHERE still works and is charged.
	if _, err := db.Exec(rng, "SELECT AVG(v) FROM events WHERE grp = 'a'", 1.0); err != nil {
		t.Fatal(err)
	}
	if rem := db.Remaining(); rem != 9 {
		t.Errorf("remaining %v, want 9", rem)
	}
}

// Concurrent UserMeans readers racing ingestion must be race-free too
// (the serve layer's estimate path).
func TestUserMeansDuringInsert(t *testing.T) {
	db := newPopulatedDB(t, 50, 2)
	tab, err := db.TableByName("events")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tab.Insert(Str(fmt.Sprintf("x%d", i)), Float(1), Str("b")); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		xs, err := tab.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) < 50 {
			t.Errorf("lost users: %d", len(xs))
		}
	}
	close(stop)
	wg.Wait()
}
