package dpsql

import (
	"fmt"
	"strconv"
	"strings"
)

// AggKind enumerates the supported aggregate functions.
type AggKind int

// Supported aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMedian
	AggP25
	AggP75
	AggVar
	AggStdDev
	AggIQR
	AggMin
	AggMax
	AggQuantile
)

var aggNames = map[string]AggKind{
	"count":    AggCount,
	"sum":      AggSum,
	"avg":      AggAvg,
	"median":   AggMedian,
	"p25":      AggP25,
	"p75":      AggP75,
	"var":      AggVar,
	"stddev":   AggStdDev,
	"iqr":      AggIQR,
	"min":      AggMin,
	"max":      AggMax,
	"quantile": AggQuantile,
}

func (a AggKind) String() string {
	for name, k := range aggNames {
		if k == a {
			return strings.ToUpper(name)
		}
	}
	return fmt.Sprintf("AggKind(%d)", int(a))
}

// Expr is a boolean predicate over a row.
type Expr interface {
	// Eval evaluates the predicate against a row of table t.
	Eval(t *Table, row []Value) (bool, error)
	// evalShard evaluates the predicate over every row of one shard
	// snapshot, writing row i's verdict to sel[i] — the columnar scan
	// path: each node runs one tight loop over the typed column slices
	// instead of dispatching per row. It assumes validate(t) passed, at
	// which point evaluation cannot error (the only Eval errors are
	// unknown columns/operators and kind mismatches, all statically
	// checked), and it must agree with Eval row for row.
	evalShard(t *Table, sn shardSnap, sel []bool)
	// validate checks the predicate statically against t's schema
	// (columns exist, literal kinds are comparable, operators known), so
	// Exec can refuse an invalid query before any budget is spent.
	validate(t *Table) error
}

// CmpExpr is "column <op> literal".
type CmpExpr struct {
	Col string
	Op  string // = != < <= > >=
	Lit Value
}

// Eval implements Expr.
func (e *CmpExpr) Eval(t *Table, row []Value) (bool, error) {
	ix, err := t.ColumnIndex(e.Col)
	if err != nil {
		return false, err
	}
	c, err := row[ix].Compare(e.Lit)
	if err != nil {
		return false, err
	}
	switch e.Op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("%w: unknown operator %q", ErrSyntax, e.Op)
	}
}

// validate implements Expr.
func (e *CmpExpr) validate(t *Table) error {
	ix, err := t.ColumnIndex(e.Col)
	if err != nil {
		return err
	}
	// Mirror Value.Compare's kind rule: numeric compares with numeric,
	// string with string. The column's kind stands in for its cells.
	colNumeric := t.Columns[ix].Kind != KindString
	if colNumeric != e.Lit.IsNumeric() {
		return fmt.Errorf("dpsql: cannot compare %s with %s", t.Columns[ix].Kind, e.Lit.Kind)
	}
	switch e.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		return nil
	default:
		return fmt.Errorf("%w: unknown operator %q", ErrSyntax, e.Op)
	}
}

// evalShard implements Expr: one typed loop over the column, comparing
// against the literal with exactly Value.Compare's three-way rule
// (numeric compares on the F payload; NaN compares as equal to
// everything, Compare's default branch — evalShard reproduces that bit
// of weirdness rather than "fixing" it, because Eval is the twin).
func (e *CmpExpr) evalShard(t *Table, sn shardSnap, sel []bool) {
	ix, _ := t.ColumnIndex(e.Col) // validate() already resolved it
	var ltOK, eqOK, gtOK bool
	switch e.Op {
	case "=":
		eqOK = true
	case "!=":
		ltOK, gtOK = true, true
	case "<":
		ltOK = true
	case "<=":
		ltOK, eqOK = true, true
	case ">":
		gtOK = true
	case ">=":
		gtOK, eqOK = true, true
	}
	if t.Columns[ix].Kind == KindString {
		lit := e.Lit.S
		for i, v := range sn.cols[ix].ss {
			switch {
			case v < lit:
				sel[i] = ltOK
			case v > lit:
				sel[i] = gtOK
			default:
				sel[i] = eqOK
			}
		}
		return
	}
	lit := e.Lit.F
	if t.Columns[ix].Kind == KindInt {
		for i, iv := range sn.cols[ix].is {
			v := float64(iv)
			switch {
			case v < lit:
				sel[i] = ltOK
			case v > lit:
				sel[i] = gtOK
			default:
				sel[i] = eqOK
			}
		}
		return
	}
	for i, v := range sn.cols[ix].fs {
		switch {
		case v < lit:
			sel[i] = ltOK
		case v > lit:
			sel[i] = gtOK
		default:
			sel[i] = eqOK
		}
	}
}

// BinExpr is "left AND/OR right".
type BinExpr struct {
	Op          string // "and" | "or"
	Left, Right Expr
}

// Eval implements Expr.
func (e *BinExpr) Eval(t *Table, row []Value) (bool, error) {
	l, err := e.Left.Eval(t, row)
	if err != nil {
		return false, err
	}
	if e.Op == "and" && !l {
		return false, nil
	}
	if e.Op == "or" && l {
		return true, nil
	}
	return e.Right.Eval(t, row)
}

// validate implements Expr.
func (e *BinExpr) validate(t *Table) error {
	if err := e.Left.validate(t); err != nil {
		return err
	}
	return e.Right.validate(t)
}

// evalShard implements Expr: evaluate both sides' bitmaps and combine.
// Eval short-circuits the right side, but post-validate evaluation is
// pure and error-free, so evaluating it everywhere changes nothing but
// the clock — and keeps both children as single tight loops.
func (e *BinExpr) evalShard(t *Table, sn shardSnap, sel []bool) {
	e.Left.evalShard(t, sn, sel)
	tmp := make([]bool, len(sel))
	e.Right.evalShard(t, sn, tmp)
	if e.Op == "and" {
		for i, r := range tmp {
			sel[i] = sel[i] && r
		}
		return
	}
	for i, r := range tmp {
		sel[i] = sel[i] || r
	}
}

// NotExpr negates its operand.
type NotExpr struct{ Inner Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(t *Table, row []Value) (bool, error) {
	v, err := e.Inner.Eval(t, row)
	return !v, err
}

// evalShard implements Expr.
func (e *NotExpr) evalShard(t *Table, sn shardSnap, sel []bool) {
	e.Inner.evalShard(t, sn, sel)
	for i := range sel {
		sel[i] = !sel[i]
	}
}

// validate implements Expr.
func (e *NotExpr) validate(t *Table) error { return e.Inner.validate(t) }

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	Kind AggKind
	Col  string  // empty for COUNT(*)
	P    float64 // QUANTILE(col, p) probability; 0 otherwise
}

// Query is a parsed aggregation query.
type Query struct {
	Aggs    []AggSpec
	Table   string
	Where   Expr   // nil when absent
	GroupBy string // empty when absent
}

// Parse parses the supported SQL subset:
//
//	SELECT <agg>(<col>|*) [, <agg>(<col>|*)]* FROM <table>
//	  [WHERE <pred>] [GROUP BY <col>]
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("%w: trailing input at %s", ErrSyntax, p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// expectKeyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("%w: expected %s, got %s", ErrSyntax, strings.ToUpper(kw), t)
	}
	return nil
}

// atKeyword reports whether the lookahead is the given keyword.
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		spec, err := p.parseAggSpec()
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, spec)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("%w: expected table name, got %s", ErrSyntax, tbl)
	}
	q.Table = tbl.text

	if p.atKeyword("where") {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col := p.next()
		if col.kind != tokIdent {
			return nil, fmt.Errorf("%w: expected GROUP BY column, got %s", ErrSyntax, col)
		}
		q.GroupBy = col.text
	}
	return q, nil
}

// parseAggSpec parses one "agg(col)" or "COUNT(*)" item.
func (p *parser) parseAggSpec() (AggSpec, error) {
	aggTok := p.next()
	if aggTok.kind != tokIdent {
		return AggSpec{}, fmt.Errorf("%w: expected aggregate, got %s", ErrSyntax, aggTok)
	}
	agg, ok := aggNames[strings.ToLower(aggTok.text)]
	if !ok {
		return AggSpec{}, fmt.Errorf("%w: unknown aggregate %q", ErrSyntax, aggTok.text)
	}
	if t := p.next(); t.kind != tokLParen {
		return AggSpec{}, fmt.Errorf("%w: expected ( after aggregate, got %s", ErrSyntax, t)
	}
	spec := AggSpec{Kind: agg}
	switch t := p.next(); t.kind {
	case tokStar:
		if agg != AggCount {
			return AggSpec{}, fmt.Errorf("%w: only COUNT accepts *", ErrSyntax)
		}
	case tokIdent:
		spec.Col = t.text
	default:
		return AggSpec{}, fmt.Errorf("%w: expected column or *, got %s", ErrSyntax, t)
	}
	if spec.Kind == AggQuantile {
		if t := p.next(); t.kind != tokComma {
			return AggSpec{}, fmt.Errorf("%w: QUANTILE needs (column, p), got %s", ErrSyntax, t)
		}
		num := p.next()
		if num.kind != tokNumber {
			return AggSpec{}, fmt.Errorf("%w: QUANTILE probability must be numeric, got %s", ErrSyntax, num)
		}
		pv, err := strconv.ParseFloat(num.text, 64)
		if err != nil || !(pv > 0 && pv < 1) {
			return AggSpec{}, fmt.Errorf("%w: QUANTILE probability must be in (0,1), got %q", ErrSyntax, num.text)
		}
		spec.P = pv
	}
	if t := p.next(); t.kind != tokRParen {
		return AggSpec{}, fmt.Errorf("%w: expected ) , got %s", ErrSyntax, t)
	}
	return spec, nil
}

// parseOr handles the lowest precedence level: OR.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atKeyword("not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if t := p.next(); t.kind != tokRParen {
			return nil, fmt.Errorf("%w: expected ), got %s", ErrSyntax, t)
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	col := p.next()
	if col.kind != tokIdent {
		return nil, fmt.Errorf("%w: expected column in predicate, got %s", ErrSyntax, col)
	}
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("%w: expected comparison operator, got %s", ErrSyntax, op)
	}
	lit := p.next()
	var v Value
	switch lit.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad number %q", ErrSyntax, lit.text)
		}
		v = Float(f)
	case tokString:
		v = Str(lit.text)
	default:
		return nil, fmt.Errorf("%w: expected literal, got %s", ErrSyntax, lit)
	}
	return &CmpExpr{Col: col.text, Op: op.text, Lit: v}, nil
}
