package dpsql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the query parser never panics and that accepted
// queries satisfy basic well-formedness invariants. `go test` runs the
// seed corpus; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT AVG(x) FROM t",
		"SELECT COUNT(*), SUM(y) FROM t WHERE a = 1 AND (b < 2 OR NOT c >= 'z') GROUP BY d",
		"select median(v) from data where s = 'O''Brien'",
		"SELECT P99(x) FROM t",
		"SELECT AVG(x) FROM t WHERE x = -1.5e-3",
		"SELECT",
		"garbage input (((",
		"SELECT AVG(x) FROM t WHERE x ! 3",
		strings.Repeat("(", 50),
		"SELECT AVG(x) FROM t WHERE " + strings.Repeat("a=1 AND ", 30) + "b=2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		if len(q.Aggs) == 0 {
			t.Errorf("accepted query with no aggregates: %q", sql)
		}
		if q.Table == "" {
			t.Errorf("accepted query with no table: %q", sql)
		}
	})
}

// FuzzRun asserts the statement parser never panics.
func FuzzRun(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t (u STRING USER, x FLOAT)",
		"INSERT INTO t VALUES ('a', 1.5), ('b', -2)",
		"CREATE TABLE t (u STRING USER,)",
		"INSERT INTO t VALUES (",
		"DROP TABLE t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		db := NewDB()
		_ = db.Run(sql) // must not panic
	})
}
