package dpsql

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// FuzzParse asserts the query parser never panics and that accepted
// queries satisfy basic well-formedness invariants. `go test` runs the
// seed corpus; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT AVG(x) FROM t",
		"SELECT COUNT(*), SUM(y) FROM t WHERE a = 1 AND (b < 2 OR NOT c >= 'z') GROUP BY d",
		"select median(v) from data where s = 'O''Brien'",
		"SELECT P99(x) FROM t",
		"SELECT AVG(x) FROM t WHERE x = -1.5e-3",
		"SELECT",
		"garbage input (((",
		"SELECT AVG(x) FROM t WHERE x ! 3",
		strings.Repeat("(", 50),
		"SELECT AVG(x) FROM t WHERE " + strings.Repeat("a=1 AND ", 30) + "b=2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		if len(q.Aggs) == 0 {
			t.Errorf("accepted query with no aggregates: %q", sql)
		}
		if q.Table == "" {
			t.Errorf("accepted query with no table: %q", sql)
		}
	})
}

// groupedTwinQueries is the GROUP BY query pool the twin fuzz draws
// from. It covers NaN group keys (the float column f carries NaNs),
// groups emptied by the WHERE clause, groups under the 4-user floor
// (the rare group "t" has 3 users, so quantile aggregates error), and
// multi-aggregate SELECT lists.
var groupedTwinQueries = []string{
	"SELECT COUNT(*) FROM ev GROUP BY g",
	"SELECT AVG(v) FROM ev GROUP BY g",
	"SELECT MEDIAN(v), COUNT(*) FROM ev GROUP BY g",
	"SELECT COUNT(*) FROM ev GROUP BY f",       // float keys incl. NaN
	"SELECT AVG(v) FROM ev WHERE v < 0 GROUP BY g", // empties every group
	"SELECT SUM(v) FROM ev WHERE f < 2 GROUP BY g", // NaN rows filtered out
	"SELECT VAR(v), P75(v) FROM ev GROUP BY g",
	"SELECT COUNT(*) FROM ev WHERE g = 't' GROUP BY g",
}

// fuzzRows derives a deterministic grouped dataset from seed: 5 groups
// (one rare 3-user group "t" under the quantile floor), interleaved
// multi-row users, a float column with NaN group keys mixed in.
func fuzzRows(seed int64) [][]Value {
	rng := xrand.New(uint64(seed))
	nUsers := 8 + int(rng.Uint64()%40)
	nRows := 4 * nUsers
	groups := []string{"a", "b", "c", "d"}
	var rows [][]Value
	for i := 0; i < nRows; i++ {
		uid := fmt.Sprintf("u%03d", rng.Uint64()%uint64(nUsers))
		v := math.Exp(1 + rng.Gaussian())
		f := float64(rng.Uint64() % 3)
		if rng.Uint64()%7 == 0 {
			f = math.NaN()
		}
		rows = append(rows, []Value{Str(uid), Float(v), Str(groups[rng.Uint64()%uint64(len(groups))]), Float(f)})
	}
	// The rare group: three dedicated users seen only in "t".
	for i := 0; i < 3; i++ {
		rows = append(rows, []Value{Str(fmt.Sprintf("t%d", i)), Float(1 + float64(i)), Str("t"), Float(0)})
	}
	return rows
}

// sameGroupedResult compares released rows bit-for-bit, treating NaN as
// equal to itself (reflect.DeepEqual would not) — group keys can be NaN
// by construction.
func sameGroupedResult(a, b *Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	bits := func(x float64) uint64 { return math.Float64bits(x) }
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.HasGroup != rb.HasGroup || ra.Group.Kind != rb.Group.Kind ||
			ra.Group.S != rb.Group.S || bits(ra.Group.F) != bits(rb.Group.F) {
			return fmt.Errorf("row %d: group %v vs %v", i, ra.Group, rb.Group)
		}
		if len(ra.Values) != len(rb.Values) || bits(ra.Value) != bits(rb.Value) {
			return fmt.Errorf("row %d: values %v vs %v", i, ra.Values, rb.Values)
		}
		for j := range ra.Values {
			if bits(ra.Values[j]) != bits(rb.Values[j]) {
				return fmt.Errorf("row %d agg %d: %v vs %v", i, j, ra.Values[j], rb.Values[j])
			}
		}
	}
	return nil
}

// FuzzGroupedTwin asserts that for any dataset, contribution bound, and
// GROUP BY query, sharded twins (N=4, 16) release answers bit-for-bit
// identical to the single-shard twin — same rows, same group keys, same
// noise draws — or fail with the identical error; and that a sharded
// Export→Import→Export round-trip is lossless and answer-preserving.
func FuzzGroupedTwin(f *testing.F) {
	f.Add(int64(1), int8(0), uint8(0))
	f.Add(int64(2), int8(1), uint8(3))
	f.Add(int64(3), int8(2), uint8(2))
	f.Add(int64(4), int8(-1), uint8(4))
	f.Add(int64(5), int8(3), uint8(7))
	f.Add(int64(6), int8(0), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, boundSel int8, qSel uint8) {
		bound := []int{0, 1, 2, 3, -1}[int(uint8(boundSel))%5]
		sql := groupedTwinQueries[int(qSel)%len(groupedTwinQueries)]
		rows := fuzzRows(seed)

		build := func(shards int) *DB {
			db := NewDB()
			db.SetDefaultShards(shards)
			tab, err := db.Create("ev",
				[]Column{{Name: "uid", Kind: KindString}, {Name: "v", Kind: KindFloat}, {Name: "g", Kind: KindString}, {Name: "f", Kind: KindFloat}},
				"uid")
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.AppendRows(rows); err != nil {
				t.Fatal(err)
			}
			return db
		}
		run := func(db *DB) (*Result, error) {
			return db.ExecTraced(xrand.New(7), sql, 1, ExecOpts{GroupBound: bound})
		}

		db1 := build(1)
		r1, err1 := run(db1)
		for _, n := range []int{4, 16} {
			rn, errn := run(build(n))
			if (err1 == nil) != (errn == nil) || (err1 != nil && err1.Error() != errn.Error()) {
				t.Fatalf("%s bound=%d N=%d: error %v vs %v", sql, bound, n, errn, err1)
			}
			if err1 != nil {
				continue
			}
			if err := sameGroupedResult(r1, rn); err != nil {
				t.Fatalf("%s bound=%d N=%d: %v", sql, bound, n, err)
			}
		}

		// Export→Import→Export round-trip on a sharded twin: states equal,
		// answers (or errors) unchanged.
		db4 := build(4)
		st := db4.Export()[0]
		dbi := NewDB()
		dbi.SetDefaultShards(4)
		if _, err := dbi.Import(st); err != nil {
			t.Fatal(err)
		}
		st2 := dbi.Export()[0]
		if fmt.Sprintf("%v", st) != fmt.Sprintf("%v", st2) {
			t.Fatalf("%s: Export→Import→Export changed the state", sql)
		}
		ri, erri := run(dbi)
		if (err1 == nil) != (erri == nil) || (err1 != nil && err1.Error() != erri.Error()) {
			t.Fatalf("%s bound=%d imported: error %v vs %v", sql, bound, erri, err1)
		}
		if err1 == nil {
			if err := sameGroupedResult(r1, ri); err != nil {
				t.Fatalf("%s bound=%d imported twin: %v", sql, bound, err)
			}
		}
	})
}

// FuzzRun asserts the statement parser never panics.
func FuzzRun(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t (u STRING USER, x FLOAT)",
		"INSERT INTO t VALUES ('a', 1.5), ('b', -2)",
		"CREATE TABLE t (u STRING USER,)",
		"INSERT INTO t VALUES (",
		"DROP TABLE t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		db := NewDB()
		_ = db.Run(sql) // must not panic
	})
}
