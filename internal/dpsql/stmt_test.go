package dpsql

import (
	"errors"
	"math"
	"strconv"
	"testing"

	"repro/internal/xrand"
)

func TestRunCreateAndInsert(t *testing.T) {
	db := NewDB()
	if err := db.Run("CREATE TABLE readings (device STRING USER, site STRING, value FLOAT)"); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.TableByName("readings")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.UserCol != "device" {
		t.Errorf("user col = %q", tbl.UserCol)
	}
	if err := db.Run("INSERT INTO readings VALUES ('d1', 'north', 1.5), ('d2', 'south', -2.25)"); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestRunCreateTypeAliases(t *testing.T) {
	db := NewDB()
	if err := db.Run("CREATE TABLE t (u TEXT USER, a DOUBLE, b INTEGER, c VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.TableByName("t")
	kinds := []Kind{KindString, KindFloat, KindInt, KindString}
	for i, want := range kinds {
		if tbl.Columns[i].Kind != want {
			t.Errorf("col %d kind = %v, want %v", i, tbl.Columns[i].Kind, want)
		}
	}
}

func TestRunInsertIntegerIntoFloat(t *testing.T) {
	db := NewDB()
	if err := db.Run("CREATE TABLE t (u STRING USER, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Run("INSERT INTO t VALUES ('a', 3)"); err != nil {
		t.Errorf("integral literal into FLOAT column: %v", err)
	}
	if err := db.Run("INSERT INTO t VALUES ('a', -42)"); err != nil {
		t.Errorf("negative integral literal: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	db := NewDB()
	bad := []string{
		"",
		"DROP TABLE t",
		"CREATE TABLE",
		"CREATE TABLE t",
		"CREATE TABLE t (u STRING)", // no USER column
		"CREATE TABLE t (u STRING USER, v INT USER)", // two USER columns
		"CREATE TABLE t (u BOGUS USER)",
		"CREATE TABLE t (u STRING USER,)",
		"CREATE TABLE t (u STRING USER) extra",
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO t VALUES",
	}
	for _, sql := range bad {
		if err := db.Run(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
	// Arity and kind mismatches surface from Insert.
	if err := db.Run("CREATE TABLE t (u STRING USER, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Run("INSERT INTO t VALUES ('a')"); !errors.Is(err, ErrSchema) {
		t.Errorf("arity mismatch: %v", err)
	}
	if err := db.Run("INSERT INTO t VALUES (1.5, 2.5)"); !errors.Is(err, ErrSchema) {
		t.Errorf("kind mismatch: %v", err)
	}
}

func TestEndToEndSQLOnly(t *testing.T) {
	// Build and query a database using nothing but SQL strings.
	db := NewDB()
	if err := db.Run("CREATE TABLE m (u STRING USER, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	for u := 0; u < 500; u++ {
		v := 10 + rng.Gaussian()
		if err := db.Run(
			"INSERT INTO m VALUES ('u" + itoa(u) + "', " + ftoa(v) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(rng, "SELECT AVG(v) FROM m", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rows[0].Value-10) > 1 {
		t.Errorf("AVG = %v, want ~10", res.Rows[0].Value)
	}
}

func TestMultiAggregateExec(t *testing.T) {
	db := NewDB()
	if err := db.Run("CREATE TABLE t (u STRING USER, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	for u := 0; u < 1000; u++ {
		v := 100 + 5*rng.Gaussian()
		if err := db.Run("INSERT INTO t VALUES ('u" + itoa(u) + "', " + ftoa(v) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(rng, "SELECT COUNT(*), AVG(x), P25(x), P75(x) FROM t", 4.0)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if len(row.Values) != 4 {
		t.Fatalf("values = %d", len(row.Values))
	}
	if row.Value != row.Values[0] {
		t.Error("Value should mirror Values[0]")
	}
	if math.Abs(row.Values[0]-1000) > 50 {
		t.Errorf("COUNT = %v", row.Values[0])
	}
	if math.Abs(row.Values[1]-100) > 3 {
		t.Errorf("AVG = %v", row.Values[1])
	}
	if !(row.Values[2] < row.Values[1] && row.Values[1] < row.Values[3]) {
		t.Errorf("quartile ordering: %v", row.Values)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'f', 6, 64) }
