package dpsql

import (
	"fmt"
	"strconv"
	"strings"
)

// Run executes a non-private DDL/DML statement:
//
//	CREATE TABLE <name> (<col> <TYPE> [USER], ...)
//	INSERT INTO <name> VALUES (<lit>, ...) [, (<lit>, ...)]*
//
// Types are FLOAT, INT, and STRING; exactly one column must carry the USER
// marker designating the privacy unit. Statements touch stored data only —
// they release nothing, so they consume no privacy budget.
func (db *DB) Run(sql string) error {
	toks, err := lex(sql)
	if err != nil {
		return err
	}
	p := &parser{toks: toks}
	switch {
	case p.atKeyword("create"):
		return db.runCreate(p)
	case p.atKeyword("insert"):
		return db.runInsert(p)
	default:
		return fmt.Errorf("%w: expected CREATE or INSERT, got %s", ErrSyntax, p.peek())
	}
}

func (db *DB) runCreate(p *parser) error {
	p.next() // CREATE
	if err := p.expectKeyword("table"); err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("%w: expected table name, got %s", ErrSyntax, name)
	}
	if t := p.next(); t.kind != tokLParen {
		return fmt.Errorf("%w: expected (, got %s", ErrSyntax, t)
	}
	var cols []Column
	userCol := ""
	for {
		colName := p.next()
		if colName.kind != tokIdent {
			return fmt.Errorf("%w: expected column name, got %s", ErrSyntax, colName)
		}
		typeTok := p.next()
		if typeTok.kind != tokIdent {
			return fmt.Errorf("%w: expected column type, got %s", ErrSyntax, typeTok)
		}
		var kind Kind
		switch strings.ToLower(typeTok.text) {
		case "float", "double", "real":
			kind = KindFloat
		case "int", "integer", "bigint":
			kind = KindInt
		case "string", "text", "varchar":
			kind = KindString
		default:
			return fmt.Errorf("%w: unknown type %q", ErrSyntax, typeTok.text)
		}
		cols = append(cols, Column{Name: colName.text, Kind: kind})
		if p.atKeyword("user") {
			p.next()
			if userCol != "" {
				return fmt.Errorf("%w: multiple USER columns", ErrSchema)
			}
			userCol = colName.text
		}
		t := p.next()
		if t.kind == tokComma {
			continue
		}
		if t.kind == tokRParen {
			break
		}
		return fmt.Errorf("%w: expected , or ), got %s", ErrSyntax, t)
	}
	if p.peek().kind != tokEOF {
		return fmt.Errorf("%w: trailing input at %s", ErrSyntax, p.peek())
	}
	if userCol == "" {
		return fmt.Errorf("%w: CREATE TABLE needs exactly one USER column", ErrSchema)
	}
	_, err := db.Create(name.text, cols, userCol)
	return err
}

func (db *DB) runInsert(p *parser) error {
	p.next() // INSERT
	if err := p.expectKeyword("into"); err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("%w: expected table name, got %s", ErrSyntax, name)
	}
	t, err := db.TableByName(name.text)
	if err != nil {
		return err
	}
	if err := p.expectKeyword("values"); err != nil {
		return err
	}
	for {
		if tk := p.next(); tk.kind != tokLParen {
			return fmt.Errorf("%w: expected (, got %s", ErrSyntax, tk)
		}
		var vals []Value
		for {
			lit := p.next()
			switch lit.kind {
			case tokNumber:
				f, err := strconv.ParseFloat(lit.text, 64)
				if err != nil {
					return fmt.Errorf("%w: bad number %q", ErrSyntax, lit.text)
				}
				// Integral literals may land in INT columns; coerce by
				// position below via Table.Insert's kind rules.
				if f == float64(int64(f)) {
					vals = append(vals, Int(int64(f)))
				} else {
					vals = append(vals, Float(f))
				}
			case tokString:
				vals = append(vals, Str(lit.text))
			default:
				return fmt.Errorf("%w: expected literal, got %s", ErrSyntax, lit)
			}
			sep := p.next()
			if sep.kind == tokComma {
				continue
			}
			if sep.kind == tokRParen {
				break
			}
			return fmt.Errorf("%w: expected , or ), got %s", ErrSyntax, sep)
		}
		if err := t.Insert(vals...); err != nil {
			return err
		}
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.peek().kind != tokEOF {
		return fmt.Errorf("%w: trailing input at %s", ErrSyntax, p.peek())
	}
	return nil
}
