package dpsql

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// This file is the partitioned row store under Table: a table's rows live
// in N shards keyed by a hash of the user id, each shard guarded by its
// own RWMutex. Ingestion stripes across the per-shard locks instead of
// serializing on one table-wide lock, and release scans fan out over the
// shards and merge their partial per-user aggregates before the mechanism
// runs.
//
// Why merging is free (privacy): the universal estimators consume one
// contribution per user. Per-shard scans produce partial per-user
// aggregates (sum, count) that combine by addition, and the combined
// collapse is exactly the collapse a monolithic scan would have produced —
// the partition-then-merge view of decomposable statistics. The merge
// happens before the single mechanism invocation and the single ledger
// deduction, so shard count changes throughput, never noise semantics or
// privacy cost.
//
// Determinism: because users are routed by hash, all of one user's rows
// colocate in one shard in arrival order, so per-user aggregates are
// accumulated in exactly the order a single-shard table would use and the
// merged, id-sorted output is bit-for-bit identical across shard counts.
// Record-order readers (ColumnFloats/ColumnInts) recover global insertion
// order from per-row sequence numbers assigned at insert.

// MaxShards bounds a table's shard count; beyond this the per-shard
// bookkeeping costs more than the striping wins. The serve layer
// validates tenant configuration against the same limit, so a recorded
// topology is always the topology the table actually has.
const MaxShards = 1024

// tableShard is one partition of a table's row store. rows and seqs are
// parallel: seqs[i] is the table-global insertion sequence of rows[i],
// strictly increasing within a shard (sequence numbers are assigned under
// the shard lock). Stored rows are never mutated, so a slice-header copy
// taken under the read lock is a consistent point-in-time view.
type tableShard struct {
	mu   sync.RWMutex
	rows [][]Value
	seqs []uint64
}

// shardSnap is a point-in-time view of one shard.
type shardSnap struct {
	rows [][]Value
	seqs []uint64
}

// Fanout runs n independent jobs run(0..n-1), returning when all have
// completed. The serve layer installs a worker-pool-backed implementation
// via DB.SetFanout so release scans spread across cores; nil means
// sequential execution.
type Fanout func(n int, run func(i int))

// shardFor routes a user id to its shard: FNV-1a over the id, mod the
// shard count. The hash is stable across processes and restarts — WAL
// replay and snapshot import rebuild the same partitioning — and keyed on
// the user id so all of one user's rows colocate.
func (t *Table) shardFor(uid string) int {
	if t.nshards == 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(uid))
	return int(h.Sum64() % uint64(t.nshards))
}

// NumShards reports the table's shard count (fixed at creation).
func (t *Table) NumShards() int { return t.nshards }

// fanout returns the installed Fanout, if any.
func (t *Table) fanout() Fanout {
	if f := t.fan.Load(); f != nil {
		return f.(Fanout)
	}
	return nil
}

// runFan executes run(0..n-1) through the installed fan-out (sequentially
// when none is installed or there is nothing to parallelize).
func (t *Table) runFan(n int, run func(int)) {
	if f := t.fanout(); f != nil && n > 1 {
		f(n, run)
		return
	}
	for i := 0; i < n; i++ {
		run(i)
	}
}

// shardSnapshots captures a point-in-time view of every shard. Views are
// taken shard by shard, so the cut is per-shard consistent (a row is
// either wholly in or out) but not a global barrier against concurrent
// ingestion — the same semantics concurrent Insert vs Exec always had.
func (t *Table) shardSnapshots() []shardSnap {
	out := make([]shardSnap, len(t.shards))
	for i, sh := range t.shards {
		sh.mu.RLock()
		out[i] = shardSnap{rows: sh.rows, seqs: sh.seqs}
		sh.mu.RUnlock()
	}
	return out
}

// mergeBySeq restores global insertion order across per-shard snapshots
// with a k-way merge on the per-row sequence numbers (each shard's seqs
// are already sorted). shardOf, when non-nil, receives the shard index of
// each merged row — the topology carrier Export serializes. Small shard
// counts use a linear minimum scan (cache-friendly, no bookkeeping);
// large ones a binary min-heap over the shard cursors, so the merge is
// O(rows·k) only while k is small and O(rows·log k) past that.
func mergeBySeq(snaps []shardSnap, shardOf *[]int) [][]Value {
	if len(snaps) == 1 && shardOf == nil {
		return snaps[0].rows
	}
	total := 0
	for _, sn := range snaps {
		total += len(sn.rows)
	}
	out := make([][]Value, 0, total)
	if shardOf != nil {
		*shardOf = make([]int, 0, total)
	}
	emit := func(s int, sn shardSnap, i int) {
		out = append(out, sn.rows[i])
		if shardOf != nil {
			*shardOf = append(*shardOf, s)
		}
	}
	if len(snaps) <= 8 {
		idx := make([]int, len(snaps))
		for len(out) < total {
			best, bestSeq := -1, uint64(0)
			for s, sn := range snaps {
				if idx[s] >= len(sn.rows) {
					continue
				}
				if seq := sn.seqs[idx[s]]; best < 0 || seq < bestSeq {
					best, bestSeq = s, seq
				}
			}
			emit(best, snaps[best], idx[best])
			idx[best]++
		}
		return out
	}
	// Heap of (next seq, shard, cursor), keyed on seq.
	type cursor struct {
		seq   uint64
		shard int
		i     int
	}
	h := make([]cursor, 0, len(snaps))
	push := func(c cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[p].seq <= h[i].seq {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() cursor {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && h[l].seq < h[m].seq {
				m = l
			}
			if r < len(h) && h[r].seq < h[m].seq {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	for s, sn := range snaps {
		if len(sn.rows) > 0 {
			push(cursor{seq: sn.seqs[0], shard: s, i: 0})
		}
	}
	for len(h) > 0 {
		c := pop()
		sn := snaps[c.shard]
		emit(c.shard, sn, c.i)
		if next := c.i + 1; next < len(sn.rows) {
			push(cursor{seq: sn.seqs[next], shard: c.shard, i: next})
		}
	}
	return out
}

// shardUserAggs folds one shard's rows into partial per-user accumulators
// (sum over colIx, row count), in row order — all of a hash-routed user's
// rows live in this shard in arrival order, so the partial IS that user's
// full accumulator, built in the same order a monolithic scan would use.
// colIx < 0 accumulates row counts only.
func shardUserAggs(sn shardSnap, userIx, colIx int) map[string]*userAgg {
	users := make(map[string]*userAgg, 64)
	for _, row := range sn.rows {
		uid := row[userIx].String()
		u, ok := users[uid]
		if !ok {
			u = &userAgg{}
			users[uid] = u
		}
		if colIx >= 0 {
			u.sum += row[colIx].F
		}
		u.count++
	}
	return users
}

// mergeUserAggs combines per-shard partial accumulators under one id
// space, adding partials in shard order (deterministic even for a user
// whose rows span shards — possible only for pre-shard data replayed into
// shard 0), and returns the ids sorted. This is the replace-one-user
// reduction's sharded form: the merged collapse still changes in exactly
// one position between neighboring databases.
func mergeUserAggs(parts []map[string]*userAgg) (ids []string, users map[string]*userAgg) {
	if len(parts) == 1 {
		users = parts[0]
	} else {
		users = make(map[string]*userAgg, 64)
		for _, part := range parts {
			for uid, p := range part {
				u, ok := users[uid]
				if !ok {
					u = &userAgg{}
					users[uid] = u
				}
				u.sum += p.sum
				u.count += p.count
			}
		}
	}
	ids = make([]string, 0, len(users))
	for uid := range users {
		ids = append(ids, uid)
	}
	sort.Strings(ids)
	return ids, users
}

// ShardObserver receives one sample per shard of a fanned scan: the
// shard index, the row count the shard walked, and its wall time.
// Observers run on the fan-out workers, so they must be safe for
// concurrent use across shards.
type ShardObserver func(shard, rows int, d time.Duration)

// fanUserAggs scans every shard (in parallel under the installed fan-out)
// into partial per-user accumulators for colIx, reporting each shard's
// scan to every observer.
func (t *Table) fanUserAggs(colIx int, obs ...ShardObserver) []map[string]*userAgg {
	snaps := t.shardSnapshots()
	parts := make([]map[string]*userAgg, len(snaps))
	t.runFan(len(snaps), func(i int) {
		s0 := time.Now()
		parts[i] = shardUserAggs(snaps[i], t.userIx, colIx)
		for _, ob := range obs {
			ob(i, len(snaps[i].rows), time.Since(s0))
		}
	})
	return parts
}
