package dpsql

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// This file is the partitioned columnar store under Table: a table's rows
// live in N shards keyed by a hash of the user id, each shard guarded by
// its own RWMutex. Within a shard, storage is columnar — one typed slice
// per schema column ([]float64 / []int64 / []string) plus a
// dictionary-encoded user column and a parallel seq slice — so release
// scans are tight loops over contiguous memory with no per-row []Value
// boxing and no interface dispatch. Ingestion stripes across the
// per-shard locks instead of serializing on one table-wide lock, and
// release scans fan out over the shards (and, for large shards, over
// column-range chunks within a shard) and merge their partial per-user
// aggregates before the mechanism runs.
//
// Why merging is free (privacy): the universal estimators consume one
// contribution per user. Per-shard scans produce partial per-user
// aggregates (sum, count) that combine by addition, and the combined
// collapse is exactly the collapse a monolithic scan would have produced —
// the partition-then-merge view of decomposable statistics. The merge
// happens before the single mechanism invocation and the single ledger
// deduction, so shard count changes throughput, never noise semantics or
// privacy cost.
//
// Determinism: because users are routed by hash, all of one user's rows
// colocate in one shard in arrival order, so per-user aggregates are
// accumulated in exactly the order a single-shard table would use and the
// merged, id-sorted output is bit-for-bit identical across shard counts.
// The within-shard chunked collapse preserves the same bits: chunks first
// count and gather each user's values into one contiguous run in global
// row order, then a single left fold per user reproduces the sequential
// accumulation exactly (see shardUserAggsChunked). Record-order readers
// (ColumnFloats/ColumnInts) recover global insertion order from per-row
// sequence numbers assigned at insert.

// MaxShards bounds a table's shard count; beyond this the per-shard
// bookkeeping costs more than the striping wins. The serve layer
// validates tenant configuration against the same limit, so a recorded
// topology is always the topology the table actually has.
const MaxShards = 1024

// colData is the typed storage of one column within one shard: exactly
// one of the slices is in use, chosen by the column's Kind. Int columns
// store int64(Value.F) — Value carries ints in a float64, and every
// reader already truncated through int64(F), so the stored integer and
// the reconstructed Value are bit-identical to the row-store's.
type colData struct {
	fs []float64 // KindFloat
	is []int64   // KindInt
	ss []string  // KindString
}

// tableShard is one partition of a table's columnar store. cols, uix, and
// seqs are parallel by row index: seqs[i] is the table-global insertion
// sequence of row i, strictly increasing within a shard (assigned under
// the shard lock), and uix[i] is the row's user as a dense index into
// uids (the shard-local user dictionary, first-appearance order; umap is
// the writer-side reverse map). Dictionary-encoding the user column is
// what lets the per-user collapse run without a hash lookup per row.
// Stored cells are never mutated, so slice-header copies taken under the
// read lock are a consistent point-in-time view.
//
// Layout note: the struct is exactly two cache lines (128 bytes: 24 mutex
// + 4×24 slice headers + 8 map pointer), so the separately-allocated
// shards of one table never share a line and striped writers cannot
// false-share each other's locks — the same treatment Table.nextSeq got.
// A size test pins the multiple-of-64 invariant.
type tableShard struct {
	mu   sync.RWMutex
	cols []colData
	uix  []int32
	uids []string
	umap map[string]int32
	seqs []uint64
}

// newTableShard builds an empty shard for a ncols-wide schema.
func newTableShard(ncols int) *tableShard {
	return &tableShard{cols: make([]colData, ncols), umap: map[string]int32{}}
}

// appendRow stores one converted row. Callers hold the shard write lock.
func (sh *tableShard) appendRow(t *Table, row []Value, seq uint64) {
	for c, v := range row {
		col := &sh.cols[c]
		switch t.Columns[c].Kind {
		case KindString:
			col.ss = append(col.ss, v.S)
		case KindInt:
			col.is = append(col.is, int64(v.F))
		default:
			col.fs = append(col.fs, v.F)
		}
	}
	uid := row[t.userIx].String()
	u, ok := sh.umap[uid]
	if !ok {
		u = int32(len(sh.uids))
		sh.uids = append(sh.uids, uid)
		sh.umap[uid] = u
	}
	sh.uix = append(sh.uix, u)
	sh.seqs = append(sh.seqs, seq)
}

// shardSnap is a point-in-time view of one shard: n consistent rows, the
// column slice headers (deep-copied so a concurrent append's header
// update cannot race the view), and the user dictionary's first nu
// entries (every uix value below n points under nu).
type shardSnap struct {
	n    int
	nu   int
	cols []colData
	uix  []int32
	uids []string
	seqs []uint64
}

// view captures the shard's snapshot under its read lock.
func (sh *tableShard) view() shardSnap {
	sh.mu.RLock()
	sn := shardSnap{
		n:    len(sh.seqs),
		nu:   len(sh.uids),
		cols: append([]colData(nil), sh.cols...),
		uix:  sh.uix,
		uids: sh.uids,
		seqs: sh.seqs,
	}
	sh.mu.RUnlock()
	return sn
}

// uid reads row i's user id through the dictionary.
func (sn shardSnap) uid(i int) string { return sn.uids[sn.uix[i]] }

// float reads row i of a numeric column as its Value.F payload — the
// exact float64 the row store carried (int columns store int64(F), and
// float64(int64(F)) round-trips for every value convertRow admits).
func (sn shardSnap) float(kind Kind, ix, i int) float64 {
	if kind == KindInt {
		return float64(sn.cols[ix].is[i])
	}
	return sn.cols[ix].fs[i]
}

// value materializes row i's cell as a Value, bit-identical to the one
// the row store would have held.
func (sn shardSnap) value(kind Kind, ix, i int) Value {
	switch kind {
	case KindString:
		return Str(sn.cols[ix].ss[i])
	case KindInt:
		return Value{Kind: KindInt, F: float64(sn.cols[ix].is[i])}
	default:
		return Float(sn.cols[ix].fs[i])
	}
}

// keyString renders row i's cell the way Value.String would — the group
// key path, reading the typed column directly (free for string columns).
func (sn shardSnap) keyString(kind Kind, ix, i int) string {
	return sn.value(kind, ix, i).String()
}

// row materializes one full row — the persistence/merge path only; scans
// never box rows.
func (sn shardSnap) row(t *Table, i int) []Value {
	row := make([]Value, len(t.Columns))
	for c := range t.Columns {
		row[c] = sn.value(t.Columns[c].Kind, c, i)
	}
	return row
}

// Fanout runs n independent jobs run(0..n-1), returning when all have
// completed. The serve layer installs a worker-pool-backed implementation
// via DB.SetFanout so release scans spread across cores; nil means
// sequential execution. Implementations must tolerate nested calls: the
// within-shard chunked collapse fans again from inside a per-shard job
// (the pool's caller-driven work stealing makes that deadlock-free).
type Fanout func(n int, run func(i int))

// shardFor routes a user id to its shard: FNV-1a over the id, mod the
// shard count. The hash is stable across processes and restarts — WAL
// replay and snapshot import rebuild the same partitioning — and keyed on
// the user id so all of one user's rows colocate.
func (t *Table) shardFor(uid string) int {
	if t.nshards == 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(uid))
	return int(h.Sum64() % uint64(t.nshards))
}

// NumShards reports the table's shard count (fixed at creation).
func (t *Table) NumShards() int { return t.nshards }

// fanout returns the installed Fanout, if any.
func (t *Table) fanout() Fanout {
	if f := t.fan.Load(); f != nil {
		return f.(Fanout)
	}
	return nil
}

// runFan executes run(0..n-1) through the installed fan-out (sequentially
// when none is installed or there is nothing to parallelize).
func (t *Table) runFan(n int, run func(int)) {
	if f := t.fanout(); f != nil && n > 1 {
		f(n, run)
		return
	}
	for i := 0; i < n; i++ {
		run(i)
	}
}

// shardSnapshots captures a point-in-time view of every shard. Views are
// taken shard by shard, so the cut is per-shard consistent (a row is
// either wholly in or out) but not a global barrier against concurrent
// ingestion — the same semantics concurrent Insert vs Exec always had.
func (t *Table) shardSnapshots() []shardSnap {
	out := make([]shardSnap, len(t.shards))
	for i, sh := range t.shards {
		out[i] = sh.view()
	}
	return out
}

// mergeOrder walks per-shard snapshots in global insertion order with a
// k-way merge on the per-row sequence numbers (each shard's seqs are
// already sorted), calling emit(shard, row) once per row. Small shard
// counts use a linear minimum scan (cache-friendly, no bookkeeping);
// large ones a binary min-heap over the shard cursors, so the merge is
// O(rows·k) only while k is small and O(rows·log k) past that.
func mergeOrder(snaps []shardSnap, emit func(shard, row int)) {
	if len(snaps) == 1 {
		for i := 0; i < snaps[0].n; i++ {
			emit(0, i)
		}
		return
	}
	total := 0
	for _, sn := range snaps {
		total += sn.n
	}
	if len(snaps) <= 8 {
		idx := make([]int, len(snaps))
		for done := 0; done < total; done++ {
			best, bestSeq := -1, uint64(0)
			for s, sn := range snaps {
				if idx[s] >= sn.n {
					continue
				}
				if seq := sn.seqs[idx[s]]; best < 0 || seq < bestSeq {
					best, bestSeq = s, seq
				}
			}
			emit(best, idx[best])
			idx[best]++
		}
		return
	}
	// Heap of (next seq, shard, cursor), keyed on seq.
	type cursor struct {
		seq   uint64
		shard int
		i     int
	}
	h := make([]cursor, 0, len(snaps))
	push := func(c cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[p].seq <= h[i].seq {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() cursor {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && h[l].seq < h[m].seq {
				m = l
			}
			if r < len(h) && h[r].seq < h[m].seq {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	for s, sn := range snaps {
		if sn.n > 0 {
			push(cursor{seq: sn.seqs[0], shard: s, i: 0})
		}
	}
	for len(h) > 0 {
		c := pop()
		emit(c.shard, c.i)
		if next := c.i + 1; next < snaps[c.shard].n {
			push(cursor{seq: snaps[c.shard].seqs[next], shard: c.shard, i: next})
		}
	}
}

// mergeBySeq materializes the full row set in global insertion order —
// the persistence path (Export, snapshot). Rows are built fresh from the
// typed columns, bit-identical to the rows the store once held. shardOf,
// when non-nil, receives the shard index of each merged row — the
// topology carrier Export serializes.
func mergeBySeq(t *Table, snaps []shardSnap, shardOf *[]int) [][]Value {
	total := 0
	for _, sn := range snaps {
		total += sn.n
	}
	out := make([][]Value, 0, total)
	if shardOf != nil {
		*shardOf = make([]int, 0, total)
	}
	mergeOrder(snaps, func(s, i int) {
		out = append(out, snaps[s].row(t, i))
		if shardOf != nil {
			*shardOf = append(*shardOf, s)
		}
	})
	return out
}

// shardAggs is one shard's partial per-user accumulators, dense over the
// shard's user dictionary: aggs[u] belongs to uids[u].
type shardAggs struct {
	uids []string
	aggs []userAgg
}

// Chunked-scan tuning knobs. Shards at or above scanChunkMin rows split
// into ~scanChunkRows-row column-range chunks (at most scanChunkMax) that
// run as independent jobs on the fan-out, so one oversized shard stops
// being the straggler that bounds the whole scan. Vars, not consts, so
// the equivalence tests can force the chunked path onto small fixtures.
var (
	scanChunkRows = 4096
	scanChunkMin  = 8192
	scanChunkMax  = 32
)

// chunksFor picks the chunk count for an n-row shard (1 = don't chunk).
func chunksFor(n int) int {
	if n < scanChunkMin {
		return 1
	}
	k := (n + scanChunkRows - 1) / scanChunkRows
	if k > scanChunkMax {
		k = scanChunkMax
	}
	if k < 2 {
		return 1
	}
	return k
}

// shardUserAggs folds one shard's rows into partial per-user accumulators
// (sum over colIx, row count), in row order — all of a hash-routed user's
// rows live in this shard in arrival order, so the partial IS that user's
// full accumulator, built in the same order a monolithic scan would use.
// colIx < 0 accumulates row counts only. Large shards take the chunked
// parallel path; the bits are identical either way.
func (t *Table) shardUserAggs(sn shardSnap, colIx int) shardAggs {
	if chunksFor(sn.n) > 1 && t.fanout() != nil {
		return t.shardUserAggsChunked(sn, colIx)
	}
	return t.shardUserAggsSeq(sn, colIx)
}

// shardUserAggsSeq is the single-pass collapse: one dense accumulator per
// dictionary user, indexed directly — no hash lookup in the loop.
func (t *Table) shardUserAggsSeq(sn shardSnap, colIx int) shardAggs {
	aggs := make([]userAgg, sn.nu)
	switch {
	case colIx < 0:
		for _, u := range sn.uix {
			aggs[u].count++
		}
	case t.Columns[colIx].Kind == KindInt:
		is := sn.cols[colIx].is
		for i, u := range sn.uix {
			a := &aggs[u]
			a.sum += float64(is[i])
			a.count++
		}
	default:
		fs := sn.cols[colIx].fs
		for i, u := range sn.uix {
			a := &aggs[u]
			a.sum += fs[i]
			a.count++
		}
	}
	return shardAggs{uids: sn.uids, aggs: aggs}
}

// shardUserAggsChunked is the work-stealing within-shard collapse, exact
// to the bit despite float addition being non-associative. Naive chunked
// partial sums would change the fold shape for a user whose rows span a
// chunk boundary ((a+b)+(c+d) vs ((a+b)+c)+d), so instead:
//
//  1. chunks count each user's rows in parallel (integer counts — exact);
//  2. a prefix pass turns the counts into per-(chunk, user) write
//     offsets into one gather buffer, giving every user a contiguous run
//     in global row order;
//  3. chunks scatter their column values into the runs in parallel, and
//  4. a final parallel pass left-folds each user's run — the identical
//     sequence of additions the sequential scan performs.
//
// The phases fan on the same pool as the per-shard fan (nested calls are
// caller-driven, so they cannot deadlock).
func (t *Table) shardUserAggsChunked(sn shardSnap, colIx int) shardAggs {
	n, nu := sn.n, sn.nu
	k := chunksFor(n)
	lo := func(c int) int { return c * n / k }
	hi := func(c int) int { return (c + 1) * n / k }

	// Phase 1: per-chunk, per-user row counts.
	cnt := make([][]int32, k)
	t.runFan(k, func(c int) {
		cc := make([]int32, nu)
		for _, u := range sn.uix[lo(c):hi(c)] {
			cc[u]++
		}
		cnt[c] = cc
	})
	aggs := make([]userAgg, nu)
	if colIx < 0 {
		for _, cc := range cnt {
			for u, v := range cc {
				aggs[u].count += int(v)
			}
		}
		return shardAggs{uids: sn.uids, aggs: aggs}
	}

	// Prefix pass: starts[u] is user u's run start; cnt[c][u] becomes
	// chunk c's write cursor inside that run (chunk order == row order).
	starts := make([]int32, nu+1)
	for u := 0; u < nu; u++ {
		total := int32(0)
		for c := 0; c < k; c++ {
			cu := cnt[c][u]
			cnt[c][u] = starts[u] + total
			total += cu
		}
		starts[u+1] = starts[u] + total
		aggs[u].count = int(total)
	}

	// Phase 2: scatter column values into the per-user runs.
	buf := make([]float64, n)
	isInt := t.Columns[colIx].Kind == KindInt
	t.runFan(k, func(c int) {
		pos := cnt[c]
		if isInt {
			is := sn.cols[colIx].is
			for i := lo(c); i < hi(c); i++ {
				u := sn.uix[i]
				buf[pos[u]] = float64(is[i])
				pos[u]++
			}
		} else {
			fs := sn.cols[colIx].fs
			for i := lo(c); i < hi(c); i++ {
				u := sn.uix[i]
				buf[pos[u]] = fs[i]
				pos[u]++
			}
		}
	})

	// Phase 3: left-fold each user's run, fanned over user ranges.
	uk := k
	if uk > nu {
		uk = nu
	}
	if uk < 1 {
		uk = 1
	}
	t.runFan(uk, func(c int) {
		for u := c * nu / uk; u < (c+1)*nu/uk; u++ {
			s := 0.0
			for _, v := range buf[starts[u]:starts[u+1]] {
				s += v
			}
			aggs[u].sum = s
		}
	})
	return shardAggs{uids: sn.uids, aggs: aggs}
}

// mergeUserAggs combines per-shard partial accumulators under one id
// space, adding partials in shard order (deterministic even for a user
// whose rows span shards — possible only for pre-shard data replayed into
// shard 0), and returns ids sorted with the accumulators in lockstep.
// This is the replace-one-user reduction's sharded form: the merged
// collapse still changes in exactly one position between neighboring
// databases.
func mergeUserAggs(parts []shardAggs) ([]string, []userAgg) {
	var (
		ids  []string
		aggs []userAgg
	)
	if len(parts) == 1 {
		ids = parts[0].uids
		aggs = parts[0].aggs
	} else {
		// Concatenate in shard order, then sort with the concatenation
		// index as tiebreak: equal uids (a user whose rows landed in more
		// than one shard — impossible under hash routing, but this merge
		// does not rely on that) stay in shard order and their partials
		// combine in that order below, exactly the fold a single pass in
		// shard order would produce. Duplicates aside, this replaces a
		// per-user map with one sort — much cheaper per release.
		total := 0
		for _, p := range parts {
			total += len(p.uids)
		}
		ids = make([]string, 0, total)
		aggs = make([]userAgg, 0, total)
		for _, p := range parts {
			ids = append(ids, p.uids...)
			aggs = append(aggs, p.aggs...)
		}
	}
	ord := make([]int, len(ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if ids[ia] != ids[ib] {
			return ids[ia] < ids[ib]
		}
		return ia < ib
	})
	outIds := make([]string, 0, len(ids))
	outAggs := make([]userAgg, 0, len(ids))
	for _, j := range ord {
		if n := len(outIds); n > 0 && outIds[n-1] == ids[j] {
			outAggs[n-1].sum += aggs[j].sum
			outAggs[n-1].count += aggs[j].count
			continue
		}
		outIds = append(outIds, ids[j])
		outAggs = append(outAggs, aggs[j])
	}
	return outIds, outAggs
}

// ShardObserver receives one sample per shard of a fanned scan: the
// shard index, the row count the shard walked, and its wall time.
// Observers run on the fan-out workers, so they must be safe for
// concurrent use across shards. A chunked shard still reports one sample
// covering all its chunks.
type ShardObserver func(shard, rows int, d time.Duration)

// fanUserAggs scans every shard (in parallel under the installed fan-out)
// into partial per-user accumulators for colIx, reporting each shard's
// scan to every observer.
func (t *Table) fanUserAggs(colIx int, obs ...ShardObserver) []shardAggs {
	snaps := t.shardSnapshots()
	parts := make([]shardAggs, len(snaps))
	t.runFan(len(snaps), func(i int) {
		s0 := time.Now()
		parts[i] = t.shardUserAggs(snaps[i], colIx)
		for _, ob := range obs {
			ob(i, snaps[i].n, time.Since(s0))
		}
	})
	return parts
}
