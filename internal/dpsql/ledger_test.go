package dpsql

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/dp"
	"repro/internal/xrand"
)

func seedLedgerTable(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Run(`CREATE TABLE m (uid STRING USER, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	tab, err := db.TableByName("m")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for u := 0; u < 200; u++ {
		uid := fmt.Sprintf("u%03d", u)
		if err := tab.Insert(Str(uid), Float(50+rng.Gaussian())); err != nil {
			t.Fatal(err)
		}
	}
}

// Exec must charge whatever composition backend is installed: a zCDP
// ledger prices each eps query at eps^2/2 in rho, so the same nominal
// budget affords far more small queries than basic composition.
func TestExecChargesZCDPLedger(t *testing.T) {
	db := NewDB()
	seedLedgerTable(t, db)
	led, err := dp.NewZCDPLedger(0.5, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	db.SetLedger(led)
	rng := xrand.New(6)

	const eps = 0.05
	if _, err := db.Exec(rng, "SELECT AVG(v) FROM m", eps); err != nil {
		t.Fatal(err)
	}
	if got, want := led.Spent(), eps*eps/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("one query spent rho=%v, want %v", got, want)
	}
	if got, want := db.Remaining(), led.Remaining(); got != want {
		t.Errorf("DB.Remaining() = %v, ledger says %v", got, want)
	}
	// Exhaust: the refusal is ErrBudgetExhausted with rho in the message.
	var lastErr error
	for i := 0; i < 10000 && lastErr == nil; i++ {
		_, lastErr = db.Exec(rng, "SELECT COUNT(*) FROM m", eps)
	}
	if !errors.Is(lastErr, dp.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", lastErr)
	}
}

// SetAccountant remains the legacy pure-eps path and shares state with the
// accountant it wraps.
func TestSetAccountantSharesState(t *testing.T) {
	db := NewDB()
	seedLedgerTable(t, db)
	acct, err := dp.NewAccountant(1)
	if err != nil {
		t.Fatal(err)
	}
	db.SetAccountant(acct)
	if _, err := db.Exec(xrand.New(7), "SELECT COUNT(*) FROM m", 0.25); err != nil {
		t.Fatal(err)
	}
	if got := acct.Spent(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("accountant saw spent=%v, want 0.25", got)
	}
	if got := db.Ledger().Unit(); got != dp.UnitEps {
		t.Errorf("Unit() = %v, want eps", got)
	}
}
