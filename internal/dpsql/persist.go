package dpsql

import (
	"fmt"
	"sort"
)

// This file is the persistence face of the schema layer: a table can be
// exported as a serializable TableState (what the durable store's
// snapshots hold) and a database rebuilt from one on boot. Export hands
// out the live row slice — safe because rows are append-only and stored
// rows are never mutated — so snapshotting is O(1) in the row count until
// the state is actually serialized.

// TableState is the serializable snapshot of one table: full schema plus
// every stored row. Rows use Value's compact JSON encoding.
type TableState struct {
	Name    string    `json:"name"`
	Columns []Column  `json:"columns"`
	UserCol string    `json:"user_col"`
	Rows    [][]Value `json:"rows,omitempty"`
}

// Export captures the table's schema and a consistent point-in-time row
// snapshot. The returned Rows share the table's backing array and must be
// treated as immutable.
func (t *Table) Export() TableState {
	return TableState{
		Name:    t.Name,
		Columns: append([]Column(nil), t.Columns...),
		UserCol: t.UserCol,
		Rows:    t.snapshot(),
	}
}

// Export captures every table in the database, sorted by name — the
// database half of a durable snapshot.
func (db *DB) Export() []TableState {
	db.mu.RLock()
	tabs := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tabs = append(tabs, t)
	}
	db.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].Name < tabs[j].Name })
	out := make([]TableState, len(tabs))
	for i, t := range tabs {
		out[i] = t.Export()
	}
	return out
}

// Import rebuilds one table from a snapshot state: schema validation runs
// through the same Create path a live DDL request uses, and every row is
// re-validated on append, so a hand-edited or corrupted snapshot cannot
// smuggle in rows the schema would have refused.
func (db *DB) Import(st TableState) (*Table, error) {
	t, err := db.Create(st.Name, st.Columns, st.UserCol)
	if err != nil {
		return nil, err
	}
	if err := t.AppendRows(st.Rows); err != nil {
		return nil, fmt.Errorf("dpsql: importing table %q: %w", st.Name, err)
	}
	return t, nil
}
