package dpsql

import (
	"fmt"
	"sort"
)

// This file is the persistence face of the schema layer: a table can be
// exported as a serializable TableState (what the durable store's
// snapshots hold) and a database rebuilt from one on boot. Rows are
// flattened into global insertion order (merged across shards by sequence
// number) with a parallel shard index per row, so a snapshot both
// round-trips the exact row order a deterministic release consumes and
// carries the partition topology; importing under a different shard count
// simply ignores the recorded placement and reshards by hash.

// TableState is the serializable snapshot of one table: full schema,
// shard topology, and every stored row in global insertion order. Rows
// use Value's compact JSON encoding. Shards is the partition count
// (0 means 1 — the pre-shard encoding, which this struct remains
// byte-compatible with for single-shard tables); ShardOf, parallel to
// Rows, records each row's shard so Import rebuilds the same
// partitioning. A missing or mismatched ShardOf reshards by user-id hash.
type TableState struct {
	Name    string    `json:"name"`
	Columns []Column  `json:"columns"`
	UserCol string    `json:"user_col"`
	Shards  int       `json:"shards,omitempty"`
	Rows    [][]Value `json:"rows,omitempty"`
	ShardOf []int     `json:"shard_of,omitempty"`
}

// Export captures the table's schema, shard topology, and a consistent
// point-in-time row snapshot in global insertion order. Rows are
// materialized fresh from the typed column shards (the wire format stays
// row-oriented regardless of the in-memory layout), bit-identical to the
// rows the table was fed. Single-shard tables omit the topology fields,
// so their snapshots are byte-identical to the pre-columnar, pre-shard
// encoding.
func (t *Table) Export() TableState {
	st := TableState{
		Name:    t.Name,
		Columns: append([]Column(nil), t.Columns...),
		UserCol: t.UserCol,
	}
	if t.nshards == 1 {
		st.Rows = t.snapshot()
		return st
	}
	st.Shards = t.nshards
	st.Rows = mergeBySeq(t, t.shardSnapshots(), &st.ShardOf)
	return st
}

// Export captures every table in the database, sorted by name — the
// database half of a durable snapshot.
func (db *DB) Export() []TableState {
	db.mu.RLock()
	tabs := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tabs = append(tabs, t)
	}
	db.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].Name < tabs[j].Name })
	out := make([]TableState, len(tabs))
	for i, t := range tabs {
		out[i] = t.Export()
	}
	return out
}

// Import rebuilds one table from a snapshot state: schema validation runs
// through the same Create path a live DDL request uses, and every row is
// re-validated on append, so a hand-edited or corrupted snapshot cannot
// smuggle in rows the schema would have refused.
//
// Topology: the rebuilt table gets the DB's default shard count when one
// is configured (the tenant's topology is authoritative), falling back to
// the state's own. When the recorded placement matches the target count,
// rows land in exactly the shards they came from — replay rebuilds the
// same partitioning, including pre-shard rows recorded in shard 0. When
// the counts differ (or the state predates sharding) the rows reshard by
// user-id hash: resizing a topology is a pure storage reorganization,
// invisible to releases because every reader merges shards anyway.
func (db *DB) Import(st TableState) (*Table, error) {
	target := db.DefaultShards()
	if target == 0 {
		target = st.Shards
	}
	t, err := db.CreateSharded(st.Name, st.Columns, st.UserCol, target)
	if err != nil {
		return nil, err
	}
	stShards := st.Shards
	if stShards < 1 {
		stShards = 1
	}
	shardOf := st.ShardOf
	if stShards != t.NumShards() || len(shardOf) != len(st.Rows) {
		shardOf = nil // topology changed (or pre-shard state): reshard by hash
	}
	if err := t.appendRouted(st.Rows, shardOf); err != nil {
		return nil, fmt.Errorf("dpsql: importing table %q: %w", st.Name, err)
	}
	return t, nil
}
