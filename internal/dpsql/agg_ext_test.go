package dpsql

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

// Tests for the extended aggregates: IQR, QUANTILE, MIN, MAX.

func TestAggIQR(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(91)
	res, err := db.Exec(rng, "SELECT IQR(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Eng salaries are N(100000, 5000^2): IQR ~ 1.349*5000 ~ 6745, but the
	// per-user mean of 1-3 rows shrinks the variance; accept a broad band.
	got := res.Rows[0].Value
	if got < 1000 || got > 20000 {
		t.Errorf("IQR(salary) = %v, want O(5000)", got)
	}
}

func TestAggQuantile(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(92)
	res, err := db.Exec(rng,
		"SELECT QUANTILE(salary, 0.5), QUANTILE(salary, 0.9) FROM salaries WHERE dept = 'eng'", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	p50, p90 := res.Rows[0].Values[0], res.Rows[0].Values[1]
	if math.Abs(p50-100000) > 10000 {
		t.Errorf("median salary %v, want ~100000", p50)
	}
	if p90 < p50 {
		t.Errorf("p90 (%v) below p50 (%v)", p90, p50)
	}
}

func TestAggQuantileMatchesMedianAlias(t *testing.T) {
	// QUANTILE(x, 0.5) and MEDIAN(x) must run the same mechanism: with the
	// same seed they release the same value.
	db := newSalaryDB(t)
	r1, err := db.Exec(xrand.New(93), "SELECT QUANTILE(salary, 0.5) FROM salaries", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Exec(xrand.New(93), "SELECT MEDIAN(salary) FROM salaries", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0].Value != r2.Rows[0].Value {
		t.Errorf("QUANTILE(.,0.5)=%v but MEDIAN=%v under the same seed",
			r1.Rows[0].Value, r2.Rows[0].Value)
	}
}

func TestAggMinMaxOrdering(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(94)
	res, err := db.Exec(rng,
		"SELECT MIN(salary), MEDIAN(salary), MAX(salary) FROM salaries", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	lo, mid, hi := res.Rows[0].Values[0], res.Rows[0].Values[1], res.Rows[0].Values[2]
	// MIN/MAX are conservative extreme quantiles (Algorithm 2 clamps the
	// rank), but the ordering MIN <= MEDIAN <= MAX should still hold with
	// slack at these budgets.
	if !(lo <= mid+5000 && mid <= hi+5000) {
		t.Errorf("ordering violated: min=%v median=%v max=%v", lo, mid, hi)
	}
}

func TestAggQuantileParseErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT QUANTILE(salary) FROM salaries",         // missing p
		"SELECT QUANTILE(salary, 1.5) FROM salaries",    // p out of range
		"SELECT QUANTILE(salary, 0) FROM salaries",      // p = 0
		"SELECT QUANTILE(salary, 'x') FROM salaries",    // non-numeric
		"SELECT QUANTILE(salary, 0.5, 3) FROM salaries", // extra arg
	} {
		if _, err := Parse(q); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: want ErrSyntax, got %v", q, err)
		}
	}
}

func TestAggIQRGroupBy(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(95)
	res, err := db.Exec(rng, "SELECT IQR(salary) FROM salaries GROUP BY dept", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 groups, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Value < 0 {
			t.Errorf("group %v: negative IQR %v", row.Group, row.Value)
		}
	}
}

func TestAggExtendedStrings(t *testing.T) {
	// The new kinds round-trip through String() via aggNames.
	for _, k := range []AggKind{AggIQR, AggMin, AggMax, AggQuantile} {
		if s := k.String(); s == "" || s[0] == 'A' {
			t.Errorf("AggKind %d has no name: %q", int(k), s)
		}
	}
}
