package dpsql

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

// ---------- Value ----------

func TestValueString(t *testing.T) {
	if Float(1.5).String() != "1.5" {
		t.Error("float")
	}
	if Int(42).String() != "42" {
		t.Error("int")
	}
	if Str("x").String() != "x" {
		t.Error("string")
	}
}

func TestValueCompare(t *testing.T) {
	if c, err := Float(1).Compare(Float(2)); err != nil || c != -1 {
		t.Error("numeric compare")
	}
	if c, err := Int(3).Compare(Float(3)); err != nil || c != 0 {
		t.Error("int/float compare")
	}
	if c, err := Str("a").Compare(Str("b")); err != nil || c != -1 {
		t.Error("string compare")
	}
	if _, err := Str("a").Compare(Float(1)); err == nil {
		t.Error("mixed compare should fail")
	}
}

// ---------- Schema ----------

func newSalaryDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.Create("salaries", []Column{
		{Name: "user_id", Kind: KindString},
		{Name: "dept", Kind: KindString},
		{Name: "salary", Kind: KindFloat},
	}, "user_id")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	for u := 0; u < 2000; u++ {
		dept := "eng"
		base := 100000.0
		if u%3 == 0 {
			dept = "sales"
			base = 70000
		}
		// 1-3 salary rows per user (e.g. multiple pay periods).
		rows := 1 + u%3
		for r := 0; r < rows; r++ {
			sal := base + 5000*rng.Gaussian()
			if err := tbl.Insert(Str(fmt.Sprintf("u%d", u)), Str(dept), Float(sal)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestSchemaErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.Create("t", nil, "u"); !errors.Is(err, ErrSchema) {
		t.Error("empty schema")
	}
	if _, err := db.Create("t", []Column{{"a", KindFloat}}, "missing"); !errors.Is(err, ErrSchema) {
		t.Error("missing user col")
	}
	if _, err := db.Create("t", []Column{{"a", KindFloat}, {"A", KindInt}}, "a"); !errors.Is(err, ErrSchema) {
		t.Error("duplicate column (case-insensitive)")
	}
	if _, err := db.Create("ok", []Column{{"u", KindString}}, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("OK", []Column{{"u", KindString}}, "u"); !errors.Is(err, ErrSchema) {
		t.Error("duplicate table")
	}
	if _, err := db.TableByName("nope"); !errors.Is(err, ErrNoTable) {
		t.Error("unknown table")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := NewDB()
	tbl, err := db.Create("t", []Column{{"u", KindString}, {"x", KindFloat}, {"k", KindInt}}, "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Str("a"), Float(1.5), Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Str("a"), Int(3), Int(2)); err != nil {
		t.Errorf("int into float column should coerce: %v", err)
	}
	if err := tbl.Insert(Str("a"), Float(1), Float(2.5)); err == nil {
		t.Error("non-integral float into int column should fail")
	}
	if err := tbl.Insert(Str("a"), Str("x"), Int(1)); err == nil {
		t.Error("string into float column should fail")
	}
	if err := tbl.Insert(Str("a")); err == nil {
		t.Error("arity mismatch should fail")
	}
}

// ---------- Lexer / Parser ----------

func TestParseBasic(t *testing.T) {
	q, err := Parse("SELECT AVG(salary) FROM salaries")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != AggAvg || q.Aggs[0].Col != "salary" ||
		q.Table != "salaries" || q.Where != nil || q.GroupBy != "" {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseMultiAggregate(t *testing.T) {
	q, err := Parse("SELECT COUNT(*), AVG(salary), P75(salary) FROM salaries")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	if q.Aggs[0].Kind != AggCount || q.Aggs[1].Kind != AggAvg || q.Aggs[2].Kind != AggP75 {
		t.Errorf("parsed %+v", q.Aggs)
	}
}

func TestParseFull(t *testing.T) {
	q, err := Parse("select sum(salary) from salaries where dept = 'eng' and salary > 50000.5 group by dept")
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggs[0].Kind != AggSum || q.GroupBy != "dept" || q.Where == nil {
		t.Errorf("parsed %+v", q)
	}
	bin, ok := q.Where.(*BinExpr)
	if !ok || bin.Op != "and" {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggs[0].Kind != AggCount || q.Aggs[0].Col != "" {
		t.Errorf("parsed %+v", q)
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) should fail")
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// OR is the root: a=1 OR (b=2 AND c=3).
	root, ok := q.Where.(*BinExpr)
	if !ok || root.Op != "or" {
		t.Fatalf("root = %#v", q.Where)
	}
	if inner, ok := root.Right.(*BinExpr); !ok || inner.Op != "and" {
		t.Fatalf("right = %#v", root.Right)
	}
	q2, err := Parse("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if root2, ok := q2.Where.(*BinExpr); !ok || root2.Op != "and" {
		t.Fatalf("paren grouping failed: %#v", q2.Where)
	}
}

func TestParseStringsAndEscapes(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM t WHERE name = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(*CmpExpr)
	if cmp.Lit.S != "O'Brien" {
		t.Errorf("escape: %q", cmp.Lit.S)
	}
}

func TestParseNumbers(t *testing.T) {
	for _, lit := range []string{"-5", "3.25", "1e3", "-2.5E-2"} {
		q, err := Parse("SELECT COUNT(*) FROM t WHERE x = " + lit)
		if err != nil {
			t.Fatalf("%s: %v", lit, err)
		}
		if q.Where.(*CmpExpr).Lit.Kind != KindFloat {
			t.Errorf("%s: wrong kind", lit)
		}
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT BOGUS(x) FROM t",
		"SELECT AVG(x FROM t",
		"SELECT AVG(x) FROM",
		"SELECT AVG(x) FROM t WHERE",
		"SELECT AVG(x) FROM t WHERE x",
		"SELECT AVG(x) FROM t WHERE x =",
		"SELECT AVG(x) FROM t WHERE x = 'unterminated",
		"SELECT AVG(x) FROM t GROUP",
		"SELECT AVG(x) FROM t GROUP BY",
		"SELECT AVG(x) FROM t trailing garbage",
		"SELECT AVG(x) FROM t WHERE x ! 3",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%q should not parse", sql)
		}
	}
}

// ---------- Execution ----------

func TestExecAvg(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(1)
	res, err := db.Exec(rng, "SELECT AVG(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0].Value; math.Abs(got-100000) > 3000 {
		t.Errorf("AVG = %v, want ~100000", got)
	}
}

func TestExecSum(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(2)
	tbl, _ := db.TableByName("salaries")
	// True total over all rows.
	var trueSum float64
	for _, row := range tbl.snapshot() {
		trueSum += row[2].F
	}
	res, err := db.Exec(rng, "SELECT SUM(salary) FROM salaries", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0].Value
	if math.Abs(got-trueSum)/trueSum > 0.05 {
		t.Errorf("SUM = %v, want ~%v", got, trueSum)
	}
}

func TestExecCountUsers(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(3)
	res, err := db.Exec(rng, "SELECT COUNT(*) FROM salaries", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 2000 distinct users.
	if got := res.Rows[0].Value; math.Abs(got-2000) > 20 {
		t.Errorf("COUNT = %v, want ~2000 users", got)
	}
}

func TestExecGroupBy(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(4)
	res, err := db.Exec(rng, "SELECT AVG(salary) FROM salaries GROUP BY dept", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	byKey := map[string]float64{}
	for _, r := range res.Rows {
		if !r.HasGroup {
			t.Error("missing group key")
		}
		byKey[r.Group.String()] = r.Value
	}
	if math.Abs(byKey["eng"]-100000) > 5000 {
		t.Errorf("eng avg = %v", byKey["eng"])
	}
	if math.Abs(byKey["sales"]-70000) > 5000 {
		t.Errorf("sales avg = %v", byKey["sales"])
	}
}

func TestExecMedianAndQuartiles(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(5)
	med, err := db.Exec(rng, "SELECT MEDIAN(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p25, err := db.Exec(rng, "SELECT P25(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p75, err := db.Exec(rng, "SELECT P75(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !(p25.Rows[0].Value < med.Rows[0].Value && med.Rows[0].Value < p75.Rows[0].Value) {
		t.Errorf("quartile ordering violated: %v %v %v",
			p25.Rows[0].Value, med.Rows[0].Value, p75.Rows[0].Value)
	}
	if math.Abs(med.Rows[0].Value-100000) > 3000 {
		t.Errorf("median = %v", med.Rows[0].Value)
	}
}

func TestExecVarStdDev(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(6)
	sd, err := db.Exec(rng, "SELECT STDDEV(salary) FROM salaries WHERE dept = 'eng'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Per-user means of 1-3 draws of N(100000, 5000^2): std between
	// ~2900 and 5000.
	got := sd.Rows[0].Value
	if got < 1500 || got > 8000 {
		t.Errorf("STDDEV = %v, want within [1500, 8000]", got)
	}
}

func TestExecEmptyResult(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(7)
	res, err := db.Exec(rng, "SELECT AVG(salary) FROM salaries WHERE dept = 'hr'", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("expected empty result, got %d rows", len(res.Rows))
	}
}

func TestExecTooFewUsers(t *testing.T) {
	db := NewDB()
	tbl, _ := db.Create("t", []Column{{"u", KindString}, {"x", KindFloat}}, "u")
	for i := 0; i < 3; i++ {
		_ = tbl.Insert(Str(fmt.Sprintf("u%d", i)), Float(1))
	}
	rng := xrand.New(8)
	if _, err := db.Exec(rng, "SELECT AVG(x) FROM t", 1.0); !errors.Is(err, ErrTooFewUsers) {
		t.Errorf("want ErrTooFewUsers, got %v", err)
	}
	// COUNT still works with few users.
	if _, err := db.Exec(rng, "SELECT COUNT(*) FROM t", 1.0); err != nil {
		t.Errorf("COUNT should work: %v", err)
	}
}

func TestExecErrors(t *testing.T) {
	db := newSalaryDB(t)
	rng := xrand.New(9)
	if _, err := db.Exec(rng, "SELECT AVG(salary) FROM missing", 1.0); !errors.Is(err, ErrNoTable) {
		t.Error("missing table")
	}
	if _, err := db.Exec(rng, "SELECT AVG(bogus) FROM salaries", 1.0); !errors.Is(err, ErrNoColumn) {
		t.Error("missing column")
	}
	if _, err := db.Exec(rng, "SELECT AVG(dept) FROM salaries", 1.0); !errors.Is(err, ErrNotNumeric) {
		t.Error("string aggregate")
	}
	if _, err := db.Exec(rng, "SELECT AVG(salary) FROM salaries", -1); err == nil {
		t.Error("bad eps")
	}
	if _, err := db.Exec(rng, "garbage", 1.0); !errors.Is(err, ErrSyntax) {
		t.Error("syntax error")
	}
	// WHERE comparing string column to number fails at eval time.
	if _, err := db.Exec(rng, "SELECT COUNT(*) FROM salaries WHERE dept = 5", 1.0); err == nil {
		t.Error("type mismatch in predicate")
	}
}

func TestBudgetEnforcement(t *testing.T) {
	db := newSalaryDB(t)
	if err := db.SetBudget(1.5); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(10)
	if _, err := db.Exec(rng, "SELECT COUNT(*) FROM salaries", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(rng, "SELECT COUNT(*) FROM salaries", 1.0); err == nil {
		t.Error("second query should exhaust the budget")
	}
	if r := db.Remaining(); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("remaining = %v, want 0.5", r)
	}
	if _, err := db.Exec(rng, "SELECT COUNT(*) FROM salaries", 0.5); err != nil {
		t.Errorf("exact-fit query should pass: %v", err)
	}
}

func TestNoBudgetIsUnlimited(t *testing.T) {
	db := newSalaryDB(t)
	if !math.IsInf(db.Remaining(), 1) {
		t.Error("no budget should report +Inf remaining")
	}
}

func TestExecDeterministicGivenSeed(t *testing.T) {
	db := newSalaryDB(t)
	run := func() float64 {
		rng := xrand.New(77)
		res, err := db.Exec(rng, "SELECT AVG(salary) FROM salaries", 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0].Value
	}
	if run() != run() {
		t.Error("query results are not reproducible for a fixed seed")
	}
}
