package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.01, 0.25, 0.5, 0.75, 0.9, 0.999, 1 - 1e-9} {
		x := NormQuantile(p)
		if got := NormCDF(x); math.Abs(got-p) > 1e-10*math.Max(1, 1/p) && math.Abs(got-p) > 1e-9 {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantileKnown(t *testing.T) {
	if got := NormQuantile(0.975); math.Abs(got-1.959963984540054) > 1e-9 {
		t.Errorf("NormQuantile(0.975) = %v", got)
	}
	if got := NormQuantile(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("NormQuantile(0.5) = %v", got)
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	if err := quick.Check(func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 0.5))
		if p == 0 {
			p = 0.25
		}
		a := NormQuantile(p)
		b := NormQuantile(1 - p)
		return math.Abs(a+b) < 1e-8
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaUniform(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.2, 0.5, 0.77, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	if err := quick.Check(func(ar, br, xr float64) bool {
		a := 0.5 + math.Abs(math.Mod(ar, 5))
		b := 0.5 + math.Abs(math.Mod(br, 5))
		x := math.Abs(math.Mod(xr, 1))
		got := RegIncBeta(a, b, x)
		want := 1 - RegIncBeta(b, a, 1-x)
		return math.Abs(got-want) < 1e-10
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaStudentTConnection(t *testing.T) {
	// For Student-t with nu df: P(T <= 0) = 0.5 via I.
	// F(t) for t>0 is 1 - 0.5*I_{nu/(nu+t^2)}(nu/2, 1/2).
	nu := 4.0
	tval := 2.0
	got := 1 - 0.5*RegIncBeta(nu/2, 0.5, nu/(nu+tval*tval))
	// Known: P(T_4 <= 2) = 0.9419417...
	if math.Abs(got-0.941941738) > 1e-6 {
		t.Errorf("t CDF via RegIncBeta = %v", got)
	}
}

func TestAdaptiveSimpsonPolynomial(t *testing.T) {
	// Integral of x^3 over [0,2] = 4 (Simpson is exact on cubics).
	got := AdaptiveSimpson(func(x float64) float64 { return x * x * x }, 0, 2, 1e-12)
	if math.Abs(got-4) > 1e-10 {
		t.Errorf("got %v", got)
	}
}

func TestAdaptiveSimpsonGaussian(t *testing.T) {
	got := AdaptiveSimpson(NormPDF, -8, 8, 1e-12)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Gaussian mass = %v", got)
	}
}

func TestAdaptiveSimpsonPeaked(t *testing.T) {
	// Narrow peak requiring adaptivity.
	f := func(x float64) float64 { return math.Exp(-x * x * 1e4) }
	got := AdaptiveSimpson(f, -1, 1, 1e-12)
	want := math.Sqrt(math.Pi) / 100
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("peaked integral = %v, want %v", got, want)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v", got)
	}
	// Huge values must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Ln2)) > 1e-9 {
		t.Errorf("LogSumExp big = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("all -Inf LogSumExp should be -Inf")
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v", root)
	}
	if !math.IsNaN(Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-6)) {
		t.Error("no sign change should be NaN")
	}
}

func TestGoldenMin(t *testing.T) {
	x := GoldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-10)
	if math.Abs(x-3) > 1e-8 {
		t.Errorf("argmin = %v", x)
	}
}

func TestDoubleFactorial(t *testing.T) {
	cases := map[int]float64{-1: 1, 0: 1, 1: 1, 2: 2, 3: 3, 4: 8, 5: 15, 7: 105}
	for n, want := range cases {
		if got := DoubleFactorial(n); got != want {
			t.Errorf("%d!! = %v, want %v", n, got, want)
		}
	}
}

func TestBinomial(t *testing.T) {
	if Binomial(5, 2) != 10 {
		t.Error("C(5,2)")
	}
	if Binomial(10, 0) != 1 || Binomial(10, 10) != 1 {
		t.Error("edges")
	}
	if Binomial(4, 5) != 0 || Binomial(4, -1) != 0 {
		t.Error("out of range")
	}
	if math.Abs(Binomial(50, 25)-1.2641060643775e+14) > 1e3 {
		t.Errorf("C(50,25) = %v", Binomial(50, 25))
	}
}
