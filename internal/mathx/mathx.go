// Package mathx implements the special functions and numeric routines the
// distribution substrate needs and the Go standard library lacks: the
// standard normal CDF and quantile, the regularized incomplete beta function
// (for Student-t CDFs), adaptive Simpson quadrature, numerically stable
// log-sum-exp, and generic root bracketing/bisection for quantile inversion.
package mathx

import "math"

// NormCDF returns the standard normal cumulative distribution function.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormPDF returns the standard normal density.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormQuantile returns the standard normal quantile (inverse CDF) using
// Acklam's rational approximation refined by one Halley step, giving close
// to full double precision. It returns -Inf for p<=0 and +Inf for p>=1.
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogBeta returns log(Beta(a, b)) = lgamma(a)+lgamma(b)-lgamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's algorithm), following
// Numerical Recipes. Inputs: a, b > 0, x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lnFront := a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-15
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance using adaptive Simpson quadrature with a recursion depth cap.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m, fm, whole := simpsonStep(f, a, b, fa, fb)
	return adaptiveSimpsonRec(f, a, b, fa, fb, m, fm, whole, tol, 50)
}

func simpsonStep(f func(float64) float64, a, b, fa, fb float64) (m, fm, s float64) {
	m = (a + b) / 2
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return
}

func adaptiveSimpsonRec(f func(float64) float64, a, b, fa, fb, m, fm, whole, tol float64, depth int) float64 {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	// Stop on convergence, exhausted depth, a degenerate midpoint, a
	// tolerance that has underflowed below float64 resolution of the
	// partial sums, or a non-finite delta (NaN/Inf integrand values can
	// otherwise defeat the convergence test and force a full-depth
	// binary recursion).
	if depth <= 0 || math.Abs(delta) <= 15*tol || m <= a || m >= b ||
		math.Abs(delta) <= 1e-14*(math.Abs(left)+math.Abs(right)) ||
		!isFinite(delta) {
		return left + right + delta/15
	}
	return adaptiveSimpsonRec(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. -Inf entries are
// treated as zero mass; an empty input returns -Inf.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Bisect finds a root of f in [lo, hi] (f(lo) and f(hi) must have opposite
// signs, or one of them is zero) to absolute tolerance tol on x.
func Bisect(f func(float64) float64, lo, hi, tol float64) float64 {
	flo := f(lo)
	if flo == 0 {
		return lo
	}
	fhi := f(hi)
	if fhi == 0 {
		return hi
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return math.NaN()
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// GoldenMin minimizes a unimodal function over [lo, hi] by golden-section
// search, returning the argmin to tolerance tol.
func GoldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 300 && b-a > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// DoubleFactorial returns n!! for n >= -1 (with (-1)!! = 0!! = 1).
func DoubleFactorial(n int) float64 {
	if n <= 0 {
		return 1
	}
	out := 1.0
	for k := n; k > 1; k -= 2 {
		out *= float64(k)
	}
	return out
}

// Binomial returns the binomial coefficient C(n, k) as a float64.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
