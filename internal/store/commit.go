package store

import (
	"sync"
	"time"

	"repro/internal/dp"
)

// The WAL group committer: concurrent releases park on a shared commit
// barrier instead of paying one fsync each. A committer goroutine drains
// the queue, writes every pending deduction and audit record as ONE
// batch WAL record, and a single flush+fsync acks the whole batch.
//
// Batching is adaptive without tuning: a release arriving on an idle
// committer commits alone immediately (no added latency), while releases
// arriving during an in-flight fsync accumulate and form the next batch
// — the natural group-commit rhythm, where the batch size tracks the
// offered concurrency. MaxDelay adds an optional coalescing sleep on top
// for workloads that prefer larger batches over first-release latency.
//
// Durability is unchanged from the per-record path: submit returns only
// after the batch record holding the entry is flushed AND fsynced, so no
// answer is ever released ahead of its batch's barrier. Because the
// whole batch is one CRC-framed WAL line, a crash mid-write tears the
// batch as a unit — recovery's torn-tail truncation drops all of it or
// none of it, never a prefix, and nothing in a dropped batch was ever
// acknowledged.
//
// Audit piggyback: entries may carry an audit record instead of (or as
// well as) a cost. Audit lines are written to the tenant's audit file
// BUFFERED (no fsync) and a copy rides inside the same batch WAL record,
// so the single barrier fsync makes both the deduction and its audit
// line durable — "acknowledged implies audited" costs zero extra fsyncs.
// Recovery reconciles the buffered audit file against the WAL's batch
// copies (see OpenAudit), and WriteSnapshot hardens the audit file
// before truncating the WAL so a compaction never destroys an audit
// line's only durable copy.

// GroupCommitOptions tunes the committer. The zero value enables group
// commit with natural (concurrency-driven) batching and a 256-entry
// batch cap.
type GroupCommitOptions struct {
	// MaxDelay is an optional coalescing window: a committer that wakes
	// with fewer than MaxBatch entries sleeps once for up to MaxDelay to
	// let stragglers join the batch. 0 (the default) fires immediately —
	// a lone release pays no added latency, and batches form naturally
	// from arrivals during the previous batch's fsync.
	MaxDelay time.Duration
	// MaxBatch caps entries per batch record (0 means 256). The cap
	// bounds the batch WAL line's size and the worst-case re-lost work
	// if a batch's fsync fails.
	MaxBatch int
	// Disable falls back to one fsync per deduction and per audit record
	// (the pre-group-commit behavior).
	Disable bool
}

const defaultMaxBatch = 256

// SetGroupCommit installs the group-commit configuration. Call it once,
// after Open and before Recover or the first CreateTenant — tenant logs
// start their committers at construction.
func (s *Store) SetGroupCommit(o GroupCommitOptions) {
	s.mu.Lock()
	s.gcOpts = &o
	s.mu.Unlock()
}

// commitEntry is one parked submission: a deduction, an audit record, or
// both. done closes when the entry's batch barrier cleared (or failed).
type commitEntry struct {
	cost      *dp.Cost
	audit     *AuditRecord
	submitted time.Time

	waited time.Duration // parked time before the batch started
	fsync  time.Duration // the shared batch append+flush+fsync
	err    error
	done   chan struct{}
}

// groupCommitter is one tenant log's commit barrier.
type groupCommitter struct {
	tl       *TenantLog
	maxBatch int
	maxDelay time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*commitEntry
	closed bool

	exited chan struct{} // closed when the committer goroutine returns
}

// startCommitter attaches a running committer to the log. Called at
// TenantLog construction, before the log is shared.
func (tl *TenantLog) startCommitter(o *GroupCommitOptions) {
	if o == nil || o.Disable {
		return
	}
	g := &groupCommitter{
		tl:       tl,
		maxBatch: o.MaxBatch,
		maxDelay: o.MaxDelay,
		exited:   make(chan struct{}),
	}
	if g.maxBatch <= 0 {
		g.maxBatch = defaultMaxBatch
	}
	g.cond = sync.NewCond(&g.mu)
	tl.gc = g
	go g.run()
}

// stopCommitter drains and stops the committer: queued entries are
// committed in one final batch, then the goroutine exits. Must be called
// WITHOUT tl.mu held (the committer takes tl.mu to append). Submissions
// arriving after the stop fail with ErrLogBroken.
func (tl *TenantLog) stopCommitter() {
	g := tl.gc
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.exited
		return
	}
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	<-g.exited
}

// CommitTimings is the durability cost breakdown of one committed entry:
// how long it was parked on the barrier (the group_commit_wait stage)
// and the shared batch append+flush+fsync (the wal_fsync stage). The
// serve layer records these as child spans under its deduct stage.
type CommitTimings struct {
	Waited time.Duration
	Fsync  time.Duration
}

// CommitDeduct durably records one ledger deduction through the group
// commit barrier: the call parks until a batch holding the deduction is
// flushed and fsynced, exactly as durable as AppendDeduct but sharing
// the fsync with every other entry in the batch. Without a committer it
// degrades to the per-record AppendDeduct.
func (tl *TenantLog) CommitDeduct(c dp.Cost) (CommitTimings, error) {
	if g := tl.gc; g != nil {
		return g.submit(&c, nil)
	}
	t0 := time.Now()
	err := tl.AppendDeduct(c)
	return CommitTimings{Fsync: time.Since(t0)}, err
}

// submit parks one entry on the barrier and waits for its batch.
func (g *groupCommitter) submit(c *dp.Cost, a *AuditRecord) (CommitTimings, error) {
	e := &commitEntry{cost: c, audit: a, submitted: time.Now(), done: make(chan struct{})}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return CommitTimings{}, ErrLogBroken
	}
	g.queue = append(g.queue, e)
	g.cond.Signal()
	g.mu.Unlock()
	<-e.done
	return CommitTimings{Waited: e.waited, Fsync: e.fsync}, e.err
}

// run is the committer loop: wait for entries, optionally coalesce,
// drain up to maxBatch, commit with one fsync, repeat. On close it
// drains whatever is queued into final batches before exiting.
func (g *groupCommitter) run() {
	defer close(g.exited)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.closed {
			g.cond.Wait()
		}
		if len(g.queue) == 0 {
			g.mu.Unlock() // closed and drained
			return
		}
		if g.maxDelay > 0 && !g.closed && len(g.queue) < g.maxBatch {
			// Optional coalescing: one bounded sleep, then take whatever
			// has accumulated. Never loops — latency stays bounded.
			g.mu.Unlock()
			time.Sleep(g.maxDelay)
			g.mu.Lock()
		}
		n := len(g.queue)
		if n > g.maxBatch {
			n = g.maxBatch
		}
		batch := g.queue[:n:n]
		g.queue = g.queue[n:]
		if len(g.queue) == 0 {
			g.queue = nil // let the drained backlog's array be collected
		}
		g.mu.Unlock()
		g.commit(batch)
	}
}

// commit writes one batch: buffered audit lines first (their durable
// copy rides in the batch record), then the single batch WAL record,
// flushed and fsynced — one barrier for everything — then wakes every
// waiter with its verdict.
func (g *groupCommitter) commit(batch []*commitEntry) {
	start := time.Now()
	for _, e := range batch {
		e.waited = start.Sub(e.submitted)
	}
	var (
		costs  []dp.Cost
		audits []AuditRecord
	)
	audit := g.tl.attachedAudit()
	for _, e := range batch {
		if e.audit == nil {
			continue
		}
		if audit == nil {
			e.err = ErrLogBroken // no audit file attached to route into
			continue
		}
		// appendBuffered assigns the record's seq in barrier order and
		// writes the line WITHOUT fsync; the copy in the batch record is
		// what makes it durable. A failed audit write fails only this
		// entry — its in-memory charge (if any) stands, conservative.
		if err := audit.appendBuffered(e.audit); err != nil {
			e.err = err
			continue
		}
		audits = append(audits, *e.audit)
	}
	for _, e := range batch {
		if e.err == nil && e.cost != nil {
			costs = append(costs, *e.cost)
		}
	}
	var err error
	var barrier time.Duration
	if len(costs) > 0 || len(audits) > 0 {
		t0 := time.Now()
		err = g.tl.append(record{Type: recBatch, Costs: costs, Audits: audits}, true)
		barrier = time.Since(t0)
	}
	if m := g.tl.met; m != nil && m.BatchSize != nil {
		m.BatchSize.Observe(float64(len(batch)))
	}
	for _, e := range batch {
		if e.err == nil {
			e.err = err
			e.fsync = barrier
		}
		close(e.done)
	}
}
