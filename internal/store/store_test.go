package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/dp"
	"repro/internal/dpsql"
)

func testConfig() TenantConfig {
	return TenantConfig{Epsilon: 4, Accounting: "pure"}
}

func eventsSchema() dpsql.TableState {
	return dpsql.TableState{
		Name:    "events",
		Columns: []dpsql.Column{{Name: "uid", Kind: dpsql.KindString}, {Name: "v", Kind: dpsql.KindFloat}},
		UserCol: "uid",
	}
}

func row(uid string, v float64) []dpsql.Value {
	return []dpsql.Value{dpsql.Str(uid), dpsql.Float(v)}
}

// seedStore writes a tenant with a table, rows, and deducts, returning
// the data dir.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u1", 1), row("u2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u3", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.25)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func recoverOne(t *testing.T, dir string) (*Store, *RecoveredTenant) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d tenants, want 1", len(recs))
	}
	return s, recs[0]
}

func TestWALRoundTrip(t *testing.T) {
	dir := seedStore(t)
	s, rec := recoverOne(t, dir)
	defer s.Close()
	if rec.ID != "acme" || rec.Config.Epsilon != 4 {
		t.Fatalf("recovered %q config %+v", rec.ID, rec.Config)
	}
	if rec.Ledger != nil {
		t.Fatalf("no snapshot was written, ledger state should be nil")
	}
	if len(rec.Tables) != 1 || rec.Tables[0].Name != "events" || len(rec.Tables[0].Rows) != 3 {
		t.Fatalf("tables: %+v", rec.Tables)
	}
	if len(rec.Deducts) != 2 || rec.Deducts[0].Eps != 0.5 || rec.Deducts[1].Eps != 0.25 {
		t.Fatalf("deducts: %+v", rec.Deducts)
	}
	// The reopened log keeps appending with continuing sequence numbers.
	if err := rec.Log.AppendDeduct(dp.EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
}

func TestReplayIdempotence(t *testing.T) {
	dir := seedStore(t)
	s1, rec1 := recoverOne(t, dir)
	s1.Close()
	s2, rec2 := recoverOne(t, dir)
	s2.Close()
	if len(rec1.Deducts) != len(rec2.Deducts) {
		t.Fatalf("double replay changed deducts: %d vs %d", len(rec1.Deducts), len(rec2.Deducts))
	}
	if len(rec1.Tables[0].Rows) != len(rec2.Tables[0].Rows) {
		t.Fatalf("double replay changed rows: %d vs %d",
			len(rec1.Tables[0].Rows), len(rec2.Tables[0].Rows))
	}
}

func TestTornTailDropsRowsNeverDeductions(t *testing.T) {
	dir := seedStore(t)
	wal := filepath.Join(dir, "acme", walName)
	// Tear the tail: append garbage without a newline (a crashed append),
	// preceded by an intact-looking but checksum-corrupt line.
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"seq\":99,\"type\":\"rows\"}\n00000000 {\"seq\":100,\"type\":\"ded"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.ReadFile(wal)

	s, rec := recoverOne(t, dir)
	defer s.Close()
	// Everything before the tear survives — crucially both deductions.
	if len(rec.Deducts) != 2 {
		t.Fatalf("torn tail dropped deductions: %+v", rec.Deducts)
	}
	if len(rec.Tables[0].Rows) != 3 {
		t.Fatalf("intact rows dropped: %d", len(rec.Tables[0].Rows))
	}
	// The tail was truncated away so new appends follow intact records.
	after, _ := os.ReadFile(wal)
	if len(after) >= len(before) {
		t.Fatalf("torn tail not truncated: %d >= %d bytes", len(after), len(before))
	}
	if err := rec.Log.AppendDeduct(dp.EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec2 := recoverOne(t, dir)
	defer s2.Close()
	if len(rec2.Deducts) != 3 {
		t.Fatalf("append after truncation lost: %+v", rec2.Deducts)
	}
}

func TestSnapshotPlusTailEquivalence(t *testing.T) {
	// The same operation stream applied (a) straight through a WAL and
	// (b) with a snapshot compaction in the middle must recover to the
	// same state as an in-memory twin.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	twin, _ := dp.NewBasicLedger(4) // in-memory twin ledger
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u1", 1), row("u2", 2)}); err != nil {
		t.Fatal(err)
	}
	_ = twin.Spend(dp.EpsCost(0.5))
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}

	// Compact: snapshot captures config+ledger+tables through here.
	ls, err := twin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	err = tl.WriteSnapshot(TenantSnapshot{
		Config: testConfig(),
		Ledger: ls,
		Tables: []dpsql.TableState{{
			Name:    "events",
			Columns: eventsSchema().Columns,
			UserCol: "uid",
			Rows:    [][]dpsql.Value{row("u1", 1), row("u2", 2)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.RecordsSinceSnapshot(); got != 0 {
		t.Fatalf("records since snapshot = %d", got)
	}

	// Tail past the snapshot.
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u3", 3)}); err != nil {
		t.Fatal(err)
	}
	_ = twin.Spend(dp.EpsCost(0.25))
	if err := tl.AppendDeduct(dp.EpsCost(0.25)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if rec.Ledger == nil {
		t.Fatal("snapshot ledger state missing")
	}
	led, err := dp.RestoreLedger(*rec.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Deducts {
		if err := led.ForceSpend(c); err != nil {
			t.Fatal(err)
		}
	}
	if led.Spent() != twin.Spent() {
		t.Fatalf("recovered spend %v != twin %v", led.Spent(), twin.Spent())
	}
	if len(rec.Tables) != 1 || len(rec.Tables[0].Rows) != 3 {
		t.Fatalf("recovered tables: %+v", rec.Tables)
	}
	// Only the post-snapshot deduct should be in the replay list.
	if len(rec.Deducts) != 1 || rec.Deducts[0].Eps != 0.25 {
		t.Fatalf("deduct tail: %+v", rec.Deducts)
	}
}

func TestCrashBetweenSnapshotAndTruncationIsIdempotent(t *testing.T) {
	// Simulate the worst interleaving: the snapshot is durable but the
	// WAL still holds every record it covers. The seq guard must skip
	// them instead of double-applying.
	dir := seedStore(t)
	s, rec := recoverOne(t, dir)
	walPath := filepath.Join(dir, "acme", walName)
	preTrunc, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	led, _ := dp.NewBasicLedger(4)
	_ = led.Spend(dp.EpsCost(0.75)) // both deducts
	ls, _ := led.Snapshot()
	if err := rec.Log.WriteSnapshot(TenantSnapshot{Config: rec.Config, Ledger: ls, Tables: rec.Tables}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Put the pre-truncation WAL back: every record is now "covered".
	if err := os.WriteFile(walPath, preTrunc, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := recoverOne(t, dir)
	defer s2.Close()
	if len(rec2.Deducts) != 0 {
		t.Fatalf("covered deducts replayed again: %+v", rec2.Deducts)
	}
	if len(rec2.Tables) != 1 || len(rec2.Tables[0].Rows) != 3 {
		t.Fatalf("covered rows double-applied: %+v", rec2.Tables)
	}
	if rec2.Ledger == nil || rec2.Ledger.Spent != 0.75 {
		t.Fatalf("snapshot ledger: %+v", rec2.Ledger)
	}
}

func TestSnapshotOnRecoveredLogKeepsLaterDeducts(t *testing.T) {
	// Regression: a recovered WAL must be reopened in append mode. Without
	// O_APPEND, WriteSnapshot's Truncate(0) left the file offset past EOF,
	// so the next append landed after a zero-filled hole and the NEXT
	// recovery read the hole as a torn prefix — dropping fsynced
	// deductions recorded after the snapshot (a partial budget refill).
	dir := seedStore(t)
	s, rec := recoverOne(t, dir)
	led, _ := dp.NewBasicLedger(4)
	_ = led.Spend(dp.EpsCost(0.75))
	ls, _ := led.Snapshot()
	if err := rec.Log.WriteSnapshot(TenantSnapshot{Config: rec.Config, Ledger: ls, Tables: rec.Tables}); err != nil {
		t.Fatal(err)
	}
	// An answered release after the compaction.
	if err := rec.Log.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec2 := recoverOne(t, dir)
	defer s2.Close()
	if len(rec2.Deducts) != 1 || rec2.Deducts[0].Eps != 0.5 {
		t.Fatalf("fsynced post-snapshot deduction lost: %+v", rec2.Deducts)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "acme", walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) > 0 && wal[0] == 0 {
		t.Fatal("WAL begins with a zero-filled hole")
	}
}

func TestUnackedTenantSkipped(t *testing.T) {
	dir := t.TempDir()
	// A directory with an empty WAL: creation was never acknowledged.
	if err := os.MkdirAll(filepath.Join(dir, "ghost"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ghost", walName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign directory (no wal, no snapshot) must be left entirely
	// untouched — no wal.log O_CREATEd into it, no deletion.
	if err := os.MkdirAll(filepath.Join(dir, "backups"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "backups", "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered ghost tenant: %+v", recs)
	}
	// The husk is cleaned up so the id can be created again (a crash
	// before the creation ack must not squat the name forever).
	if _, err := os.Stat(filepath.Join(dir, "ghost")); !os.IsNotExist(err) {
		t.Fatalf("ghost directory not removed: %v", err)
	}
	if _, err := s.CreateTenant("ghost", testConfig()); err != nil {
		t.Fatalf("recreating unacked tenant id: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "backups", walName)); !os.IsNotExist(err) {
		t.Fatalf("store created a wal inside a foreign directory: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "backups", "keep.txt")); err != nil {
		t.Fatalf("foreign directory touched: %v", err)
	}
	// An empty directory (Mkdir-then-crash husk, or the operator's) is
	// left alone by recovery but adopted by a creation of the same id.
	if err := os.MkdirAll(filepath.Join(dir, "husk"), 0o755); err != nil {
		t.Fatal(err)
	}
	if recs, err := s.Recover(); err != nil || len(recs) != 1 {
		t.Fatalf("re-recover: %v %d", err, len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "husk")); err != nil {
		t.Fatalf("recovery removed an empty directory: %v", err)
	}
	if _, err := s.CreateTenant("husk", testConfig()); err != nil {
		t.Fatalf("adopting an empty directory: %v", err)
	}
}

func TestMidFileCorruptionFailsLoudly(t *testing.T) {
	// Damage BEFORE intact records is not a torn tail — truncating there
	// would drop the acknowledged deductions that follow, so recovery
	// must refuse instead.
	dir := seedStore(t)
	wal := filepath.Join(dir, "acme", walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first line's JSON body.
	corrupted := append([]byte(nil), data...)
	corrupted[12] ^= 0xff
	if err := os.WriteFile(wal, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Recover(); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("mid-file corruption must fail recovery, got %v", err)
	}
	// And nothing was truncated by the refused recovery.
	after, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(corrupted) {
		t.Fatalf("refused recovery modified the WAL: %d -> %d bytes", len(corrupted), len(after))
	}
}

func TestCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := seedStore(t)
	if err := os.WriteFile(filepath.Join(dir, "acme", snapName), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Recover(); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot must fail recovery, got %v", err)
	}
}

func TestCheckTenantID(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "../escape", "LOCK", "lock"} {
		if err := CheckTenantID(bad); err == nil {
			t.Errorf("CheckTenantID(%q) accepted", bad)
		}
	}
	for _, good := range []string{"acme", "tenant-1", "A.B_c"} {
		if err := CheckTenantID(good); err != nil {
			t.Errorf("CheckTenantID(%q): %v", good, err)
		}
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.CreateTenant("../escape", testConfig()); !errors.Is(err, ErrBadTenantID) {
		t.Fatalf("traversal id: %v", err)
	}
	if _, err := s.CreateTenant("dup", testConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTenant("dup", testConfig()); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("dup create: %v", err)
	}
}

func TestConcurrentAppendsVsSnapshot(t *testing.T) {
	// Appends racing WriteSnapshot must neither tear the log nor lose a
	// deduct (run under -race in CI).
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := tl.AppendDeduct(dp.EpsCost(0.001)); err != nil {
				t.Error(err)
				return
			}
			_ = tl.AppendRows("events", 0, [][]dpsql.Value{row("u1", float64(i))})
		}
	}()
	go func() {
		defer wg.Done()
		led, _ := dp.NewBasicLedger(4)
		ls, _ := led.Snapshot()
		for i := 0; i < 5; i++ {
			// WriteSnapshot stamps tl.seq under the same mutex appends
			// take. This snapshot's payload is deliberately stale (no
			// tables — the serve layer's persist lock prevents that);
			// recovery must still neither tear nor fail, merely drop the
			// orphaned row batches.
			_ = tl.WriteSnapshot(TenantSnapshot{Config: testConfig(), Ledger: ls})
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("log torn by concurrent snapshot: %v", err)
	}
}

func TestDataDirLock(t *testing.T) {
	dir := t.TempDir()
	// Simulate a foreign holder: an flock taken outside the store's
	// own-process registry behaves exactly like another process's hold
	// (flock ownership is per open file description).
	foreign, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := syscall.Flock(int(foreign.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("open of a dir flocked elsewhere: %v", err)
	}
	// The holder dies (descriptor closes): the directory is claimable.
	foreign.Close()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open after holder released: %v", err)
	}
	// Same-process re-open (the crash drills): adopted, not refused.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("same-process re-open refused: %v", err)
	}
	s2.Close()
	s.Close()
	// After release a fresh claim succeeds.
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s3.Close()
}

func TestLogFailStop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Force a write error by closing the file underneath the log.
	tl.mu.Lock()
	tl.f.Close()
	tl.mu.Unlock()
	if err := tl.AppendDeduct(dp.EpsCost(0.1)); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.1)); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("log not fail-stop: %v", err)
	}
	if !strings.Contains(tl.dir, dir) {
		t.Fatal("sanity")
	}
}
