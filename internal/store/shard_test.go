package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dp"
	"repro/internal/dpsql"
)

// shardedConfig is a tenant created under the sharded build.
func shardedConfig() TenantConfig {
	return TenantConfig{Epsilon: 4, Accounting: "pure", Shards: 4}
}

// TestShardTaggedReplay: shard-tagged rows records rebuild the table's
// placement map on recovery, interleaved with untagged (shard-0) ones.
func TestShardTaggedReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", shardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	schema := eventsSchema()
	schema.Shards = 4
	if err := tl.AppendTable(schema); err != nil {
		t.Fatal(err)
	}
	// Batches land per shard, in record order: 2 rows to shard 0 (tag
	// omitted on the wire), 1 to shard 2, 1 to shard 1.
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u1", 1), row("u2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 2, [][]dpsql.Value{row("u3", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 1, [][]dpsql.Value{row("u4", 4)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if rec.Config.Shards != 4 {
		t.Fatalf("recovered config shards = %d", rec.Config.Shards)
	}
	tb := rec.Tables[0]
	if tb.Shards != 4 {
		t.Fatalf("recovered table shards = %d", tb.Shards)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("recovered %d rows", len(tb.Rows))
	}
	if want := []int{0, 0, 2, 1}; !reflect.DeepEqual(tb.ShardOf, want) {
		t.Fatalf("placement map %v, want %v", tb.ShardOf, want)
	}
	if len(rec.Deducts) != 1 || rec.Deducts[0].Eps != 0.5 {
		t.Fatalf("deducts: %+v", rec.Deducts)
	}
}

// TestUntaggedReplayIsShardZero: a log written without shard tags (the
// pre-shard encoding — shard-0 records are byte-identical to it) recovers
// with no placement map, which the importer reads as everything-in-shard-0.
func TestUntaggedReplayIsShardZero(t *testing.T) {
	dir := seedStore(t) // the PR 3 idiom: untagged rows records
	s, rec := recoverOne(t, dir)
	defer s.Close()
	if rec.Config.Shards != 0 {
		t.Fatalf("legacy config grew shards = %d", rec.Config.Shards)
	}
	tb := rec.Tables[0]
	if tb.ShardOf != nil {
		t.Fatalf("legacy replay fabricated a placement map: %v", tb.ShardOf)
	}
	// The legacy state imports as a single-shard table with all rows.
	db := dpsql.NewDB()
	tab, err := db.Import(tb)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumShards() != 1 || tab.NumRows() != 3 {
		t.Fatalf("legacy import: shards=%d rows=%d", tab.NumShards(), tab.NumRows())
	}
}

// TestTornTailShardTaggedKeepsDeductions: tearing the buffered tail of a
// shard-tagged log drops at most trailing row batches — the fsynced
// deduction before them always survives, and the intact tagged records
// keep their placement.
func TestTornTailShardTaggedKeepsDeductions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", shardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 3, [][]dpsql.Value{row("u1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil { // fsync barrier
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 2, [][]dpsql.Value{row("u2", 2)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear mid-record: a crashed append of a tagged rows record.
	wal := filepath.Join(dir, "acme", walName)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"seq":9,"type":"rows","rows_table":"events","shard":1,"rows":[[{"k":2,"s":"u`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if len(rec.Deducts) != 1 || rec.Deducts[0].Eps != 0.5 {
		t.Fatalf("torn tagged tail lost the deduction: %+v", rec.Deducts)
	}
	tb := rec.Tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("intact tagged rows dropped: %d", len(tb.Rows))
	}
	if want := []int{3, 2}; !reflect.DeepEqual(tb.ShardOf, want) {
		t.Fatalf("placement map %v, want %v", tb.ShardOf, want)
	}
}
