package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/dp"
)

// The DP audit log: one append-only file per tenant holding one CRC'd
// JSON line per *charged* release — the operator's replayable record of
// every ε ever spent, keyed by release ID. It complements the WAL
// rather than duplicating it: the WAL's deduct records are the
// machine-replayed ledger state (costs only, no identity), while the
// audit log carries the operator-facing story (which release, which
// mechanism, when, at what best RDP order) and is never replayed into
// state, so its format can grow fields freely.
//
// Durability: each append is fsynced before it returns, and the serve
// layer appends AFTER the charge lands but BEFORE the answer is
// acknowledged — so every acknowledged release has its audit line on
// disk (a crash can leave an audit line for a charged-but-unanswered
// release, never the reverse; over-recording matches the WAL's
// over-counting direction). A torn tail (crash mid-append) is truncated
// at open, exactly like the WAL.

// auditName is the per-tenant audit file, next to wal.log.
const auditName = "audit.log"

// AuditRecord is one charged release. Cost is the release's native
// request cost (ε or ρ as the client asked); NativeCost is the charge
// in the LEDGER's unit when that charge is a scalar (pure: ε itself;
// zcdp: ρ = ε²/2 for pure releases, ρ directly for native ones) — rdp
// charges a per-order vector, so NativeCost is omitted and BestOrder
// records the order certifying the tenant's spend after this release.
type AuditRecord struct {
	Seq        uint64  `json:"seq"`
	TimeUnix   int64   `json:"ts_unix_nano"`
	ReleaseID  string  `json:"release_id"`
	Path       string  `json:"path"`      // "query" or "estimate"
	Mechanism  string  `json:"mechanism"` // "sql", or the estimate stat
	Cost       dp.Cost `json:"cost"`
	Unit       string  `json:"unit"` // the ledger's native unit
	NativeCost float64 `json:"native_cost,omitempty"`
	BestOrder  float64 `json:"best_order,omitempty"`
}

// AuditLog is one tenant's open audit file. Appends are serialized and
// fsynced; a write error makes the log fail-stop like the WAL (a torn
// line must never be followed by an intact one, or the tail-truncation
// rule at open would silently drop it).
type AuditLog struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	seq    uint64 // last assigned record seq (== line count: tail-only truncation)
	broken bool
	met    *Metrics
}

// OpenAudit opens (creating if absent) the audit log for an existing
// tenant directory, truncating a torn tail. Call it after CreateTenant
// or recovery has established the directory.
func (s *Store) OpenAudit(id string) (*AuditLog, error) {
	if err := CheckTenantID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	met := s.metrics
	s.mu.Unlock()
	path := filepath.Join(s.dir, id, auditName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading audit log for %q: %w", id, err)
	}
	// Scan for the intact prefix. Audit lines are written one fsynced
	// append at a time, so any damage is a torn tail: truncate there.
	// (Unlike the WAL there is no buffered class, hence no corrupt-vs-torn
	// distinction to draw — nothing intact can follow a tear.)
	goodEnd, n := 0, uint64(0)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		if _, ok := checkLine(data[off : off+nl+1]); !ok {
			break
		}
		off += nl + 1
		goodEnd = off
		n++
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening audit log for %q: %w", id, err)
	}
	if int64(goodEnd) < int64(len(data)) {
		if err := f.Truncate(int64(goodEnd)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("store: truncating torn audit tail for %q: %w", id, err)
		}
	}
	return &AuditLog{path: path, f: f, seq: n, met: met}, nil
}

// Append assigns the record's seq and timestamp, writes it, and fsyncs
// before returning — the caller may acknowledge the release only after
// this succeeds.
func (a *AuditLog) Append(rec *AuditRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.broken || a.f == nil {
		return ErrLogBroken
	}
	t0 := time.Now()
	rec.Seq = a.seq + 1
	if rec.TimeUnix == 0 {
		rec.TimeUnix = t0.UnixNano()
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding audit record: %w", err)
	}
	if _, err := fmt.Fprintf(a.f, "%08x %s\n", crc32.ChecksumIEEE(body), body); err != nil {
		a.broken = true
		return fmt.Errorf("store: appending audit record: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		a.broken = true
		return fmt.Errorf("store: syncing audit log: %w", err)
	}
	a.seq = rec.Seq
	if m := a.met; m != nil {
		if m.AuditFsyncSeconds != nil {
			m.AuditFsyncSeconds.Observe(time.Since(t0).Seconds())
		}
		if m.AuditRecords != nil {
			m.AuditRecords.Inc()
		}
	}
	return nil
}

// Len reports how many records the log holds. Seqs are assigned 1..Len
// contiguously (truncation is tail-only), so Len is also the last seq.
func (a *AuditLog) Len() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Page returns up to limit records with Seq > after, in order — the
// pagination contract of the audit endpoint (pass the last record's seq
// back as after to continue). Reads re-scan the file: audit reads are
// an operator workflow, not a hot path, and scanning keeps the open log
// O(1) in memory.
func (a *AuditLog) Page(after uint64, limit int) ([]AuditRecord, error) {
	if limit <= 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil, ErrLogBroken
	}
	data, err := os.ReadFile(a.path)
	if err != nil {
		return nil, fmt.Errorf("store: reading audit log: %w", err)
	}
	var out []AuditRecord
	off := 0
	for off < len(data) && len(out) < limit {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := data[off : off+nl+1]
		off += nl + 1
		body, ok := checkLine(line)
		if !ok {
			break // a tear can only be the tail being appended right now
		}
		var rec AuditRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, fmt.Errorf("store: decoding audit record: %w", err)
		}
		if rec.Seq <= after {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Close fsyncs and closes the file.
func (a *AuditLog) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
