package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/dp"
)

// The DP audit log: one append-only file per tenant holding one CRC'd
// JSON line per *charged* release — the operator's replayable record of
// every ε ever spent, keyed by release ID. It complements the WAL
// rather than duplicating it: the WAL's deduct records are the
// machine-replayed ledger state (costs only, no identity), while the
// audit log carries the operator-facing story (which release, which
// mechanism, when, at what best RDP order) and is never replayed into
// state, so its format can grow fields freely.
//
// Durability: the serve layer appends AFTER the charge lands but BEFORE
// the answer is acknowledged — so every acknowledged release has its
// audit record durable (a crash can leave an audit record for a
// charged-but-unanswered release, never the reverse; over-recording
// matches the WAL's over-counting direction). HOW it becomes durable
// depends on whether the tenant log runs a group committer:
//
//   - Routed (committer attached): Append parks on the WAL's commit
//     barrier. The line is written to this file BUFFERED, and a copy
//     rides inside the batch WAL record — the batch's single fsync makes
//     the audit record durable, zero extra fsyncs. The buffered file is
//     hardened (flushed + fsynced) before any WAL truncation
//     (WriteSnapshot) and at Close; after a crash, OpenAudit reconciles
//     the file against the WAL's batch copies (Reconcile), re-appending
//     lines the buffer lost. Seqs stay contiguous because they are
//     assigned in barrier order and both files truncate tail-only.
//   - Standalone (no committer): each append is flushed and fsynced
//     before it returns, the pre-group-commit behavior.
//
// A torn tail (crash mid-append) is truncated at open, exactly like the
// WAL.

// auditName is the per-tenant audit file, next to wal.log.
const auditName = "audit.log"

// AuditRecord is one charged release. Cost is the release's native
// request cost (ε or ρ as the client asked); NativeCost is the charge
// in the LEDGER's unit when that charge is a scalar (pure: ε itself;
// zcdp: ρ = ε²/2 for pure releases, ρ directly for native ones) — rdp
// charges a per-order vector, so NativeCost is omitted and BestOrder
// records the order certifying the tenant's spend after this release.
type AuditRecord struct {
	Seq        uint64  `json:"seq"`
	TimeUnix   int64   `json:"ts_unix_nano"`
	ReleaseID  string  `json:"release_id"`
	Path       string  `json:"path"`      // "query", "estimate", or "histogram"
	Mechanism  string  `json:"mechanism"` // "sql", or the estimate stat
	Cost       dp.Cost `json:"cost"`
	Unit       string  `json:"unit"` // the ledger's native unit
	NativeCost float64 `json:"native_cost,omitempty"`
	BestOrder  float64 `json:"best_order,omitempty"`
}

// AuditLog is one tenant's open audit file. Appends are serialized and
// fsynced; a write error makes the log fail-stop like the WAL (a torn
// line must never be followed by an intact one, or the tail-truncation
// rule at open would silently drop it).
type AuditLog struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	seq    uint64 // last assigned record seq (== line count: tail-only truncation)
	broken bool
	met    *Metrics
	gc     *groupCommitter // non-nil routes Append through the WAL barrier
}

// auditBufSize is the audit writer's buffer; routed appends accumulate
// here between hardenings (their durable copy rides the WAL batch).
const auditBufSize = 32 << 10

// OpenAudit opens (creating if absent) the audit log for an existing
// tenant directory, truncating a torn tail. Call it after CreateTenant
// or recovery has established the directory.
func (s *Store) OpenAudit(id string) (*AuditLog, error) {
	if err := CheckTenantID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	met := s.metrics
	s.mu.Unlock()
	path := filepath.Join(s.dir, id, auditName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading audit log for %q: %w", id, err)
	}
	// Scan for the intact prefix. Audit lines are written one fsynced
	// append at a time, so any damage is a torn tail: truncate there.
	// (Unlike the WAL there is no buffered class, hence no corrupt-vs-torn
	// distinction to draw — nothing intact can follow a tear.)
	goodEnd, n := 0, uint64(0)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		if _, ok := checkLine(data[off : off+nl+1]); !ok {
			break
		}
		off += nl + 1
		goodEnd = off
		n++
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening audit log for %q: %w", id, err)
	}
	if int64(goodEnd) < int64(len(data)) {
		if err := f.Truncate(int64(goodEnd)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("store: truncating torn audit tail for %q: %w", id, err)
		}
	}
	a := &AuditLog{path: path, f: f, w: bufio.NewWriterSize(f, auditBufSize), seq: n, met: met}
	// Attach to the tenant's open WAL so audit appends ride its commit
	// barrier (one fsync covers deduction + audit) and snapshots harden
	// this file before truncating the WAL. Then reconcile: batch WAL
	// records may hold audit lines a crash caught in this file's buffer.
	if tl, ok := s.Tenant(id); ok {
		tl.attachAudit(a)
	}
	s.mu.Lock()
	pend := s.pendingAudits[id]
	delete(s.pendingAudits, id)
	s.mu.Unlock()
	if err := a.reconcile(pend); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: reconciling audit log for %q: %w", id, err)
	}
	return a, nil
}

// reconcile re-appends audit records recovered from WAL batch copies
// that the file itself lost from its buffer in a crash — preserving
// their original seq and timestamp. Records the file already holds
// (seq <= line count) are skipped; the survivors are written buffered,
// because the WAL still carries them until the next snapshot hardens
// this file first.
func (a *AuditLog) reconcile(pend []AuditRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range pend {
		rec := &pend[i]
		if rec.Seq <= a.seq {
			continue
		}
		if rec.Seq != a.seq+1 {
			return fmt.Errorf("audit seq gap: file at %d, wal batch carries %d", a.seq, rec.Seq)
		}
		if err := a.writeLocked(rec); err != nil {
			return err
		}
		a.seq = rec.Seq
	}
	return nil
}

// Append records one charged release durably — the caller may
// acknowledge the release only after this succeeds. With a committer
// attached the append parks on the WAL's group-commit barrier (the
// batch's one fsync covers it); standalone, it is written, flushed, and
// fsynced here.
func (a *AuditLog) Append(rec *AuditRecord) error {
	a.mu.Lock()
	gc := a.gc
	a.mu.Unlock()
	if gc != nil {
		_, err := gc.submit(nil, rec)
		return err
	}
	if err := a.appendBuffered(rec); err != nil {
		return err
	}
	return a.harden()
}

// appendBuffered assigns the record's seq and timestamp and writes its
// line to the buffer WITHOUT fsync. Callers must arrange durability: the
// committer puts a copy in the batch WAL record; the standalone Append
// hardens immediately.
func (a *AuditLog) appendBuffered(rec *AuditRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.broken || a.f == nil {
		return ErrLogBroken
	}
	rec.Seq = a.seq + 1
	if rec.TimeUnix == 0 {
		rec.TimeUnix = time.Now().UnixNano()
	}
	if err := a.writeLocked(rec); err != nil {
		return err
	}
	a.seq = rec.Seq
	if m := a.met; m != nil && m.AuditRecords != nil {
		m.AuditRecords.Inc()
	}
	return nil
}

// writeLocked frames and buffers one record. Callers hold a.mu.
func (a *AuditLog) writeLocked(rec *AuditRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding audit record: %w", err)
	}
	if _, err := fmt.Fprintf(a.w, "%08x %s\n", crc32.ChecksumIEEE(body), body); err != nil {
		a.broken = true
		return fmt.Errorf("store: appending audit record: %w", err)
	}
	return nil
}

// harden flushes the buffer and fsyncs the file — the audit log's own
// durability barrier, paid per append standalone and only at snapshot/
// close when appends ride the WAL barrier.
func (a *AuditLog) harden() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hardenLocked()
}

func (a *AuditLog) hardenLocked() error {
	if a.broken || a.f == nil {
		return ErrLogBroken
	}
	t0 := time.Now()
	if err := a.w.Flush(); err != nil {
		a.broken = true
		return fmt.Errorf("store: flushing audit log: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		a.broken = true
		return fmt.Errorf("store: syncing audit log: %w", err)
	}
	if m := a.met; m != nil && m.AuditFsyncSeconds != nil {
		m.AuditFsyncSeconds.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// Len reports how many records the log holds. Seqs are assigned 1..Len
// contiguously (truncation is tail-only), so Len is also the last seq.
func (a *AuditLog) Len() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Page returns up to limit records with Seq > after, in order — the
// pagination contract of the audit endpoint (pass the last record's seq
// back as after to continue). Reads re-scan the file: audit reads are
// an operator workflow, not a hot path, and scanning keeps the open log
// O(1) in memory.
func (a *AuditLog) Page(after uint64, limit int) ([]AuditRecord, error) {
	if limit <= 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil, ErrLogBroken
	}
	// Routed appends may still be sitting in the buffer; reads must see
	// every acknowledged record (their durability is the WAL's problem,
	// their visibility is ours).
	if err := a.w.Flush(); err != nil {
		a.broken = true
		return nil, fmt.Errorf("store: flushing audit log: %w", err)
	}
	data, err := os.ReadFile(a.path)
	if err != nil {
		return nil, fmt.Errorf("store: reading audit log: %w", err)
	}
	var out []AuditRecord
	off := 0
	for off < len(data) && len(out) < limit {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := data[off : off+nl+1]
		off += nl + 1
		body, ok := checkLine(line)
		if !ok {
			break // a tear can only be the tail being appended right now
		}
		var rec AuditRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, fmt.Errorf("store: decoding audit record: %w", err)
		}
		if rec.Seq <= after {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Close hardens (flush + fsync) and closes the file.
func (a *AuditLog) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	hardenErr := error(nil)
	if !a.broken {
		hardenErr = a.hardenLocked()
	}
	closeErr := a.f.Close()
	a.f = nil
	if hardenErr != nil {
		return hardenErr
	}
	return closeErr
}
