//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f. The lock is
// owned by the open file description, so it evaporates when the holder
// process dies — exactly the semantics the data-dir claim needs.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
