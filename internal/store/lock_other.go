//go:build !unix

package store

import "os"

// flockExclusive is a no-op where flock(2) is unavailable: the build
// still works, but cross-process data-dir exclusion is not enforced —
// run one process per data dir. (The same-process registry in store.go
// still guards in-process double-opens.)
func flockExclusive(f *os.File) error { return nil }
