// Package store is the per-tenant durability engine under the serve
// layer: an append-only write-ahead log plus periodic compacted snapshots
// per tenant, with replay-on-boot recovery, so a tenant's privacy-budget
// spend — the one number that must never regress — survives process
// restarts and crashes.
//
// Why this exists: a DP budget is a *lifetime* total. An in-memory ledger
// silently refills on every restart, which voids the composed (ε, δ)
// guarantee — an adversary who can crash the process gets unbounded
// releases. The store makes the ledger the most durable thing in the
// system.
//
// # On-disk layout
//
//	<dir>/<tenant-id>/wal.log          append-only active tail
//	<dir>/<tenant-id>/wal.%09d.seg     sealed immutable WAL segments
//	<dir>/<tenant-id>/snapshot.json    last compacted full state
//
// Each WAL record is one line: a CRC32 (IEEE) of the JSON body in fixed
// hex, a space, the JSON body, a newline. Sequence numbers are strictly
// increasing per tenant and never reset, including across snapshot
// rotations and segment seals. The tail is the only file ever appended
// to; sealing renames it into an immutable segment (named by the last
// seq it contains) and reopens a fresh tail, so compaction can merge
// snapshot + sealed segments into a new snapshot entirely off the hot
// path (see compact.go) — the appender never waits on snapshot I/O.
//
// # Durability classes
//
// Records are not all equally precious, and the fsync policy encodes the
// privacy invariant "spend is never under-counted":
//
//   - Tenant creation and table DDL are synced before the call returns —
//     an acknowledged tenant or table always recovers.
//   - Ledger deductions (AppendDeduct) are flushed AND fsynced before the
//     call returns. The serve layer deducts durably *before* the
//     mechanism's answer leaves the process, so every answered release is
//     on disk. Because the WAL is a single sequential stream, a deduct's
//     fsync also hardens every row batch buffered before it.
//   - Group-commit batches (CommitDeduct through a groupCommitter) carry
//     many deductions plus their audit records as ONE record, acked by
//     one shared fsync — same durability as AppendDeduct per entry, a
//     fraction of the fsyncs. The single-line framing makes a crash tear
//     the batch atomically: recovery drops all of an unacked batch or
//     none of it, never a prefix.
//   - Row batches (AppendRows) are buffered without fsync: losing the
//     last moments of ingestion on a crash costs utility, never privacy.
//
// # Recovery
//
// Recover loads each tenant's snapshot (if any), then replays WAL records
// with seq > snapshot seq — so a crash between writing a snapshot and
// truncating the WAL merely replays records the snapshot already
// contains, and replaying the same log twice converges on the same state
// (idempotence). A torn or corrupt tail ends replay at the last intact
// record and the file is truncated there: the only records that can live
// past a durably-recorded (fsynced) deduction are ones that were never
// acknowledged, so a torn tail can drop trailing data rows but never an
// answered deduction — post-restart spend >= pre-crash acknowledged
// spend, always. A corrupt snapshot file, by contrast, fails recovery
// loudly: silently ignoring it would refill the budget.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/obs"
)

// Store errors.
var (
	// ErrBadTenantID reports a tenant id unusable as a directory name.
	ErrBadTenantID = errors.New("store: tenant id must be a plain path component")
	// ErrTenantExists reports a durable tenant that already exists.
	ErrTenantExists = errors.New("store: tenant already exists")
	// ErrLogBroken reports a WAL whose last append failed; the log is
	// fail-stop from then on so a partially-written record can never be
	// followed by a good one (the replay prefix property).
	ErrLogBroken = errors.New("store: write-ahead log broken by an earlier write error")
	// ErrCorruptSnapshot reports an unreadable snapshot file. Recovery
	// fails loudly rather than refilling the tenant's budget.
	ErrCorruptSnapshot = errors.New("store: corrupt snapshot")
	// ErrCorruptWAL reports damage that cannot be a torn tail: intact
	// records exist AFTER the damaged region, which a crash mid-append
	// cannot produce ahead of an fsync barrier — truncating there could
	// silently drop acknowledged deductions, so recovery refuses instead
	// (availability traded for the never-refill invariant).
	ErrCorruptWAL = errors.New("store: corrupt wal (damage before intact records)")
	// ErrLocked reports a data directory already owned by a live process.
	// Two writers interleaving one WAL would fabricate seq regressions
	// that the next recovery truncates — dropping fsynced deductions — so
	// exclusivity is part of the durability contract.
	ErrLocked = errors.New("store: data dir locked by another process")
)

// Record types.
const (
	recCreate = "create" // tenant creation: Config
	recTable  = "table"  // table DDL: Table (schema only)
	recRows   = "rows"   // ingestion batch: RowsTable + Rows
	recDeduct = "deduct" // ledger deduction: Cost
	recBatch  = "batch"  // group-commit batch: Costs + Audits, one fsync
)

// walBufSize is the WAL writer's buffer; row batches accumulate here
// between fsyncs.
const walBufSize = 64 << 10

const (
	walName  = "wal.log"
	snapName = "snapshot.json"
)

// TenantConfig is the durable tenant-creation parameters — enough to
// rebuild the composition backend when no snapshot exists yet. Shards is
// the tenant's table partition count (0 means 1 — the pre-shard encoding,
// so directories written before sharding recover as single-shard
// tenants). Orders is the Rényi order grid of an rdp tenant (empty means
// the default grid, which also keeps pre-rdp directories decoding
// unchanged).
type TenantConfig struct {
	Epsilon       float64   `json:"epsilon"`
	Accounting    string    `json:"accounting"`
	Delta         float64   `json:"delta,omitempty"`
	WindowSeconds float64   `json:"window_seconds,omitempty"`
	Shards        int       `json:"shards,omitempty"`
	Orders        []float64 `json:"orders,omitempty"`
}

// TenantSnapshot is a compacted full tenant state: creation config,
// ledger state (native-unit spend), and every table with its rows. Seq is
// the last WAL record whose effects the snapshot includes; replay skips
// records at or below it.
type TenantSnapshot struct {
	Seq    uint64             `json:"seq"`
	Config TenantConfig       `json:"config"`
	Ledger dp.LedgerState     `json:"ledger"`
	Tables []dpsql.TableState `json:"tables,omitempty"`
}

// record is one WAL line's JSON body. Shard tags a rows record with the
// table shard the batch landed in, so replay rebuilds the same
// partitioning; it is omitted when zero, which makes shard-0 records
// byte-identical to the pre-shard encoding — old logs replay into shard 0
// and old readers would ignore the tag.
type record struct {
	Seq       uint64            `json:"seq"`
	Type      string            `json:"type"`
	Config    *TenantConfig     `json:"config,omitempty"`
	Table     *dpsql.TableState `json:"table,omitempty"`
	Rows      [][]dpsql.Value   `json:"rows,omitempty"`
	RowsTable string            `json:"rows_table,omitempty"`
	Shard     int               `json:"shard,omitempty"`
	Cost      *dp.Cost          `json:"cost,omitempty"`
	// Costs and Audits are a group-commit batch's payload: every
	// deduction and audit record acked by one shared fsync, framed as a
	// single CRC'd line so a crash tears the batch atomically — recovery
	// drops all of it or none of it, never a prefix.
	Costs  []dp.Cost     `json:"costs,omitempty"`
	Audits []AuditRecord `json:"audits,omitempty"`
}

// Metrics is the store's optional telemetry surface: the serve layer
// registers these instruments on its registry and installs them with
// SetMetrics before recovery; a nil Metrics (or any nil field) records
// nothing. Latencies are in seconds on obs.LatencyBuckets.
type Metrics struct {
	// FsyncSeconds observes every WAL flush+fsync (the release path's
	// durability barrier: one per commit batch — or per deduction with
	// group commit disabled — plus snapshot hardening).
	FsyncSeconds *obs.Histogram
	// SnapshotSeconds observes WriteSnapshot end to end (serialize, temp
	// write, fsync, rename, dir sync) — the legacy synchronous snapshot
	// path (shutdown flush), which stalls the tenant under the persist
	// lock. The background path is CompactionSeconds.
	SnapshotSeconds *obs.Histogram
	// CompactionSeconds observes Compact end to end (seal, segment
	// replay, snapshot publish, segment deletion) — the off-path
	// compaction that runs concurrently with releases.
	CompactionSeconds *obs.Histogram
	// WALRecords and WALBytes count appended records and their encoded
	// bytes (CRC prefix and newline included) across every tenant log.
	WALRecords *obs.Counter
	WALBytes   *obs.Counter
	// AuditFsyncSeconds observes audit-log hardenings (per-append when
	// group commit is off; per flush-point — snapshot, close — when audit
	// durability rides the WAL batch barrier). AuditRecords counts
	// appended audit records.
	AuditFsyncSeconds *obs.Histogram
	AuditRecords      *obs.Counter
	// BatchSize observes the number of entries acked per group-commit
	// barrier — the batching efficiency of the shared fsync.
	BatchSize *obs.Histogram
}

// Store manages the durable state under one data directory.
type Store struct {
	dir string

	mu      sync.Mutex
	logs    map[string]*TenantLog
	metrics *Metrics
	gcOpts  *GroupCommitOptions
	// pendingAudits stashes audit records recovered from WAL batch
	// records, per tenant, until OpenAudit reconciles them into the
	// (buffered, possibly behind) audit file.
	pendingAudits map[string][]AuditRecord
}

// SetMetrics installs the telemetry instruments. Call it once, after
// Open and before Recover or the first CreateTenant — logs capture the
// pointer at construction.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// TenantLog is one tenant's open write-ahead log. Appends are serialized
// by its mutex; WriteSnapshot compacts and rotates under the same lock,
// so an append can never land between a snapshot's capture and its WAL
// truncation (the serve layer additionally excludes state mutation during
// capture with its own per-tenant lock).
type TenantLog struct {
	id  string
	dir string

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	seq       uint64       // last assigned sequence number (never resets)
	snapSeq   uint64       // seq covered by the on-disk snapshot
	tailStart uint64       // last seq NOT in the active tail (seal/truncate point)
	pending   int          // records appended since the last snapshot
	broken    bool         // fail-stop after a write error
	segs      []walSegment // sealed immutable segments, ascending end seq

	// compactMu serializes Compact and WriteSnapshot — both rewrite
	// snapshot.json and delete covered segments. Lock order: compactMu
	// before mu, never the reverse.
	compactMu sync.Mutex

	met *Metrics        // telemetry instruments (nil records nothing)
	gc  *groupCommitter // shared fsync barrier (nil: per-record fsync)

	auditMu sync.Mutex
	audit   *AuditLog // attached audit file riding the commit barrier
}

// attachAudit routes the tenant's audit appends through the log's commit
// barrier: audit lines are buffered and their durable copy rides the
// batch WAL record, so one fsync covers both the deduction and its audit
// line. Without a committer the attachment only lets WriteSnapshot and
// Close harden the audit file alongside the WAL.
func (tl *TenantLog) attachAudit(a *AuditLog) {
	tl.auditMu.Lock()
	tl.audit = a
	tl.auditMu.Unlock()
	a.mu.Lock()
	a.gc = tl.gc
	a.mu.Unlock()
}

// attachedAudit reads the attached audit file, if any.
func (tl *TenantLog) attachedAudit() *AuditLog {
	tl.auditMu.Lock()
	defer tl.auditMu.Unlock()
	return tl.audit
}

// Open prepares a store rooted at dir, creating it if needed, and claims
// the directory's LOCK file with an exclusive flock: a different process
// already owning it is refused with ErrLocked instead of being allowed
// to interleave WAL appends (two writers would fabricate the seq
// regressions recovery truncates at, dropping fsynced deductions). The
// flock dies with the process, so a crash never wedges the directory;
// within one process an already-held lock is adopted, because the
// crash-recovery drills abandon a server and re-open the same directory.
// Adoption makes same-process exclusion the EMBEDDER'S contract: after a
// second Open on the same dir, the first store must never write again —
// two live same-process writers would interleave seqs and truncate each
// other's buffered tails into a WAL the next recovery refuses
// (ErrCorruptWAL).
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := claimLock(dir); err != nil {
		return nil, err
	}
	return &Store{dir: dir, logs: map[string]*TenantLog{}}, nil
}

// lockName is the flock-ed file claiming a data directory.
const lockName = "LOCK"

// heldLocks tracks the flocks this process holds, keyed by absolute data
// dir and refcounted per Store. flock ownership is per open file
// description, so a same-process re-open must adopt the existing hold
// instead of flocking a second descriptor (which would self-conflict) —
// and the refcount keeps one Store's Close from dropping the flock out
// from under another still-live Store on the same directory.
type dirLock struct {
	f    *os.File
	refs int
}

var (
	heldLocksMu sync.Mutex
	heldLocks   = map[string]*dirLock{}
)

// lockKey resolves dir to the registry key.
func lockKey(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return dir
}

// claimLock takes (or adopts) the exclusive flock on dir's LOCK file.
// flock is atomic in the kernel, so there is no claim/steal race between
// processes — the loser gets EWOULDBLOCK no matter how the calls
// interleave — and it evaporates when the holder dies.
func claimLock(dir string) error {
	key := lockKey(dir)
	heldLocksMu.Lock()
	defer heldLocksMu.Unlock()
	if l, held := heldLocks[key]; held {
		l.refs++ // same-process re-open: adopt the existing hold
		return nil
	}
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	heldLocks[key] = &dirLock{f: f, refs: 1}
	return nil
}

// releaseLock drops one reference on dir's flock; the flock itself is
// released only when the last same-process holder closes.
func releaseLock(dir string) {
	key := lockKey(dir)
	heldLocksMu.Lock()
	defer heldLocksMu.Unlock()
	l, held := heldLocks[key]
	if !held {
		return
	}
	if l.refs--; l.refs <= 0 {
		_ = l.f.Close() // closing the descriptor releases the flock
		delete(heldLocks, key)
	}
}

// Dir reports the data directory.
func (s *Store) Dir() string { return s.dir }

// CheckTenantID validates that id is usable as a directory name: a plain
// path component, not ".", "..", or anything containing a separator.
// Tenant ids become on-disk paths, so this is the traversal guard; the
// store's own lock file name is reserved too (a tenant named LOCK would
// collide with it and 409 forever).
func CheckTenantID(id string) error {
	if id == "" || id == "." || id == ".." ||
		strings.ContainsAny(id, `/\`) || filepath.Base(id) != id ||
		strings.EqualFold(id, lockName) {
		return fmt.Errorf("%w: got %q", ErrBadTenantID, id)
	}
	return nil
}

// CreateTenant establishes a tenant's durable presence: its directory and
// a WAL whose first record is the creation config, synced before return —
// an acknowledged tenant always recovers.
func (s *Store) CreateTenant(id string, cfg TenantConfig) (*TenantLog, error) {
	if err := CheckTenantID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.logs[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	dir := filepath.Join(s.dir, id)
	if err := os.Mkdir(dir, 0o755); err != nil {
		// An existing EMPTY directory is adopted: it is the husk of a
		// creation that crashed between Mkdir and the WAL becoming
		// durable (recovery leaves empty directories alone because they
		// are indistinguishable from an operator's), and refusing it
		// would wedge the id into 409 forever.
		if !os.IsExist(err) {
			return nil, fmt.Errorf("store: %w", err)
		}
		if entries, rerr := os.ReadDir(dir); rerr != nil || len(entries) > 0 {
			return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, fmt.Errorf("store: %w", err)
	}
	tl := &TenantLog{id: id, dir: dir, f: f, w: bufio.NewWriterSize(f, walBufSize), met: s.metrics}
	tl.startCommitter(s.gcOpts)
	if err := tl.append(record{Type: recCreate, Config: &cfg}, true); err != nil {
		tl.stopCommitter()
		_ = f.Close()
		_ = os.RemoveAll(dir)
		return nil, err
	}
	// The directory entries must be durable before the tenant is
	// acknowledged: fsyncing wal.log's data does not persist its dir
	// entry, and an acknowledged tenant whose WAL vanishes on crash would
	// recover as never-created — a fresh full budget.
	if err := syncDir(dir); err != nil {
		tl.stopCommitter()
		_ = f.Close()
		_ = os.RemoveAll(dir)
		return nil, fmt.Errorf("store: syncing tenant dir: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		tl.stopCommitter()
		_ = f.Close()
		_ = os.RemoveAll(dir)
		return nil, fmt.Errorf("store: syncing data dir: %w", err)
	}
	s.logs[id] = tl
	return tl, nil
}

// Tenant returns the open log for id, if any.
func (s *Store) Tenant(id string) (*TenantLog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl, ok := s.logs[id]
	return tl, ok
}

// Close flushes and closes every tenant log and releases the directory
// lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, tl := range s.logs {
		if err := tl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.logs = map[string]*TenantLog{}
	releaseLock(s.dir)
	return firstErr
}

// ID reports the tenant id the log belongs to.
func (tl *TenantLog) ID() string { return tl.id }

// append encodes one record under the log's mutex; sync additionally
// flushes the buffer and fsyncs the file. Any write error makes the log
// fail-stop (ErrLogBroken): a torn record must never be followed by an
// intact one, or replay would stop at the tear and silently drop it.
func (tl *TenantLog) append(rec record, sync bool) error {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.appendLocked(rec, sync)
}

func (tl *TenantLog) appendLocked(rec record, sync bool) error {
	if tl.broken || tl.f == nil {
		return ErrLogBroken
	}
	tl.seq++
	rec.Seq = tl.seq
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	if _, err := fmt.Fprintf(tl.w, "%08x %s\n", crc32.ChecksumIEEE(body), body); err != nil {
		tl.broken = true
		return fmt.Errorf("store: appending record: %w", err)
	}
	if m := tl.met; m != nil {
		if m.WALRecords != nil {
			m.WALRecords.Inc()
		}
		if m.WALBytes != nil {
			m.WALBytes.Add(int64(len(body)) + 10) // "xxxxxxxx " prefix + "\n"
		}
	}
	tl.pending++
	if sync {
		if err := tl.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked drains the buffer and fsyncs. Callers hold tl.mu.
func (tl *TenantLog) flushLocked() error {
	t0 := time.Now()
	if err := tl.w.Flush(); err != nil {
		tl.broken = true
		return fmt.Errorf("store: flushing wal: %w", err)
	}
	if err := tl.f.Sync(); err != nil {
		tl.broken = true
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	if m := tl.met; m != nil && m.FsyncSeconds != nil {
		m.FsyncSeconds.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// AppendTable logs a table creation (schema only), synced before return.
func (tl *TenantLog) AppendTable(st dpsql.TableState) error {
	st.Rows = nil
	return tl.append(record{Type: recTable, Table: &st}, true)
}

// AppendRows logs an ingestion batch bound for one table shard (the
// ingest path splits a wire batch by destination and logs one record per
// shard, so replay rebuilds the same partitioning; unsharded tables
// always pass 0). It is buffered, not fsynced: a crash may lose trailing
// batches (utility), never a deduction (privacy). The next AppendDeduct,
// snapshot, or Close hardens it.
func (tl *TenantLog) AppendRows(table string, shard int, rows [][]dpsql.Value) error {
	if len(rows) == 0 {
		return nil
	}
	return tl.append(record{Type: recRows, RowsTable: table, Shard: shard, Rows: rows}, false)
}

// AppendDeduct durably records one ledger deduction: flushed and fsynced
// before return. The serve layer calls this after the in-memory
// check-and-deduct succeeds and before the mechanism's answer is
// released, so every answered release's spend is on disk.
func (tl *TenantLog) AppendDeduct(c dp.Cost) error {
	return tl.append(record{Type: recDeduct, Cost: &c}, true)
}

// RecordsSinceSnapshot reports how many WAL records the current snapshot
// does not cover — the compaction trigger the serve layer polls.
func (tl *TenantLog) RecordsSinceSnapshot() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.pending
}

// WriteSnapshot compacts the tenant's full state synchronously: the
// snapshot is written to a temp file, fsynced, and atomically renamed
// over the previous one, and only then is the WAL truncated (tail zeroed,
// covered sealed segments deleted). A crash at any point leaves either
// the old snapshot with a full WAL or the new snapshot with (possibly)
// records it already covers — both replay to the same state thanks to the
// seq guard. The caller must guarantee snap captures all state through
// the log's current record (the serve layer holds its per-tenant persist
// lock across capture and this call); snap.Seq is set here. This is the
// shutdown-flush path; the steady-state path is Compact, which never
// needs a state capture or the caller's locks.
func (tl *TenantLog) WriteSnapshot(snap TenantSnapshot) error {
	tl.compactMu.Lock()
	defer tl.compactMu.Unlock()
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.broken || tl.f == nil {
		// Broken, or closed underneath a background compaction.
		return ErrLogBroken
	}
	if m := tl.met; m != nil && m.SnapshotSeconds != nil {
		t0 := time.Now()
		defer func() { m.SnapshotSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	// Harden the WAL first: if the snapshot write fails midway, the log
	// must still carry everything.
	if err := tl.flushLocked(); err != nil {
		return err
	}
	snap.Seq = tl.seq
	if err := writeSnapshotFile(tl.dir, snap); err != nil {
		return err
	}
	if err := syncDir(tl.dir); err != nil {
		// The rename's directory entry is not confirmed durable: a crash
		// could still resurface the OLD snapshot, so the WAL must stay
		// authoritative — truncating it here would vanish every deduction
		// between the two snapshots. Keeping it is always safe: the seq
		// guard skips covered records on replay. pending stays nonzero so
		// compaction retries.
		return nil
	}
	// Harden the attached audit file before dropping the WAL: batch
	// records about to be truncated (or deleted with their segment) may
	// hold the only durable copy of buffered audit lines. On failure,
	// keep the WAL authoritative. (Lock order is safe: the committer
	// never holds the audit mutex while waiting for tl.mu —
	// appendBuffered releases it per line.)
	if a := tl.attachedAudit(); a != nil {
		if err := a.harden(); err != nil {
			return nil
		}
	}
	tl.snapSeq = snap.Seq
	tl.pending = 0
	// The snapshot is durable; the WAL records it covers — the whole
	// tail and every sealed segment (snap.Seq == tl.seq covers them all)
	// — are dead weight. Truncation/deletion failures are not fatal:
	// replay's seq guard skips covered records and the next compaction
	// re-deletes covered segments.
	_ = tl.f.Truncate(0)
	tl.tailStart = tl.seq
	for _, sg := range tl.segs {
		_ = os.Remove(sg.path)
	}
	tl.segs = nil
	return nil
}

// Close drains the group committer (parked entries are committed, late
// submissions refused), then flushes, fsyncs, and closes the log.
func (tl *TenantLog) Close() error {
	// The committer appends under tl.mu, so it must be fully stopped
	// before the lock is taken — a drain-under-lock would deadlock.
	tl.stopCommitter()
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.f == nil {
		return nil
	}
	flushErr := error(nil)
	if !tl.broken {
		flushErr = tl.flushLocked()
	}
	closeErr := tl.f.Close()
	tl.f = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// syncDir fsyncs a directory so entry creation/rename is durable. The
// tenant-creation path refuses the creation on failure (an acknowledged
// tenant whose directory entry was never durable could vanish on crash
// and recover with a fresh budget); the snapshot path gates WAL
// truncation on it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
