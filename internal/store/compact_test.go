package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/dpsql"
)

// testReplayer is the ledger rebuild a real server supplies to Compact:
// restore the previous snapshot's state (or start fresh from the config)
// and force-replay the sealed deductions on top.
func testReplayer() LedgerReplayer {
	return func(cfg TenantConfig, prev *dp.LedgerState, deducts []dp.Cost) (dp.LedgerState, error) {
		var (
			led dp.StatefulLedger
			err error
		)
		if prev != nil {
			led, err = dp.RestoreLedger(*prev)
		} else {
			led, err = dp.NewBasicLedger(cfg.Epsilon)
		}
		if err != nil {
			return dp.LedgerState{}, err
		}
		for _, c := range deducts {
			if err := led.ForceSpend(c); err != nil {
				return dp.LedgerState{}, err
			}
		}
		return led.Snapshot()
	}
}

// TestSealAndRecover: records on both sides of a seal — some in an
// immutable segment, some in the fresh tail — all come back, in order,
// and the recovered log knows its segments.
func TestSealAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u1", 1), row("u2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tl.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := tl.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount after seal = %d, want 1", got)
	}
	// A seal with an empty tail is a no-op, not an empty segment.
	if err := tl.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := tl.SegmentCount(); got != 1 {
		t.Fatalf("empty-tail seal minted a segment: %d", got)
	}
	if err := tl.AppendRows("events", 0, [][]dpsql.Value{row("u3", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.25)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if len(rec.Tables) != 1 || len(rec.Tables[0].Rows) != 3 {
		t.Fatalf("tables: %+v", rec.Tables)
	}
	if len(rec.Deducts) != 2 || rec.Deducts[0].Eps != 0.5 || rec.Deducts[1].Eps != 0.25 {
		t.Fatalf("deducts: %+v", rec.Deducts)
	}
	if got := rec.Log.SegmentCount(); got != 1 {
		t.Fatalf("recovered SegmentCount = %d, want 1", got)
	}
	// The recovered log appends and seals on, with continuing seqs.
	if err := rec.Log.AppendDeduct(dp.EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Log.SegmentCount(); got != 2 {
		t.Fatalf("post-recovery seal: SegmentCount = %d, want 2", got)
	}
}

// TestCompactFoldsSegmentsAndCarriesSpend: Compact seals the tail,
// replays the sealed records into a snapshot (rows AND spend), deletes
// the covered segments, and recovery from the result is exact.
func TestCompactFoldsSegmentsAndCarriesSpend(t *testing.T) {
	dir := seedStore(t) // 3 rows, deducts 0.5 + 0.25
	s, rec := recoverOne(t, dir)
	tl := rec.Log
	if err := tl.Compact(testConfig(), testReplayer()); err != nil {
		t.Fatal(err)
	}
	if got := tl.SegmentCount(); got != 0 {
		t.Fatalf("covered segments survived compaction: %d", got)
	}
	// Post-compaction deducts live only in the new tail.
	if err := tl.AppendDeduct(dp.EpsCost(0.125)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := recoverOne(t, dir)
	defer s2.Close()
	if rec2.Ledger == nil {
		t.Fatal("compaction published no ledger state")
	}
	led, err := dp.RestoreLedger(*rec2.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if got := led.Spent(); got != 0.75 {
		t.Fatalf("snapshot ledger spent %v, want 0.75", got)
	}
	if len(rec2.Deducts) != 1 || rec2.Deducts[0].Eps != 0.125 {
		t.Fatalf("tail deducts: %+v", rec2.Deducts)
	}
	if len(rec2.Tables) != 1 || len(rec2.Tables[0].Rows) != 3 {
		t.Fatalf("tables: %+v", rec2.Tables)
	}
}

// TestCompactRepeatedlyConcurrentWithAppends: appends race Compact calls
// — the whole point of off-path compaction — and nothing is lost. Run
// under -race in CI, this is also the lock-discipline check.
func TestCompactRepeatedlyConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	const deducts = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deducts; i++ {
			if err := tl.AppendDeduct(dp.EpsCost(0.001)); err != nil {
				t.Error(err)
				return
			}
			if i%5 == 0 {
				if err := tl.AppendRows("events", 0, [][]dpsql.Value{row(fmt.Sprintf("u%03d", i), float64(i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := tl.Compact(testConfig(), testReplayer()); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := tl.Compact(testConfig(), testReplayer()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	led, err := dp.RestoreLedger(*rec.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	spent := led.Spent()
	for _, c := range rec.Deducts {
		spent += c.Eps
	}
	// Exact count: snapshot spend plus tail deducts must equal every
	// acknowledged deduction — never fewer (lost spend) nor more
	// (double count from a record in both snapshot and segment).
	if want := float64(deducts) * 0.001; spent < want-1e-9 || spent > want+1e-9 {
		t.Fatalf("total recovered spend %v, want %v", spent, want)
	}
	if got := len(rec.Tables[0].Rows); got != deducts/5 {
		t.Fatalf("recovered %d rows, want %d", got, deducts/5)
	}
}

// TestCorruptSegmentFailsLoudly: sealed segments are fully fsynced, so
// ANY damage is real corruption — recovery must refuse, not truncate the
// way the torn-tail heuristic does for the active tail.
func TestCorruptSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendTable(eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tl.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(filepath.Join(dir, "acme"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"flipped byte": func(b []byte) []byte { out := append([]byte(nil), b...); out[len(out)/2] ^= 0x40; return out },
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
	} {
		if err := os.WriteFile(segs[0].path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s2.Recover()
		s2.Close()
		if !errors.Is(err, ErrCorruptWAL) {
			t.Fatalf("%s segment: Recover() = %v, want ErrCorruptWAL", name, err)
		}
	}
}

// TestCoveredSegmentSkippedAndCleaned: a crash after the compaction
// snapshot publishes but before the covered segment is deleted leaves
// both on disk. Recovery must not double-apply the segment, and the next
// compaction sweeps the stale file.
func TestCoveredSegmentSkippedAndCleaned(t *testing.T) {
	dir := seedStore(t)
	s, rec := recoverOne(t, dir)
	tl := rec.Log
	if err := tl.Seal(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(filepath.Join(dir, "acme"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	saved, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Compact(testConfig(), testReplayer()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the covered segment: disk now looks like the crash hit
	// between snapshot publish and segment delete.
	if err := os.WriteFile(segs[0].path, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := recoverOne(t, dir)
	if led, err := dp.RestoreLedger(*rec2.Ledger); err != nil {
		t.Fatal(err)
	} else if got := led.Spent(); got != 0.75 {
		t.Fatalf("spend after resurrected segment = %v, want 0.75 (double-applied?)", got)
	}
	if got := len(rec2.Tables[0].Rows); got != 3 {
		t.Fatalf("rows after resurrected segment = %d, want 3", got)
	}
	// The stale file rides along until the next compaction sweeps it.
	if err := rec2.Log.AppendDeduct(dp.EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	if err := rec2.Log.Compact(testConfig(), testReplayer()); err != nil {
		t.Fatal(err)
	}
	if segs, err := listSegments(filepath.Join(dir, "acme")); err != nil || len(segs) != 0 {
		t.Fatalf("stale covered segment not cleaned: %v err=%v", segs, err)
	}
	s2.Close()
}

// TestCompactFailedReplayLeavesWALAuthoritative: a failing ledger replay
// aborts the compaction with the segments intact — recovery still has
// every record, and spend is never recorded less than acknowledged.
func TestCompactFailedReplayLeavesWALAuthoritative(t *testing.T) {
	dir := seedStore(t)
	s, rec := recoverOne(t, dir)
	tl := rec.Log
	boom := errors.New("replay boom")
	err := tl.Compact(testConfig(), func(TenantConfig, *dp.LedgerState, []dp.Cost) (dp.LedgerState, error) {
		return dp.LedgerState{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Compact() = %v, want the replayer's error", err)
	}
	// The seal happened (that part is safe); the segment must survive.
	if got := tl.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount after failed compaction = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec2 := recoverOne(t, dir)
	defer s2.Close()
	if len(rec2.Deducts) != 2 || len(rec2.Tables[0].Rows) != 3 {
		t.Fatalf("failed compaction lost records: %d deducts, %+v", len(rec2.Deducts), rec2.Tables)
	}
}
