package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dp"
)

// The group-commit crash drills. The crash model throughout: "crash"
// means abandoning a Store without Close or Flush — buffered state (the
// audit file's bufio, the WAL's rows class) dies with the process, and
// only what an fsync barrier covered survives. Same-process re-Open
// adopts the directory lock (see TestDataDirLock), so the drills run
// in-process.

func openGrouped(t *testing.T, dir string, o GroupCommitOptions) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGroupCommit(o)
	return s
}

func TestGroupCommitAckedDeductsSurviveCrash(t *testing.T) {
	// Every CommitDeduct that returned nil was acked by its batch's
	// fsync; a crash immediately after must lose none of them. (The
	// converse — no release answered from a lost batch — is the same
	// barrier seen from the other side: submit does not return until the
	// batch record is fsynced, so a batch a crash can lose is a batch no
	// caller was ever released from.)
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var acked atomic.Int64
	var sawBatchWait atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct, err := tl.CommitDeduct(dp.EpsCost(0.001))
			if err != nil {
				t.Error(err)
				return
			}
			if ct.Waited > 0 {
				sawBatchWait.Store(true)
			}
			acked.Add(1)
		}()
	}
	wg.Wait()
	if !sawBatchWait.Load() {
		t.Log("no submission parked (fsync outran 64 goroutines) — durability assertion still holds")
	}

	// Crash: abandon s. The committer goroutine idles; no Close, no Flush.
	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if int64(len(rec.Deducts)) < acked.Load() {
		t.Fatalf("crash lost acked deductions: recovered %d, acked %d", len(rec.Deducts), acked.Load())
	}
	var spent float64
	for _, c := range rec.Deducts {
		spent += c.Eps
	}
	if want := float64(acked.Load()) * 0.001; spent < want-1e-9 {
		t.Fatalf("recovered spend %g < acknowledged spend %g", spent, want)
	}
}

// appendRaw writes pre-framed bytes straight to a tenant's WAL, the
// hand-tooled crash shapes the committer itself would never produce.
func appendRaw(t *testing.T, dir, id string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, id, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func frameRecord(t *testing.T, r record) []byte {
	t.Helper()
	body, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body))
}

func TestTornBatchDropsWholeBatchNeverPrefix(t *testing.T) {
	// A batch is ONE CRC-framed WAL line: a crash mid-write must drop
	// every cost it carries or none — a replayed prefix would charge the
	// ledger for releases that were never acknowledged.
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.CommitDeduct(dp.EpsCost(0.5)); err != nil { // seq 2 (create is 1)
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-append an intact batch (seq 3), then a torn one (seq 4) cut
	// mid-frame AFTER its first cost object is fully serialized — the
	// tear shape most tempting to a prefix-replaying recovery.
	intact := frameRecord(t, record{Seq: 3, Type: recBatch, Costs: []dp.Cost{{Eps: 0.25}, {Eps: 0.125}}})
	torn := frameRecord(t, record{Seq: 4, Type: recBatch, Costs: []dp.Cost{{Eps: 64}, {Eps: 32}, {Eps: 16}}})
	cut := bytes.Index(torn, []byte("},{")) + 1 // just past the first cost's closing brace
	if cut <= 0 {
		t.Fatal("tear offset not found")
	}
	appendRaw(t, dir, "acme", append(intact, torn[:cut]...))

	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	var spent float64
	for _, c := range rec.Deducts {
		spent += c.Eps
		if c.Eps >= 16 {
			t.Fatalf("torn batch replayed a prefix: cost %+v recovered", c)
		}
	}
	if want := 0.5 + 0.25 + 0.125; spent != want {
		t.Fatalf("recovered spend %g, want %g (intact batches whole, torn batch gone)", spent, want)
	}
	// The tear was truncated away; the log keeps appending.
	if err := rec.Log.AppendDeduct(dp.EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitAuditReconciledAfterCrash(t *testing.T) {
	// Routed audit appends are BUFFERED in the audit file — the durable
	// copy rides the batch WAL record. A crash throws the buffer away;
	// recovery must rebuild the file from the WAL copies so that every
	// acknowledged (acked-by-barrier) release is audited, with seqs
	// contiguous.
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Append(&AuditRecord{
			ReleaseID: fmt.Sprintf("r%02d", i),
			Path:      "estimate",
			Mechanism: "count",
			Cost:      dp.EpsCost(0.01),
			Unit:      "eps",
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tl.CommitDeduct(dp.EpsCost(0.01)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Len(); got != n {
		t.Fatalf("audit len %d, want %d", got, n)
	}

	// Crash: abandon s AND a — the bufio holding the audit lines is lost.
	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if len(rec.Deducts) != n {
		t.Fatalf("recovered %d deducts, want %d", len(rec.Deducts), n)
	}
	a2, err := s2.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if got := a2.Len(); got != n {
		t.Fatalf("acknowledged implies audited: recovered audit len %d, want %d", got, n)
	}
	page, err := a2.Page(0, n+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != n {
		t.Fatalf("paged %d records, want %d", len(page), n)
	}
	for i, r := range page {
		if r.Seq != uint64(i+1) {
			t.Fatalf("audit seq gap after reconcile: page[%d].Seq = %d", i, r.Seq)
		}
		if r.ReleaseID != fmt.Sprintf("r%02d", i) {
			t.Fatalf("reconciled record reordered: %+v at %d", r, i)
		}
	}
}

func TestGroupCommitSnapshotHardensAuditBeforeTruncation(t *testing.T) {
	// WriteSnapshot truncates the WAL — destroying the batch records that
	// are the buffered audit lines' only durable copy — so it must harden
	// the audit file FIRST. Drill: append routed, snapshot, crash; the
	// audit file alone must hold every record.
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Append(&AuditRecord{ReleaseID: fmt.Sprintf("r%d", i), Cost: dp.EpsCost(0.01), Unit: "eps"}); err != nil {
			t.Fatal(err)
		}
	}
	led, _ := dp.NewBasicLedger(4)
	ls, _ := led.Snapshot()
	if err := tl.WriteSnapshot(TenantSnapshot{Config: testConfig(), Ledger: ls}); err != nil {
		t.Fatal(err)
	}

	// Crash. The WAL is truncated (batch copies gone); the hardened
	// audit file is now the only record.
	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	_ = rec
	a2, err := s2.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if got := a2.Len(); got != n {
		t.Fatalf("snapshot destroyed audit records: len %d, want %d", got, n)
	}
}

func TestGroupCommitStress(t *testing.T) {
	// Parked releases vs routed audit appends vs WriteSnapshot vs Close,
	// for -race: submitters hammer until Close breaks the log, treating
	// ErrLogBroken as the stop signal; nothing may hang, tear, or lose an
	// acked record. MaxBatch is small so batch boundaries churn.
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{MaxBatch: 4})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := tl.CommitDeduct(dp.EpsCost(1e-6)); err != nil {
					if !errors.Is(err, ErrLogBroken) {
						t.Errorf("CommitDeduct: %v", err)
					}
					return
				}
				acked.Add(1)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				rec := AuditRecord{ReleaseID: fmt.Sprintf("s%d-%d", g, i), Cost: dp.EpsCost(1e-6), Unit: "eps"}
				if err := a.Append(&rec); err != nil {
					if !errors.Is(err, ErrLogBroken) {
						t.Errorf("audit Append: %v", err)
					}
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		led, _ := dp.NewBasicLedger(4)
		ls, _ := led.Snapshot()
		for i := 0; i < 5; i++ {
			_ = tl.WriteSnapshot(TenantSnapshot{Config: testConfig(), Ledger: ls})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Post-close submissions fail fast with ErrLogBroken, never hang.
	if _, err := tl.CommitDeduct(dp.EpsCost(1)); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("post-close CommitDeduct: %v", err)
	}
	if err := a.Append(&AuditRecord{ReleaseID: "late"}); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("post-close audit Append: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// The directory recovers cleanly — neither the racing snapshots nor
	// the mid-flight Close tore the WAL or the audit file. (The stress
	// snapshots carry a deliberately stale ledger, as in
	// TestConcurrentAppendsVsSnapshot, so spend preservation is asserted
	// by the dedicated crash drills above, not here.)
	if acked.Load() == 0 {
		t.Error("stress acked nothing — the race never exercised the barrier")
	}
	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	a2, err := s2.OpenAudit(rec.ID)
	if err != nil {
		t.Fatalf("audit file torn by stress: %v", err)
	}
	a2.Close()
}

func TestGroupCommitDisabledFallsBack(t *testing.T) {
	// Disable restores the per-record path: CommitDeduct still works (and
	// is still durable), no committer goroutine exists.
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{Disable: true})
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tl.gc != nil {
		t.Fatal("Disable left a committer attached")
	}
	if _, err := tl.CommitDeduct(dp.EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec := recoverOne(t, dir)
	defer s2.Close()
	if len(rec.Deducts) != 1 || rec.Deducts[0].Eps != 0.5 {
		t.Fatalf("fallback deduct lost: %+v", rec.Deducts)
	}
}

func TestGroupCommitMaxDelayCoalesces(t *testing.T) {
	// MaxDelay is a bounded coalescing sleep, not a loop: a lone release
	// with MaxDelay set still commits (after at most one window).
	dir := t.TempDir()
	s := openGrouped(t, dir, GroupCommitOptions{MaxDelay: 2 * time.Millisecond})
	defer s.Close()
	tl, err := s.CreateTenant("acme", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tl.CommitDeduct(dp.EpsCost(0.1))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MaxDelay committer never fired for a lone release")
	}
}
