package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dp"
	"repro/internal/dpsql"
)

// RecoveredTenant is one tenant's state reconstructed from snapshot +
// WAL tail, plus its reopened log. The caller (the serve layer) rebuilds
// the live ledger from Ledger (or fresh from Config when Ledger is nil —
// no snapshot was ever written) and then force-replays Deducts on top, so
// recovered spend is the snapshot's spend plus every deduction recorded
// after it.
type RecoveredTenant struct {
	ID      string
	Config  TenantConfig
	Ledger  *dp.LedgerState // nil when no snapshot exists
	Tables  []dpsql.TableState
	Deducts []dp.Cost
	Log     *TenantLog
}

// Recover scans the data directory and reconstructs every tenant,
// reopening each WAL for appending (truncating a torn tail first).
// Tenant directories whose WAL holds no durable creation record are
// skipped: the creation was never acknowledged. A corrupt snapshot fails
// recovery loudly — proceeding would refill the tenant's budget.
func (s *Store) Recover() ([]*RecoveredTenant, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*RecoveredTenant
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := s.recoverTenant(e.Name())
		if err != nil {
			// Logs recovered before the failure are already registered, so
			// the caller's Store.Close() releases their file handles.
			return nil, err
		}
		if rec != nil {
			// Register immediately, not after the loop: a failure on a
			// later tenant must not leak this one's reopened WAL.
			s.mu.Lock()
			s.logs[rec.ID] = rec.Log
			s.mu.Unlock()
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// recoverTenant rebuilds one tenant. Returns (nil, nil) for a directory
// holding no acknowledged tenant.
func (s *Store) recoverTenant(id string) (*RecoveredTenant, error) {
	dir := filepath.Join(s.dir, id)
	rec := &RecoveredTenant{ID: id}
	startSeq := uint64(0)
	haveConfig := false
	var pendAudits []AuditRecord

	// Snapshot first: it is the replay floor.
	snapBody, err := os.ReadFile(filepath.Join(dir, snapName))
	switch {
	case err == nil:
		var snap TenantSnapshot
		if err := json.Unmarshal(snapBody, &snap); err != nil {
			return nil, fmt.Errorf("%w: tenant %q: %v", ErrCorruptSnapshot, id, err)
		}
		rec.Config = snap.Config
		ledger := snap.Ledger
		rec.Ledger = &ledger
		rec.Tables = snap.Tables
		startSeq = snap.Seq
		haveConfig = true
	case os.IsNotExist(err):
		// First boot after creation, or the tenant never compacted.
	default:
		return nil, fmt.Errorf("store: reading snapshot for %q: %w", id, err)
	}

	// Sealed segments next, oldest first: every byte of a segment was
	// fsynced before the seal's rename, so there is no torn-tail class —
	// ANY damage is media corruption that may sit before acknowledged
	// deductions, and recovery refuses loudly. Records at or below the
	// snapshot floor are skipped (covered segments linger when a crash
	// landed between snapshot publication and segment deletion; the next
	// compaction removes them), but their batch audit copies are still
	// stashed for reconciliation, exactly like covered tail records.
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing segments for %q: %w", id, err)
	}
	segLast := uint64(0)
	for _, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return nil, fmt.Errorf("store: reading segment for %q: %w", id, err)
		}
		off := 0
		for off < len(data) {
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				return nil, fmt.Errorf("%w: tenant %q segment %s truncated", ErrCorruptWAL, id, filepath.Base(sg.path))
			}
			r, ok := parseLine(data[off : off+nl+1])
			if !ok {
				return nil, fmt.Errorf("%w: tenant %q segment %s at byte %d", ErrCorruptWAL, id, filepath.Base(sg.path), off)
			}
			off += nl + 1
			if r.Seq <= segLast {
				return nil, fmt.Errorf("%w: tenant %q segment %s seq %d after %d", ErrCorruptWAL, id, filepath.Base(sg.path), r.Seq, segLast)
			}
			segLast = r.Seq
			if r.Seq <= startSeq {
				if r.Type == recBatch {
					pendAudits = append(pendAudits, r.Audits...)
				}
				continue
			}
			applyRecord(rec, r, &haveConfig, &pendAudits)
		}
	}

	// Replay the WAL tail: records with seq > startSeq, stopping at the
	// first torn or corrupt line. A bad region is only truncated away
	// when NOTHING intact follows it — the crash model (buffered appends
	// torn mid-write) can damage only the un-fsynced tail, so an intact
	// record after damage means media corruption that may sit before an
	// acknowledged deduction, and recovery refuses loudly instead of
	// silently under-counting spend. O_APPEND on the reopened handle is
	// load-bearing beyond convenience: WriteSnapshot truncates the file
	// to zero, and only append mode guarantees the next write lands at
	// the new EOF instead of the stale offset (which would leave a
	// zero-filled hole that the next recovery reads as a torn prefix).
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		if !haveConfig {
			// Neither a snapshot nor a WAL. A directory holding only
			// store-written leftovers (a stray snapshot temp file) is a
			// creation husk — remove it so the id is creatable again. An
			// EMPTY directory is ambiguous (it could be the operator's,
			// freshly made) and is left alone; CreateTenant adopts empty
			// directories instead, so the id does not wedge either way.
			if entries, rerr := os.ReadDir(dir); rerr == nil && len(entries) > 0 && onlyStoreFiles(dir) {
				_ = os.RemoveAll(dir)
			}
			return nil, nil
		}
	case err != nil:
		return nil, fmt.Errorf("store: reading wal for %q: %w", id, err)
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal for %q: %w", id, err)
	}
	lastSeq := startSeq
	if segLast > lastSeq {
		// The tail starts after the newest sealed segment; a tail record
		// at or below segLast is a sequence regression, not a crash shape.
		lastSeq = segLast
	}
	tailStart := lastSeq
	sawTail := false
	goodEnd := int64(0)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // final line without its newline: a torn append
		}
		line := data[off : off+nl+1]
		r, ok := parseLine(line)
		if !ok {
			if anyIntactSyncedRecord(data[off+nl+1:]) {
				_ = f.Close()
				return nil, fmt.Errorf("%w: tenant %q at byte %d", ErrCorruptWAL, id, off)
			}
			break // torn tail: truncating drops only unacknowledged records
		}
		if !sawTail {
			// The seal point the reopened log resumes from: the seq just
			// before the tail's first physical record (whether or not the
			// snapshot already covers it).
			tailStart = r.Seq - 1
			sawTail = true
		}
		if r.Seq <= startSeq {
			// Intact leftovers of a crash between snapshot publication and
			// WAL truncation: the snapshot already includes their effects
			// (the idempotence guard). Keep the bytes, skip the replay —
			// except a batch record's audit copies, which must still reach
			// the audit file if the crash landed between the snapshot
			// becoming durable and the audit hardening that precedes
			// truncation (reconciliation skips ones the file already has).
			if r.Type == recBatch {
				pendAudits = append(pendAudits, r.Audits...)
			}
			off += nl + 1
			goodEnd = int64(off)
			continue
		}
		if r.Seq <= lastSeq {
			// Sequence regression among intact lines: not a crash shape.
			_ = f.Close()
			return nil, fmt.Errorf("%w: tenant %q seq %d after %d", ErrCorruptWAL, id, r.Seq, lastSeq)
		}
		off += nl + 1
		goodEnd = int64(off)
		lastSeq = r.Seq
		applyRecord(rec, r, &haveConfig, &pendAudits)
	}
	if !haveConfig {
		// No snapshot and no durable creation record: the tenant was never
		// acknowledged (a crash between Mkdir and the synced create
		// append). Skip it — and remove the husk if it holds nothing but
		// store-written files, or re-creating the same tenant id would
		// hit the existing directory and 409 forever. Anything else in
		// the directory is not ours to delete.
		_ = f.Close()
		if onlyStoreFiles(dir) {
			_ = os.RemoveAll(dir)
		}
		return nil, nil
	}
	// Truncate any torn tail; O_APPEND positions every future write at
	// the (possibly truncated) EOF.
	if err := f.Truncate(goodEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: truncating torn wal for %q: %w", id, err)
	}
	s.mu.Lock()
	met := s.metrics
	gcOpts := s.gcOpts
	if len(pendAudits) > 0 {
		// Audit copies recovered from batch records wait here until
		// OpenAudit reconciles them against the audit file's intact
		// prefix.
		if s.pendingAudits == nil {
			s.pendingAudits = map[string][]AuditRecord{}
		}
		s.pendingAudits[id] = pendAudits
	}
	s.mu.Unlock()
	rec.Log = &TenantLog{
		id:        id,
		dir:       dir,
		f:         f,
		w:         bufio.NewWriterSize(f, walBufSize),
		seq:       lastSeq,
		snapSeq:   startSeq,
		tailStart: tailStart,
		pending:   int(lastSeq - startSeq),
		segs:      segs,
		met:       met,
	}
	rec.Log.startCommitter(gcOpts)
	return rec, nil
}

// applyRecord folds one intact WAL record into the recovering state —
// shared by tail replay, sealed-segment replay, and off-path compaction
// (which accumulates into the same struct). Unknown record types from a
// future version are kept but not replayed.
func applyRecord(rec *RecoveredTenant, r record, haveConfig *bool, pendAudits *[]AuditRecord) {
	switch r.Type {
	case recCreate:
		if r.Config != nil && !*haveConfig {
			rec.Config = *r.Config
			*haveConfig = true
		}
	case recTable:
		if r.Table != nil {
			rec.Tables = append(rec.Tables, *r.Table)
		}
	case recRows:
		// Rows into a table replay does not know are dropped, not
		// fatal: rows are the tolerated-loss class, and refusing to
		// boot over a data batch would hold the ledger — the part that
		// must recover — hostage to it. The record's shard tag extends
		// the table's placement map so the importer rebuilds the same
		// partitioning; untagged (pre-shard) records land in shard 0.
		if ti := findTable(rec.Tables, r.RowsTable); ti >= 0 {
			tb := &rec.Tables[ti]
			if r.Shard != 0 || len(tb.ShardOf) > 0 {
				// Lazily materialize the placement map: rows seen
				// before the first nonzero tag were all shard 0.
				for len(tb.ShardOf) < len(tb.Rows) {
					tb.ShardOf = append(tb.ShardOf, 0)
				}
				for range r.Rows {
					tb.ShardOf = append(tb.ShardOf, r.Shard)
				}
			}
			tb.Rows = append(tb.Rows, r.Rows...)
		}
	case recDeduct:
		if r.Cost != nil {
			rec.Deducts = append(rec.Deducts, *r.Cost)
		}
	case recBatch:
		// A group-commit batch: every deduction it carries was acked by
		// one shared fsync, so all replay into spend; its audit copies
		// are stashed for OpenAudit to reconcile into the (buffered,
		// possibly behind) audit file. The whole batch is one CRC'd
		// line, so a tear drops it atomically — never a prefix.
		rec.Deducts = append(rec.Deducts, r.Costs...)
		*pendAudits = append(*pendAudits, r.Audits...)
	default:
		// Unknown record type from a future version: replay what we
		// understand, keep the record (it is intact).
	}
}

// anyIntactSyncedRecord reports whether rest holds an intact record of a
// FSYNCED class (deduct, create, DDL) — the signal that damage earlier in
// the file sits inside an fsync-hardened region, i.e. media corruption
// rather than a torn tail. Intact ROWS records after damage prove
// nothing: they are the buffered, never-fsynced class, and out-of-order
// dirty-page writeback on power loss can legitimately persist a later
// rows page while tearing an earlier one — everything past the last
// fsync barrier is unacknowledged, so truncating there stays safe. (The
// one false refusal this rule admits — a crash during the fsync of the
// file's final deduct, persisted out of order — trades availability for
// the never-under-count invariant, the right direction.)
func anyIntactSyncedRecord(rest []byte) bool {
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return false
		}
		if r, ok := parseLine(rest[:nl+1]); ok && r.Type != recRows {
			return true
		}
		rest = rest[nl+1:]
	}
	return false
}

// parseLine decodes one WAL line "crc32hex <json>\n", reporting ok=false
// on any damage (short line, bad hex, checksum mismatch, bad JSON).
func parseLine(line []byte) (record, bool) {
	var r record
	body, ok := checkLine(line)
	if !ok {
		return r, false
	}
	if err := json.Unmarshal(body, &r); err != nil {
		return r, false
	}
	return r, true
}

// checkLine validates one CRC'd log line "crc32hex <body>\n" (the WAL's
// and the audit log's shared framing), returning the body with the
// checksum verified, or ok=false on any damage (short line, bad hex,
// checksum mismatch).
func checkLine(line []byte) ([]byte, bool) {
	// "xxxxxxxx " + "{}" + "\n" is the minimum.
	if len(line) < 12 || line[8] != ' ' || line[len(line)-1] != '\n' {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	body := bytes.TrimSuffix(line[9:], []byte("\n"))
	if crc32.ChecksumIEEE(body) != uint32(want) {
		return nil, false
	}
	return body, true
}

// onlyStoreFiles reports whether a tenant directory contains nothing the
// store did not write itself (the guard before deleting an unacknowledged
// tenant husk).
func onlyStoreFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		switch e.Name() {
		case walName, snapName, snapName + ".tmp", auditName:
		default:
			if _, ok := parseSegName(e.Name()); ok {
				continue
			}
			return false
		}
	}
	return true
}

// findTable resolves a table name case-insensitively, as dpsql does.
func findTable(tabs []dpsql.TableState, name string) int {
	for i := range tabs {
		if strings.EqualFold(tabs[i].Name, name) {
			return i
		}
	}
	return -1
}
