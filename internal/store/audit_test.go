package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dp"
)

// openAuditTenant creates a store + tenant and opens its audit log.
func openAuditTenant(t *testing.T) (*Store, *AuditLog, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.CreateTenant("acme", TenantConfig{Epsilon: 4, Accounting: "pure"}); err != nil {
		t.Fatal(err)
	}
	al, err := st.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { al.Close() })
	return st, al, dir
}

func appendN(t *testing.T, al *AuditLog, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := al.Append(&AuditRecord{
			ReleaseID: "r-test-" + string(rune('a'+i%26)),
			Path:      "estimate",
			Mechanism: "mean",
			Cost:      dp.EpsCost(0.5),
			Unit:      "eps",
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAuditAppendAndPage(t *testing.T) {
	_, al, _ := openAuditTenant(t)
	appendN(t, al, 7)
	if al.Len() != 7 {
		t.Fatalf("Len = %d, want 7", al.Len())
	}
	// Page through in chunks of 3: seqs must be contiguous and exhaustive.
	var got []uint64
	after := uint64(0)
	for {
		page, err := al.Page(after, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		for _, r := range page {
			got = append(got, r.Seq)
		}
		after = page[len(page)-1].Seq
	}
	if len(got) != 7 {
		t.Fatalf("paged %d records, want 7: %v", len(got), got)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	// A page past the end is empty, not an error.
	if page, err := al.Page(7, 10); err != nil || len(page) != 0 {
		t.Fatalf("past-end page = %v, %v", page, err)
	}
}

func TestAuditTornTailTruncatedOnOpen(t *testing.T) {
	st, al, dir := openAuditTenant(t)
	appendN(t, al, 3)
	if err := al.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage that is not a complete valid line.
	path := filepath.Join(dir, "acme", auditName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":4,"release`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	al2, err := st.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer al2.Close()
	if al2.Len() != 3 {
		t.Fatalf("Len after torn-tail reopen = %d, want 3", al2.Len())
	}
	page, err := al2.Page(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 3 {
		t.Fatalf("paged %d records after truncation, want 3", len(page))
	}
	// The log keeps appending cleanly at the truncated tail.
	appendN(t, al2, 1)
	if al2.Len() != 4 {
		t.Fatalf("Len after post-truncation append = %d, want 4", al2.Len())
	}
	page, err = al2.Page(3, 10)
	if err != nil || len(page) != 1 || page[0].Seq != 4 {
		t.Fatalf("post-truncation page = %+v, %v", page, err)
	}
}

func TestAuditSurvivesReopen(t *testing.T) {
	st, al, _ := openAuditTenant(t)
	appendN(t, al, 5)
	if err := al.Close(); err != nil {
		t.Fatal(err)
	}
	al2, err := st.OpenAudit("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer al2.Close()
	if al2.Len() != 5 {
		t.Fatalf("Len after reopen = %d, want 5", al2.Len())
	}
	// Seqs continue where they left off.
	appendN(t, al2, 1)
	page, err := al2.Page(5, 10)
	if err != nil || len(page) != 1 || page[0].Seq != 6 {
		t.Fatalf("continued page = %+v, %v", page, err)
	}
}

func TestAuditBadTenantID(t *testing.T) {
	st, _, _ := openAuditTenant(t)
	if _, err := st.OpenAudit("../evil"); err == nil {
		t.Fatal("traversal tenant id accepted")
	}
}
