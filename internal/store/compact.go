package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dp"
)

// This file is the segmented half of the WAL and its off-path compaction.
//
// The log is split into an active tail (wal.log, the only file ever
// appended to) plus sealed immutable segments (wal.%09d.seg, named by the
// last sequence number they contain). Sealing is a rename: flush + fsync
// the tail, rename it into place, fsync the directory, reopen a fresh
// tail — a few syscalls under the log mutex, microseconds, not the
// snapshot serialization that used to sit there. Everything in a sealed
// segment was fsynced before the rename, so segments have no torn-tail
// class: ANY damage in one is media corruption and recovery refuses
// loudly (ErrCorruptWAL) rather than truncating a file that may carry
// acknowledged deductions.
//
// Compaction then runs entirely off the hot path: it reads the previous
// snapshot plus the sealed segments — all immutable on-disk inputs — and
// merges them into a new snapshot without holding the log mutex (which
// releases and group commit need) or any serve-layer lock. The only
// lock the hot path shares with a running compaction is the instant of
// the seal itself. Segments are deleted only after the new snapshot AND
// the audit file are durable, so a crash anywhere leaves a state that
// replays to the same spend (covered segments are skipped by the seq
// guard and cleaned up by the next compaction).

// segPrefix/segSuffix frame a sealed segment's file name.
const (
	segPrefix = "wal."
	segSuffix = ".seg"
)

// walSegment is one sealed immutable WAL segment on disk.
type walSegment struct {
	end  uint64 // last record sequence number the segment contains
	path string
}

// segName renders the file name of the segment ending at seq.
func segName(end uint64) string {
	return fmt.Sprintf("%s%09d%s", segPrefix, end, segSuffix)
}

// parseSegName recognizes a sealed-segment file name and extracts its end
// sequence number.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if mid == "" {
		return 0, false
	}
	end, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return end, true
}

// listSegments returns dir's sealed segments sorted by end seq.
func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if end, ok := parseSegName(e.Name()); ok {
			segs = append(segs, walSegment{end: end, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].end < segs[j].end })
	return segs, nil
}

// Seal closes the active tail into an immutable segment and reopens a
// fresh one. An empty tail is a no-op. Exposed for drills and tests; the
// normal caller is Compact.
func (tl *TenantLog) Seal() error {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.broken || tl.f == nil {
		return ErrLogBroken
	}
	return tl.sealLocked()
}

// sealLocked rotates the tail under tl.mu: flush + fsync, rename to
// wal.<seq>.seg, sync the directory, reopen a fresh tail. Failures are
// fail-stop (the log's invariant: a half-rotated file must never take
// another append). The pause releases and group commit see is these few
// syscalls — no serialization, no snapshot I/O.
func (tl *TenantLog) sealLocked() error {
	if tl.seq == tl.tailStart {
		return nil // empty tail: nothing to seal
	}
	if err := tl.flushLocked(); err != nil {
		return err
	}
	if err := tl.f.Close(); err != nil {
		tl.broken = true
		return fmt.Errorf("store: closing tail for seal: %w", err)
	}
	seg := walSegment{end: tl.seq, path: filepath.Join(tl.dir, segName(tl.seq))}
	if err := os.Rename(filepath.Join(tl.dir, walName), seg.path); err != nil {
		tl.broken = true
		return fmt.Errorf("store: sealing wal segment: %w", err)
	}
	if err := syncDir(tl.dir); err != nil {
		tl.broken = true
		return fmt.Errorf("store: syncing dir after seal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(tl.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		tl.broken = true
		return fmt.Errorf("store: reopening tail after seal: %w", err)
	}
	tl.f = f
	tl.w = bufio.NewWriterSize(f, walBufSize)
	tl.segs = append(tl.segs, seg)
	tl.tailStart = tl.seq
	return nil
}

// LedgerReplayer rebuilds a compacted ledger state: prev is the previous
// snapshot's state (nil when no snapshot existed) and deducts are every
// deduction recorded after it, in WAL order. The serve layer supplies
// the implementation because only it knows how to construct the tenant's
// composition backend from cfg; the store stays mechanism-agnostic.
type LedgerReplayer func(cfg TenantConfig, prev *dp.LedgerState, deducts []dp.Cost) (dp.LedgerState, error)

// Compact merges the previous snapshot and every sealed segment into a
// new snapshot, entirely off the hot path: releases, ingestion, and
// group commit proceed concurrently, pausing only for the seal's few
// syscalls. The caller needs no state capture and holds no serve-layer
// lock — compaction's inputs are immutable files. cfg is the tenant's
// authoritative configuration (written into the new snapshot); replay
// rebuilds the ledger state and is required.
//
// Crash safety, step by step: the new snapshot is published with the
// same tmp+fsync+rename+dirsync dance as WriteSnapshot; the audit file
// is hardened BEFORE any segment is deleted (batch records in segments
// may hold the only durable copy of buffered audit lines); and segment
// deletion is last, so a crash at any point leaves either the old
// snapshot with all segments or the new snapshot with some covered
// segments — both replay to the same state, and the next compaction
// removes covered leftovers.
func (tl *TenantLog) Compact(cfg TenantConfig, replay LedgerReplayer) error {
	if replay == nil {
		return fmt.Errorf("store: compaction needs a ledger replayer")
	}
	// compactMu serializes compactions and excludes WriteSnapshot (which
	// also rewrites snapshot.json and deletes segments). It is never held
	// while waiting on tl.mu-holders' work — tl.mu is taken only for the
	// seal and the final install, both brief.
	tl.compactMu.Lock()
	defer tl.compactMu.Unlock()
	if m := tl.met; m != nil && m.CompactionSeconds != nil {
		t0 := time.Now()
		defer func() { m.CompactionSeconds.Observe(time.Since(t0).Seconds()) }()
	}

	// Step 1 (brief tl.mu): seal the tail; capture the segment list and
	// the seal point.
	tl.mu.Lock()
	if tl.broken || tl.f == nil {
		tl.mu.Unlock()
		return ErrLogBroken
	}
	if err := tl.sealLocked(); err != nil {
		tl.mu.Unlock()
		return err
	}
	segs := append([]walSegment(nil), tl.segs...)
	sealSeq := tl.seq
	snapSeq := tl.snapSeq
	tl.mu.Unlock()
	if len(segs) == 0 && sealSeq == snapSeq {
		return nil // nothing sealed and nothing uncovered: no work
	}

	// Step 2 (no locks): merge snapshot + segments into the new state.
	var (
		prevLed *dp.LedgerState
		floor   uint64
	)
	acc := &RecoveredTenant{ID: tl.id, Config: cfg}
	haveConfig := false
	prevBody, err := os.ReadFile(filepath.Join(tl.dir, snapName))
	switch {
	case err == nil:
		var prev TenantSnapshot
		if err := json.Unmarshal(prevBody, &prev); err != nil {
			return fmt.Errorf("%w: tenant %q: %v", ErrCorruptSnapshot, tl.id, err)
		}
		acc.Tables = prev.Tables
		led := prev.Ledger
		prevLed = &led
		floor = prev.Seq
		haveConfig = true
	case os.IsNotExist(err):
		// First compaction: the oldest segment holds the create record.
	default:
		return fmt.Errorf("store: reading snapshot for %q: %w", tl.id, err)
	}
	var (
		deducts    []dp.Cost
		pendAudits []AuditRecord // discarded: the live audit file already buffers them
		lastSeq    = floor
	)
	for _, sg := range segs {
		if sg.end <= floor {
			continue // fully covered by the previous snapshot
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return fmt.Errorf("store: reading segment for %q: %w", tl.id, err)
		}
		off := 0
		for off < len(data) {
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				// Sealed segments were fully fsynced before the rename;
				// a missing newline cannot be a torn tail.
				return fmt.Errorf("%w: tenant %q segment %s truncated", ErrCorruptWAL, tl.id, filepath.Base(sg.path))
			}
			r, ok := parseLine(data[off : off+nl+1])
			if !ok {
				return fmt.Errorf("%w: tenant %q segment %s at byte %d", ErrCorruptWAL, tl.id, filepath.Base(sg.path), off)
			}
			off += nl + 1
			if r.Seq <= floor {
				continue
			}
			if r.Seq <= lastSeq {
				return fmt.Errorf("%w: tenant %q segment %s seq %d after %d", ErrCorruptWAL, tl.id, filepath.Base(sg.path), r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			applyRecord(acc, r, &haveConfig, &pendAudits)
		}
	}
	deducts = acc.Deducts
	ls, err := replay(cfg, prevLed, deducts)
	if err != nil {
		return fmt.Errorf("store: replaying ledger for %q: %w", tl.id, err)
	}
	snap := TenantSnapshot{Seq: sealSeq, Config: cfg, Ledger: ls, Tables: acc.Tables}
	if err := writeSnapshotFile(tl.dir, snap); err != nil {
		return err
	}
	if err := syncDir(tl.dir); err != nil {
		// The rename is not confirmed durable: a crash could resurface the
		// old snapshot, so the segments must stay authoritative. The next
		// compaction retries.
		return nil
	}
	// Harden the audit file before deleting segments: batch records in
	// them may hold the only durable copy of buffered audit lines.
	if a := tl.attachedAudit(); a != nil {
		if err := a.harden(); err != nil {
			return nil
		}
	}

	// Step 3 (brief tl.mu): install the new floor and drop covered
	// segments, then delete their files outside the lock.
	var drop []string
	tl.mu.Lock()
	if tl.f != nil && !tl.broken {
		tl.snapSeq = sealSeq
		if tl.seq >= sealSeq {
			tl.pending = int(tl.seq - sealSeq)
		}
		keep := tl.segs[:0]
		for _, sg := range tl.segs {
			if sg.end <= sealSeq {
				drop = append(drop, sg.path)
			} else {
				keep = append(keep, sg)
			}
		}
		tl.segs = keep
	}
	tl.mu.Unlock()
	for _, p := range drop {
		_ = os.Remove(p) // leftovers are covered and cleaned next time
	}
	_ = syncDir(tl.dir)
	return nil
}

// SegmentCount reports the tenant's sealed, not-yet-compacted segments.
func (tl *TenantLog) SegmentCount() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.segs)
}

// Segments reports the total sealed segments across every open tenant
// log — the updp_wal_segments gauge's reading: a steadily growing value
// means compaction is falling behind sealing.
func (s *Store) Segments() int {
	s.mu.Lock()
	logs := make([]*TenantLog, 0, len(s.logs))
	for _, tl := range s.logs {
		logs = append(logs, tl)
	}
	s.mu.Unlock()
	n := 0
	for _, tl := range logs {
		n += tl.SegmentCount()
	}
	return n
}

// writeSnapshotFile serializes snap and publishes it as dir's
// snapshot.json via temp file + fsync + atomic rename. The caller owns
// the directory sync that makes the rename durable.
func writeSnapshotFile(dir string, snap TenantSnapshot) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tf.Write(append(body, '\n')); err != nil {
		_ = tf.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		_ = tf.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	return nil
}
