package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// ---------- EstimateMeanVector (§1.2 extension) ----------

func TestMeanVectorMixedFamilies(t *testing.T) {
	// Each coordinate follows a different family at a different scale —
	// the universality claim in the multivariate setting.
	rng := xrand.New(1)
	dists := []dist.Distribution{
		dist.NewNormal(5, 1),
		dist.NewLaplace(-100, 10),
		dist.NewPareto(1, 4), // mean 4/3
	}
	const n = 30000
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, len(dists))
		for j, d := range dists {
			row[j] = d.Sample(rng)
		}
		data[i] = row
	}
	got, err := EstimateMeanVector(rng, data, 3.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, -100, 4.0 / 3}
	tol := []float64{0.3, 3, 0.2}
	for j := range want {
		if math.Abs(got[j]-want[j]) > tol[j] {
			t.Errorf("coordinate %d: got %v, want ~%v", j, got[j], want[j])
		}
	}
}

func TestMeanVectorDimensionChecks(t *testing.T) {
	rng := xrand.New(2)
	if _, err := EstimateMeanVector(rng, [][]float64{{1, 2}, {3}, {1, 2}, {3, 4}}, 1, 0.1); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("ragged rows should fail")
	}
	if _, err := EstimateMeanVector(rng, [][]float64{{}, {}, {}, {}}, 1, 0.1); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("zero-dim rows should fail")
	}
	if _, err := EstimateMeanVector(rng, [][]float64{{1}, {2}}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few rows should fail")
	}
	if _, err := EstimateMeanVector(rng, make([][]float64, 10), 0, 0.1); err == nil {
		t.Error("bad eps")
	}
}

func TestVarianceDiagonal(t *testing.T) {
	rng := xrand.New(3)
	const n = 30000
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{2 * rng.Gaussian(), 10 * rng.Gaussian()}
	}
	got, err := EstimateVarianceDiagonal(rng, data, 2.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-4) > 2 {
		t.Errorf("var[0] = %v, want ~4", got[0])
	}
	if math.Abs(got[1]-100) > 40 {
		t.Errorf("var[1] = %v, want ~100", got[1])
	}
}

func TestVarianceDiagonalErrors(t *testing.T) {
	rng := xrand.New(4)
	if _, err := EstimateVarianceDiagonal(rng, [][]float64{{1}, {2}}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few")
	}
	if _, err := EstimateVarianceDiagonal(rng, [][]float64{{1, 2}, {3}, {4, 5}, {6, 7}}, 1, 0.1); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("ragged")
	}
}

// ---------- IQRUpperBound / ScaleBracket (§1.3 open problem) ----------

func TestIQRUpperBoundIsUpperBound(t *testing.T) {
	rng := xrand.New(5)
	families := []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewNormal(1000, 50),
		dist.NewLaplace(0, 3),
		dist.NewUniform(-5, 5),
		dist.NewPareto(1, 3),
	}
	for _, d := range families {
		iqr := dist.IQROf(d)
		data := dist.SampleN(d, rng, 4000)
		fails := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			ub, err := IQRUpperBound(rng, data, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if ub < iqr {
				fails++
			}
		}
		if fails > trials/4 {
			t.Errorf("%s: upper bound below IQR in %d/%d trials", d.Name(), fails, trials)
		}
	}
}

func TestIQRUpperBoundNotVacuous(t *testing.T) {
	// The bound should be within a reasonable factor for well-behaved P
	// (the doubling grid alone costs 2x, the 7/8-vs-3/4 slack a bit more).
	rng := xrand.New(6)
	d := dist.NewNormal(0, 1)
	iqr := dist.IQROf(d)
	data := dist.SampleN(d, rng, 8000)
	vals := make([]float64, 0, 20)
	for trial := 0; trial < 20; trial++ {
		ub, err := IQRUpperBound(rng, data, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, ub)
	}
	med := trimmedMeanAbsErr(vals) // median of values (reuse helper)
	if med > 30*iqr {
		t.Errorf("upper bound %v is vacuous (IQR %v)", med, iqr)
	}
}

func TestScaleBracketContainsIQR(t *testing.T) {
	rng := xrand.New(7)
	for _, d := range []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewLaplace(10, 2),
		dist.NewCauchy(0, 1),
	} {
		iqr := dist.IQROf(d)
		data := dist.SampleN(d, rng, 8000)
		ok := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			br, err := EstimateScaleBracket(rng, data, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if br.Lo > br.Hi {
				t.Fatalf("malformed bracket [%v, %v]", br.Lo, br.Hi)
			}
			if br.Lo <= iqr && iqr <= br.Hi {
				ok++
			}
		}
		if ok < trials*3/4 {
			t.Errorf("%s: bracket missed the IQR in %d/%d trials", d.Name(), trials-ok, trials)
		}
	}
}

func TestScaleBracketWellFormedProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		data := make([]float64, 200)
		for i := range data {
			data[i] = rng.Laplace(float64(1 + seed%100))
		}
		br, err := EstimateScaleBracket(rng, data, 1.0, 0.2)
		return err == nil && br.Lo <= br.Hi && br.Lo > 0
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIQRUpperBoundErrors(t *testing.T) {
	rng := xrand.New(8)
	if _, err := IQRUpperBound(rng, []float64{1, 2, 3}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few")
	}
	if _, err := IQRUpperBound(rng, make([]float64, 10), -1, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := IQRUpperBound(rng, make([]float64, 10), 1, 7); err == nil {
		t.Error("bad beta")
	}
}

// ---------- cross-cutting quick properties ----------

func TestEstimatorsFiniteOnWildDataProperty(t *testing.T) {
	// Whatever the (finite) input, the estimators return finite numbers
	// or a typed error — never NaN/Inf and never a panic.
	if err := quick.Check(func(seed uint64, scalePow uint8) bool {
		rng := xrand.New(seed)
		scale := math.Pow(2, float64(int(scalePow%80)-40))
		data := make([]float64, 64)
		for i := range data {
			data[i] = rng.StudentT(2.1) * scale
		}
		m, err := EstimateMean(rng, data, 1.0, 0.2)
		if err != nil {
			return false
		}
		v, err := EstimateVariance(rng, data, 1.0, 0.2)
		if err != nil {
			return false
		}
		q, err := EstimateIQR(rng, data, 1.0, 0.2)
		if err != nil {
			return false
		}
		return !math.IsNaN(m) && !math.IsInf(m, 0) &&
			!math.IsNaN(v) && !math.IsInf(v, 0) &&
			!math.IsNaN(q) && !math.IsInf(q, 0)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedDeterminismProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		data := dist.SampleN(dist.NewNormal(0, 1), xrand.New(seed^0xABCD), 500)
		a, err1 := EstimateMean(xrand.New(seed), data, 1.0, 0.2)
		b, err2 := EstimateMean(xrand.New(seed), data, 1.0, 0.2)
		return err1 == nil && err2 == nil && a == b
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
