// Package core implements the paper's primary contribution: universal
// pure-DP estimators for the statistical mean (§4, Algorithm 8), variance
// (§5, Algorithm 9), and interquartile range (§6, Algorithm 10) of an
// arbitrary unknown continuous distribution P over R, with no boundedness
// assumptions (A1/A2) and no distribution-family assumption (A3).
//
// The shared first step is Algorithm 7 (EstimateIQRLowerBound), which finds
// a bucket size b with ¼·φ(1/16) <= b <= IQR w.h.p. (Theorem 4.3); the
// statistical estimators then discretize R with that bucket and run the
// Section 3 empirical machinery on a subsample whose privacy cost is
// amplified back to the target budget (Theorem 2.4).
package core

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// ErrTooFewSamples reports a dataset too small to run the estimator at all
// (the utility theorems need more; these are hard structural minimums).
var ErrTooFewSamples = errors.New("core: need at least 4 samples")

// maxScaleQueries caps the SVT doubling searches of Algorithm 7 at the
// float64 exponent range: 2^i overflows to +Inf past i=1023 and underflows
// to 0 below i=-1074, so the caps are data-independent constants.
const maxScaleQueries = 1100

// IQRLowerBound is Algorithm 7 (EstimateIQRLowerBound): an eps-DP lower
// bound for the IQR of P. With probability >= 1-beta (Theorem 4.3),
//
//	¼·φ(1/16)  <=  result  <=  IQR.
//
// It randomly pairs the records, forms the pair distances
// G = {|X - X'|}, and runs two SVTs over doubling thresholds — one growing
// (2^0, 2^1, ...) and one shrinking (2^0, 2^-1, ...) — against the count
// |G ∩ [0, x]| with target 3n'/16, so the returned power of two sits between
// the 5n'/32 and 7n'/32 order statistics of G w.h.p. (Lemma 4.2).
func IQRLowerBound(rng *xrand.RNG, data []float64, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	if len(data) < 4 {
		return 0, ErrTooFewSamples
	}
	g := stats.PairDistances(rng, data)
	nP := float64(len(g))
	target := 3 * nP / 16

	countUpTo := func(x float64) float64 {
		c := 0
		for _, v := range g {
			if v <= x {
				c++
			}
		}
		return float64(c)
	}

	// SVT #1: growing thresholds 2^0, 2^1, ... stops once a power of two
	// captures ~3n'/16 of the pair distances.
	iHat, err1 := dp.SVT(rng, target, eps/2, func(i int) (float64, bool) {
		return countUpTo(math.Pow(2, float64(i-1))), true
	}, maxScaleQueries)

	// SVT #2: shrinking thresholds 2^0, 2^-1, ... on negated counts stops
	// once the count drops below ~3n'/16.
	jHat, err2 := dp.SVT(rng, -target, eps/2, func(j int) (float64, bool) {
		return -countUpTo(math.Pow(2, float64(1-j))), true
	}, maxScaleQueries)

	if err1 != nil {
		// Growing search never reached the target: the distances exceed
		// every float64 power of two. Return the largest finite power.
		return math.Pow(2, 1023), nil
	}
	if iHat > 1 {
		return math.Pow(2, float64(iHat-2)), nil
	}
	if err2 != nil {
		// Shrinking search never dropped below target: the pair distances
		// are concentrated at 0 (degenerate data, probability 0 under a
		// continuous P). Return the smallest positive double.
		return math.SmallestNonzeroFloat64, nil
	}
	v := math.Pow(2, float64(-jHat))
	if v == 0 {
		v = math.SmallestNonzeroFloat64
	}
	return v, nil
}

// MeanConfig tunes EstimateMean for the ablation experiments. The zero
// value reproduces Algorithm 8 exactly.
type MeanConfig struct {
	// SubsampleSize overrides the paper's m = eps·n subsample used for
	// range finding. 0 means eps·n; values are clamped into [2, n].
	SubsampleSize int
	// Bucket overrides the Algorithm 7 bucket size when positive (this is
	// the "sigma_min given" regime discussed after Theorem 4.5, where the
	// first two terms of the sample-complexity requirement disappear).
	Bucket float64
	// FullDataRange skips subsampling entirely and finds the range on all
	// of D with the full remaining budget — i.e. it degrades Algorithm 8
	// to Algorithm 5 with a learned bucket (ablation E13).
	FullDataRange bool
}

// MeanResult carries the estimate together with its DP-safe internals (the
// privatized range and bucket are themselves DP outputs, so exposing them
// costs nothing and greatly helps debugging).
type MeanResult struct {
	Estimate float64
	Lo, Hi   float64 // privatized clipping range R̃(D')
	Bucket   float64 // discretization bucket (Algorithm 7 output or override)
}

// EstimateMean is Algorithm 8 (EstimateMean): the universal eps-DP mean
// estimator. With probability >= 1-beta its error is the bias-variance
// trade-off of Theorem 4.5; on Gaussians this specializes to Theorem 4.6
// and on heavy-tailed P to Theorem 4.9.
//
// Budget: ε/8 (bucket) + 3ε′/4 on an ε-fraction subsample, which amplifies
// to <= 3ε/4 by Theorem 2.4 with ε′ = log((e^ε−1)/ε + 1), + ε/8 (Laplace).
func EstimateMean(rng *xrand.RNG, data []float64, eps, beta float64) (float64, error) {
	res, err := EstimateMeanWithConfig(rng, data, eps, beta, MeanConfig{})
	return res.Estimate, err
}

// EstimateMeanWithConfig runs Algorithm 8 with ablation overrides.
func EstimateMeanWithConfig(rng *xrand.RNG, data []float64, eps, beta float64, cfg MeanConfig) (MeanResult, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return MeanResult{}, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return MeanResult{}, err
	}
	n := len(data)
	if n < 4 {
		return MeanResult{}, ErrTooFewSamples
	}

	// Line 1: bucket size from the IQR lower bound (ε/8, β/9).
	b := cfg.Bucket
	if !(b > 0) {
		var err error
		b, err = IQRLowerBound(rng, data, eps/8, beta/9)
		if err != nil {
			return MeanResult{}, err
		}
	}

	var lo, hi float64
	if cfg.FullDataRange {
		// Ablation: Algorithm 5's range on all of D with budget 3ε/4.
		var err error
		lo, hi, err = empirical.RealRange(rng, data, b, 3*eps/4, beta/9)
		if err != nil {
			return MeanResult{}, err
		}
	} else {
		// Lines 2-4: range on an ε-fraction subsample with amplified budget.
		m := cfg.SubsampleSize
		if m <= 0 {
			m = int(math.Round(eps * float64(n)))
		}
		if m < 2 {
			m = 2
		}
		if m > n {
			m = n
		}
		sub := stats.Subsample(rng, data, m)
		eta := float64(m) / float64(n)
		epsPrime := dp.SubsampleBudget(eps, eta)
		var err error
		lo, hi, err = empirical.RealRange(rng, sub, b, 3*epsPrime/4, beta/9)
		if err != nil {
			return MeanResult{}, err
		}
	}

	// Line 5: clipped mean of the FULL dataset over R̃(D') with Laplace
	// noise Lap(8|R̃|/(εn)), i.e. an ε/8 spend.
	est, err := dp.ClippedMean(rng, data, lo, hi, eps/8)
	if err != nil {
		return MeanResult{}, err
	}
	return MeanResult{Estimate: est, Lo: lo, Hi: hi, Bucket: b}, nil
}

// VarianceResult carries the variance estimate and its DP-safe internals.
type VarianceResult struct {
	Estimate float64
	Rad      float64 // privatized radius of the pair-square sample
	Bucket   float64 // squared Algorithm 7 bucket
}

// EstimateVariance is Algorithm 9 (EstimateVariance): the universal eps-DP
// variance estimator. It reduces to mean estimation over the pair squares
// Z = (X-X')^2 (E[Z] = 2σ², equation (41)); because Z >= 0 only a radius —
// not a full range — is needed, which is what buys the log log σ term of
// Theorem 5.3. Error bound: Theorem 5.2; Gaussian and heavy-tailed
// specializations: Theorems 5.3 and 5.5.
//
// Budget: ε/8 (bucket) + 3ε′/4 amplified to <= 3ε/4 (radius on subsample)
// + ε/8 (Laplace). The paper's Line 7 writes Lap(8·r̃ad/(εn)), which spends
// ε/4 because one record moves the pair-square mean by up to 2·r̃ad/n; we
// use Lap(16·r̃ad/(εn)) so the total stays within ε.
func EstimateVariance(rng *xrand.RNG, data []float64, eps, beta float64) (float64, error) {
	res, err := EstimateVarianceFull(rng, data, eps, beta)
	return res.Estimate, err
}

// EstimateVarianceFull runs Algorithm 9 and returns diagnostics.
func EstimateVarianceFull(rng *xrand.RNG, data []float64, eps, beta float64) (VarianceResult, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return VarianceResult{}, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return VarianceResult{}, err
	}
	n := len(data)
	if n < 4 {
		return VarianceResult{}, ErrTooFewSamples
	}

	// Line 1: bucket from the IQR lower bound, squared (the pair squares
	// live on the squared scale).
	iqrLB, err := IQRLowerBound(rng, data, eps/8, beta/7)
	if err != nil {
		return VarianceResult{}, err
	}
	b := iqrLB * iqrLB
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}

	// Lines 2-4: pair squares and an ε-fraction subsample of them.
	h := stats.PairSquares(rng, data)
	nP := len(h)
	m := int(math.Round(eps * float64(nP)))
	if m < 2 {
		m = 2
	}
	if m > nP {
		m = nP
	}
	hSub := stats.Subsample(rng, h, m)
	eta := float64(m) / float64(nP)
	epsPrime := dp.SubsampleBudget(eps, eta)

	// Lines 5-6: radius only — H is non-negative, so [0, r̃ad] is a range.
	rad, err := empirical.RealRadius(rng, hSub, b, 3*epsPrime/4, beta/7)
	if err != nil {
		return VarianceResult{}, err
	}

	// Line 7: clipped mean of all of H over [0, r̃ad] plus Laplace noise,
	// halved. One record of D changes one pair square, moving the mean of
	// H by <= rad/n' = 2·rad/n; an ε/8 spend therefore uses scale
	// (rad/n')/(ε/8) = 16·rad/(εn).
	est, err := dp.ClippedMean(rng, h, 0, rad, eps/8)
	if err != nil {
		return VarianceResult{}, err
	}
	return VarianceResult{Estimate: est / 2, Rad: rad, Bucket: b}, nil
}

// EstimateIQR is Algorithm 10 (EstimateIQR): the universal eps-DP IQR
// estimator. It discretizes with bucket IQR̲/n and releases
// X̃_{3n/4} - X̃_{n/4} via the infinite-domain quantile mechanism. Sample
// complexity: Theorem 6.2, with the α ∝ 1/(εn) + 1/√n convergence that
// beats DL09's α ∝ 1/(ε log n). Budget: ε/3 × 3.
func EstimateIQR(rng *xrand.RNG, data []float64, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	n := len(data)
	if n < 4 {
		return 0, ErrTooFewSamples
	}
	iqrLB, err := IQRLowerBound(rng, data, eps/3, beta/6)
	if err != nil {
		return 0, err
	}
	b := iqrLB / float64(n)
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	q1, err := empirical.RealQuantile(rng, data, n/4, b, eps/3, beta/6)
	if err != nil {
		return 0, err
	}
	q3, err := empirical.RealQuantile(rng, data, 3*n/4, b, eps/3, beta/6)
	if err != nil {
		return 0, err
	}
	return q3 - q1, nil
}

// EstimateQuantile releases the tau-th order statistic (1-based) of the
// sample under eps-DP using the same recipe as Algorithm 10: learn a bucket
// with ε/2, then run the infinite-domain quantile with ε/2. This is the
// "universal quantile" the paper's machinery supports beyond its three
// headline parameters.
func EstimateQuantile(rng *xrand.RNG, data []float64, tau int, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	n := len(data)
	if n < 4 {
		return 0, ErrTooFewSamples
	}
	iqrLB, err := IQRLowerBound(rng, data, eps/2, beta/2)
	if err != nil {
		return 0, err
	}
	b := iqrLB / float64(n)
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	return empirical.RealQuantile(rng, data, tau, b, eps/2, beta/2)
}
