package core

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// Quantile-suite errors.
var (
	// ErrNoQuantiles reports an empty rank or probability list.
	ErrNoQuantiles = errors.New("core: need at least one quantile")
	// ErrBadProbability reports a probability outside (0, 1).
	ErrBadProbability = errors.New("core: quantile probability must be in (0, 1)")
	// ErrBadTrim reports a trim fraction outside [0, 1/2).
	ErrBadTrim = errors.New("core: trim fraction must be in [0, 0.5)")
)

// EstimateQuantiles releases k order statistics (1-based ranks) of the
// sample under a single eps-DP budget, using the Algorithm 10 recipe once:
// learn a bucket IQR̲/n with ε/3 (Algorithm 7), then release all ranks
// through the shared-range multi-quantile mechanism with 2ε/3. Compared to k
// independent EstimateQuantile calls at ε/k each, the bucket and range —
// whose rank-error cost is the dominant O(log γ/ε) term — are paid once.
// The output is monotone in rank (post-processing projection).
func EstimateQuantiles(rng *xrand.RNG, data []float64, taus []int, eps, beta float64) ([]float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return nil, err
	}
	if len(taus) == 0 {
		return nil, ErrNoQuantiles
	}
	n := len(data)
	if n < 4 {
		return nil, ErrTooFewSamples
	}
	iqrLB, err := IQRLowerBound(rng, data, eps/3, beta/2)
	if err != nil {
		return nil, err
	}
	b := iqrLB / float64(n)
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	return empirical.RealQuantiles(rng, data, taus, b, 2*eps/3, beta/2)
}

// EstimateQuantilesProb releases the p-quantiles for probabilities ps,
// mapping each p to the rank ceil(p·n) (clamped into [1, n]).
func EstimateQuantilesProb(rng *xrand.RNG, data []float64, ps []float64, eps, beta float64) ([]float64, error) {
	if len(ps) == 0 {
		return nil, ErrNoQuantiles
	}
	n := len(data)
	taus := make([]int, len(ps))
	for i, p := range ps {
		if !(p > 0 && p < 1) {
			return nil, ErrBadProbability
		}
		tau := int(math.Ceil(p * float64(n)))
		if tau < 1 {
			tau = 1
		}
		if tau > n {
			tau = n
		}
		taus[i] = tau
	}
	return EstimateQuantiles(rng, data, taus, eps, beta)
}

// TrimmedMean releases the trim-fraction trimmed mean of the sample under
// eps-DP with no boundedness assumptions: it privately locates the
// trim·n and (1-trim)·n order statistics through the universal quantile
// machinery (ε/4 bucket + ε/2 shared-range quantile pair), clips the data to
// that released interval, and adds Laplace noise calibrated to the clipped
// sensitivity (q̃hi-q̃lo)/n with the remaining ε/4.
//
// This is the classic robust location estimator (the robust-statistics
// framing of DL09) realized with the paper's machinery: the clip bounds are
// DP outputs, so conditioning on them is free (Lemma 2.1), and the final
// release has finite, publicly-known sensitivity even though the raw data
// are unbounded. trim = 0 degrades to the clipped mean over the released
// full range (still private, but with weaker utility than Algorithm 8,
// which clips more aggressively; see §4.2).
func TrimmedMean(rng *xrand.RNG, data []float64, trim, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	if !(trim >= 0 && trim < 0.5) {
		return 0, ErrBadTrim
	}
	n := len(data)
	if n < 4 {
		return 0, ErrTooFewSamples
	}

	loRank := int(math.Floor(trim*float64(n))) + 1
	hiRank := int(math.Ceil((1 - trim) * float64(n)))
	if hiRank < loRank {
		hiRank = loRank
	}

	iqrLB, err := IQRLowerBound(rng, data, eps/4, beta/3)
	if err != nil {
		return 0, err
	}
	b := iqrLB / float64(n)
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	qs, err := empirical.RealQuantiles(rng, data, []int{loRank, hiRank}, b, eps/2, beta/3)
	if err != nil {
		return 0, err
	}
	lo, hi := qs[0], qs[1]
	if hi < lo {
		hi = lo
	}
	return dp.ClippedMean(rng, data, lo, hi, eps/4)
}
