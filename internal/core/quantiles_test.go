package core

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// ---------- EstimateQuantiles / EstimateQuantilesProb ----------

func TestEstimateQuantilesGaussian(t *testing.T) {
	// Released deciles of a large Gaussian sample should be near the true
	// quantiles.
	rng := xrand.New(31)
	d := dist.NewNormal(10, 2)
	data := dist.SampleN(d, rng, 20000)
	ps := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	var worst float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		qs, err := EstimateQuantilesProb(rng, data, ps, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range ps {
			if e := math.Abs(qs[i] - d.Quantile(p)); e > worst {
				worst = e
			}
		}
	}
	if worst > 1.0 { // half a sigma; generous but non-vacuous
		t.Errorf("worst decile error %v too large", worst)
	}
}

func TestEstimateQuantilesMonotone(t *testing.T) {
	rng := xrand.New(32)
	data := dist.SampleN(dist.NewPareto(1, 2), rng, 5000)
	ps := []float64{0.9, 0.1, 0.5, 0.99, 0.25}
	for trial := 0; trial < 10; trial++ {
		qs, err := EstimateQuantilesProb(rng, data, ps, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ps {
			for j := range ps {
				if ps[i] < ps[j] && qs[i] > qs[j]+1e-12 {
					t.Fatalf("monotonicity violated: p=%v -> %v, p=%v -> %v",
						ps[i], qs[i], ps[j], qs[j])
				}
			}
		}
	}
}

func TestEstimateQuantilesSharedRangeBeatsSplitBudget(t *testing.T) {
	// The point of the shared-range mechanism: releasing k quantiles
	// together should not be much worse than a single release, while k
	// independent calls at eps/k each degrade markedly. We compare mean
	// absolute error across the deciles.
	rng := xrand.New(33)
	d := dist.NewNormal(0, 1)
	data := dist.SampleN(d, rng, 8000)
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	k := float64(len(ps))
	const trials = 12
	var errShared, errSplit float64
	for trial := 0; trial < trials; trial++ {
		qs, err := EstimateQuantilesProb(rng, data, ps, 0.4, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range ps {
			errShared += math.Abs(qs[i] - d.Quantile(p))
		}
		for _, p := range ps {
			tau := int(math.Ceil(p * float64(len(data))))
			q, err := EstimateQuantile(rng, data, tau, 0.4/k, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errSplit += math.Abs(q - d.Quantile(p))
		}
	}
	if errShared > errSplit {
		t.Errorf("shared-range quantiles (%v) should beat split-budget calls (%v)",
			errShared, errSplit)
	}
}

func TestEstimateQuantilesErrors(t *testing.T) {
	rng := xrand.New(34)
	data := []float64{1, 2, 3, 4, 5}
	if _, err := EstimateQuantiles(rng, data, nil, 1, 0.1); !errors.Is(err, ErrNoQuantiles) {
		t.Errorf("want ErrNoQuantiles, got %v", err)
	}
	if _, err := EstimateQuantiles(rng, []float64{1, 2}, []int{1}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("want ErrTooFewSamples, got %v", err)
	}
	if _, err := EstimateQuantilesProb(rng, data, []float64{0}, 1, 0.1); !errors.Is(err, ErrBadProbability) {
		t.Errorf("p=0: want ErrBadProbability, got %v", err)
	}
	if _, err := EstimateQuantilesProb(rng, data, []float64{1}, 1, 0.1); !errors.Is(err, ErrBadProbability) {
		t.Errorf("p=1: want ErrBadProbability, got %v", err)
	}
	if _, err := EstimateQuantilesProb(rng, data, nil, 1, 0.1); !errors.Is(err, ErrNoQuantiles) {
		t.Errorf("want ErrNoQuantiles, got %v", err)
	}
}

func TestEstimateQuantilesProbRankMapping(t *testing.T) {
	// Extreme probabilities map to valid clamped ranks and still release.
	rng := xrand.New(35)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 100)
	qs, err := EstimateQuantilesProb(rng, data, []float64{0.0001, 0.9999}, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] > qs[1] {
		t.Errorf("extreme-probability release malformed: %v", qs)
	}
}

// ---------- TrimmedMean ----------

func TestTrimmedMeanGaussian(t *testing.T) {
	// On symmetric data the trimmed mean estimates the mean.
	rng := xrand.New(36)
	d := dist.NewNormal(5, 2)
	data := dist.SampleN(d, rng, 20000)
	var errSum float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		m, err := TrimmedMean(rng, data, 0.1, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(m - 5)
	}
	if errSum/trials > 0.5 {
		t.Errorf("trimmed mean error %v too large", errSum/trials)
	}
}

func TestTrimmedMeanRobustToContamination(t *testing.T) {
	// 5% gross outliers at +10^9 should barely move a 10%-trimmed mean,
	// while they shift the raw sample mean by ~5x10^7.
	rng := xrand.New(37)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 10000)
	for i := 0; i < len(data)/20; i++ {
		data[i] = 1e9
	}
	m, err := TrimmedMean(rng, data, 0.1, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m) > 10 {
		t.Errorf("trimmed mean not robust: got %v, want ~0", m)
	}
}

func TestTrimmedMeanZeroTrimStillPrivateAndFinite(t *testing.T) {
	rng := xrand.New(38)
	data := dist.SampleN(dist.NewPareto(1, 3), rng, 5000)
	m, err := TrimmedMean(rng, data, 0, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m) || math.IsInf(m, 0) {
		t.Errorf("zero-trim release not finite: %v", m)
	}
}

func TestTrimmedMeanMatchesNonPrivateTrim(t *testing.T) {
	// Compare against the non-private trimmed mean on the same data.
	rng := xrand.New(39)
	data := dist.SampleN(dist.NewStudentT(3), rng, 20000)
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	lo, hi := len(sorted)/10, len(sorted)-len(sorted)/10
	var sum float64
	for _, v := range sorted[lo:hi] {
		sum += v
	}
	nonPriv := sum / float64(hi-lo)

	m, err := TrimmedMean(rng, data, 0.1, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-nonPriv) > 0.5 {
		t.Errorf("private trimmed mean %v vs non-private %v", m, nonPriv)
	}
}

func TestTrimmedMeanErrors(t *testing.T) {
	rng := xrand.New(40)
	data := []float64{1, 2, 3, 4, 5}
	if _, err := TrimmedMean(rng, data, 0.5, 1, 0.1); !errors.Is(err, ErrBadTrim) {
		t.Errorf("trim=0.5: want ErrBadTrim, got %v", err)
	}
	if _, err := TrimmedMean(rng, data, -0.1, 1, 0.1); !errors.Is(err, ErrBadTrim) {
		t.Errorf("trim<0: want ErrBadTrim, got %v", err)
	}
	if _, err := TrimmedMean(rng, []float64{1}, 0.1, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("want ErrTooFewSamples, got %v", err)
	}
}
