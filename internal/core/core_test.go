package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// ---------- IQRLowerBound (Algorithm 7, Theorem 4.3) ----------

func TestIQRLowerBoundSandwich(t *testing.T) {
	// ¼·φ(1/16) <= IQR̲ <= IQR must hold w.h.p. across families.
	rng := xrand.New(1)
	families := []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewNormal(1000, 50),
		dist.NewLaplace(0, 3),
		dist.NewUniform(-5, 5),
		dist.NewPareto(1, 3),
		dist.NewStudentT(4),
	}
	for _, d := range families {
		phi := dist.Phi(d, 1.0/16)
		iqr := dist.IQROf(d)
		data := dist.SampleN(d, rng, 4000)
		fails := 0
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			lb, err := IQRLowerBound(rng, data, 1.0, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			// Allow a factor-2 grace on each side for sampling noise at
			// finite n (the theorem holds asymptotically w.p. 1-beta).
			if lb < phi/16 || lb > 2.01*iqr {
				fails++
			}
		}
		if fails > trials/4 {
			t.Errorf("%s: sandwich failed %d/%d times (phi=%.3g iqr=%.3g)",
				d.Name(), fails, trials, phi, iqr)
		}
	}
}

func TestIQRLowerBoundScaleInvariance(t *testing.T) {
	// Scaling the data by 2^k should scale the bound by about 2^k.
	rng := xrand.New(2)
	base := dist.SampleN(dist.NewNormal(0, 1), rng, 4000)
	scaled := make([]float64, len(base))
	for i, v := range base {
		scaled[i] = v * 1024
	}
	var lbBase, lbScaled float64
	for trial := 0; trial < 10; trial++ {
		a, err := IQRLowerBound(rng, base, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := IQRLowerBound(rng, scaled, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		lbBase += a
		lbScaled += b
	}
	ratio := lbScaled / lbBase
	if ratio < 256 || ratio > 4096 {
		t.Errorf("scale ratio = %v, want ~1024", ratio)
	}
}

func TestIQRLowerBoundTinyScale(t *testing.T) {
	// Distributions at scale 2^-20: the shrinking SVT must find them.
	rng := xrand.New(3)
	d := dist.NewNormal(0, math.Pow(2, -20))
	data := dist.SampleN(d, rng, 4000)
	iqr := dist.IQROf(d)
	ok := 0
	for trial := 0; trial < 20; trial++ {
		lb, err := IQRLowerBound(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if lb > 0 && lb <= 2*iqr {
			ok++
		}
	}
	if ok < 15 {
		t.Errorf("tiny-scale bound ok only %d/20 times", ok)
	}
}

func TestIQRLowerBoundDegenerateData(t *testing.T) {
	// All-identical data: pair distances are all zero. Must not hang and
	// must return a positive (tiny) bucket.
	rng := xrand.New(4)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 42
	}
	lb, err := IQRLowerBound(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb > 0) {
		t.Errorf("degenerate bound = %v, want positive", lb)
	}
}

func TestIQRLowerBoundErrors(t *testing.T) {
	rng := xrand.New(5)
	if _, err := IQRLowerBound(rng, []float64{1, 2, 3}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few samples")
	}
	if _, err := IQRLowerBound(rng, make([]float64, 10), 0, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := IQRLowerBound(rng, make([]float64, 10), 1, 1.5); err == nil {
		t.Error("bad beta")
	}
}

// ---------- EstimateMean (Algorithm 8, Theorems 4.5/4.6/4.9) ----------

func trimmedMeanAbsErr(errs []float64) float64 {
	// Median absolute error across trials: robust to the beta failure tail.
	cp := append([]float64(nil), errs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestMeanGaussianNoAssumptions(t *testing.T) {
	// Gaussian with a mean far outside any "reasonable" a-priori range:
	// the universal estimator needs no [-R, R].
	rng := xrand.New(6)
	const mu, sigma = 1e6, 3.0
	d := dist.NewNormal(mu, sigma)
	const n = 20000
	const eps = 1.0
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, n)
		m, err := EstimateMean(rng, data, eps, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - mu)
	}
	med := trimmedMeanAbsErr(errs)
	// Theorem 4.6: error ~ sigma/sqrt(n) + sigma·polylog/(eps n) — well
	// under sigma/10 at these parameters.
	if med > sigma/10 {
		t.Errorf("median error %v too large (sigma=%v, n=%d)", med, sigma, n)
	}
}

func TestMeanErrorShrinksWithN(t *testing.T) {
	rng := xrand.New(7)
	d := dist.NewNormal(5, 2)
	const eps = 0.5
	medFor := func(n int) float64 {
		errs := make([]float64, 11)
		for i := range errs {
			data := dist.SampleN(d, rng, n)
			m, err := EstimateMean(rng, data, eps, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(m - 5)
		}
		return trimmedMeanAbsErr(errs)
	}
	small := medFor(2000)
	large := medFor(50000)
	if large > small {
		t.Errorf("error did not shrink with n: %v (n=2k) -> %v (n=50k)", small, large)
	}
}

func TestMeanHeavyTailed(t *testing.T) {
	// Pareto(1,3): finite mean 1.5, heavy tail. No assumptions provided.
	rng := xrand.New(8)
	d := dist.NewPareto(1, 3)
	const n = 50000
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, n)
		m, err := EstimateMean(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(m - d.Mean())
	}
	if med := trimmedMeanAbsErr(errs); med > 0.15 {
		t.Errorf("heavy-tail median error %v", med)
	}
}

func TestMeanIllBehavedStillFinite(t *testing.T) {
	// Spike-and-slab: phi(1/16) tiny. The estimator may need more samples
	// (Theorem 4.5's requirement grows) but must not blow up or error.
	rng := xrand.New(9)
	d := dist.SpikeAndSlab(1e-6, 10, 0.2)
	data := dist.SampleN(d, rng, 20000)
	m, err := EstimateMean(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m) || math.IsInf(m, 0) {
		t.Errorf("ill-behaved estimate = %v", m)
	}
}

func TestMeanConfigOverrides(t *testing.T) {
	rng := xrand.New(10)
	d := dist.NewNormal(0, 1)
	data := dist.SampleN(d, rng, 5000)
	// Fixed bucket (sigma_min given).
	res, err := EstimateMeanWithConfig(rng, data, 1.0, 0.1, MeanConfig{Bucket: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bucket != 0.01 {
		t.Errorf("bucket override ignored: %v", res.Bucket)
	}
	if res.Lo >= res.Hi {
		t.Errorf("invalid range [%v, %v]", res.Lo, res.Hi)
	}
	// Full-data range ablation.
	if _, err := EstimateMeanWithConfig(rng, data, 1.0, 0.1, MeanConfig{FullDataRange: true}); err != nil {
		t.Fatal(err)
	}
	// Explicit subsample size.
	if _, err := EstimateMeanWithConfig(rng, data, 1.0, 0.1, MeanConfig{SubsampleSize: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanErrors(t *testing.T) {
	rng := xrand.New(11)
	if _, err := EstimateMean(rng, []float64{1, 2}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few")
	}
	if _, err := EstimateMean(rng, make([]float64, 10), -1, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := EstimateMean(rng, make([]float64, 10), 1, 0); err == nil {
		t.Error("bad beta")
	}
}

// ---------- EstimateVariance (Algorithm 9, Theorems 5.2/5.3/5.5) ----------

func TestVarianceGaussian(t *testing.T) {
	rng := xrand.New(12)
	const sigma = 3.0
	d := dist.NewNormal(-50, sigma)
	const n = 50000
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, n)
		v, err := EstimateVariance(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - sigma*sigma)
	}
	if med := trimmedMeanAbsErr(errs); med > sigma*sigma/10 {
		t.Errorf("variance median error %v (sigma^2=%v)", med, sigma*sigma)
	}
}

func TestVarianceScaleSweep(t *testing.T) {
	// The log log sigma + log log 1/sigma requirement: both tiny and huge
	// scales must work without any hints.
	rng := xrand.New(13)
	for _, sigma := range []float64{1e-3, 1, 1e3} {
		d := dist.NewNormal(0, sigma)
		data := dist.SampleN(d, rng, 30000)
		ok := 0
		for trial := 0; trial < 10; trial++ {
			v, err := EstimateVariance(rng, data, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(v-sigma*sigma) < 0.3*sigma*sigma {
				ok++
			}
		}
		if ok < 7 {
			t.Errorf("sigma=%v: within 30%% only %d/10 times", sigma, ok)
		}
	}
}

func TestVarianceHeavyTailedFirstEver(t *testing.T) {
	// Theorem 5.5: works for P with finite mu_4 — Pareto(1, 5).
	rng := xrand.New(14)
	d := dist.NewPareto(1, 5)
	trueVar := d.Var()
	data := dist.SampleN(d, rng, 100000)
	errs := make([]float64, 11)
	for i := range errs {
		v, err := EstimateVariance(rng, data, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - trueVar)
	}
	if med := trimmedMeanAbsErr(errs); med > 0.5*trueVar {
		t.Errorf("heavy-tail variance median error %v (true %v)", med, trueVar)
	}
}

func TestVarianceNonNegativeRange(t *testing.T) {
	rng := xrand.New(15)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 5000)
	res, err := EstimateVarianceFull(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rad < 0 {
		t.Errorf("negative radius %v", res.Rad)
	}
	if !(res.Bucket > 0) {
		t.Errorf("non-positive bucket %v", res.Bucket)
	}
}

// ---------- EstimateIQR (Algorithm 10, Theorem 6.2) ----------

func TestIQRGaussian(t *testing.T) {
	rng := xrand.New(16)
	const sigma = 2.0
	d := dist.NewNormal(100, sigma)
	trueIQR := dist.IQROf(d)
	const n = 50000
	errs := make([]float64, 15)
	for i := range errs {
		data := dist.SampleN(d, rng, n)
		v, err := EstimateIQR(rng, data, 1.0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - trueIQR)
	}
	if med := trimmedMeanAbsErr(errs); med > trueIQR/10 {
		t.Errorf("IQR median error %v (true %v)", med, trueIQR)
	}
}

func TestIQRConvergesWithN(t *testing.T) {
	rng := xrand.New(17)
	d := dist.NewLaplace(0, 1)
	trueIQR := dist.IQROf(d)
	medFor := func(n int) float64 {
		errs := make([]float64, 11)
		for i := range errs {
			data := dist.SampleN(d, rng, n)
			v, err := EstimateIQR(rng, data, 0.5, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(v - trueIQR)
		}
		return trimmedMeanAbsErr(errs)
	}
	if small, large := medFor(2000), medFor(50000); large > small {
		t.Errorf("IQR error did not shrink: %v -> %v", small, large)
	}
}

func TestIQRCauchyStillWorks(t *testing.T) {
	// Cauchy has no mean or variance but a perfectly good IQR — the whole
	// point of a universal scale estimator.
	rng := xrand.New(18)
	d := dist.NewCauchy(0, 1)
	trueIQR := dist.IQROf(d) // = 2
	data := dist.SampleN(d, rng, 50000)
	errs := make([]float64, 11)
	for i := range errs {
		v, err := EstimateIQR(rng, data, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(v - trueIQR)
	}
	if med := trimmedMeanAbsErr(errs); med > trueIQR/4 {
		t.Errorf("Cauchy IQR median error %v (true %v)", med, trueIQR)
	}
}

// ---------- EstimateQuantile ----------

func TestQuantileUniversal(t *testing.T) {
	rng := xrand.New(19)
	d := dist.NewNormal(7, 1)
	const n = 50000
	data := dist.SampleN(d, rng, n)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		tau := int(p * float64(n))
		want := d.Quantile(p)
		errs := make([]float64, 11)
		for i := range errs {
			v, err := EstimateQuantile(rng, data, tau, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			errs[i] = math.Abs(v - want)
		}
		if med := trimmedMeanAbsErr(errs); med > 0.2 {
			t.Errorf("p=%v: quantile median error %v", p, med)
		}
	}
}

func TestEstimatorsDeterministicGivenSeed(t *testing.T) {
	d := dist.NewNormal(0, 1)
	data := dist.SampleN(d, xrand.New(99), 5000)
	run := func() (float64, float64, float64) {
		rng := xrand.New(1234)
		m, _ := EstimateMean(rng, data, 1.0, 0.1)
		v, _ := EstimateVariance(rng, data, 1.0, 0.1)
		q, _ := EstimateIQR(rng, data, 1.0, 0.1)
		return m, v, q
	}
	m1, v1, q1 := run()
	m2, v2, q2 := run()
	if m1 != m2 || v1 != v2 || q1 != q2 {
		t.Error("estimators are not deterministic for a fixed seed")
	}
}
