// Confidence intervals. The paper's §1.3 notes that because the utility
// guarantees of the universal estimators depend on the unknown parameters of
// P, they "cannot output confidence intervals", and suggests privatized
// upper bounds as a route. This file implements what IS universally
// achievable:
//
//   - QuantileInterval / IQRInterval: distribution-free CIs with *universal
//     coverage*. Rank errors — both the binomial sampling fluctuation and the
//     mechanism slack of Lemma 2.8 — are bounded without any knowledge of P,
//     so a pair of privately released order statistics brackets the
//     population quantile w.h.p. for every continuous P. Only the interval's
//     width is distribution-dependent, exactly as the paper's instance-
//     specific bounds are.
//
//   - MeanInterval: a CI whose coverage target is the truncated mean
//     E[clip(X, R̃)]. Both slack terms (the Laplace tail at the publicly
//     known scale and a Hoeffding term at width |R̃|) are computable from DP
//     outputs alone. It covers µ itself up to the truncation bias
//     E[X<µ-ξ]+E[X>µ+ξ] of Lemma 4.4 — the exact term the paper proves
//     cannot be bounded universally, which is why no universal mean CI
//     exists under pure DP.
package core

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// ErrIntervalInfeasible reports that the sample is too small to certify the
// requested coverage: the combined binomial and mechanism rank slack reaches
// past the extreme order statistics, so no distribution-free bracket exists
// at this (n, p, eps, beta). Increase n or eps, or loosen beta. This mirrors
// the paper's "n not too small" preconditions — the CI refuses rather than
// silently clamping ranks and losing coverage.
var ErrIntervalInfeasible = errors.New("core: sample too small to certify the requested confidence level")

// MeanCI is a confidence interval for the truncated mean E[clip(X, R̃)]
// released by Algorithm 8 (see the package comment for what this does and
// does not cover).
type MeanCI struct {
	Estimate       float64 // the Algorithm 8 release
	Lo, Hi         float64 // Estimate ± (NoiseSlack + SamplingSlack)
	ClipLo, ClipHi float64 // the privatized clipping range R̃(D')
	NoiseSlack     float64 // Laplace tail at the public scale 8|R̃|/(εn)
	SamplingSlack  float64 // Hoeffding deviation of the clipped sample mean
}

// MeanInterval runs Algorithm 8 with the full eps budget and derives a
// (1-beta)-confidence interval for the truncated mean from its DP outputs.
// No extra privacy is spent: the clipping range, n, eps, and beta are all
// public, so the slack computation is post-processing (Lemma 2.1).
//
// Coverage accounting: beta/2 for the estimator's internal events (range
// quality), beta/4 for the Laplace tail, beta/4 for the Hoeffding event.
func MeanInterval(rng *xrand.RNG, data []float64, eps, beta float64) (MeanCI, error) {
	if err := dp.CheckBeta(beta); err != nil {
		return MeanCI{}, err
	}
	res, err := EstimateMeanWithConfig(rng, data, eps, beta/2, MeanConfig{})
	if err != nil {
		return MeanCI{}, err
	}
	n := float64(len(data))
	width := res.Hi - res.Lo

	// Laplace scale used by Algorithm 8 line 5: 8|R̃|/(εn).
	noise := dp.LaplaceTail(8*width/(eps*n), beta/4)
	// Hoeffding for a mean of n values confined to an interval of the
	// released width: deviation width·sqrt(log(2/beta')/(2n)).
	sampling := width * math.Sqrt(math.Log(2/(beta/4))/(2*n))

	slack := noise + sampling
	return MeanCI{
		Estimate:      res.Estimate,
		Lo:            res.Estimate - slack,
		Hi:            res.Estimate + slack,
		ClipLo:        res.Lo,
		ClipHi:        res.Hi,
		NoiseSlack:    noise,
		SamplingSlack: sampling,
	}, nil
}

// QuantileCI is a distribution-free confidence interval for a population
// quantile F⁻¹(p).
type QuantileCI struct {
	Lo, Hi float64 // covers F⁻¹(p) with probability >= 1-beta
	P      float64 // the target probability
}

// QuantileInterval releases an eps-DP interval covering F⁻¹(p) with
// probability at least 1-beta for EVERY continuous P. It brackets the target
// between the order statistics at ranks np ∓ (binomial slack + mechanism
// rank slack), each released through the inverse-sensitivity mechanism over
// a privately learned range.
//
// Budget: ε/4 bucket (Algorithm 7) + ε/4 range (Algorithm 4) + ε/4 per
// endpoint quantile (Algorithm 2). Coverage: β/5 per DP event (bucket,
// range, two quantiles) plus β/5 for the binomial fluctuation of the
// empirical rank of F⁻¹(p).
func QuantileInterval(rng *xrand.RNG, data []float64, p, eps, beta float64) (QuantileCI, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return QuantileCI{}, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return QuantileCI{}, err
	}
	if !(p > 0 && p < 1) {
		return QuantileCI{}, ErrBadProbability
	}
	n := len(data)
	if n < 4 {
		return QuantileCI{}, ErrTooFewSamples
	}
	nf := float64(n)

	// Cheap feasibility precheck before spending any budget: even with a
	// trivial one-point domain the slack is at least the binomial term
	// plus the Lemma 2.8 constant, and it must leave headroom to both
	// extremes of the rank scale.
	zMin := math.Sqrt(nf*math.Log(2/(beta/5))/2) + dp.QuantileRankSlack(1, eps/4, beta/5)
	if p*nf-zMin < 1 || p*nf+zMin+1 > nf {
		return QuantileCI{}, ErrIntervalInfeasible
	}

	iqrLB, err := IQRLowerBound(rng, data, eps/4, beta/5)
	if err != nil {
		return QuantileCI{}, err
	}
	b := iqrLB / nf
	if !(b > 0) {
		b = math.SmallestNonzeroFloat64
	}
	ints := empirical.DiscretizeAll(data, b)
	lo, hi, err := empirical.Range(rng, ints, eps/4, beta/5)
	if err != nil {
		return QuantileCI{}, err
	}

	// Rank slack: binomial (Hoeffding) fluctuation of #{X_i <= F⁻¹(p)}
	// plus the Lemma 2.8 mechanism slack at the released domain size.
	domain := float64(uint64(hi)-uint64(lo)) + 1
	zBin := math.Sqrt(nf * math.Log(2/(beta/5)) / 2)
	zMech := dp.QuantileRankSlack(domain, eps/4, beta/5)
	z := zBin + zMech

	// Full feasibility check with the realized domain size: the bracket
	// ranks must exist. (The budget already spent on the bucket and range
	// is lost on refusal; that is the price of an honest interval.)
	if p*nf-z < 1 || p*nf+z+1 > nf {
		return QuantileCI{}, ErrIntervalInfeasible
	}
	rLo := clampRank(int(math.Floor(p*nf-z)), n)
	rHi := clampRank(int(math.Ceil(p*nf+z))+1, n)

	clamped := make([]int64, len(ints))
	copy(clamped, ints)
	qLo, err := dp.FiniteDomainQuantile(rng, clamped, rLo, lo, hi, eps/4, beta/5)
	if err != nil {
		return QuantileCI{}, err
	}
	qHi, err := dp.FiniteDomainQuantile(rng, clamped, rHi, lo, hi, eps/4, beta/5)
	if err != nil {
		return QuantileCI{}, err
	}
	ciLo := (float64(qLo) - 1) * b // -b: discretization rounding slack
	ciHi := (float64(qHi) + 1) * b
	if ciHi < ciLo {
		ciLo, ciHi = ciHi, ciLo
	}
	return QuantileCI{Lo: ciLo, Hi: ciHi, P: p}, nil
}

// IQRInterval releases an eps-DP interval covering IQR(P) with probability
// at least 1-beta for every continuous P, by differencing distribution-free
// CIs for the two quartiles (ε/2, β/2 each): the IQR lies in
// [max(0, q3.Lo-q1.Hi), q3.Hi-q1.Lo].
func IQRInterval(rng *xrand.RNG, data []float64, eps, beta float64) (QuantileCI, error) {
	q1, err := QuantileInterval(rng, data, 0.25, eps/2, beta/2)
	if err != nil {
		return QuantileCI{}, err
	}
	q3, err := QuantileInterval(rng, data, 0.75, eps/2, beta/2)
	if err != nil {
		return QuantileCI{}, err
	}
	lo := q3.Lo - q1.Hi
	if lo < 0 {
		lo = 0
	}
	hi := q3.Hi - q1.Lo
	if hi < lo {
		hi = lo
	}
	return QuantileCI{Lo: lo, Hi: hi, P: 0.5}, nil
}

// clampRank forces a 1-based rank into [1, n].
func clampRank(r, n int) int {
	if r < 1 {
		return 1
	}
	if r > n {
		return n
	}
	return r
}
