package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// Validation-path tests shared across every statistical estimator.

func TestAllEstimatorsRejectBadParams(t *testing.T) {
	rng := xrand.New(201)
	data := []float64{0.1, 0.9, 1.7, 2.4, 3.3, 4.1, 5.2, 6.8}
	calls := map[string]func(eps, beta float64) error{
		"EstimateMean": func(e, b float64) error {
			_, err := EstimateMean(rng, data, e, b)
			return err
		},
		"EstimateVariance": func(e, b float64) error {
			_, err := EstimateVariance(rng, data, e, b)
			return err
		},
		"EstimateVarianceFull": func(e, b float64) error {
			_, err := EstimateVarianceFull(rng, data, e, b)
			return err
		},
		"EstimateIQR": func(e, b float64) error {
			_, err := EstimateIQR(rng, data, e, b)
			return err
		},
		"EstimateQuantile": func(e, b float64) error {
			_, err := EstimateQuantile(rng, data, 4, e, b)
			return err
		},
		"EstimateQuantiles": func(e, b float64) error {
			_, err := EstimateQuantiles(rng, data, []int{2, 6}, e, b)
			return err
		},
		"TrimmedMean": func(e, b float64) error {
			_, err := TrimmedMean(rng, data, 0.1, e, b)
			return err
		},
		"IQRLowerBound": func(e, b float64) error {
			_, err := IQRLowerBound(rng, data, e, b)
			return err
		},
		"IQRUpperBound": func(e, b float64) error {
			_, err := IQRUpperBound(rng, data, e, b)
			return err
		},
		"QuantileInterval": func(e, b float64) error {
			_, err := QuantileInterval(rng, data, 0.5, e, b)
			return err
		},
	}
	for name, call := range calls {
		for _, eps := range []float64{0, -2, math.NaN(), math.Inf(1)} {
			if err := call(eps, 0.1); !errors.Is(err, dp.ErrInvalidEpsilon) {
				t.Errorf("%s(eps=%v): want ErrInvalidEpsilon, got %v", name, eps, err)
			}
		}
		for _, beta := range []float64{0, 1, 3, math.NaN()} {
			if err := call(1, beta); !errors.Is(err, dp.ErrInvalidBeta) {
				t.Errorf("%s(beta=%v): want ErrInvalidBeta, got %v", name, beta, err)
			}
		}
	}
}

func TestAllEstimatorsRejectTinySamples(t *testing.T) {
	rng := xrand.New(202)
	tiny := []float64{1, 2, 3}
	calls := map[string]func() error{
		"EstimateMean":      func() error { _, err := EstimateMean(rng, tiny, 1, 0.1); return err },
		"EstimateVariance":  func() error { _, err := EstimateVariance(rng, tiny, 1, 0.1); return err },
		"EstimateIQR":       func() error { _, err := EstimateIQR(rng, tiny, 1, 0.1); return err },
		"EstimateQuantile":  func() error { _, err := EstimateQuantile(rng, tiny, 1, 1, 0.1); return err },
		"EstimateQuantiles": func() error { _, err := EstimateQuantiles(rng, tiny, []int{1}, 1, 0.1); return err },
		"TrimmedMean":       func() error { _, err := TrimmedMean(rng, tiny, 0.1, 1, 0.1); return err },
		"IQRLowerBound":     func() error { _, err := IQRLowerBound(rng, tiny, 1, 0.1); return err },
		"IQRUpperBound":     func() error { _, err := IQRUpperBound(rng, tiny, 1, 0.1); return err },
		"ScaleBracket":      func() error { _, err := EstimateScaleBracket(rng, tiny, 1, 0.1); return err },
		"MeanInterval":      func() error { _, err := MeanInterval(rng, tiny, 1, 0.1); return err },
		"QuantileInterval":  func() error { _, err := QuantileInterval(rng, tiny, 0.5, 1, 0.1); return err },
		"IQRInterval":       func() error { _, err := IQRInterval(rng, tiny, 1, 0.1); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, ErrTooFewSamples) {
			t.Errorf("%s(n=3): want ErrTooFewSamples, got %v", name, err)
		}
	}
}

func TestEstimateScaleBracketBadParams(t *testing.T) {
	rng := xrand.New(203)
	data := []float64{1, 2, 3, 4, 5}
	if _, err := EstimateScaleBracket(rng, data, -1, 0.1); !errors.Is(err, dp.ErrInvalidEpsilon) {
		t.Errorf("want ErrInvalidEpsilon, got %v", err)
	}
	if _, err := EstimateScaleBracket(rng, data, 1, -1); !errors.Is(err, dp.ErrInvalidBeta) {
		t.Errorf("want ErrInvalidBeta, got %v", err)
	}
}

func TestClampRank(t *testing.T) {
	for _, tc := range []struct{ r, n, want int }{
		{-5, 10, 1},
		{0, 10, 1},
		{1, 10, 1},
		{5, 10, 5},
		{10, 10, 10},
		{11, 10, 10},
		{1000000, 3, 3},
	} {
		if got := clampRank(tc.r, tc.n); got != tc.want {
			t.Errorf("clampRank(%d, %d) = %d, want %d", tc.r, tc.n, got, tc.want)
		}
	}
}

func TestVarianceFullDiagnostics(t *testing.T) {
	rng := xrand.New(204)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.Gaussian() * 3
	}
	res, err := EstimateVarianceFull(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rad <= 0 {
		t.Errorf("radius diagnostic %v should be positive", res.Rad)
	}
	if res.Bucket <= 0 {
		t.Errorf("bucket diagnostic %v should be positive", res.Bucket)
	}
	// sigma^2 = 9; the release should be in a broad sane band.
	if res.Estimate < 1 || res.Estimate > 40 {
		t.Errorf("variance estimate %v far from 9", res.Estimate)
	}
}
