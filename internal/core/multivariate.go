package core

import (
	"errors"
	"fmt"

	"repro/internal/dp"
	"repro/internal/xrand"
)

// ErrDimensionMismatch reports rows of unequal dimension.
var ErrDimensionMismatch = errors.New("core: rows have different dimensions")

// EstimateMeanVector is the paper's §1.2 multivariate extension: the
// univariate universal mean estimator applied per coordinate with the
// budget split evenly (basic composition, Lemma 2.2), using Laplace noise
// throughout so the guarantee stays pure ε-DP.
//
// The paper notes this route does not reach the optimal Õ(d/(εn)) privacy
// term (open even under A1/A2/A3); the per-coordinate error is the
// Theorem 4.5 bound at budget ε/d, i.e. a d·polylog/(εn) privacy term per
// coordinate. It inherits universality: no per-coordinate ranges or scale
// bounds are needed, and the coordinates may follow entirely different
// distribution families.
func EstimateMeanVector(rng *xrand.RNG, data [][]float64, eps, beta float64) ([]float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, ErrTooFewSamples
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional rows", ErrDimensionMismatch)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d coordinates, want %d",
				ErrDimensionMismatch, i, len(row), d)
		}
	}
	epsCoord := eps / float64(d)
	betaCoord := beta / float64(d)
	out := make([]float64, d)
	col := make([]float64, len(data))
	for j := 0; j < d; j++ {
		for i, row := range data {
			col[i] = row[j]
		}
		m, err := EstimateMean(rng, col, epsCoord, betaCoord)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", j, err)
		}
		out[j] = m
	}
	return out, nil
}

// EstimateVarianceDiagonal releases the per-coordinate variances (the
// diagonal of the covariance matrix) under ε-DP with an even budget split.
// Full private covariance under pure DP without boundedness assumptions is
// open (§1.2); the diagonal already suffices for per-feature scaling.
func EstimateVarianceDiagonal(rng *xrand.RNG, data [][]float64, eps, beta float64) ([]float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, ErrTooFewSamples
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional rows", ErrDimensionMismatch)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d coordinates, want %d",
				ErrDimensionMismatch, i, len(row), d)
		}
	}
	epsCoord := eps / float64(d)
	betaCoord := beta / float64(d)
	out := make([]float64, d)
	col := make([]float64, len(data))
	for j := 0; j < d; j++ {
		for i, row := range data {
			col[i] = row[j]
		}
		v, err := EstimateVariance(rng, col, epsCoord, betaCoord)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", j, err)
		}
		out[j] = v
	}
	return out, nil
}
