package core

import (
	"math"

	"repro/internal/dp"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// IQRUpperBound releases an eps-DP *upper* bound on the IQR of P — the
// counterpart of Algorithm 7's lower bound, addressing the paper's §1.3
// open problem ("derive privatized upper bounds of these parameters").
//
// Mechanism: with G = {|X - X'|} over random pairs, if an interval of
// width v satisfies P(|X-X'| <= v) >= 7/8, then IQR <= 2v — otherwise the
// two quartile tails, each of mass 1/4, would be separated by more than
// 2v and pairs straddling them (probability >= 1/8) would violate the
// premise. An SVT over doubling thresholds finds the first power of two
// whose count reaches (7/8)n' + slack; 2·2^k is then an upper bound w.h.p.
//
// Combined with IQRLowerBound this yields a private scale bracket
// [IQR̲, IQR̄] usable for sanity checks and crude confidence statements.
func IQRUpperBound(rng *xrand.RNG, data []float64, eps, beta float64) (float64, error) {
	if err := dp.CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := dp.CheckBeta(beta); err != nil {
		return 0, err
	}
	if len(data) < 4 {
		return 0, ErrTooFewSamples
	}
	g := stats.PairDistances(rng, data)
	nP := float64(len(g))

	// Require the count to clear 7/8 n' plus both the Chernoff slack of
	// the pairing argument and the SVT's own Lemma 2.5 slack, so a stop
	// implies the population event w.h.p.
	slack := 4*math.Sqrt(nP*math.Log(2/beta)) + dp.SVTLemma26Slack(eps, beta)
	threshold := 7*nP/8 + math.Min(slack, nP/16)

	countUpTo := func(x float64) float64 {
		c := 0
		for _, v := range g {
			if v <= x {
				c++
			}
		}
		return float64(c)
	}
	iHat, err := dp.SVT(rng, threshold, eps, func(i int) (float64, bool) {
		return countUpTo(math.Pow(2, float64(i-1))), true
	}, maxScaleQueries)
	if err != nil {
		// Distances exceed every float64 power of two.
		return math.Inf(1), nil
	}
	return 2 * math.Pow(2, float64(iHat-1)), nil
}

// ScaleBracket releases an eps-DP bracket [Lo, Hi] with
// Lo <= IQR(P) <= Hi w.h.p., splitting the budget between Algorithm 7 and
// IQRUpperBound. Hi/Lo also bounds how ill-behaved P can be: by §2.1,
// phi(1/2) <= IQR <= 4·sigma whenever sigma exists.
type ScaleBracket struct {
	Lo, Hi float64
}

// EstimateScaleBracket releases the bracket with an even budget split.
func EstimateScaleBracket(rng *xrand.RNG, data []float64, eps, beta float64) (ScaleBracket, error) {
	lo, err := IQRLowerBound(rng, data, eps/2, beta/2)
	if err != nil {
		return ScaleBracket{}, err
	}
	hi, err := IQRUpperBound(rng, data, eps/2, beta/2)
	if err != nil {
		return ScaleBracket{}, err
	}
	if hi < lo {
		// The two independent randomized searches can cross on tiny
		// samples; collapsing to a point keeps the bracket well-formed
		// (post-processing).
		hi = lo
	}
	return ScaleBracket{Lo: lo, Hi: hi}, nil
}
