package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// ---------- QuantileInterval ----------

func TestQuantileIntervalCoverage(t *testing.T) {
	// Distribution-free coverage: across repeated draws AND families, the
	// released interval must contain F^{-1}(p) at least 1-beta of the time.
	if testing.Short() {
		t.Skip("coverage loop is slow")
	}
	rng := xrand.New(51)
	families := []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewNormal(1e6, 3),
		dist.NewPareto(1, 2), // heavy tail, no variance assumptions used
		dist.NewCauchy(0, 1), // no mean at all
	}
	const trials = 25
	for _, d := range families {
		for _, p := range []float64{0.25, 0.5, 0.9} {
			target := d.Quantile(p)
			misses := 0
			for trial := 0; trial < trials; trial++ {
				data := dist.SampleN(d, rng, 6000)
				ci, err := QuantileInterval(rng, data, p, 1.0, 0.2)
				if err != nil {
					t.Fatal(err)
				}
				if target < ci.Lo || target > ci.Hi {
					misses++
				}
			}
			// beta = 0.2 permits ~5 misses in 25; allow 8 for test noise.
			if misses > 8 {
				t.Errorf("%s p=%v: %d/%d misses", d.Name(), p, misses, trials)
			}
		}
	}
}

func TestQuantileIntervalShrinksWithN(t *testing.T) {
	// Interval width must decrease as n grows.
	rng := xrand.New(52)
	d := dist.NewNormal(0, 1)
	width := func(n int) float64 {
		var total float64
		const trials = 6
		for trial := 0; trial < trials; trial++ {
			data := dist.SampleN(d, rng, n)
			ci, err := QuantileInterval(rng, data, 0.5, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			total += ci.Hi - ci.Lo
		}
		return total / trials
	}
	small, large := width(1000), width(50000)
	if large >= small {
		t.Errorf("interval did not shrink: n=1000 width %v, n=50000 width %v", small, large)
	}
}

func TestQuantileIntervalWellFormed(t *testing.T) {
	rng := xrand.New(53)
	data := dist.SampleN(dist.NewUniform(-3, 3), rng, 2500)
	for trial := 0; trial < 20; trial++ {
		ci, err := QuantileInterval(rng, data, 0.5, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if !(ci.Lo <= ci.Hi) {
			t.Fatalf("malformed interval [%v, %v]", ci.Lo, ci.Hi)
		}
		if ci.P != 0.5 {
			t.Fatalf("P not propagated: %v", ci.P)
		}
	}
}

func TestQuantileIntervalErrors(t *testing.T) {
	rng := xrand.New(54)
	data := []float64{1, 2, 3, 4, 5}
	if _, err := QuantileInterval(rng, data, 0, 1, 0.1); !errors.Is(err, ErrBadProbability) {
		t.Errorf("p=0: want ErrBadProbability, got %v", err)
	}
	if _, err := QuantileInterval(rng, data, 1, 1, 0.1); !errors.Is(err, ErrBadProbability) {
		t.Errorf("p=1: want ErrBadProbability, got %v", err)
	}
	if _, err := QuantileInterval(rng, []float64{1, 2}, 0.5, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("want ErrTooFewSamples, got %v", err)
	}
	if _, err := QuantileInterval(rng, data, 0.5, -1, 0.1); err == nil {
		t.Error("bad epsilon accepted")
	}
	if _, err := QuantileInterval(rng, data, 0.5, 1, 0); err == nil {
		t.Error("bad beta accepted")
	}
}

// ---------- IQRInterval ----------

func TestIQRIntervalCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage loop is slow")
	}
	rng := xrand.New(55)
	for _, d := range []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewLaplace(10, 2),
	} {
		iqr := dist.IQROf(d)
		misses := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			data := dist.SampleN(d, rng, 6000)
			ci, err := IQRInterval(rng, data, 1.0, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if iqr < ci.Lo || iqr > ci.Hi {
				misses++
			}
		}
		if misses > 7 {
			t.Errorf("%s: IQR missed %d/%d times", d.Name(), misses, trials)
		}
	}
}

func TestIQRIntervalNonNegative(t *testing.T) {
	rng := xrand.New(56)
	data := dist.SampleN(dist.NewNormal(0, 0.01), rng, 4000)
	for trial := 0; trial < 20; trial++ {
		ci, err := IQRInterval(rng, data, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo < 0 || ci.Hi < ci.Lo {
			t.Fatalf("malformed IQR interval [%v, %v]", ci.Lo, ci.Hi)
		}
	}
}

func TestQuantileIntervalInfeasibleSmallSample(t *testing.T) {
	// A sample far below the rank-slack threshold must refuse with the
	// typed error rather than release a vacuous interval.
	rng := xrand.New(61)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 200)
	if _, err := QuantileInterval(rng, data, 0.9, 0.2, 0.1); !errors.Is(err, ErrIntervalInfeasible) {
		t.Errorf("want ErrIntervalInfeasible, got %v", err)
	}
	// The IQR interval composes two quantile intervals and must propagate.
	if _, err := IQRInterval(rng, data, 0.2, 0.1); !errors.Is(err, ErrIntervalInfeasible) {
		t.Errorf("IQRInterval: want ErrIntervalInfeasible, got %v", err)
	}
}

// ---------- MeanInterval ----------

func TestMeanIntervalCoversTruncatedMean(t *testing.T) {
	// The CI's coverage target is E[clip(X, R̃)]; for a light-tailed
	// distribution with all mass inside the learned range this coincides
	// with mu, so the interval should contain mu nearly always.
	if testing.Short() {
		t.Skip("coverage loop is slow")
	}
	rng := xrand.New(57)
	d := dist.NewNormal(42, 3)
	misses := 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		data := dist.SampleN(d, rng, 5000)
		ci, err := MeanInterval(rng, data, 1.0, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if 42 < ci.Lo || 42 > ci.Hi {
			misses++
		}
	}
	if misses > 8 {
		t.Errorf("mean CI missed mu %d/%d times", misses, trials)
	}
}

func TestMeanIntervalStructure(t *testing.T) {
	rng := xrand.New(58)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 2000)
	ci, err := MeanInterval(rng, data, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Estimate && ci.Estimate <= ci.Hi) {
		t.Errorf("estimate %v outside its own interval [%v, %v]", ci.Estimate, ci.Lo, ci.Hi)
	}
	if ci.NoiseSlack <= 0 || ci.SamplingSlack <= 0 {
		t.Errorf("slacks must be positive: noise %v sampling %v", ci.NoiseSlack, ci.SamplingSlack)
	}
	if got, want := ci.Hi-ci.Lo, 2*(ci.NoiseSlack+ci.SamplingSlack); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("width %v inconsistent with slacks %v", got, want)
	}
	if !(ci.ClipLo < ci.ClipHi) {
		t.Errorf("clip range malformed [%v, %v]", ci.ClipLo, ci.ClipHi)
	}
}

func TestMeanIntervalWidthShrinksWithEps(t *testing.T) {
	// Width at eps=2 should be smaller than at eps=0.1 on the same data.
	rng := xrand.New(59)
	data := dist.SampleN(dist.NewNormal(0, 1), rng, 5000)
	width := func(eps float64) float64 {
		var total float64
		const trials = 6
		for trial := 0; trial < trials; trial++ {
			ci, err := MeanInterval(rng, data, eps, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			total += ci.Hi - ci.Lo
		}
		return total / trials
	}
	if wLow, wHigh := width(0.1), width(2.0); wHigh >= wLow {
		t.Errorf("CI width did not shrink with eps: eps=0.1 %v, eps=2 %v", wLow, wHigh)
	}
}

func TestMeanIntervalErrors(t *testing.T) {
	rng := xrand.New(60)
	if _, err := MeanInterval(rng, []float64{1, 2}, 1, 0.1); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("want ErrTooFewSamples, got %v", err)
	}
	if _, err := MeanInterval(rng, []float64{1, 2, 3, 4, 5}, 1, 7); err == nil {
		t.Error("bad beta accepted")
	}
}
