// Package stats implements the non-private statistics the estimators and
// the experiment harness are built on: compensated summation, means and
// variances, order statistics and quantiles, empirical range/radius/width,
// random pairing and subsampling, and clipping.
//
// The quantile convention follows the paper (§2.1): for sorted data
// X_1 <= ... <= X_n, the tau-th quantile is the order statistic X_tau with
// tau in [1, n], and X_i is defined as X_1 for i < 1 and X_n for i > n.
package stats

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Sum returns the sum of xs using Neumaier's compensated summation, which
// keeps the error independent of n even for adversarial orderings.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance (1/n normalization, matching the
// paper's empirical sigma^2(D)) computed with the two-pass algorithm.
// It returns NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		dev[i] = d * d
	}
	return Sum(dev) / float64(len(xs))
}

// CentralMoment returns the k-th central moment (1/n) * sum (x - mean)^k
// of |x-mean| for even semantics matching the paper's mu_k = E|X-mu|^k.
func CentralMoment(xs []float64, k float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	terms := make([]float64, len(xs))
	for i, x := range xs {
		terms[i] = math.Pow(math.Abs(x-m), k)
	}
	return Sum(terms) / float64(len(xs))
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// OrderStat returns the tau-th order statistic (1-based) of sorted data,
// clamping tau into [1, n] per the paper's convention. sortedXs must be
// sorted ascending and non-empty.
func OrderStat(sortedXs []float64, tau int) float64 {
	n := len(sortedXs)
	if n == 0 {
		return math.NaN()
	}
	if tau < 1 {
		tau = 1
	}
	if tau > n {
		tau = n
	}
	return sortedXs[tau-1]
}

// Quantile returns the p-quantile (p in [0,1]) as the order statistic
// X_ceil(p*n), the paper's convention for X_{n/4} etc. xs need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := Sorted(xs)
	tau := int(math.Ceil(p * float64(len(s))))
	return OrderStat(s, tau)
}

// Median returns the n/2-th order statistic.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns X_{3n/4} - X_{n/4}, the empirical interquartile range.
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := Sorted(xs)
	n := len(s)
	hi := OrderStat(s, int(math.Ceil(3*float64(n)/4)))
	lo := OrderStat(s, int(math.Ceil(float64(n)/4)))
	return hi - lo
}

// Width returns gamma(D) = max - min. It returns NaN for empty input.
func Width(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

// Radius returns rad(D) = max_i |X_i|. It returns NaN for empty input.
func Radius(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var r float64
	for _, x := range xs {
		if a := math.Abs(x); a > r {
			r = a
		}
	}
	return r
}

// RadiusInt64 returns rad(D) over an integer dataset. Empty input yields 0.
func RadiusInt64(xs []int64) int64 {
	var r int64
	for _, x := range xs {
		a := x
		if a < 0 {
			if a == math.MinInt64 {
				return math.MaxInt64
			}
			a = -a
		}
		if a > r {
			r = a
		}
	}
	return r
}

// WidthInt64 returns gamma(D) over an integer dataset (0 for empty input).
// The result saturates at MaxInt64 on overflow.
func WidthInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	w := uint64(hi) - uint64(lo) // two's-complement difference is exact
	if w > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(w)
}

// Clip returns x clamped into [lo, hi] (the paper's Clip, §2.6).
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClipSlice returns a new slice with every element clamped into [lo, hi].
func ClipSlice(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = Clip(x, lo, hi)
	}
	return out
}

// ClippedMean returns mean(Clip(D, [lo, hi])), the paper's clipped mean
// estimator (§2.6). Its global sensitivity is (hi-lo)/n.
func ClippedMean(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, comp float64
	for _, x := range xs {
		v := Clip(x, lo, hi)
		t := sum + v
		if math.Abs(sum) >= math.Abs(v) {
			comp += (sum - t) + v
		} else {
			comp += (v - t) + sum
		}
		sum = t
	}
	return (sum + comp) / float64(len(xs))
}

// CountIn returns |D ∩ [lo, hi]|.
func CountIn(xs []float64, lo, hi float64) int {
	c := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			c++
		}
	}
	return c
}

// CountInInt64 returns |D ∩ [lo, hi]| over integers.
func CountInInt64(xs []int64, lo, hi int64) int {
	c := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			c++
		}
	}
	return c
}

// PairDistances randomly pairs the elements of xs and returns |X - X'| for
// each pair (the G multiset of Algorithm 7). With odd n the last element is
// dropped. The pairing consumes randomness from rng.
func PairDistances(rng *xrand.RNG, xs []float64) []float64 {
	perm := rng.Perm(len(xs))
	out := make([]float64, 0, len(xs)/2)
	for i := 0; i+1 < len(perm); i += 2 {
		out = append(out, math.Abs(xs[perm[i]]-xs[perm[i+1]]))
	}
	return out
}

// PairSquares randomly pairs the elements of xs and returns (X - X')^2 for
// each pair (the H multiset of Algorithm 9). With odd n the last element is
// dropped.
func PairSquares(rng *xrand.RNG, xs []float64) []float64 {
	perm := rng.Perm(len(xs))
	out := make([]float64, 0, len(xs)/2)
	for i := 0; i+1 < len(perm); i += 2 {
		d := xs[perm[i]] - xs[perm[i+1]]
		out = append(out, d*d)
	}
	return out
}

// Subsample returns m elements drawn uniformly without replacement.
// It panics if m > len(xs).
func Subsample(rng *xrand.RNG, xs []float64, m int) []float64 {
	idx := rng.SampleIndices(len(xs), m)
	out := make([]float64, m)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// AbsErr returns |a - b|, treating NaN as +Inf so that failed estimates rank
// worst in experiment tables.
func AbsErr(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	return math.Abs(a - b)
}
