package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumCompensated(t *testing.T) {
	// Classic Neumaier stress: 1 + 1e100 + 1 - 1e100 should be 2.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Sum(xs); got != 2 {
		t.Errorf("Sum = %v, want 2", got)
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceBasic(t *testing.T) {
	// Population variance of {1,2,3,4} is 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); !almostEq(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := Variance([]float64{5, 5, 5}); got != 0 {
		t.Errorf("Variance of constant = %v", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.Gaussian()
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1e6
		}
		return almostEq(Variance(xs), Variance(shifted), 1e-6)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCentralMoment(t *testing.T) {
	xs := []float64{-1, 1}
	if got := CentralMoment(xs, 2); !almostEq(got, 1, 1e-12) {
		t.Errorf("mu_2 = %v, want 1", got)
	}
	if got := CentralMoment(xs, 4); !almostEq(got, 1, 1e-12) {
		t.Errorf("mu_4 = %v, want 1", got)
	}
}

func TestOrderStatClamping(t *testing.T) {
	s := []float64{1, 2, 3}
	if OrderStat(s, 0) != 1 {
		t.Error("tau<1 should clamp to X_1")
	}
	if OrderStat(s, 4) != 3 {
		t.Error("tau>n should clamp to X_n")
	}
	if OrderStat(s, 2) != 2 {
		t.Error("tau=2")
	}
}

func TestQuantileConvention(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	// ceil(0.25*4)=1 -> X_1; ceil(0.75*4)=3 -> X_3.
	if got := Quantile(xs, 0.25); got != 10 {
		t.Errorf("Q(0.25) = %v", got)
	}
	if got := Quantile(xs, 0.75); got != 30 {
		t.Errorf("Q(0.75) = %v", got)
	}
	if got := Median(xs); got != 20 {
		t.Errorf("Median = %v", got)
	}
}

func TestIQRGaussianApprox(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.Gaussian()
	}
	// Standard normal IQR = 2*0.67449 = 1.3490.
	if got := IQR(xs); !almostEq(got, 1.349, 0.02) {
		t.Errorf("IQR = %v, want ~1.349", got)
	}
}

func TestWidthRadius(t *testing.T) {
	xs := []float64{-3, 1, 7}
	if Width(xs) != 10 {
		t.Errorf("Width = %v", Width(xs))
	}
	if Radius(xs) != 7 {
		t.Errorf("Radius = %v", Radius(xs))
	}
	if !math.IsNaN(Width(nil)) || !math.IsNaN(Radius(nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestRadiusInt64(t *testing.T) {
	if RadiusInt64([]int64{-5, 3}) != 5 {
		t.Error("RadiusInt64 basic")
	}
	if RadiusInt64(nil) != 0 {
		t.Error("RadiusInt64 empty")
	}
	if RadiusInt64([]int64{math.MinInt64}) != math.MaxInt64 {
		t.Error("RadiusInt64 MinInt64 should saturate")
	}
}

func TestWidthInt64(t *testing.T) {
	if WidthInt64([]int64{-5, 3}) != 8 {
		t.Error("WidthInt64 basic")
	}
	if WidthInt64([]int64{7}) != 0 {
		t.Error("WidthInt64 singleton")
	}
	if WidthInt64([]int64{math.MinInt64, math.MaxInt64}) != math.MaxInt64 {
		t.Error("WidthInt64 should saturate")
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 3) != 3 || Clip(-1, 0, 3) != 0 || Clip(2, 0, 3) != 2 {
		t.Error("Clip")
	}
}

func TestClippedMean(t *testing.T) {
	xs := []float64{-100, 0, 100}
	if got := ClippedMean(xs, -1, 1); got != 0 {
		t.Errorf("ClippedMean = %v", got)
	}
	xs2 := []float64{-100, 1, 100}
	// clip to [-1,1]: -1, 1, 1 -> mean 1/3.
	if got := ClippedMean(xs2, -1, 1); !almostEq(got, 1.0/3, 1e-12) {
		t.Errorf("ClippedMean = %v", got)
	}
}

func TestClippedMeanMatchesClipSliceMean(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.Laplace(10)
		}
		a := ClippedMean(xs, -3, 3)
		b := Mean(ClipSlice(xs, -3, 3))
		return almostEq(a, b, 1e-9)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountIn(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if CountIn(xs, 2, 4) != 3 {
		t.Error("CountIn")
	}
	if CountInInt64([]int64{-2, 0, 2}, -1, 1) != 1 {
		t.Error("CountInInt64")
	}
}

func TestPairDistancesProperties(t *testing.T) {
	rng := xrand.New(9)
	xs := []float64{1, 5, 9, 13, 2}
	g := PairDistances(rng, xs)
	if len(g) != 2 {
		t.Fatalf("len = %d, want 2 (odd element dropped)", len(g))
	}
	for _, v := range g {
		if v < 0 {
			t.Error("distances must be non-negative")
		}
	}
}

func TestPairSquaresExpectation(t *testing.T) {
	// E[(X-X')^2] = 2 sigma^2.
	rng := xrand.New(11)
	const sigma = 3.0
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Gaussian() * sigma
	}
	h := PairSquares(rng, xs)
	if got, want := Mean(h), 2*sigma*sigma; math.Abs(got-want) > 0.5 {
		t.Errorf("mean pair square = %v, want ~%v", got, want)
	}
}

func TestPairUsesEachElementOnce(t *testing.T) {
	rng := xrand.New(13)
	xs := []float64{0, 10, 20, 30}
	g := PairDistances(rng, xs)
	// Sum of pair distances must be formable from disjoint pairs; with 4
	// distinct spaced values all pairings give positive distances.
	if len(g) != 2 || g[0] == 0 || g[1] == 0 {
		t.Errorf("unexpected pairing %v", g)
	}
}

func TestSubsample(t *testing.T) {
	rng := xrand.New(17)
	xs := []float64{1, 2, 3, 4, 5}
	s := Subsample(rng, xs, 3)
	if len(s) != 3 {
		t.Fatal("len")
	}
	seen := map[float64]int{}
	for _, v := range s {
		seen[v]++
		if seen[v] > 1 {
			t.Error("subsample repeated an element")
		}
	}
}

func TestAbsErr(t *testing.T) {
	if AbsErr(3, 5) != 2 {
		t.Error("AbsErr")
	}
	if !math.IsInf(AbsErr(math.NaN(), 1), 1) {
		t.Error("AbsErr NaN should be +Inf")
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		xs := make([]float64, 33)
		for i := range xs {
			xs[i] = rng.Laplace(5)
		}
		return Quantile(xs, 0.25) <= Quantile(xs, 0.5) &&
			Quantile(xs, 0.5) <= Quantile(xs, 0.75)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClippedMeanWithinBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.StudentT(2.5) * 100
		}
		m := ClippedMean(xs, -7, 13)
		return m >= -7 && m <= 13
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
