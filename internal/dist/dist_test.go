package dist

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Every family's sample moments must match its claimed population
// functionals; its quantile function must invert its sampling CDF.
func TestFamiliesSelfConsistent(t *testing.T) {
	rng := xrand.New(1)
	families := []Distribution{
		NewNormal(3, 2),
		NewLaplace(-1, 0.5),
		NewUniform(-4, 10),
		NewExponential(0.25),
		NewLogNormal(1, 0.4),
		NewPareto(2, 4),
		NewStudentTLocScale(6, 5, 2),
		NewWeibull(2, 1.5),
		NewGumbel(1, 2),
		NewTriangular(0, 6),
		NewAffine(NewNormal(0, 1), 10, -3),
		SpikeAndSlab(0.1, 4, 0.3),
	}
	const n = 400000
	for _, d := range families {
		xs := SampleN(d, rng, n)
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= n
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= n
		sd := math.Sqrt(d.Var())
		if !almostEq(mean, d.Mean(), 6*sd/math.Sqrt(n)+1e-9) {
			t.Errorf("%s: sample mean %v, population %v", d.Name(), mean, d.Mean())
		}
		if !almostEq(v, d.Var(), 0.05*d.Var()+1e-9) {
			t.Errorf("%s: sample var %v, population %v", d.Name(), v, d.Var())
		}
		if cm2 := d.CentralMoment(2); !almostEq(cm2, d.Var(), 0.02*d.Var()+1e-9) {
			t.Errorf("%s: CentralMoment(2) %v != Var %v", d.Name(), cm2, d.Var())
		}
		// Quantile vs empirical order statistics at the quartiles.
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			q := d.Quantile(p)
			below := 0
			for _, x := range xs {
				if x <= q {
					below++
				}
			}
			if frac := float64(below) / n; math.Abs(frac-p) > 0.01 {
				t.Errorf("%s: F(Q(%v)) = %v", d.Name(), p, frac)
			}
		}
	}
}

// Families without a finite mean/variance must say so instead of lying.
func TestDivergentMoments(t *testing.T) {
	if m := NewCauchy(0, 1).Mean(); !math.IsNaN(m) {
		t.Errorf("Cauchy mean = %v, want NaN", m)
	}
	if v := NewPareto(1, 1.5).Var(); !math.IsInf(v, 1) {
		t.Errorf("Pareto(1,1.5) var = %v, want +Inf", v)
	}
	if v := NewStudentT(2).Var(); !math.IsInf(v, 1) {
		t.Errorf("StudentT(2) var = %v, want +Inf", v)
	}
}

func TestIQRKnownValues(t *testing.T) {
	// Cauchy(0,1): IQR = tan(pi/4) - tan(-pi/4) = 2.
	if got := IQROf(NewCauchy(0, 1)); !almostEq(got, 2, 1e-9) {
		t.Errorf("Cauchy IQR = %v, want 2", got)
	}
	// Normal(0,1): IQR = 2*0.674489...
	if got := IQROf(NewNormal(0, 1)); !almostEq(got, 1.3489795003921634, 1e-9) {
		t.Errorf("Normal IQR = %v", got)
	}
}

func TestPhiSmallForSpikeAndSlab(t *testing.T) {
	// Most mass in a width-1e-6 spike: pair distances are mostly ~1e-6, so
	// the 1/16 pair-distance quantile must collapse with it.
	d := SpikeAndSlab(1e-6, 10, 0.2)
	if phi := Phi(d, 1.0/16); phi > 1e-5 {
		t.Errorf("Phi(spike-and-slab, 1/16) = %v, want tiny", phi)
	}
	if phi := Phi(NewNormal(0, 1), 1.0/16); !(phi > 0.05 && phi < 0.2) {
		t.Errorf("Phi(N(0,1), 1/16) = %v, want ~0.11", phi)
	}
}
