// Package dist is the synthetic-distribution substrate for the experiments
// and tests: a catalogue of classical families with exact population
// functionals (mean, variance, quantiles, central moments) so reproduction
// runs can compare a private release against ground truth.
//
// Everything samples through an explicit *xrand.RNG, so a draw is a pure
// function of (family, parameters, seed). Constructors panic on invalid
// parameters (callers that take user input wrap them — see updp-gen's
// safe()); functionals that do not exist for a family return +Inf or NaN
// rather than panicking, matching the paper's "no assumptions" framing in
// which estimators must behave sanely even when moments diverge.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Distribution is one continuous univariate family with known population
// functionals.
type Distribution interface {
	// Name identifies the family and parameters for table rows.
	Name() string
	// Mean returns the population mean (+Inf/NaN when it diverges).
	Mean() float64
	// Var returns the population variance (+Inf/NaN when it diverges).
	Var() float64
	// Quantile returns F^{-1}(p) for p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one variate.
	Sample(rng *xrand.RNG) float64
	// CentralMoment returns E[(X-EX)^k] (k >= 0).
	CentralMoment(k int) float64
}

// SampleN draws n iid variates.
func SampleN(d Distribution, rng *xrand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// BulkLaplace draws n iid Laplace(0, scale) variates in one call — the
// bulk primitive behind the serve layer's vectorized noise sampling:
// mechanisms sharing a shape (same family, same scale) take their noise
// from one draw, amortizing the per-sample generator handoff across a
// whole commit batch of releases.
func BulkLaplace(rng *xrand.RNG, scale float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Laplace(scale)
	}
	return out
}

// BulkGaussian draws n iid N(0, sigma²) variates in one call; the
// Gaussian shape's twin of BulkLaplace.
func BulkGaussian(rng *xrand.RNG, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = sigma * rng.Gaussian()
	}
	return out
}

// IQROf returns the population interquartile range F^{-1}(3/4) - F^{-1}(1/4).
func IQROf(d Distribution) float64 {
	return d.Quantile(0.75) - d.Quantile(0.25)
}

// Phi returns the pairwise-distance quantile φ(β) = inf{x : P(|X-X'| <= x)
// >= β} for X, X' iid from d — the functional Algorithm 7's guarantee is
// stated in (¼·φ(1/16) <= IQR̲ <= IQR, Theorem 4.3). Computed by a
// deterministic Monte-Carlo with a fixed internal seed; accurate to the
// sampling error of 2^17 pairs, which is far below the factor-2 slack the
// theorem statements carry.
func Phi(d Distribution, beta float64) float64 {
	if !(beta > 0 && beta < 1) {
		panic(fmt.Sprintf("dist: Phi with beta %v outside (0,1)", beta))
	}
	const pairs = 1 << 17
	rng := xrand.New(0x9e3779b97f4a7c15)
	g := make([]float64, pairs)
	for i := range g {
		g[i] = math.Abs(d.Sample(rng) - d.Sample(rng))
	}
	sort.Float64s(g)
	ix := int(math.Ceil(beta*pairs)) - 1
	if ix < 0 {
		ix = 0
	}
	return g[ix]
}

// CentralMomentOf estimates E[(X-EX)^k] by Monte-Carlo with n draws from
// rng — for families whose analytic moments are awkward, and for checking
// the analytic ones.
func CentralMomentOf(d Distribution, rng *xrand.RNG, k, n int) float64 {
	xs := SampleN(d, rng, n)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	m := 0.0
	for _, x := range xs {
		m += math.Pow(x-mean, float64(k))
	}
	return m / float64(n)
}

// centralMomentNumeric integrates ∫ (Q(u)-µ)^k du over u in (0,1) by the
// midpoint rule, clipping the extreme tails; used as the generic fallback
// for k > 2 where no closed form is wired up. Heavy-tailed families with
// divergent k-th moments return large finite values rather than +Inf —
// acceptable for a fallback no experiment relies on.
func centralMomentNumeric(d Distribution, k int) float64 {
	switch k {
	case 0:
		return 1
	case 1:
		return 0
	case 2:
		return d.Var()
	}
	mu := d.Mean()
	const cells = 200000
	s := 0.0
	for i := 0; i < cells; i++ {
		u := (float64(i) + 0.5) / cells
		s += math.Pow(d.Quantile(u)-mu, float64(k))
	}
	return s / cells
}

// invNormCDF returns the standard normal quantile Φ^{-1}(p) by Acklam's
// rational approximation refined with one Halley step against math.Erfc,
// giving ~1e-15 relative accuracy over (0, 1).
func invNormCDF(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: normal quantile with p %v outside (0,1)", p))
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	dd := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// regIncBeta returns the regularized incomplete beta function I_x(a, b) by
// the standard continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz continued fraction.
	const tiny = 1e-300
	c, dn := 1.0, 0.0
	f := 1.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			num = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		dn = 1 + num*dn
		if math.Abs(dn) < tiny {
			dn = tiny
		}
		dn = 1 / dn
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * dn
		if math.Abs(1-c*dn) < 1e-15 {
			break
		}
	}
	return front * (f - 1) / a
}

// studentTCDF returns P(T <= t) for Student-t with nu degrees of freedom.
func studentTCDF(t, nu float64) float64 {
	x := nu / (nu + t*t)
	tail := 0.5 * regIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// studentTQuantile inverts studentTCDF by bisection on a bracket grown
// geometrically from the Cauchy/normal envelopes.
func studentTQuantile(p, nu float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dist: t quantile with p %v outside (0,1)", p))
	}
	if p == 0.5 {
		return 0
	}
	lo, hi := -1.0, 1.0
	for studentTCDF(lo, nu) > p {
		lo *= 2
	}
	for studentTCDF(hi, nu) < p {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-14*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if studentTCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// doubleFactorial returns k!! for small non-negative k.
func doubleFactorial(k int) float64 {
	f := 1.0
	for ; k > 1; k -= 2 {
		f *= float64(k)
	}
	return f
}
