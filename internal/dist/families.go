package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// ---------- Normal ----------

type normalDist struct{ mu, sigma float64 }

// NewNormal returns N(mu, sigma²). It panics unless sigma > 0.
func NewNormal(mu, sigma float64) Distribution {
	if !(sigma > 0) {
		panic(fmt.Sprintf("dist: Normal with sigma %v <= 0", sigma))
	}
	return normalDist{mu, sigma}
}

func (d normalDist) Name() string  { return fmt.Sprintf("Normal(%g,%g)", d.mu, d.sigma) }
func (d normalDist) Mean() float64 { return d.mu }
func (d normalDist) Var() float64  { return d.sigma * d.sigma }
func (d normalDist) Quantile(p float64) float64 {
	return d.mu + d.sigma*invNormCDF(p)
}
func (d normalDist) Sample(rng *xrand.RNG) float64 { return d.mu + d.sigma*rng.Gaussian() }
func (d normalDist) CentralMoment(k int) float64 {
	if k%2 == 1 {
		return 0
	}
	// E[(X-µ)^k] = σ^k (k-1)!! for even k.
	return math.Pow(d.sigma, float64(k)) * doubleFactorial(k-1)
}

// ---------- Laplace ----------

type laplaceDist struct{ loc, scale float64 }

// NewLaplace returns Laplace(loc, scale). It panics unless scale > 0.
func NewLaplace(loc, scale float64) Distribution {
	if !(scale > 0) {
		panic(fmt.Sprintf("dist: Laplace with scale %v <= 0", scale))
	}
	return laplaceDist{loc, scale}
}

func (d laplaceDist) Name() string  { return fmt.Sprintf("Laplace(%g,%g)", d.loc, d.scale) }
func (d laplaceDist) Mean() float64 { return d.loc }
func (d laplaceDist) Var() float64  { return 2 * d.scale * d.scale }
func (d laplaceDist) Quantile(p float64) float64 {
	if p < 0.5 {
		return d.loc + d.scale*math.Log(2*p)
	}
	return d.loc - d.scale*math.Log(2*(1-p))
}
func (d laplaceDist) Sample(rng *xrand.RNG) float64 { return d.loc + rng.Laplace(d.scale) }
func (d laplaceDist) CentralMoment(k int) float64 {
	if k%2 == 1 {
		return 0
	}
	// E[(X-µ)^k] = k! · scale^k for even k.
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f * math.Pow(d.scale, float64(k))
}

// ---------- Uniform ----------

type uniformDist struct{ a, b float64 }

// NewUniform returns Uniform(a, b). It panics unless a < b.
func NewUniform(a, b float64) Distribution {
	if !(a < b) {
		panic(fmt.Sprintf("dist: Uniform with a %v >= b %v", a, b))
	}
	return uniformDist{a, b}
}

func (d uniformDist) Name() string  { return fmt.Sprintf("Uniform(%g,%g)", d.a, d.b) }
func (d uniformDist) Mean() float64 { return (d.a + d.b) / 2 }
func (d uniformDist) Var() float64  { w := d.b - d.a; return w * w / 12 }
func (d uniformDist) Quantile(p float64) float64 {
	return d.a + p*(d.b-d.a)
}
func (d uniformDist) Sample(rng *xrand.RNG) float64 { return d.a + rng.Float64()*(d.b-d.a) }
func (d uniformDist) CentralMoment(k int) float64 {
	if k%2 == 1 {
		return 0
	}
	h := (d.b - d.a) / 2
	return math.Pow(h, float64(k)) / float64(k+1)
}

// ---------- Exponential ----------

type exponentialDist struct{ rate float64 }

// NewExponential returns Exponential(rate) (mean 1/rate). It panics unless
// rate > 0.
func NewExponential(rate float64) Distribution {
	if !(rate > 0) {
		panic(fmt.Sprintf("dist: Exponential with rate %v <= 0", rate))
	}
	return exponentialDist{rate}
}

func (d exponentialDist) Name() string  { return fmt.Sprintf("Exp(%g)", d.rate) }
func (d exponentialDist) Mean() float64 { return 1 / d.rate }
func (d exponentialDist) Var() float64  { return 1 / (d.rate * d.rate) }
func (d exponentialDist) Quantile(p float64) float64 {
	return -math.Log(1-p) / d.rate
}
func (d exponentialDist) Sample(rng *xrand.RNG) float64 { return rng.Exponential() / d.rate }
func (d exponentialDist) CentralMoment(k int) float64   { return centralMomentNumeric(d, k) }

// ---------- LogNormal ----------

type logNormalDist struct{ mu, sigma float64 }

// NewLogNormal returns LogNormal(mu, sigma) — exp of N(mu, sigma²). It
// panics unless sigma > 0.
func NewLogNormal(mu, sigma float64) Distribution {
	if !(sigma > 0) {
		panic(fmt.Sprintf("dist: LogNormal with sigma %v <= 0", sigma))
	}
	return logNormalDist{mu, sigma}
}

func (d logNormalDist) Name() string  { return fmt.Sprintf("LogNormal(%g,%g)", d.mu, d.sigma) }
func (d logNormalDist) Mean() float64 { return math.Exp(d.mu + d.sigma*d.sigma/2) }
func (d logNormalDist) Var() float64 {
	s2 := d.sigma * d.sigma
	return math.Expm1(s2) * math.Exp(2*d.mu+s2)
}
func (d logNormalDist) Quantile(p float64) float64 {
	return math.Exp(d.mu + d.sigma*invNormCDF(p))
}
func (d logNormalDist) Sample(rng *xrand.RNG) float64 {
	return math.Exp(d.mu + d.sigma*rng.Gaussian())
}
func (d logNormalDist) CentralMoment(k int) float64 { return centralMomentNumeric(d, k) }

// ---------- Pareto ----------

type paretoDist struct{ xm, alpha float64 }

// NewPareto returns Pareto(xm, alpha) with support [xm, ∞). It panics
// unless xm > 0 and alpha > 0.
func NewPareto(xm, alpha float64) Distribution {
	if !(xm > 0) || !(alpha > 0) {
		panic(fmt.Sprintf("dist: Pareto requires xm > 0 and alpha > 0, got (%v,%v)", xm, alpha))
	}
	return paretoDist{xm, alpha}
}

func (d paretoDist) Name() string { return fmt.Sprintf("Pareto(%g,%g)", d.xm, d.alpha) }
func (d paretoDist) Mean() float64 {
	if d.alpha <= 1 {
		return math.Inf(1)
	}
	return d.alpha * d.xm / (d.alpha - 1)
}
func (d paretoDist) Var() float64 {
	if d.alpha <= 2 {
		return math.Inf(1)
	}
	a := d.alpha
	return d.xm * d.xm * a / ((a - 1) * (a - 1) * (a - 2))
}
func (d paretoDist) Quantile(p float64) float64 {
	return d.xm * math.Pow(1-p, -1/d.alpha)
}
func (d paretoDist) Sample(rng *xrand.RNG) float64 { return rng.Pareto(d.xm, d.alpha) }
func (d paretoDist) CentralMoment(k int) float64   { return centralMomentNumeric(d, k) }

// ---------- Student-t ----------

type studentTDist struct {
	nu, loc, scale float64
}

// NewStudentT returns the standard Student-t with nu degrees of freedom.
// It panics unless nu > 0.
func NewStudentT(nu float64) Distribution { return NewStudentTLocScale(nu, 0, 1) }

// NewStudentTLocScale returns loc + scale·T(nu). It panics unless nu > 0
// and scale > 0.
func NewStudentTLocScale(nu, loc, scale float64) Distribution {
	if !(nu > 0) || !(scale > 0) {
		panic(fmt.Sprintf("dist: StudentT requires nu > 0 and scale > 0, got (%v,%v)", nu, scale))
	}
	return studentTDist{nu, loc, scale}
}

func (d studentTDist) Name() string {
	if d.loc == 0 && d.scale == 1 {
		return fmt.Sprintf("StudentT(%g)", d.nu)
	}
	return fmt.Sprintf("StudentT(%g,%g,%g)", d.nu, d.loc, d.scale)
}
func (d studentTDist) Mean() float64 {
	if d.nu <= 1 {
		return math.NaN()
	}
	return d.loc
}
func (d studentTDist) Var() float64 {
	if d.nu <= 2 {
		return math.Inf(1)
	}
	return d.scale * d.scale * d.nu / (d.nu - 2)
}
func (d studentTDist) Quantile(p float64) float64 {
	return d.loc + d.scale*studentTQuantile(p, d.nu)
}
func (d studentTDist) Sample(rng *xrand.RNG) float64 {
	return d.loc + d.scale*rng.StudentT(d.nu)
}
func (d studentTDist) CentralMoment(k int) float64 {
	if k%2 == 1 && d.nu > float64(k) {
		return 0
	}
	if k == 2 {
		return d.Var()
	}
	return centralMomentNumeric(d, k)
}

// ---------- Cauchy ----------

type cauchyDist struct{ loc, scale float64 }

// NewCauchy returns Cauchy(loc, scale): no mean, no variance, IQR 2·scale.
// It panics unless scale > 0.
func NewCauchy(loc, scale float64) Distribution {
	if !(scale > 0) {
		panic(fmt.Sprintf("dist: Cauchy with scale %v <= 0", scale))
	}
	return cauchyDist{loc, scale}
}

func (d cauchyDist) Name() string  { return fmt.Sprintf("Cauchy(%g,%g)", d.loc, d.scale) }
func (d cauchyDist) Mean() float64 { return math.NaN() }
func (d cauchyDist) Var() float64  { return math.Inf(1) }
func (d cauchyDist) Quantile(p float64) float64 {
	return d.loc + d.scale*math.Tan(math.Pi*(p-0.5))
}
func (d cauchyDist) Sample(rng *xrand.RNG) float64 {
	return d.Quantile(rng.Float64Open())
}
func (d cauchyDist) CentralMoment(k int) float64 {
	if k == 0 {
		return 1
	}
	return math.NaN()
}

// ---------- Weibull ----------

type weibullDist struct{ lambda, k float64 }

// NewWeibull returns Weibull(lambda, k) with scale lambda and shape k. It
// panics unless both are positive.
func NewWeibull(lambda, k float64) Distribution {
	if !(lambda > 0) || !(k > 0) {
		panic(fmt.Sprintf("dist: Weibull requires lambda > 0 and k > 0, got (%v,%v)", lambda, k))
	}
	return weibullDist{lambda, k}
}

func (d weibullDist) Name() string  { return fmt.Sprintf("Weibull(%g,%g)", d.lambda, d.k) }
func (d weibullDist) Mean() float64 { return d.lambda * math.Gamma(1+1/d.k) }
func (d weibullDist) Var() float64 {
	g1 := math.Gamma(1 + 1/d.k)
	return d.lambda * d.lambda * (math.Gamma(1+2/d.k) - g1*g1)
}
func (d weibullDist) Quantile(p float64) float64 {
	return d.lambda * math.Pow(-math.Log(1-p), 1/d.k)
}
func (d weibullDist) Sample(rng *xrand.RNG) float64 {
	return d.lambda * math.Pow(rng.Exponential(), 1/d.k)
}
func (d weibullDist) CentralMoment(k int) float64 { return centralMomentNumeric(d, k) }

// ---------- Gumbel ----------

type gumbelDist struct{ mu, beta float64 }

// NewGumbel returns Gumbel(mu, beta) (location, scale). It panics unless
// beta > 0.
func NewGumbel(mu, beta float64) Distribution {
	if !(beta > 0) {
		panic(fmt.Sprintf("dist: Gumbel with beta %v <= 0", beta))
	}
	return gumbelDist{mu, beta}
}

const eulerGamma = 0.5772156649015328606

func (d gumbelDist) Name() string  { return fmt.Sprintf("Gumbel(%g,%g)", d.mu, d.beta) }
func (d gumbelDist) Mean() float64 { return d.mu + d.beta*eulerGamma }
func (d gumbelDist) Var() float64  { return math.Pi * math.Pi * d.beta * d.beta / 6 }
func (d gumbelDist) Quantile(p float64) float64 {
	return d.mu - d.beta*math.Log(-math.Log(p))
}
func (d gumbelDist) Sample(rng *xrand.RNG) float64 { return d.mu + d.beta*rng.Gumbel() }
func (d gumbelDist) CentralMoment(k int) float64   { return centralMomentNumeric(d, k) }

// ---------- Triangular ----------

type triangularDist struct{ a, b float64 }

// NewTriangular returns the symmetric triangular distribution on [a, b]
// (mode at the midpoint). It panics unless a < b.
func NewTriangular(a, b float64) Distribution {
	if !(a < b) {
		panic(fmt.Sprintf("dist: Triangular with a %v >= b %v", a, b))
	}
	return triangularDist{a, b}
}

func (d triangularDist) Name() string  { return fmt.Sprintf("Triangular(%g,%g)", d.a, d.b) }
func (d triangularDist) Mean() float64 { return (d.a + d.b) / 2 }
func (d triangularDist) Var() float64  { w := d.b - d.a; return w * w / 24 }
func (d triangularDist) Quantile(p float64) float64 {
	w := d.b - d.a
	if p < 0.5 {
		return d.a + w*math.Sqrt(p/2)
	}
	return d.b - w*math.Sqrt((1-p)/2)
}
func (d triangularDist) Sample(rng *xrand.RNG) float64 {
	// Sum of two uniforms over half-width halves is triangular on [a, b].
	w := (d.b - d.a) / 2
	return d.a + w*(rng.Float64()+rng.Float64())
}
func (d triangularDist) CentralMoment(k int) float64 { return centralMomentNumeric(d, k) }

// ---------- Affine transform ----------

type affineDist struct {
	base         Distribution
	shift, scale float64
}

// NewAffine returns shift + scale·X for X from base — used to violate the
// paper's Table 1 assumption regimes in controlled ways (e.g. a shifted
// Pareto breaks A3 symmetry/centering assumptions of baselines). scale
// must be non-zero.
func NewAffine(base Distribution, shift, scale float64) Distribution {
	if scale == 0 {
		panic("dist: Affine with zero scale")
	}
	return affineDist{base, shift, scale}
}

func (d affineDist) Name() string {
	return fmt.Sprintf("%g+%g*%s", d.shift, d.scale, d.base.Name())
}
func (d affineDist) Mean() float64 { return d.shift + d.scale*d.base.Mean() }
func (d affineDist) Var() float64  { return d.scale * d.scale * d.base.Var() }
func (d affineDist) Quantile(p float64) float64 {
	if d.scale < 0 {
		p = 1 - p
	}
	return d.shift + d.scale*d.base.Quantile(p)
}
func (d affineDist) Sample(rng *xrand.RNG) float64 {
	return d.shift + d.scale*d.base.Sample(rng)
}
func (d affineDist) CentralMoment(k int) float64 {
	return math.Pow(d.scale, float64(k)) * d.base.CentralMoment(k)
}

// ---------- Spike-and-slab mixture ----------

type spikeSlabDist struct {
	spike, slab, pSlab float64
}

// SpikeAndSlab returns the mixture that draws Uniform(-spike/2, spike/2)
// with probability 1-pSlab and Uniform(-slab/2, slab/2) with probability
// pSlab. With a tiny spike width most pair distances are tiny, so the
// pairwise functional φ(β) collapses — the adversarial input for
// Algorithm 7's bucket search that the E7/E8 experiments probe.
func SpikeAndSlab(spike, slab, pSlab float64) Distribution {
	if !(spike > 0) || !(slab > 0) || !(pSlab > 0 && pSlab < 1) {
		panic(fmt.Sprintf("dist: SpikeAndSlab requires positive widths and pSlab in (0,1), got (%v,%v,%v)",
			spike, slab, pSlab))
	}
	return spikeSlabDist{spike, slab, pSlab}
}

func (d spikeSlabDist) Name() string {
	return fmt.Sprintf("SpikeSlab(%g,%g,%g)", d.spike, d.slab, d.pSlab)
}
func (d spikeSlabDist) Mean() float64 { return 0 }
func (d spikeSlabDist) Var() float64 {
	return ((1-d.pSlab)*d.spike*d.spike + d.pSlab*d.slab*d.slab) / 12
}

// cdf of the mixture of two centered uniforms.
func (d spikeSlabDist) cdf(x float64) float64 {
	uni := func(w float64) float64 {
		switch {
		case x <= -w/2:
			return 0
		case x >= w/2:
			return 1
		default:
			return x/w + 0.5
		}
	}
	return (1-d.pSlab)*uni(d.spike) + d.pSlab*uni(d.slab)
}

func (d spikeSlabDist) Quantile(p float64) float64 {
	// The CDF is piecewise linear with breakpoints at ±spike/2 and ±slab/2;
	// bisection on [-slab/2, slab/2] converges fast and avoids case analysis.
	lo, hi := -d.slab/2, d.slab/2
	if d.spike > d.slab {
		lo, hi = -d.spike/2, d.spike/2
	}
	for i := 0; i < 200 && hi-lo > 1e-18*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if d.cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func (d spikeSlabDist) Sample(rng *xrand.RNG) float64 {
	w := d.spike
	if rng.Float64() < d.pSlab {
		w = d.slab
	}
	return (rng.Float64() - 0.5) * w
}

func (d spikeSlabDist) CentralMoment(k int) float64 {
	if k%2 == 1 {
		return 0
	}
	cm := func(w float64) float64 { return math.Pow(w/2, float64(k)) / float64(k+1) }
	return (1-d.pSlab)*cm(d.spike) + d.pSlab*cm(d.slab)
}
