package harness

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
)

func init() {
	register(Experiment{
		ID:       "E5",
		Title:    "Gaussian mean: universal estimator vs A1/A2 baselines",
		PaperRef: "Theorem 4.6 vs KV18, KLSU19/BDKU20, BS19 (§1.1.2)",
		Expect: "all methods converge at roughly σ/√n + σ·polylog/(εn); ours needs " +
			"no (R, σmin, σmax) and matches or beats the baselines, decisively so " +
			"when their σmax is loose (last column).",
		Run: runE5,
	})
	register(Experiment{
		ID:       "E6",
		Title:    "Heavy-tailed mean: universal estimator vs KSU20 with (mis)specified µ̄k",
		PaperRef: "Theorem 4.9 vs KSU20 (§1.1.2)",
		Expect: "with the exact moment bound KSU20 is comparable; with a 10× or " +
			"100× over-estimate (the realistic case — µ̄k is not privately learnable) " +
			"its error inflates while ours is unchanged.",
		Run: runE6,
	})
	register(Experiment{
		ID:       "E7",
		Title:    "IQR lower bound sandwich: ¼·φ(1/16) ≤ IQR̲ ≤ IQR",
		PaperRef: "Theorem 4.3 / Algorithm 7",
		Expect: "the sandwich holds across light-tailed, heavy-tailed, shifted, and " +
			"ill-behaved (spike-and-slab) distributions; for the spike the bound " +
			"correctly tracks the tiny φ rather than the large IQR.",
		Run: runE7,
	})
	register(Experiment{
		ID:       "E8",
		Title:    "Gaussian variance across 6 orders of magnitude of σ",
		PaperRef: "Theorem 5.3 vs KV18 (10) and KLSU19/BDKU20 (11) (§1.1.3)",
		Expect: "ours adapts to any σ with no [σmin, σmax]; baselines given a wide " +
			"range pay for it (KV18's log σmax/σmin localization, CoinPress's floor), " +
			"while ours has only a log log σ dependence.",
		Run: runE8,
	})
	register(Experiment{
		ID:       "E9",
		Title:    "Heavy-tailed variance (first private estimator)",
		PaperRef: "Theorem 5.5 (§1.1.3: no prior DP baseline exists)",
		Expect: "relative error decreases with n and stays within a small factor of " +
			"the non-private sampling error; no prior (ε or (ε,δ)) estimator handles " +
			"these distributions, so the only baseline is non-private.",
		Run: runE9,
	})
}

// medAbsErrs runs f trials times and reports the median absolute error
// against want. Failures count as +Inf.
func medAbsErrs(trials int, want float64, f func() (float64, error)) float64 {
	errs := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		v, err := f()
		if err != nil {
			errs = append(errs, math.Inf(1))
			continue
		}
		errs = append(errs, math.Abs(v-want))
	}
	return median(errs)
}

func runE5(cfg Config) []Table {
	rng := cfg.rng("E5")
	const mu, sigma = 1000.0, 2.0
	const r = 1e6 // A1 bound handed to baselines (generous, honest)
	d := dist.NewNormal(mu, sigma)

	ns := []int{1 << 10, 1 << 13, 1 << 16}
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 13}
	}
	var tables []Table
	for _, eps := range []float64{0.1, 1.0} {
		tb := Table{
			Title: "E5: Gaussian mean median |err| (µ=1000, σ=2, eps=" + fm(eps) + ")",
			Columns: []string{"n", "non-private", "ours (no assumptions)",
				"KV18 σmax=4", "CoinPress σmax=4", "BS19", "KV18 σmax=200 (loose A2)"},
		}
		for _, n := range ns {
			row := []string{fi(n)}
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.NonPrivateMean(dist.SampleN(d, rng, n)), nil
			})))
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return core.EstimateMean(rng, dist.SampleN(d, rng, n), eps, 0.1)
			})))
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KV18Mean(rng, dist.SampleN(d, rng, n), r, 0.5, 4, eps)
			})))
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.CoinPressMean(rng, dist.SampleN(d, rng, n), r, 4, eps, 0)
			})))
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.BS19TrimmedMean(rng, dist.SampleN(d, rng, n), r, 0.5, eps)
			})))
			row = append(row, fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KV18Mean(rng, dist.SampleN(d, rng, n), r, 0.5, 200, eps)
			})))
			tb.Rows = append(tb.Rows, row)
		}
		tables = append(tables, tb)
	}
	return tables
}

func runE6(cfg Config) []Table {
	rng := cfg.rng("E6")
	n := 50000
	if cfg.Quick {
		n = 10000
	}
	const eps = 0.5
	var tables []Table
	for _, d := range []dist.Distribution{
		dist.NewPareto(1, 3),
		dist.NewStudentTLocScale(3, 5, 1),
	} {
		mu := d.Mean()
		muK := dist.CentralMomentOf(d, rng, 2, 400000)
		tb := Table{
			Title: "E6: heavy-tailed mean median |err|, " + d.Name() +
				" (n=" + fi(n) + ", eps=" + fm(eps) + ", k=2)",
			Columns: []string{"method", "med |err|", "rel to ours"},
		}
		ours := medAbsErrs(cfg.trials(), mu, func() (float64, error) {
			return core.EstimateMean(rng, dist.SampleN(d, rng, n), eps, 0.1)
		})
		rows := [][2]interface{}{
			{"non-private", medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.NonPrivateMean(dist.SampleN(d, rng, n)), nil
			})},
			{"ours (no assumptions)", ours},
			{"KSU20 µ̄k exact", medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KSU20Mean(rng, dist.SampleN(d, rng, n), 100, 2, muK, eps)
			})},
			{"KSU20 µ̄k ×10", medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KSU20Mean(rng, dist.SampleN(d, rng, n), 100, 2, 10*muK, eps)
			})},
			{"KSU20 µ̄k ×100", medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KSU20Mean(rng, dist.SampleN(d, rng, n), 100, 2, 100*muK, eps)
			})},
		}
		for _, r := range rows {
			v := r[1].(float64)
			tb.Rows = append(tb.Rows, []string{r[0].(string), fm(v), fm(v / ours)})
		}
		tables = append(tables, tb)
	}
	return tables
}

func runE7(cfg Config) []Table {
	rng := cfg.rng("E7")
	n := 4000
	if cfg.Quick {
		n = 1000
	}
	tb := Table{
		Title:   "E7: Algorithm 7 sandwich ¼·φ(1/16) ≤ IQR̲ ≤ IQR (n=" + fi(n) + ", eps=1)",
		Columns: []string{"distribution", "¼·φ(1/16)", "med IQR̲", "IQR", "sandwich ok"},
	}
	families := []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewNormal(1e6, 50),
		dist.NewLaplace(0, 3),
		dist.NewUniform(-5, 5),
		dist.NewExponential(2),
		dist.NewPareto(1, 3),
		dist.NewStudentT(4),
		dist.NewCauchy(0, 1),
		dist.SpikeAndSlab(1e-4, 10, 0.3),
	}
	for _, d := range families {
		phi4 := dist.Phi(d, 1.0/16) / 4
		iqr := dist.IQROf(d)
		data := dist.SampleN(d, rng, n)
		vals := make([]float64, 0, cfg.trials())
		ok := 0
		for trial := 0; trial < cfg.trials(); trial++ {
			lb, err := core.IQRLowerBound(rng, data, 1.0, 0.1)
			if err != nil {
				continue
			}
			vals = append(vals, lb)
			if lb >= phi4/2 && lb <= iqr*2 { // factor-2 grace for sampling at finite n
				ok++
			}
		}
		tb.Rows = append(tb.Rows, []string{
			d.Name(), fm(phi4), fm(median(vals)), fm(iqr),
			fi(ok) + "/" + fi(cfg.trials()),
		})
	}
	return []Table{tb}
}

func runE8(cfg Config) []Table {
	rng := cfg.rng("E8")
	n := 30000
	if cfg.Quick {
		n = 8000
	}
	const eps = 1.0
	tb := Table{
		Title: "E8: Gaussian variance median |err|/σ² (n=" + fi(n) + ", eps=1; " +
			"baselines given σ∈[1e-4, 1e4])",
		Columns: []string{"σ", "non-private", "ours (no assumptions)", "KV18-var", "CoinPress-var"},
	}
	for _, sigma := range []float64{1e-3, 1, 1e3} {
		d := dist.NewNormal(0, sigma)
		s2 := sigma * sigma
		rel := func(err float64) string { return fm(err / s2) }
		tb.Rows = append(tb.Rows, []string{
			fm(sigma),
			rel(medAbsErrs(cfg.trials(), s2, func() (float64, error) {
				return baseline.NonPrivateVariance(dist.SampleN(d, rng, n)), nil
			})),
			rel(medAbsErrs(cfg.trials(), s2, func() (float64, error) {
				return core.EstimateVariance(rng, dist.SampleN(d, rng, n), eps, 0.1)
			})),
			rel(medAbsErrs(cfg.trials(), s2, func() (float64, error) {
				return baseline.KV18Variance(rng, dist.SampleN(d, rng, n), 1e-4, 1e4, eps)
			})),
			rel(medAbsErrs(cfg.trials(), s2, func() (float64, error) {
				return baseline.CoinPressVariance(rng, dist.SampleN(d, rng, n), 1e-4, 1e4, eps, 0)
			})),
		})
	}
	return []Table{tb}
}

func runE9(cfg Config) []Table {
	rng := cfg.rng("E9")
	ns := []int{10000, 100000}
	if cfg.Quick {
		ns = []int{5000, 20000}
	}
	const eps = 1.0
	var tables []Table
	for _, d := range []dist.Distribution{
		dist.NewPareto(1, 5),
		dist.NewStudentT(5),
	} {
		trueVar := d.Var()
		tb := Table{
			Title:   "E9: heavy-tailed variance median |err|/σ², " + d.Name() + " (eps=1)",
			Columns: []string{"n", "non-private", "ours"},
			Notes:   []string{"no prior private variance estimator exists for this family (Theorem 5.5 is the first)"},
		}
		for _, n := range ns {
			tb.Rows = append(tb.Rows, []string{
				fi(n),
				fm(medAbsErrs(cfg.trials(), trueVar, func() (float64, error) {
					return baseline.NonPrivateVariance(dist.SampleN(d, rng, n)), nil
				}) / trueVar),
				fm(medAbsErrs(cfg.trials(), trueVar, func() (float64, error) {
					return core.EstimateVariance(rng, dist.SampleN(d, rng, n), eps, 0.1)
				}) / trueVar),
			})
		}
		tables = append(tables, tb)
	}
	return tables
}
