package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registered %d experiments, want 21", len(all))
	}
	for i, e := range all {
		if want := i + 1; idOrder(e.ID) != want {
			t.Errorf("position %d holds %s", i, e.ID)
		}
		if e.Title == "" || e.PaperRef == "" || e.Expect == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Error("E5 missing")
	}
	if _, ok := ByID("e5"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	out := tb.Render()
	for _, want := range []string{"## demo", "a    bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "m", Columns: []string{"x"}, Rows: [][]string{{"1"}}}
	out := tb.Markdown()
	if !strings.Contains(out, "| x |") || !strings.Contains(out, "|---|") {
		t.Errorf("Markdown malformed:\n%s", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{`va"l`, "x,y"}},
	}
	out := tb.CSV()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"x,y"`) {
		t.Errorf("CSV quoting failed:\n%s", out)
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("median odd")
	}
	if !math.IsNaN(median(nil)) {
		t.Error("median empty")
	}
}

func TestFm(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		1.5:        "1.5",
		0.001:      "0.001",
		1234567:    "1.23e+06",
		math.NaN(): "nan",
	}
	for v, want := range cases {
		if got := fm(v); got != want {
			t.Errorf("fm(%v) = %q, want %q", v, got, want)
		}
	}
	if fm(math.Inf(1)) != "inf" {
		t.Error("fm inf")
	}
}

func TestConfigDeterministicRNG(t *testing.T) {
	c := Config{Seed: 7}
	a := c.rng("E1").Uint64()
	b := c.rng("E1").Uint64()
	if a != b {
		t.Error("same experiment should get the same stream")
	}
	if c.rng("E2").Uint64() == a {
		t.Error("different experiments should get different streams")
	}
}

// TestAllExperimentsQuick runs every registered experiment in quick mode and
// validates the table structure — an integration test over the whole stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	cfg := Config{Seed: 12345, Quick: true, Trials: 3}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" {
					t.Error("table without title")
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Errorf("table %q: row width %d != %d columns",
							tb.Title, len(row), len(tb.Columns))
					}
				}
				// Rendering must not panic and must mention the title.
				if !strings.Contains(tb.Render(), tb.Title) {
					t.Error("render lost the title")
				}
				_ = tb.Markdown()
				_ = tb.CSV()
			}
		})
	}
}

func TestLsSlope(t *testing.T) {
	// Exact line y = 3 + 2x.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	got, ok := lsSlope(xs, ys)
	if !ok || math.Abs(got-2) > 1e-12 {
		t.Errorf("lsSlope = %v (ok=%v), want 2", got, ok)
	}
	if _, ok := lsSlope([]float64{1}, []float64{2}); ok {
		t.Error("single point should not fit")
	}
	if _, ok := lsSlope([]float64{5, 5}, []float64{1, 2}); ok {
		t.Error("degenerate x should not fit")
	}
	if _, ok := lsSlope([]float64{1, 2}, []float64{1}); ok {
		t.Error("mismatched lengths should not fit")
	}
}

func TestRequiredNTwoConsecutivePasses(t *testing.T) {
	rng := Config{Seed: 1}.rng("test")
	d := dist.NewUniform(0, 1)
	// Error profile: a lucky dip at exactly n in [100, 125), otherwise
	// error 1/n. requiredN must NOT stop inside the dip (the next grid
	// point fails again), and must stop once 1/n <= alpha holds twice.
	est := func(r *xrand.RNG, data []float64) (float64, error) {
		n := len(data)
		if n >= 100 && n < 125 {
			return 0, nil // lucky dip: |0 - target| = 0 <= alpha
		}
		return 1 / float64(n), nil
	}
	alpha := 1.0 / 2000
	got := requiredN(rng, d, 0, est, alpha, 3, 64, 100000)
	if got < 2000 {
		t.Errorf("requiredN stopped at %d, inside the lucky dip or too early", got)
	}
	// Unreachable alpha returns 0.
	got = requiredN(rng, d, 0, func(r *xrand.RNG, data []float64) (float64, error) {
		return 1, nil
	}, 0.5, 2, 64, 1000)
	if got != 0 {
		t.Errorf("unreachable alpha: requiredN = %d, want 0", got)
	}
}
