package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:       "E20",
		Title:    "Empirical sample complexity n(α) and its regime transition",
		PaperRef: "Theorem 4.6 (n = ˜O(1/ε·log|µ|/σ + σ²/α² + σ/(εα)))",
		Expect: "log n(α) vs log(1/α) has slope ~1 where the privacy term σ/(εα) " +
			"dominates (large α relative to ε) and bends to slope ~2 where the " +
			"sampling term σ²/α² takes over (small α) — the bound's two regimes " +
			"are visible in the measured complexity.",
		Run: runE20,
	})
	register(Experiment{
		ID:    "E21",
		Title: "Privacy is free above ε ≈ 1/√n",
		PaperRef: "§1 (\"the high-privacy regime (e.g., ε < 1/√n) is more interesting; " +
			"otherwise ... privacy is free\")",
		Expect: "at fixed n the ratio (private error)/(non-private sampling error) " +
			"is ~1 for ε well above 1/√n and grows like 1/ε below it; the knee " +
			"sits near ε = 1/√n.",
		Run: runE21,
	})
}

// requiredN finds the smallest n (on a 5/4-geometric grid) at which the
// estimator's median absolute error over the trials drops to alpha — and
// STAYS there for the next grid point too. The second condition matters:
// the dyadic range search makes the error non-monotonic in n (the clip
// width jumps by powers of two as γ(εn) grows), so a single noisy
// median can dip below alpha at an n that does not reliably achieve it.
// Returns 0 if nMax is reached first.
func requiredN(rng *xrand.RNG, d dist.Distribution, target float64, est func(*xrand.RNG, []float64) (float64, error),
	alpha float64, trials, nMin, nMax int) int {
	medianAt := func(n int) float64 {
		errs := make([]float64, 0, trials)
		for t := 0; t < trials; t++ {
			data := dist.SampleN(d, rng, n)
			v, err := est(rng, data)
			if err != nil {
				errs = append(errs, math.Inf(1))
				continue
			}
			errs = append(errs, math.Abs(v-target))
		}
		return median(errs)
	}
	candidate := 0
	for n := nMin; n <= nMax; n = n*5/4 + 1 {
		if medianAt(n) <= alpha {
			if candidate > 0 {
				return candidate // two consecutive passes
			}
			candidate = n
		} else {
			candidate = 0
		}
	}
	return 0
}

func runE20(cfg Config) []Table {
	rng := cfg.rng("E20")
	trials := cfg.trials()
	// Small eps puts the crossover between the privacy regime (slope 1)
	// and the sampling regime (slope 2) inside the alpha sweep: the terms
	// sigma^2/alpha^2 and sigma/(eps*alpha) cross at alpha ~ eps.
	const eps = 0.05
	alphas := []float64{0.4, 0.2, 0.1, 0.05, 0.025}
	nMax := 400000
	if cfg.Quick {
		alphas = []float64{0.4, 0.2, 0.1}
		nMax = 100000
	}
	d := dist.NewNormal(0, 1)

	tb := Table{
		Title:   "E20: measured n(α) for the Gaussian mean, eps=0.05 (σ=1)",
		Columns: []string{"alpha", "measured n", "slope vs prev", "theory slope regime"},
		Notes: []string{
			"slope = Δlog n / Δlog(1/α) between consecutive rows; " +
				"theory: ~0 where the additive (1/ε)·log(...) requirement floors n, " +
				"1 in the privacy regime (α ≳ ε), 2 in the sampling regime (α ≲ ε); " +
				"measured slopes carry the bound's loglog factors on top",
		},
	}
	prevN, prevA := 0, 0.0
	var logA, logN []float64
	for _, a := range alphas {
		n := requiredN(rng, d, 0, func(r *xrand.RNG, data []float64) (float64, error) {
			return core.EstimateMean(r, data, eps, 1.0/3)
		}, a, trials, 64, nMax)
		slope := "-"
		if prevN > 0 && n > 0 {
			slope = fm(math.Log(float64(n)/float64(prevN)) / math.Log(prevA/a))
		}
		var regime string
		switch {
		case a >= 4*eps:
			regime = "requirement floor (≈0)"
		case a >= 2*eps:
			regime = "privacy→sampling transition"
		default:
			regime = "sampling (≈2)"
		}
		cell := fi(n)
		if n == 0 {
			cell = "> " + fi(nMax)
		}
		tb.Rows = append(tb.Rows, []string{fm(a), cell, slope, regime})
		prevN, prevA = n, a
		if n > 0 {
			logA = append(logA, math.Log(1/a))
			logN = append(logN, math.Log(float64(n)))
		}
	}
	// Per-row slopes are jumpy because the dyadic range search makes the
	// achievable error piecewise-flat in n; the least-squares exponent
	// over the whole sweep is the robust summary and must land between the
	// privacy exponent 1 and the sampling exponent 2 (plus log factors).
	if fit, ok := lsSlope(logA, logN); ok {
		tb.Notes = append(tb.Notes,
			"least-squares exponent d log n / d log(1/α) over the sweep: "+fm(fit)+
				" (theory: between 1 and 2)")
	}
	return []Table{tb}
}

func runE21(cfg Config) []Table {
	rng := cfg.rng("E21")
	trials := cfg.trials()
	n := 10000
	if cfg.Quick {
		n = 4000
	}
	d := dist.NewNormal(0, 1)
	knee := 1 / math.Sqrt(float64(n))
	epsList := []float64{64 * knee, 16 * knee, 4 * knee, knee, knee / 4, knee / 16}

	tb := Table{
		Title: "E21: private vs sampling error at n=" + fi(n) +
			" (knee predicted at eps=1/sqrt(n)=" + fm(knee) + ")",
		Columns: []string{"eps", "eps/knee", "median |err| private", "median |err| non-private", "ratio"},
	}
	for _, eps := range epsList {
		var priv, nonpriv []float64
		for t := 0; t < trials; t++ {
			data := dist.SampleN(d, rng, n)
			if v, err := core.EstimateMean(rng, data, eps, 1.0/3); err == nil {
				priv = append(priv, math.Abs(v))
			}
			nonpriv = append(nonpriv, math.Abs(stats.Mean(data)))
		}
		mp, mn := median(priv), median(nonpriv)
		tb.Rows = append(tb.Rows, []string{
			fm(eps), fm(eps / knee), fm(mp), fm(mn), fm(mp / mn),
		})
	}
	return []Table{tb}
}

// lsSlope fits y = a + b·x by least squares and returns b.
func lsSlope(xs, ys []float64) (float64, bool) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0, false
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}
