package harness

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/dist"
	"repro/internal/empirical"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Title:    "Sum estimation: universal vs DFY+22 (R2T) vs HLY21 finite-domain",
		PaperRef: "§1.1.1 — sum estimation = self-join-free aggregation under user-level DP",
		Expect: "R2T needs the domain bound N and its error carries a log N factor " +
			"(loose N hurts); the HLY21-style finite-domain route pays log N in its " +
			"optimality ratio; the universal estimator needs no N and its error " +
			"tracks γ(D)·loglog γ only.",
		Run: runE15,
	})
}

func runE15(cfg Config) []Table {
	rng := cfg.rng("E15")
	n := 20000
	if cfg.Quick {
		n = 5000
	}
	const eps = 1.0
	d := dist.NewPareto(1, 2.5) // skewed, non-negative contributions

	data := dist.SampleN(d, rng, n)
	ints := make([]int64, n)
	for i, v := range data {
		ints[i] = int64(math.Round(v * 100)) // cent-resolution integers
	}
	var trueIntSum float64
	for _, v := range ints {
		trueIntSum += float64(v)
	}

	tb := Table{
		Title:   "E15: DP SUM over skewed non-negative data, Pareto(1,2.5)×100 (n=" + fi(n) + ", eps=1)",
		Columns: []string{"method", "needs N?", "med |err| / true sum"},
		Notes:   []string{"true sum ≈ " + fm(trueIntSum) + " (integer cents)"},
	}

	medRel := func(truth float64, f func() (float64, error)) string {
		errs := make([]float64, 0, cfg.trials())
		for trial := 0; trial < cfg.trials(); trial++ {
			v, err := f()
			if err != nil {
				errs = append(errs, math.Inf(1))
				continue
			}
			errs = append(errs, math.Abs(v-truth)/truth)
		}
		return fm(median(errs))
	}

	tb.Rows = append(tb.Rows, []string{"ours (empirical.Sum)", "no",
		medRel(trueIntSum, func() (float64, error) {
			return empirical.Sum(rng, ints, eps, 0.1)
		})})
	scaled := make([]float64, n)
	for i, v := range ints {
		scaled[i] = float64(v)
	}
	for _, boundK := range []int{20, 40, 60} {
		bound := math.Pow(2, float64(boundK))
		tb.Rows = append(tb.Rows, []string{"R2T, N=" + pow2(boundK), "yes",
			medRel(trueIntSum, func() (float64, error) {
				return baseline.R2TSum(rng, scaled, bound, eps, 0.1)
			})})
	}
	for _, boundK := range []int{20, 40} {
		bound := int64(1) << boundK
		tb.Rows = append(tb.Rows, []string{"HLY21 mean × n, N=" + pow2(boundK), "yes",
			medRel(trueIntSum, func() (float64, error) {
				m, err := baseline.HLY21Mean(rng, ints, bound, eps)
				return m * float64(n), err
			})})
	}
	return []Table{tb}
}
