// Package harness runs the repository's reproduction experiments E1–E15
// (see DESIGN.md §4): each experiment regenerates one of the paper's
// analytic claims — a utility theorem's error shape or Table 1's
// assumptions matrix — as a numeric table. The harness is deterministic
// given a seed and renders tables as aligned text, Markdown, or CSV.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Config controls an experiment run.
type Config struct {
	Seed   uint64 // base RNG seed (every experiment splits its own stream)
	Trials int    // repetitions per table cell (default 20, quick 7)
	Quick  bool   // shrink data sizes for smoke runs
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 7
	}
	return 20
}

// rng derives the experiment's private random stream.
func (c Config) rng(expID string) *xrand.RNG {
	h := c.Seed
	for _, b := range []byte(expID) {
		h = h*1099511628211 + uint64(b)
	}
	return xrand.New(h)
}

// Table is one rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	ID       string // "E1" ... "E15"
	Title    string
	PaperRef string // theorem / table being reproduced
	Expect   string // the shape the paper predicts
	Run      func(cfg Config) []Table
}

var registry []Experiment

// register adds an experiment at init time, keeping the list sorted by ID.
func register(e Experiment) {
	registry = append(registry, e)
	sort.Slice(registry, func(i, j int) bool {
		return idOrder(registry[i].ID) < idOrder(registry[j].ID)
	})
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// All returns every registered experiment in ID order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// ByID finds an experiment (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render returns the table as aligned monospace text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown returns the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

// CSV returns the table in CSV form (RFC-4180 quoting for commas/quotes).
func (t Table) CSV() string {
	var sb strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRec(t.Columns)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return sb.String()
}

// ---------- shared numeric helpers ----------

// median returns the median of xs (NaN for empty input).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// fm formats a float compactly for table cells.
func fm(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 0):
		return "inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 100000:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fi formats an int for table cells.
func fi(v int) string { return fmt.Sprintf("%d", v) }

// pow2 formats 2^k labels.
func pow2(k int) string { return fmt.Sprintf("2^%d", k) }
