package harness

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dpsql"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Title:    "IQR estimation: α ∝ 1/(εn) (ours) vs α ∝ 1/(ε log n) (DL09)",
		PaperRef: "Theorem 6.2 vs DL09 (13) (§1.1.4)",
		Expect: "our error falls roughly linearly in n; DL09's is dominated by its " +
			"1/log(n) binning and barely moves across two orders of magnitude of n " +
			"(and it is only (ε,δ)-DP, with a ⊥ failure mode).",
		Run: runE10,
	})
	register(Experiment{
		ID:       "E11",
		Title:    "Table 1 as a robustness matrix: what breaks when A1/A2/A3 are violated",
		PaperRef: "Table 1",
		Expect: "baselines are accurate in-assumption but degrade by orders of " +
			"magnitude when µ leaves [-R, R] (A1), σ exceeds σmax (A2), or P is " +
			"heavy-tailed (A3); the universal estimator's column is assumption-free " +
			"and stays at the same error level throughout.",
		Run: runE11,
	})
	register(Experiment{
		ID:       "E12",
		Title:    "Ablation: the m = εn subsample for range finding is the right size",
		PaperRef: "§4.2 discussion (\"m = εn turns out to be a choice that is good enough\")",
		Expect: "on heavy tails (Pareto) m ≪ εn clips too aggressively and the " +
			"bias blows up; on symmetric light tails aggressive clipping is " +
			"harmless (the bias cancels) so small m can even win locally. m = εn " +
			"is the smallest *universally* safe choice — the paper's point is " +
			"universality, not per-family optimality.",
		Run: runE12,
	})
	register(Experiment{
		ID:       "E13",
		Title:    "Ablation: statistical-setting clipping beats the empirical-setting range",
		PaperRef: "§4.2 (why Algorithm 8 does not just call Algorithm 5)",
		Expect: "the subsampled range is never wider than the full-data range and " +
			"its amplified budget (Theorem 2.4) comes for free; on heavy tails the " +
			"full-data width inflates γ(n) vs γ(εn) by ~ε^{1/k}, though the dyadic " +
			"range search can round both to the same power of two.",
		Run: runE13,
	})
	register(Experiment{
		ID:       "E14",
		Title:    "User-level DP SUM over a relation: universal vs fixed-bound truncation",
		PaperRef: "§1.1.1 (DFY+22 connection)",
		Expect: "fixed per-user truncation at τ biases the total when τ is below the " +
			"true contribution tail and over-noises when τ is far above it; the " +
			"universal estimator needs no τ and tracks the true sum.",
		Run: runE14,
	})
}

func runE10(cfg Config) []Table {
	rng := cfg.rng("E10")
	d := dist.NewNormal(0, 1)
	trueIQR := dist.IQROf(d)
	ns := []int{1000, 10000, 100000}
	if cfg.Quick {
		ns = []int{1000, 10000}
	}
	const eps = 1.0
	tb := Table{
		Title: "E10: IQR median |err| vs n, N(0,1) (true IQR=" + fm(trueIQR) +
			", eps=1, DL09 δ=1e-6)",
		Columns: []string{"n", "non-private", "ours (ε-DP)", "DL09 ((ε,δ)-DP)", "DL09 ⊥ rate"},
	}
	for _, n := range ns {
		dlErrs := make([]float64, 0, cfg.trials())
		bottom := 0
		for trial := 0; trial < cfg.trials(); trial++ {
			v, err := baseline.DL09IQR(rng, dist.SampleN(d, rng, n), eps, 1e-6)
			if errors.Is(err, baseline.ErrUnstable) {
				bottom++
				continue
			}
			if err != nil {
				continue
			}
			dlErrs = append(dlErrs, math.Abs(v-trueIQR))
		}
		tb.Rows = append(tb.Rows, []string{
			fi(n),
			fm(medAbsErrs(cfg.trials(), trueIQR, func() (float64, error) {
				return baseline.NonPrivateIQR(dist.SampleN(d, rng, n)), nil
			})),
			fm(medAbsErrs(cfg.trials(), trueIQR, func() (float64, error) {
				return core.EstimateIQR(rng, dist.SampleN(d, rng, n), eps, 0.1)
			})),
			fm(median(dlErrs)),
			fmt.Sprintf("%d/%d", bottom, cfg.trials()),
		})
	}
	return []Table{tb}
}

func runE11(cfg Config) []Table {
	rng := cfg.rng("E11")
	n := 20000
	if cfg.Quick {
		n = 5000
	}
	const eps = 1.0
	const r, sigmaMin, sigmaMax = 1000.0, 0.5, 4.0

	// Four regimes: in-assumption, A1 violated, A2 violated, A3 violated.
	regimes := []struct {
		name string
		d    dist.Distribution
	}{
		{"in-assumption N(100,2)", dist.NewNormal(100, 2)},
		{"A1 violated N(10^5,2)", dist.NewNormal(1e5, 2)},
		{"A2 violated N(100,400)", dist.NewNormal(100, 400)},
		{"A3 violated Pareto(1,3)+100", dist.NewAffine(dist.NewPareto(1, 3), 100, 1)},
	}
	tb := Table{
		Title: "E11: mean median |err| with baselines configured for µ∈[-1000,1000], " +
			"σ∈[0.5,4] (n=" + fi(n) + ", eps=1)",
		Columns: []string{"regime", "ours (None)", "KV18 (A1,A2,A3)",
			"CoinPress (A1,A2)", "BS19 (A1,A2)"},
		Notes: []string{"the column headers carry each estimator's Table-1 assumption profile; " +
			"'ours' implements the paper's \"None\" row"},
	}
	for _, reg := range regimes {
		mu := reg.d.Mean()
		tb.Rows = append(tb.Rows, []string{
			reg.name,
			fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return core.EstimateMean(rng, dist.SampleN(reg.d, rng, n), eps, 0.1)
			})),
			fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.KV18Mean(rng, dist.SampleN(reg.d, rng, n), r, sigmaMin, sigmaMax, eps)
			})),
			fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.CoinPressMean(rng, dist.SampleN(reg.d, rng, n), r, sigmaMax, eps, 0)
			})),
			fm(medAbsErrs(cfg.trials(), mu, func() (float64, error) {
				return baseline.BS19TrimmedMean(rng, dist.SampleN(reg.d, rng, n), r, sigmaMin, eps)
			})),
		})
	}
	return []Table{tb}
}

func runE12(cfg Config) []Table {
	rng := cfg.rng("E12")
	n := 50000
	if cfg.Quick {
		n = 10000
	}
	const eps = 0.1 // subsampling only matters when eps < 1
	var tables []Table
	for _, d := range []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewPareto(1, 3),
	} {
		mu := d.Mean()
		epsN := int(eps * float64(n))
		sizes := []struct {
			label string
			m     int
		}{
			{"√(εn)", int(math.Sqrt(float64(epsN)))},
			{"εn/4", epsN / 4},
			{"εn (paper)", epsN},
			{"4·εn", 4 * epsN},
			{"n (all data)", n},
		}
		tb := Table{
			Title: "E12: subsample size ablation, " + d.Name() +
				" (n=" + fi(n) + ", eps=" + fm(eps) + ")",
			Columns: []string{"m", "med |err|", "med |R̃| width"},
		}
		for _, s := range sizes {
			errs := make([]float64, 0, cfg.trials())
			widths := make([]float64, 0, cfg.trials())
			for trial := 0; trial < cfg.trials(); trial++ {
				res, err := core.EstimateMeanWithConfig(rng, dist.SampleN(d, rng, n),
					eps, 0.1, core.MeanConfig{SubsampleSize: s.m})
				if err != nil {
					errs = append(errs, math.Inf(1))
					continue
				}
				errs = append(errs, math.Abs(res.Estimate-mu))
				widths = append(widths, res.Hi-res.Lo)
			}
			tb.Rows = append(tb.Rows, []string{s.label, fm(median(errs)), fm(median(widths))})
		}
		tables = append(tables, tb)
	}
	return tables
}

func runE13(cfg Config) []Table {
	rng := cfg.rng("E13")
	n := 50000
	if cfg.Quick {
		n = 10000
	}
	const eps = 0.1
	tb := Table{
		Title:   "E13: Algorithm 8 (subsampled range) vs Algorithm 5 on full D (n=" + fi(n) + ", eps=" + fm(eps) + ")",
		Columns: []string{"distribution", "Alg 8 med |err|", "full-range med |err|", "Alg 8 med width", "full med width"},
	}
	for _, d := range []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewPareto(1, 3),
	} {
		mu := d.Mean()
		collect := func(cfgM core.MeanConfig) (float64, float64) {
			errs := make([]float64, 0, cfg.trials())
			widths := make([]float64, 0, cfg.trials())
			for trial := 0; trial < cfg.trials(); trial++ {
				res, err := core.EstimateMeanWithConfig(rng, dist.SampleN(d, rng, n), eps, 0.1, cfgM)
				if err != nil {
					errs = append(errs, math.Inf(1))
					continue
				}
				errs = append(errs, math.Abs(res.Estimate-mu))
				widths = append(widths, res.Hi-res.Lo)
			}
			return median(errs), median(widths)
		}
		subErr, subW := collect(core.MeanConfig{})
		fullErr, fullW := collect(core.MeanConfig{FullDataRange: true})
		tb.Rows = append(tb.Rows, []string{d.Name(), fm(subErr), fm(fullErr), fm(subW), fm(fullW)})
	}
	return []Table{tb}
}

func runE14(cfg Config) []Table {
	rng := cfg.rng("E14")
	nUsers := 2000
	if cfg.Quick {
		nUsers = 500
	}
	const eps = 1.0

	// Build a skewed orders table: per-user spend is LogNormal — most users
	// small, a long tail of big spenders (the regime where a fixed
	// truncation bound must choose between bias and noise).
	db := dpsql.NewDB()
	tbl, err := db.Create("orders", []dpsql.Column{
		{Name: "user_id", Kind: dpsql.KindString},
		{Name: "amount", Kind: dpsql.KindFloat},
	}, "user_id")
	if err != nil {
		return []Table{{Title: "E14 setup failed: " + err.Error()}}
	}
	spend := dist.NewLogNormal(3, 1.5)
	userTotals := make([]float64, nUsers)
	var trueSum float64
	for u := 0; u < nUsers; u++ {
		orders := 1 + rng.Intn(5)
		for o := 0; o < orders; o++ {
			amt := spend.Sample(rng)
			userTotals[u] += amt
			trueSum += amt
			if err := tbl.Insert(dpsql.Str(fmt.Sprintf("u%d", u)), dpsql.Float(amt)); err != nil {
				return []Table{{Title: "E14 insert failed: " + err.Error()}}
			}
		}
	}

	// Fixed-bound truncation baseline: clip per-user totals at tau, sum,
	// add Lap(tau/eps).
	truncSum := func(tau float64) float64 {
		var s float64
		for _, t := range userTotals {
			if t > tau {
				t = tau
			}
			s += t
		}
		return s + rng.Laplace(tau/eps)
	}

	tb := Table{
		Title:   "E14: user-level DP SUM(amount), " + fi(nUsers) + " users, LogNormal(3,1.5) spend (eps=1)",
		Columns: []string{"method", "med |err| / true sum"},
		Notes:   []string{"true sum ≈ " + fm(trueSum)},
	}
	medRel := func(f func() (float64, error)) string {
		errs := make([]float64, 0, cfg.trials())
		for trial := 0; trial < cfg.trials(); trial++ {
			v, err := f()
			if err != nil {
				errs = append(errs, math.Inf(1))
				continue
			}
			errs = append(errs, math.Abs(v-trueSum)/trueSum)
		}
		return fm(median(errs))
	}
	tb.Rows = append(tb.Rows, []string{"ours (dpsql, no bound)", medRel(func() (float64, error) {
		res, err := db.Exec(rng, "SELECT SUM(amount) FROM orders", eps)
		if err != nil {
			return 0, err
		}
		return res.Rows[0].Value, nil
	})})
	for _, tau := range []float64{20, 200, 20000} {
		tau := tau
		tb.Rows = append(tb.Rows, []string{
			"truncation τ=" + fm(tau),
			medRel(func() (float64, error) { return truncSum(tau), nil }),
		})
	}
	return []Table{tb}
}
