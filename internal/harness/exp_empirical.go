package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/baseline"
	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E1",
		Title:    "Private radius: r̃ad ≤ 2·rad with O(log log rad / ε) outliers",
		PaperRef: "Theorem 3.1 / Algorithm 3",
		Expect: "ratio r̃ad/rad stays ≤ 2 across 5 orders of magnitude of rad; " +
			"outlier count grows like log log(rad)/ε, i.e. stays in the single digits.",
		Run: runE1,
	})
	register(Experiment{
		ID:       "E2",
		Title:    "Private range: |R̃| ≤ 4·γ(D) even when rad(D) ≫ γ(D)",
		PaperRef: "Theorem 3.2 / Algorithm 4",
		Expect: "width ratio |R̃|/γ ≤ 4 regardless of how far the data sit from " +
			"the origin; outliers stay O(log log γ / ε).",
		Run: runE2,
	})
	register(Experiment{
		ID:       "E3",
		Title:    "Instance-optimal empirical mean: error ∝ γ(D), not domain size N",
		PaperRef: "Theorems 3.3, 3.4 / Algorithm 5",
		Expect: "our error is flat as the domain N grows (it tracks γ(D)·loglog γ " +
			"/(εn)); the worst-case finite-domain Laplace baseline degrades " +
			"linearly in N. The packing construction shows errors ≥ γ/(3εn)·loglogN cannot be avoided.",
		Run: runE3,
	})
	register(Experiment{
		ID:       "E4",
		Title:    "Private quantiles: rank error O(log γ(D)/ε)",
		PaperRef: "Theorem 3.5 / Algorithm 6",
		Expect: "rank error grows linearly in log2(γ) (slope ~ c/ε) and is far " +
			"below the O(log N) cost a fixed huge domain would force.",
		Run: runE4,
	})
}

func runE1(cfg Config) []Table {
	rng := cfg.rng("E1")
	n := 2000
	if cfg.Quick {
		n = 500
	}
	tb := Table{
		Title:   "E1: radius estimation (n=" + fi(n) + ")",
		Columns: []string{"rad(D)", "eps", "med r̃ad/rad", "med #outliers", "bound 2.0 ok"},
	}
	for _, k := range []int{3, 10, 20, 40} {
		radius := int64(1) << k
		for _, eps := range []float64{0.1, 1.0} {
			data := make([]int64, n)
			for i := range data {
				data[i] = rng.Int64Range(-radius, radius)
			}
			data[0] = radius
			ratios := make([]float64, 0, cfg.trials())
			outliers := make([]float64, 0, cfg.trials())
			okCount := 0
			for trial := 0; trial < cfg.trials(); trial++ {
				r, err := empirical.Radius(rng, data, eps, 0.1)
				if err != nil {
					continue
				}
				ratios = append(ratios, float64(r)/float64(radius))
				outliers = append(outliers, float64(n-stats.CountInInt64(data, -r, r)))
				if r <= 2*radius {
					okCount++
				}
			}
			tb.Rows = append(tb.Rows, []string{
				pow2(k), fm(eps), fm(median(ratios)), fm(median(outliers)),
				fmt.Sprintf("%d/%d", okCount, cfg.trials()),
			})
		}
	}
	return []Table{tb}
}

func runE2(cfg Config) []Table {
	rng := cfg.rng("E2")
	n := 5000
	if cfg.Quick {
		n = 1000
	}
	center := int64(1) << 35 // rad(D) ~ 2^35 regardless of gamma
	tb := Table{
		Title:   "E2: range estimation with data centred at 2^35 (n=" + fi(n) + ", eps=1)",
		Columns: []string{"γ(D)", "med |R̃|/γ", "med #outliers", "|R̃|≤4γ ok"},
		Notes: []string{"the recentring step makes the width track γ(D), " +
			"not rad(D) — a naive radius-only range would be ~2^35 wide"},
	}
	for _, k := range []int{3, 10, 16, 24, 30} {
		gamma := int64(1) << k
		data := make([]int64, n)
		for i := range data {
			data[i] = center + rng.Int64Range(-gamma/2, gamma/2)
		}
		trueGamma := stats.WidthInt64(data)
		ratios := make([]float64, 0, cfg.trials())
		outliers := make([]float64, 0, cfg.trials())
		okCount := 0
		for trial := 0; trial < cfg.trials(); trial++ {
			lo, hi, err := empirical.Range(rng, data, 1.0, 0.1)
			if err != nil {
				continue
			}
			ratios = append(ratios, float64(hi-lo)/float64(trueGamma))
			outliers = append(outliers, float64(n-stats.CountInInt64(data, lo, hi)))
			if hi-lo <= 4*trueGamma {
				okCount++
			}
		}
		tb.Rows = append(tb.Rows, []string{
			pow2(k), fm(median(ratios)), fm(median(outliers)),
			fmt.Sprintf("%d/%d", okCount, cfg.trials()),
		})
	}
	return []Table{tb}
}

func runE3(cfg Config) []Table {
	rng := cfg.rng("E3")
	n := 10000
	if cfg.Quick {
		n = 2000
	}
	const eps = 1.0
	const gammaK = 10 // γ(D) ~ 2^10, fixed while the domain N grows
	gamma := int64(1) << gammaK

	main := Table{
		Title: "E3a: empirical mean error vs domain size (n=" + fi(n) +
			", eps=1, γ(D)=2^10 fixed)",
		Columns: []string{"domain N", "ours med |err|", "HLY21 med |err|",
			"naive Lap(N/εn) med |err|", "HLY21/ours", "naive/ours"},
		Notes: []string{"ours = Algorithm 5 (ratio loglog γ); HLY21 = finite-domain " +
			"instance-optimal (ratio log N — the prior art §1.1.1 improves on); " +
			"naive = clipped mean over the full [-N, N] domain (worst-case only)"},
	}
	for _, domK := range []int{12, 20, 30, 40} {
		domain := int64(1) << domK
		data := make([]int64, n)
		for i := range data {
			// Skewed within the band: exponential from the bottom edge, so
			// one-sided clipping bias does not cancel — the regime where
			// the optimality ratio (#clipped points: log N for HLY21,
			// loglog γ for ours) shows up in the error.
			v := int64(rng.Exponential() * float64(gamma) / 6)
			if v > gamma {
				v = gamma
			}
			data[i] = domain/2 + v
		}
		trueMean := meanInt64(data)
		ours := make([]float64, 0, cfg.trials())
		hly := make([]float64, 0, cfg.trials())
		naive := make([]float64, 0, cfg.trials())
		for trial := 0; trial < cfg.trials(); trial++ {
			m, err := empirical.Mean(rng, data, eps, 0.1)
			if err != nil {
				continue
			}
			ours = append(ours, math.Abs(m-trueMean))
			hm, err := baseline.HLY21Mean(rng, data, domain, eps)
			if err != nil {
				continue
			}
			hly = append(hly, math.Abs(hm-trueMean))
			fs := make([]float64, n)
			for i, v := range data {
				fs[i] = float64(v)
			}
			nm, err := dp.ClippedMean(rng, fs, 0, float64(domain), eps)
			if err != nil {
				continue
			}
			naive = append(naive, math.Abs(nm-trueMean))
		}
		mo, mh, mn := median(ours), median(hly), median(naive)
		main.Rows = append(main.Rows, []string{
			pow2(domK), fm(mo), fm(mh), fm(mn), fm(mh / mo), fm(mn / mo),
		})
	}

	packing := Table{
		Title: "E3b: Theorem 3.4 packing construction (n=" + fi(n) + ", eps=1)",
		Columns: []string{"dataset D(i)", "µ(D(i))", "med |err|",
			"lower bound γ/(3εn)·loglogN"},
		Notes: []string{"datasets with loglog(N)/ε records at 2^i and the rest 0; " +
			"no ε-DP mechanism can beat the bound on every D(i) simultaneously"},
	}
	const domK = 30
	nOnes := int(math.Log(math.Log2(float64(int64(1)<<domK)))/eps) + 1
	for _, i := range []int{8, 16, 24, 30} {
		big := int64(1) << i
		data := make([]int64, n)
		for j := 0; j < nOnes; j++ {
			data[j] = big
		}
		trueMean := meanInt64(data)
		errs := make([]float64, 0, cfg.trials())
		for trial := 0; trial < cfg.trials(); trial++ {
			m, err := empirical.Mean(rng, data, eps, 0.1)
			if err != nil {
				continue
			}
			errs = append(errs, math.Abs(m-trueMean))
		}
		lb := float64(big) / (3 * eps * float64(n)) * math.Log(30)
		packing.Rows = append(packing.Rows, []string{
			fmt.Sprintf("%d × 2^%d", nOnes, i), fm(trueMean), fm(median(errs)), fm(lb),
		})
	}
	return []Table{main, packing}
}

func runE4(cfg Config) []Table {
	rng := cfg.rng("E4")
	n := 10000
	if cfg.Quick {
		n = 2000
	}
	const eps = 1.0
	tb := Table{
		Title:   "E4: quantile rank error vs γ(D) (n=" + fi(n) + ", eps=1, τ=n/2)",
		Columns: []string{"γ(D)", "med rank err", "rank err / log2(γ)"},
		Notes:   []string{"Theorem 3.5 predicts rank error O(log γ/ε): the last column should be roughly flat"},
	}
	for _, k := range []int{6, 12, 20, 30, 40} {
		gamma := int64(1) << k
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int64Range(0, gamma)
		}
		sorted := append([]int64(nil), data...)
		sortInt64s(sorted)
		errs := make([]float64, 0, cfg.trials())
		for trial := 0; trial < cfg.trials(); trial++ {
			q, err := empirical.Quantile(rng, data, n/2, eps, 0.1)
			if err != nil {
				continue
			}
			errs = append(errs, float64(rankErr(sorted, n/2, q)))
		}
		med := median(errs)
		tb.Rows = append(tb.Rows, []string{pow2(k), fm(med), fm(med / float64(k))})
	}
	return []Table{tb}
}

// ---------- helpers shared by the empirical experiments ----------

func meanInt64(xs []int64) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s / float64(len(xs))
}

func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func rankErr(sorted []int64, tau int, y int64) int {
	target := sorted[tau-1]
	lo, hi := target, y
	if lo > hi {
		lo, hi = hi, lo
	}
	cnt := 0
	for _, v := range sorted {
		if v > lo && v < hi {
			cnt++
		}
	}
	return cnt
}
