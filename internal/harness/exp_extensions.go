package harness

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E16",
		Title:    "Multi-quantile release: one shared range vs k independent calls",
		PaperRef: "§3/§6 machinery (extension); Theorem 3.5 rank-error budget arithmetic",
		Expect: "releasing k quantiles through one Algorithm 4 range plus k cheap " +
			"Algorithm 2 draws beats k independent Algorithm 6 calls at ε/k each, " +
			"because the range-finding rank cost — the dominant O(log γ/ε) term — " +
			"is paid once instead of k times; the gap widens as k grows.",
		Run: runE16,
	})
	register(Experiment{
		ID:       "E17",
		Title:    "Runtime scaling: all estimators run in O(n log n)",
		PaperRef: "§1 (\"all our estimators can be implemented efficiently in O(n log n) time\")",
		Expect: "wall time divided by n·log n stays within a small constant band " +
			"as n grows by three orders of magnitude, for mean, variance, and IQR.",
		Run: runE17,
	})
	register(Experiment{
		ID:       "E18",
		Title:    "Confidence intervals (§1.3 open problem): universal quantile/IQR coverage",
		PaperRef: "§1.3 (\"we cannot output confidence intervals\") + Lemma 2.8 rank slack",
		Expect: "the distribution-free quantile and IQR intervals cover the true " +
			"parameter at >= 1-β on every family, including Cauchy (no mean) and " +
			"Pareto(2) (no variance); the mean interval covers µ on light tails " +
			"but its target is the truncated mean, so no universal µ coverage is " +
			"claimed — precisely the paper's impossibility point.",
		Run: runE18,
	})
	register(Experiment{
		ID:       "E19",
		Title:    "Trimmed mean: universal robust location under contamination",
		PaperRef: "DL09 robust-statistics framing realized with the paper's machinery",
		Expect: "as the contamination fraction grows past the Laplace-noise level, " +
			"the raw universal mean drifts with the outlier mass while the trimmed " +
			"mean stays near the uncontaminated location until the trim fraction " +
			"is overwhelmed.",
		Run: runE19,
	})
}

func runE16(cfg Config) []Table {
	rng := cfg.rng("E16")
	trials := cfg.trials()
	n := 20000
	if cfg.Quick {
		n = 6000
	}
	// eps=2 keeps the per-rank budgets out of the saturated regime where
	// both schemes' rank slack exceeds n and the comparison is pure noise.
	const eps = 2.0
	d := dist.NewNormal(0, 1)
	ks := []int{2, 5, 9}

	tb := Table{
		Title: "E16: mean abs quantile error across k evenly spaced quantiles, " +
			"N(0,1), n=" + fi(n) + ", total eps=2",
		Columns: []string{"k", "shared range (Quantiles)", "k independent calls @ eps/k", "ratio"},
		Notes: []string{
			"each cell: median over " + fi(trials) + " trials of the mean |released - F^-1(p)| across the k targets",
		},
	}
	for _, k := range ks {
		ps := make([]float64, k)
		for i := range ps {
			ps[i] = float64(i+1) / float64(k+1)
		}
		var shared, indep []float64
		for trial := 0; trial < trials; trial++ {
			data := dist.SampleN(d, rng, n)

			qs, err := core.EstimateQuantilesProb(rng, data, ps, eps, 1.0/3)
			if err != nil {
				continue
			}
			var e1 float64
			for i, p := range ps {
				e1 += math.Abs(qs[i] - d.Quantile(p))
			}
			shared = append(shared, e1/float64(k))

			var e2 float64
			for _, p := range ps {
				tau := int(math.Ceil(p * float64(n)))
				q, err := core.EstimateQuantile(rng, data, tau, eps/float64(k), 1.0/3)
				if err != nil {
					e2 = math.NaN()
					break
				}
				e2 += math.Abs(q - d.Quantile(p))
			}
			indep = append(indep, e2/float64(k))
		}
		ms, mi := median(shared), median(indep)
		tb.Rows = append(tb.Rows, []string{fi(k), fm(ms), fm(mi), fm(mi / ms)})
	}
	return []Table{tb}
}

func runE17(cfg Config) []Table {
	rng := cfg.rng("E17")
	ns := []int{10000, 100000, 1000000}
	if cfg.Quick {
		ns = []int{10000, 100000}
	}
	reps := 3

	type estimator struct {
		name string
		run  func(data []float64) error
	}
	ests := []estimator{
		{"mean (Alg 8)", func(data []float64) error {
			_, err := core.EstimateMean(rng, data, 1.0, 0.1)
			return err
		}},
		{"variance (Alg 9)", func(data []float64) error {
			_, err := core.EstimateVariance(rng, data, 1.0, 0.1)
			return err
		}},
		{"IQR (Alg 10)", func(data []float64) error {
			_, err := core.EstimateIQR(rng, data, 1.0, 0.1)
			return err
		}},
	}

	tb := Table{
		Title:   "E17: wall time vs n, N(0,1) (ns/(n log2 n) should stay flat)",
		Columns: []string{"estimator", "n", "time", "ns/(n·log2 n)"},
		Notes:   []string{"best of " + fi(reps) + " runs; absolute times are machine-dependent, the flat normalized column is the claim"},
	}
	for _, est := range ests {
		for _, n := range ns {
			data := dist.SampleN(dist.NewNormal(0, 1), rng, n)
			best := time.Duration(math.MaxInt64)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := est.run(data); err != nil {
					best = -1
					break
				}
				if el := time.Since(start); el < best {
					best = el
				}
			}
			norm := float64(best.Nanoseconds()) / (float64(n) * math.Log2(float64(n)))
			tb.Rows = append(tb.Rows, []string{est.name, fi(n), best.String(), fm(norm)})
		}
	}
	return []Table{tb}
}

func runE18(cfg Config) []Table {
	rng := cfg.rng("E18")
	trials := cfg.trials()
	// n must clear the feasibility threshold of the rank-slack bracket
	// (ErrIntervalInfeasible); 4000 is comfortably above it at eps=1.
	n := 8000
	if cfg.Quick {
		n = 4000
	}
	const (
		eps  = 1.0
		beta = 0.2
	)
	families := []dist.Distribution{
		dist.NewNormal(0, 1),
		dist.NewNormal(1e6, 3),
		dist.NewPareto(1, 2),
		dist.NewCauchy(0, 1),
	}

	tb := Table{
		Title: "E18: CI coverage and median width, n=" + fi(n) +
			", eps=1, target coverage 1-beta=0.8",
		Columns: []string{"family", "median CI cover", "median CI width",
			"IQR CI cover", "IQR CI width", "mean CI cover (truncated-mean target)"},
		Notes: []string{
			"quantile/IQR coverage must hold universally; mean coverage of µ itself is " +
				"only expected on light tails (Cauchy has no µ: blank)",
		},
	}
	for _, d := range families {
		med := d.Quantile(0.5)
		iqr := dist.IQROf(d)
		mu := d.Mean()

		var medCover, iqrCover, meanCover, medWidth, iqrWidth float64
		var medTrials, iqrTrials, meanTrials float64
		for trial := 0; trial < trials; trial++ {
			data := dist.SampleN(d, rng, n)
			if ci, err := core.QuantileInterval(rng, data, 0.5, eps, beta); err == nil {
				medTrials++
				if med >= ci.Lo && med <= ci.Hi {
					medCover++
				}
				medWidth += ci.Hi - ci.Lo
			}
			if ci, err := core.IQRInterval(rng, data, eps, beta); err == nil {
				iqrTrials++
				if iqr >= ci.Lo && iqr <= ci.Hi {
					iqrCover++
				}
				iqrWidth += ci.Hi - ci.Lo
			}
			if !math.IsNaN(mu) && !math.IsInf(mu, 0) {
				if ci, err := core.MeanInterval(rng, data, eps, beta); err == nil {
					meanTrials++
					if mu >= ci.Lo && mu <= ci.Hi {
						meanCover++
					}
				}
			}
		}
		rate := func(cover, count float64) string {
			if count == 0 {
				return "infeasible"
			}
			return fm(cover / count)
		}
		meanCell := "n/a (no mean)"
		if meanTrials > 0 {
			meanCell = fm(meanCover / meanTrials)
		}
		tb.Rows = append(tb.Rows, []string{
			d.Name(), rate(medCover, medTrials), rate(medWidth, medTrials),
			rate(iqrCover, iqrTrials), rate(iqrWidth, iqrTrials), meanCell,
		})
	}
	return []Table{tb}
}

func runE19(cfg Config) []Table {
	rng := cfg.rng("E19")
	trials := cfg.trials()
	n := 10000
	if cfg.Quick {
		n = 3000
	}
	const eps = 1.0
	fracs := []float64{0, 0.01, 0.05, 0.15}

	tb := Table{
		Title: "E19: |location error| vs contamination (N(0,1) + outliers at 10^6), " +
			"n=" + fi(n) + ", eps=1, trim=0.2",
		Columns: []string{"contam frac", "non-private mean", "universal mean (Alg 8)",
			"trimmed mean (trim=0.2)", "universal median"},
	}
	for _, f := range fracs {
		var rawErr, meanErr, trimErr, medErr []float64
		for trial := 0; trial < trials; trial++ {
			data := dist.SampleN(dist.NewNormal(0, 1), rng, n)
			k := int(f * float64(n))
			for i := 0; i < k; i++ {
				data[i] = 1e6
			}
			rawErr = append(rawErr, math.Abs(stats.Mean(data)))
			if m, err := core.EstimateMean(rng, data, eps, 0.1); err == nil {
				meanErr = append(meanErr, math.Abs(m))
			}
			if m, err := core.TrimmedMean(rng, data, 0.2, eps, 0.1); err == nil {
				trimErr = append(trimErr, math.Abs(m))
			}
			if m, err := core.EstimateQuantile(rng, data, n/2, eps, 0.1); err == nil {
				medErr = append(medErr, math.Abs(m))
			}
		}
		tb.Rows = append(tb.Rows, []string{
			fm(f), fm(median(rawErr)), fm(median(meanErr)),
			fm(median(trimErr)), fm(median(medErr)),
		})
	}
	return []Table{tb}
}
