package privcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/empirical"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Target is one auditable mechanism: a named release with an ε-DP claim and
// a canonical neighboring dataset pair that stresses it.
type Target struct {
	Name string
	// Claim is the ε the mechanism is supposed to satisfy.
	Claim float64
	// Mech runs the release.
	Mech Mechanism
	// D1, D2 are the neighboring datasets the audit distinguishes.
	D1, D2 []float64
	// WantViolation marks deliberately broken targets (negative controls):
	// the audit is expected to flag them.
	WantViolation bool
}

// Registry returns the full audit suite at the given claim ε: every
// mechanism the library ships, each on a neighboring pair designed to
// maximize its privacy loss, plus deliberately broken negative controls
// that a sound auditor must flag. The suite is what cmd/updp-audit runs.
func Registry(eps float64) []Target {
	// A tight cluster with one far-out swapped record: the worst case for
	// location releases (the swap moves every range/clip decision).
	base := make([]float64, 24)
	for i := range base {
		base[i] = 0.25 + 0.017*float64(i%7)
	}
	d1, d2 := NeighboringPair(base, 9.75)

	// Integer twin for the empirical-setting mechanisms (fixed-point).
	toInt := func(xs []float64) []int64 {
		out := make([]int64, len(xs))
		for i, v := range xs {
			out[i] = int64(v * 1000)
		}
		return out
	}

	targets := []Target{
		{
			Name:  "dp.ClippedMean[0,1]",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return dp.ClippedMean(rng, data, 0, 1, eps)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "dp.NoisyCount",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				n := 0
				for _, v := range data {
					if v > 0.5 {
						n++
					}
				}
				return dp.NoisyCount(rng, n, eps), nil
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "empirical.Mean (Alg 5)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return empirical.Mean(rng, toInt(data), eps, 0.1)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "empirical.Quantile (Alg 6, median)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				q, err := empirical.Quantile(rng, toInt(data), len(data)/2, eps, 0.1)
				return float64(q), err
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "empirical.Radius (Alg 3)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				r, err := empirical.Radius(rng, toInt(data), eps, 0.1)
				return float64(r), err
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "core.EstimateMean (Alg 8)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return core.EstimateMean(rng, data, eps, 0.1)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "core.EstimateVariance (Alg 9)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return core.EstimateVariance(rng, data, eps, 0.1)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "core.EstimateIQR (Alg 10)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return core.EstimateIQR(rng, data, eps, 0.1)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "core.TrimmedMean",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return core.TrimmedMean(rng, data, 0.1, eps, 0.1)
			},
			D1: d1, D2: d2,
		},
		{
			Name:  "core.IQRLowerBound (Alg 7)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return core.IQRLowerBound(rng, data, eps, 0.1)
			},
			D1: d1, D2: d2,
		},

		// ---- negative controls: the audit must flag these ----
		{
			Name:  "BROKEN exact mean (no noise)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return stats.Mean(data), nil
			},
			D1: d1, D2: d2, WantViolation: true,
		},
		{
			Name:  "BROKEN under-noised mean (20x budget)",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				return dp.ClippedMean(rng, data, 0, 10, 20*eps)
			},
			D1: d1, D2: d2, WantViolation: true,
		},
		{
			Name:  "BROKEN exact max",
			Claim: eps,
			Mech: func(rng *xrand.RNG, data []float64) (float64, error) {
				m := data[0]
				for _, v := range data[1:] {
					if v > m {
						m = v
					}
				}
				return m, nil
			},
			D1: d1, D2: d2, WantViolation: true,
		},
	}
	return targets
}

// Report is the outcome of auditing one target.
type Report struct {
	Target Target
	Result Result
	// OK is true when the audit outcome matches expectation: clean for
	// sound mechanisms, flagged for negative controls.
	OK bool
}

// RunAll audits every target and reports the outcomes.
func RunAll(rng *xrand.RNG, targets []Target, cfg Config) ([]Report, error) {
	reports := make([]Report, 0, len(targets))
	for _, tg := range targets {
		res, err := Check(rng, tg.Mech, tg.D1, tg.D2, tg.Claim, cfg)
		if err != nil {
			return nil, fmt.Errorf("audit %s: %w", tg.Name, err)
		}
		reports = append(reports, Report{
			Target: tg,
			Result: res,
			OK:     res.Violation == tg.WantViolation,
		})
	}
	return reports, nil
}
