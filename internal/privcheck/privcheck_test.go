package privcheck

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// laplaceMeanMech is a correctly calibrated eps-DP clipped mean over [0,1].
func laplaceMeanMech(eps float64) Mechanism {
	return func(rng *xrand.RNG, data []float64) (float64, error) {
		return dp.ClippedMean(rng, data, 0, 1, eps)
	}
}

// brokenMech releases the exact mean with no noise.
func brokenMech(rng *xrand.RNG, data []float64) (float64, error) {
	return stats.Mean(data), nil
}

func auditPair() (d1, d2 []float64) {
	base := make([]float64, 20)
	for i := range base {
		base[i] = 0.5
	}
	return NeighboringPair(base, 1.0) // one record moves 0.5 -> 1.0
}

func TestCalibratedMechanismPasses(t *testing.T) {
	rng := xrand.New(1)
	d1, d2 := auditPair()
	res, err := Check(rng, laplaceMeanMech(1.0), d1, d2, 1.0, Config{Trials: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("calibrated eps=1 mechanism flagged: max ratio %v", res.MaxLogRatio)
	}
	if res.Bins == 0 {
		t.Error("no bins compared")
	}
}

func TestNoiselessMechanismFlagged(t *testing.T) {
	rng := xrand.New(2)
	d1, d2 := auditPair()
	res, err := Check(rng, brokenMech, d1, d2, 1.0, Config{Trials: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Errorf("noiseless mechanism not flagged: max ratio %v", res.MaxLogRatio)
	}
}

func TestUnderScaledNoiseFlagged(t *testing.T) {
	// Mechanism noise calibrated for eps=10 audited against claim eps=0.5:
	// the realized log ratio on the neighboring pair is ~ 10x too large.
	rng := xrand.New(3)
	d1, d2 := auditPair()
	res, err := Check(rng, laplaceMeanMech(10), d1, d2, 0.5, Config{Trials: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Errorf("under-noised mechanism not flagged: max ratio %v vs claim 0.5", res.MaxLogRatio)
	}
}

func TestIdenticalDatasetsNeverViolate(t *testing.T) {
	rng := xrand.New(4)
	d := make([]float64, 10)
	res, err := Check(rng, laplaceMeanMech(1.0), d, d, 0.01, Config{Trials: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("identical datasets flagged: %v", res.MaxLogRatio)
	}
}

func TestConstantMechanismPasses(t *testing.T) {
	rng := xrand.New(5)
	constMech := func(rng *xrand.RNG, data []float64) (float64, error) { return 42, nil }
	d1, d2 := auditPair()
	res, err := Check(rng, constMech, d1, d2, 0.001, Config{Trials: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Error("constant mechanism cannot leak")
	}
}

func TestDisjointSupportsFlagged(t *testing.T) {
	// The strongest possible violation: the output reveals which dataset
	// was used with certainty (two point masses at different values).
	// Detectability bound: with add-half smoothing the measurable excess
	// is log(2·Trials) minus the ~5.7 slack of an empty-vs-full bin, so a
	// 3000-trial audit certifies violations of claims up to ~3.0.
	rng := xrand.New(21)
	d1, d2 := auditPair()
	res, err := Check(rng, brokenMech, d1, d2, 2.0, Config{Trials: 3000, Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Errorf("disjoint supports not flagged: max ratio %v vs claim 2.0", res.MaxLogRatio)
	}
}

func TestMechanismErrorPropagates(t *testing.T) {
	rng := xrand.New(6)
	failing := func(rng *xrand.RNG, data []float64) (float64, error) {
		return 0, dp.ErrEmptyData
	}
	d1, d2 := auditPair()
	if _, err := Check(rng, failing, d1, d2, 1, Config{Trials: 10}); err == nil {
		t.Error("mechanism error should propagate")
	}
}

func TestUniversalMeanEstimatorAudit(t *testing.T) {
	// End-to-end audit of the paper's Algorithm 8 at eps=1. The estimator
	// is eps-DP by construction; the audit must not detect a violation.
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(7)
	base := make([]float64, 64)
	r2 := xrand.New(99)
	for i := range base {
		base[i] = r2.Gaussian()
	}
	d1, d2 := NeighboringPair(base, 50) // one far outlier swapped in
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		return core.EstimateMean(rng, data, 1.0, 0.2)
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("Algorithm 8 audit flagged a violation: %v > 1.0", res.MaxLogRatio)
	}
}

func TestEmpiricalQuantileAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(8)
	base := make([]float64, 40)
	for i := range base {
		base[i] = float64(i)
	}
	d1, d2 := NeighboringPair(base, 1e6)
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		ints := make([]int64, len(data))
		for i, v := range data {
			ints[i] = int64(v)
		}
		q, err := dp.FiniteDomainQuantile(rng, ints, len(ints)/2, -1<<20, 1<<20, 1.0, 0.2)
		return float64(q), err
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("quantile mechanism audit flagged: %v > 1.0", res.MaxLogRatio)
	}
}

func TestNeighboringPair(t *testing.T) {
	d1, d2 := NeighboringPair([]float64{1, 2, 3}, 9)
	if d1[0] != 1 || d2[0] != 9 || d1[1] != d2[1] || len(d1) != len(d2) {
		t.Error("pair construction")
	}
	diff := 0
	for i := range d1 {
		if d1[i] != d2[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("pair differs in %d records, want 1", diff)
	}
	if math.IsNaN(d2[0]) {
		t.Error("swap value")
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	// Property: for arbitrary samples and any sorted, deduplicated edge
	// set, every sample lands in exactly one bin.
	f := func(raw []float64, rawEdges []float64) bool {
		if len(rawEdges) == 0 {
			return true
		}
		edges := append([]float64(nil), rawEdges...)
		for i := range edges {
			if math.IsNaN(edges[i]) {
				edges[i] = 0
			}
		}
		sort.Float64s(edges)
		dedup := edges[:0]
		for i, e := range edges {
			if i == 0 || e > dedup[len(dedup)-1] {
				dedup = append(dedup, e)
			}
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		counts := histogram(xs, dedup)
		if len(counts) != len(dedup) {
			return false
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
