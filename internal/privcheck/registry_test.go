package privcheck

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestRegistryShape(t *testing.T) {
	targets := Registry(1.0)
	if len(targets) < 10 {
		t.Fatalf("registry too small: %d targets", len(targets))
	}
	names := map[string]bool{}
	var sound, broken int
	for _, tg := range targets {
		if tg.Name == "" || tg.Mech == nil || len(tg.D1) == 0 || len(tg.D2) == 0 {
			t.Errorf("malformed target %+v", tg.Name)
		}
		if names[tg.Name] {
			t.Errorf("duplicate target name %q", tg.Name)
		}
		names[tg.Name] = true
		if tg.Claim != 1.0 {
			t.Errorf("%s: claim %v, want 1.0", tg.Name, tg.Claim)
		}
		if tg.WantViolation {
			broken++
			if !strings.Contains(tg.Name, "BROKEN") {
				t.Errorf("negative control %q should be labeled BROKEN", tg.Name)
			}
		} else {
			sound++
		}
	}
	if sound < 8 {
		t.Errorf("want >= 8 sound targets, got %d", sound)
	}
	if broken < 2 {
		t.Errorf("want >= 2 negative controls, got %d", broken)
	}
}

func TestRegistryNeighboringPairsAreNeighbors(t *testing.T) {
	for _, tg := range Registry(0.5) {
		if len(tg.D1) != len(tg.D2) {
			t.Errorf("%s: pair lengths differ", tg.Name)
			continue
		}
		diff := 0
		for i := range tg.D1 {
			if tg.D1[i] != tg.D2[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("%s: datasets differ in %d records, want exactly 1", tg.Name, diff)
		}
	}
}

func TestRunAllSoundTargetsClean(t *testing.T) {
	// Sound mechanisms must not be flagged even at a modest trial count.
	rng := xrand.New(81)
	targets := Registry(1.0)
	sound := targets[:0]
	for _, tg := range targets {
		if !tg.WantViolation {
			sound = append(sound, tg)
		}
	}
	reports, err := RunAll(rng, sound, Config{Trials: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Result.Violation {
			t.Errorf("%s flagged at ratio %v", r.Target.Name, r.Result.MaxLogRatio)
		}
		if !r.OK {
			t.Errorf("%s: OK flag inconsistent", r.Target.Name)
		}
	}
}

func TestRunAllFlagsNegativeControls(t *testing.T) {
	// Negative controls need enough trials for the empty-bin slack
	// (log(2T) - ~5.7) to clear the claim; 8000 suffices at eps=1.
	if testing.Short() {
		t.Skip("full audit is slow")
	}
	rng := xrand.New(82)
	targets := Registry(1.0)
	controls := targets[:0]
	for _, tg := range targets {
		if tg.WantViolation {
			controls = append(controls, tg)
		}
	}
	reports, err := RunAll(rng, controls, Config{Trials: 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Result.Violation {
			t.Errorf("negative control %s not flagged (ratio %v)",
				r.Target.Name, r.Result.MaxLogRatio)
		}
	}
}
