package privcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/empirical"
	"repro/internal/xrand"
)

// Further end-to-end audits: each major release path is rerun on a
// neighboring pair at its claimed ε; none may exhibit a measurable
// privacy-loss excess.

func TestIQRLowerBoundAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(11)
	base := make([]float64, 32)
	r2 := xrand.New(55)
	for i := range base {
		base[i] = r2.Gaussian()
	}
	d1, d2 := NeighboringPair(base, 1e9)
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		return core.IQRLowerBound(rng, data, 1.0, 0.2)
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("Algorithm 7 audit flagged: %v > 1.0", res.MaxLogRatio)
	}
}

func TestVarianceAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(12)
	base := make([]float64, 64)
	r2 := xrand.New(56)
	for i := range base {
		base[i] = r2.Gaussian() * 3
	}
	d1, d2 := NeighboringPair(base, 1e6)
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		return core.EstimateVariance(rng, data, 1.0, 0.2)
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("Algorithm 9 audit flagged: %v > 1.0", res.MaxLogRatio)
	}
}

func TestEmpiricalRangeAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(13)
	base := make([]float64, 48)
	for i := range base {
		base[i] = float64(i * 3)
	}
	d1, d2 := NeighboringPair(base, -1e7)
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		ints := make([]int64, len(data))
		for i, v := range data {
			ints[i] = int64(v)
		}
		lo, hi, err := empirical.Range(rng, ints, 1.0, 0.2)
		// Audit a scalar functional of the released pair.
		return float64(hi - lo), err
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("Algorithm 4 audit flagged: %v > 1.0", res.MaxLogRatio)
	}
}

func TestScaleUpperBoundAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive audit")
	}
	rng := xrand.New(14)
	base := make([]float64, 32)
	r2 := xrand.New(57)
	for i := range base {
		base[i] = r2.Laplace(2)
	}
	d1, d2 := NeighboringPair(base, 1e8)
	mech := func(rng *xrand.RNG, data []float64) (float64, error) {
		return core.IQRUpperBound(rng, data, 1.0, 0.2)
	}
	res, err := Check(rng, mech, d1, d2, 1.0, Config{Trials: 8000, Bins: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("IQRUpperBound audit flagged: %v > 1.0", res.MaxLogRatio)
	}
}
