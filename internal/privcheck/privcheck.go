// Package privcheck empirically audits pure-DP claims. Given a mechanism
// and two neighboring datasets, it runs the mechanism many times on each,
// bins the two output samples on a common grid, and estimates the maximum
// absolute log-probability ratio across bins — which the DP definition
// (paper equation (1) with δ=0) bounds by ε for *every* event.
//
// A randomized audit can only ever certify violations, not prove
// compliance; the checker therefore reports a violation only when the
// observed ratio exceeds ε by a margin larger than the binomial sampling
// error. It reliably flags broken mechanisms (no noise, under-scaled noise)
// while passing correctly calibrated ones.
package privcheck

import (
	"errors"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Mechanism is a randomized release over a float64 dataset.
type Mechanism func(rng *xrand.RNG, data []float64) (float64, error)

// Result summarizes an audit.
type Result struct {
	// MaxLogRatio is the largest |log(p̂1(bin)/p̂2(bin))| minus its sampling
	// slack, over bins with enough mass in both samples; <= Epsilon means
	// no detectable violation.
	MaxLogRatio float64
	// Epsilon is the audited claim.
	Epsilon float64
	// Violation is true when MaxLogRatio exceeds Epsilon.
	Violation bool
	// Trials is the per-dataset number of mechanism runs.
	Trials int
	// Bins is the number of bins with enough mass to be compared.
	Bins int
}

// Config tunes the audit.
type Config struct {
	Trials   int // runs per dataset (default 20000)
	Bins     int // quantile bins over the pooled outputs (default 40)
	MinCount int // minimum count on at least one side to compare a bin (default 20)
}

func (c *Config) fill() {
	if c.Trials <= 0 {
		c.Trials = 20000
	}
	if c.Bins <= 0 {
		c.Bins = 40
	}
	if c.MinCount <= 0 {
		c.MinCount = 20
	}
}

// ErrMechanism reports that the audited mechanism itself failed.
var ErrMechanism = errors.New("privcheck: mechanism returned an error")

// Check audits mech's eps-DP claim on the neighboring pair (d1, d2).
func Check(rng *xrand.RNG, mech Mechanism, d1, d2 []float64, eps float64, cfg Config) (Result, error) {
	cfg.fill()
	s1, err := sample(rng, mech, d1, cfg.Trials)
	if err != nil {
		return Result{}, err
	}
	s2, err := sample(rng, mech, d2, cfg.Trials)
	if err != nil {
		return Result{}, err
	}

	// Common grid: quantile edges of the pooled sample, deduplicated. The
	// final bin is open-ended so distinct point masses land in distinct
	// bins (disjoint supports are the *strongest* possible violation and
	// must not be merged away).
	pooled := append(append([]float64(nil), s1...), s2...)
	sort.Float64s(pooled)
	edges := make([]float64, 0, cfg.Bins+1)
	for i := 0; i <= cfg.Bins; i++ {
		idx := i * (len(pooled) - 1) / cfg.Bins
		e := pooled[idx]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if len(edges) < 2 {
		// All outputs identical across both datasets: point masses at the
		// same value — indistinguishable, no violation detectable.
		return Result{Epsilon: eps, Trials: cfg.Trials}, nil
	}

	c1 := histogram(s1, edges)
	c2 := histogram(s2, edges)

	res := Result{Epsilon: eps, Trials: cfg.Trials}
	n := float64(cfg.Trials)
	for i := range c1 {
		// Compare a bin when EITHER side has real mass: one-sided mass
		// with (near-)zero mass on the other side is a privacy failure,
		// not a reason to skip. Add-half smoothing bounds the estimated
		// ratio of empty bins.
		if c1[i] < cfg.MinCount && c2[i] < cfg.MinCount {
			continue
		}
		res.Bins++
		p1 := (float64(c1[i]) + 0.5) / (n + 0.5)
		p2 := (float64(c2[i]) + 0.5) / (n + 0.5)
		ratio := math.Abs(math.Log(p1 / p2))
		// Subtract a 4-sigma binomial slack so noise cannot trigger a
		// false violation.
		slack := 4 * math.Sqrt(1/(float64(c1[i])+0.5)+1/(float64(c2[i])+0.5))
		adj := ratio - slack
		if adj > res.MaxLogRatio {
			res.MaxLogRatio = adj
		}
	}
	res.Violation = res.MaxLogRatio > eps
	return res, nil
}

func sample(rng *xrand.RNG, mech Mechanism, data []float64, trials int) ([]float64, error) {
	out := make([]float64, trials)
	for i := range out {
		v, err := mech(rng, data)
		if err != nil {
			return nil, errors.Join(ErrMechanism, err)
		}
		out[i] = v
	}
	return out, nil
}

// histogram counts samples into len(edges) bins: bin k covers
// [edges[k], edges[k+1]) and the final bin is [edges[last], +inf).
// Values below edges[0] clamp into bin 0.
func histogram(xs []float64, edges []float64) []int {
	counts := make([]int, len(edges))
	for _, x := range xs {
		// Largest k with edges[k] <= x.
		i := sort.SearchFloat64s(edges, x)
		if i == len(edges) || edges[i] != x {
			i--
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	return counts
}

// NeighboringPair builds a canonical neighboring dataset pair for audits:
// base data plus one record swapped to a distant value.
func NeighboringPair(base []float64, swapped float64) (d1, d2 []float64) {
	d1 = append([]float64(nil), base...)
	d2 = append([]float64(nil), base...)
	if len(d2) > 0 {
		d2[0] = swapped
	}
	return d1, d2
}
