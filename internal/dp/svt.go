package dp

import (
	"errors"
	"math"

	"repro/internal/xrand"
)

// ErrSVTNoStop reports that the sparse vector technique exhausted its query
// sequence (or iteration cap) without crossing the threshold.
var ErrSVTNoStop = errors.New("dp: SVT did not stop within the query sequence")

// QuerySeq produces the i-th query answer (1-based) of a possibly infinite
// sequence of sensitivity-1 queries. ok=false ends the sequence.
type QuerySeq func(i int) (value float64, ok bool)

// SVT is the sparse vector technique, Algorithm 1 verbatim: the threshold is
// perturbed once with Lap(2/eps), every query with Lap(4/eps), and the index
// of the first query whose noisy value exceeds the noisy threshold is
// returned (1-based). The whole run satisfies eps-DP regardless of the
// number of queries consumed.
//
// maxQueries caps the number of queries evaluated; it must be a
// data-independent constant to keep the mechanism's output domain
// data-independent (callers in this repository derive it from the domain's
// bit width, never from the data).
func SVT(rng *xrand.RNG, threshold, eps float64, queries QuerySeq, maxQueries int) (int, error) {
	if err := CheckEpsilon(eps); err != nil {
		return 0, err
	}
	noisyT := threshold + rng.Laplace(2/eps)
	for i := 1; maxQueries <= 0 || i <= maxQueries; i++ {
		q, ok := queries(i)
		if !ok {
			return 0, ErrSVTNoStop
		}
		if q+rng.Laplace(4/eps) > noisyT {
			return i, nil
		}
	}
	return 0, ErrSVTNoStop
}

// SVTLemma26Slack returns the 6/eps·log(2/beta) slack of Lemma 2.6: if some
// query reaches threshold+slack, SVT stops by that query with probability
// >= 1-beta. Algorithms 3 and 7 subtract it from their thresholds.
func SVTLemma26Slack(eps, beta float64) float64 {
	return 6 / eps * math.Log(2/beta)
}
