// Package dp implements the pure differential privacy building blocks the
// paper relies on (§2): the Laplace mechanism, basic composition and a
// budget accountant, privacy amplification by subsampling (Theorem 2.4),
// the sparse vector technique (Algorithm 1), the inverse sensitivity
// mechanism specialized to finite-domain quantiles (Algorithm 2), report
// noisy max, and the clipped mean estimator (§2.6).
//
// All mechanisms draw noise from an explicit *xrand.RNG so runs are
// reproducible; privacy holds with respect to that noise for any fixed
// input, per the definition in the paper's equation (1).
package dp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/xrand"
)

// Errors shared by the mechanisms in this module.
var (
	// ErrInvalidEpsilon reports a non-positive or non-finite privacy budget.
	ErrInvalidEpsilon = errors.New("dp: epsilon must be positive and finite")
	// ErrInvalidBeta reports a failure probability outside (0, 1).
	ErrInvalidBeta = errors.New("dp: beta must be in (0, 1)")
	// ErrEmptyData reports an empty input dataset.
	ErrEmptyData = errors.New("dp: empty dataset")
	// ErrBudgetExhausted reports an accountant with insufficient remaining budget.
	ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")
)

// CheckEpsilon validates a privacy budget.
func CheckEpsilon(eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidEpsilon, eps)
	}
	return nil
}

// CheckBeta validates a failure probability.
func CheckBeta(beta float64) error {
	if !(beta > 0 && beta < 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidBeta, beta)
	}
	return nil
}

// Laplace releases value + Lap(sensitivity/eps), the eps-DP Laplace
// mechanism (Lemma 2.3) for a query with the given global sensitivity.
func Laplace(rng *xrand.RNG, value, sensitivity, eps float64) float64 {
	return value + rng.Laplace(sensitivity/eps)
}

// LaplaceTail returns t such that P(|Lap(scale)| > t) <= beta,
// i.e. t = scale * ln(1/beta). Used throughout the utility analysis.
func LaplaceTail(scale, beta float64) float64 {
	return scale * math.Log(1/beta)
}

// AmplifiedEps returns the privacy parameter of a mechanism with budget
// epsSub when run on an eta-fraction subsample drawn without replacement
// (Theorem 2.4): log(1 + eta*(e^epsSub - 1)).
func AmplifiedEps(epsSub, eta float64) float64 {
	return math.Log1p(eta * math.Expm1(epsSub))
}

// SubsampleBudget returns the budget that may be spent on an eta-fraction
// subsample so that the amplified cost (Theorem 2.4) is at most epsTotal:
// the inverse of AmplifiedEps, log(1 + (e^epsTotal - 1)/eta).
func SubsampleBudget(epsTotal, eta float64) float64 {
	if eta >= 1 {
		return epsTotal
	}
	return math.Log1p(math.Expm1(epsTotal) / eta)
}

// Accountant tracks cumulative privacy spend under basic composition
// (Lemma 2.2). It is safe for concurrent use: Spend is an atomic
// check-and-deduct, so racing goroutines can never jointly overdraw the
// budget — the property the serve layer's per-tenant enforcement rests on.
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent float64
}

// NewAccountant returns an accountant with the given total eps budget.
func NewAccountant(totalEps float64) (*Accountant, error) {
	if err := CheckEpsilon(totalEps); err != nil {
		return nil, err
	}
	return &Accountant{total: totalEps}, nil
}

// Spend consumes eps from the budget, failing if it would overdraw.
func (a *Accountant) Spend(eps float64) error {
	if err := CheckEpsilon(eps); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Tolerate float rounding at the boundary.
	if a.spent+eps > a.total*(1+1e-12) {
		return fmt.Errorf("%w: spent %v + requested %v > total %v",
			ErrBudgetExhausted, a.spent, eps, a.total)
	}
	a.spent += eps
	return nil
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.total - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// Spent returns the cumulative spend.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Total returns the budget ceiling the accountant was created with.
func (a *Accountant) Total() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Reset refills the budget to Total. It is not free post-processing: only
// a policy layer that deliberately renews budgets (WindowedLedger) should
// call it.
func (a *Accountant) Reset() {
	a.mu.Lock()
	a.spent = 0
	a.mu.Unlock()
}
