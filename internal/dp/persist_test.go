package dp

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

// roundTrip serializes and rebuilds a ledger state the way the durable
// store does (through JSON).
func roundTrip(t *testing.T, l StatefulLedger) StatefulLedger {
	t.Helper()
	st, err := l.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back LedgerState
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := RestoreLedger(back)
	if err != nil {
		t.Fatalf("RestoreLedger: %v", err)
	}
	return restored
}

func TestBasicLedgerSnapshotRestore(t *testing.T) {
	l, err := NewBasicLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(EpsCost(0.75)); err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l)
	if r.Unit() != UnitEps || r.Total() != 2 || r.Spent() != 0.75 {
		t.Fatalf("restored unit=%v total=%v spent=%v", r.Unit(), r.Total(), r.Spent())
	}
	// The restored ledger keeps enforcing: 1.25 remains.
	if err := r.Spend(EpsCost(1.5)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overdraw after restore: %v", err)
	}
	if err := r.Spend(EpsCost(1.25)); err != nil {
		t.Fatalf("affordable spend after restore: %v", err)
	}
}

func TestZCDPLedgerSnapshotRestore(t *testing.T) {
	l, err := NewZCDPLedger(1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(EpsCost(0.1)); err != nil { // 0.005 rho
		t.Fatal(err)
	}
	if err := l.Spend(RhoCost(0.001)); err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l).(*ZCDPLedger)
	if r.Unit() != UnitRho {
		t.Fatalf("unit = %v", r.Unit())
	}
	if got, want := r.Spent(), l.Spent(); got != want {
		t.Fatalf("spent rho = %v, want %v", got, want)
	}
	if r.Total() != l.Total() {
		t.Fatalf("total rho = %v, want %v", r.Total(), l.Total())
	}
	if r.Delta() != 1e-6 || r.NominalEps() != 1 {
		t.Fatalf("delta=%v nominal=%v", r.Delta(), r.NominalEps())
	}
	if r.SpentEpsilon() != l.SpentEpsilon() {
		t.Fatalf("spent epsilon view %v != %v", r.SpentEpsilon(), l.SpentEpsilon())
	}
}

func TestRDPLedgerSnapshotRestore(t *testing.T) {
	l, err := NewRDPLedger(1, 1e-6, []float64{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(EpsCost(0.05)); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(RhoCost(0.001)); err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l).(*RDPLedger)
	if r.Unit() != UnitRDP {
		t.Fatalf("unit = %v", r.Unit())
	}
	if r.Delta() != 1e-6 || r.NominalEps() != 1 || r.Total() != 1 {
		t.Fatalf("delta=%v nominal=%v total=%v", r.Delta(), r.NominalEps(), r.Total())
	}
	wantOrders, wantSpent := l.Orders(), l.SpentByOrder()
	gotOrders, gotSpent := r.Orders(), r.SpentByOrder()
	if len(gotOrders) != len(wantOrders) {
		t.Fatalf("restored %d orders, want %d", len(gotOrders), len(wantOrders))
	}
	for i := range wantOrders {
		if gotOrders[i] != wantOrders[i] || gotSpent[i] != wantSpent[i] {
			t.Fatalf("order %d: (%v, %v), want (%v, %v)",
				i, gotOrders[i], gotSpent[i], wantOrders[i], wantSpent[i])
		}
	}
	if r.Spent() != l.Spent() || r.BestOrder() != l.BestOrder() {
		t.Fatalf("converted view (%v @ %v) != original (%v @ %v)",
			r.Spent(), r.BestOrder(), l.Spent(), l.BestOrder())
	}
	// The restored ledger keeps enforcing at the per-order ceilings.
	if err := r.Spend(EpsCost(1000)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("huge spend after restore: %v", err)
	}
}

// A curve cost that leaves high grid orders uncovered puts +Inf in the
// live spend vector; the snapshot must still marshal to JSON (the
// sentinel encoding) and restore back to +Inf — the uncovered orders
// stay dead, the covered ones keep their spend.
func TestRDPSnapshotSurvivesUncoveredOrders(t *testing.T) {
	l, err := NewRDPLedger(2, 1e-6, []float64{16, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(CurveCost(RDPPoint{Alpha: 16, Eps: 0.01})); err != nil {
		t.Fatal(err)
	}
	live := l.SpentByOrder()
	if live[0] != 0.01 || !math.IsInf(live[1], 1) {
		t.Fatalf("live spend = %v, want [0.01, +Inf]", live)
	}
	// roundTrip goes through json.Marshal — the crash repro this guards.
	r := roundTrip(t, l).(*RDPLedger)
	back := r.SpentByOrder()
	if back[0] != 0.01 || !math.IsInf(back[1], 1) {
		t.Fatalf("restored spend = %v, want [0.01, +Inf]", back)
	}
	if r.Spent() != l.Spent() {
		t.Fatalf("converted view %v != %v", r.Spent(), l.Spent())
	}
}

// Restore refuses a state whose grid is not normalized: sorting it here
// would silently re-pair spends with the wrong orders.
func TestRDPRestoreRefusesShuffledOrders(t *testing.T) {
	l, err := NewRDPLedger(20, 1e-6, []float64{2, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []LedgerState{
		{Kind: LedgerRDP, Eps: 20, Delta: 1e-6, Orders: []float64{64, 2}, SpentRDP: []float64{5, 1}},
		{Kind: LedgerRDP, Eps: 20, Delta: 1e-6, Orders: []float64{2, 2, 64}, SpentRDP: []float64{1, 1, 5}},
	} {
		if err := l.Restore(bad); !errors.Is(err, ErrBadLedgerState) {
			t.Errorf("Restore(orders=%v): want ErrBadLedgerState, got %v", bad.Orders, err)
		}
	}
}

func TestRDPForceSpendPricesLikeSpend(t *testing.T) {
	a, _ := NewRDPLedger(1, 1e-6, []float64{2, 16})
	b, _ := NewRDPLedger(1, 1e-6, []float64{2, 16})
	if err := a.Spend(EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceSpend(EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	as, bs := a.SpentByOrder(), b.SpentByOrder()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("order %d: ForceSpend priced %v, Spend priced %v", i, bs[i], as[i])
		}
	}
	// Replay may push every order past its ceiling; later Spends refuse.
	for i := 0; i < 1000; i++ {
		if err := b.ForceSpend(EpsCost(0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Spend(EpsCost(0.001)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spend on overdrawn rdp ledger: %v", err)
	}
}

func TestWindowedOverRDPSnapshotRoundTrip(t *testing.T) {
	inner, err := NewRDPLedger(1, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewWindowedLedger(inner, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(EpsCost(0.02)); err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l).(*WindowedLedger)
	if r.Window() != time.Hour || r.Unit() != UnitRDP {
		t.Fatalf("window=%v unit=%v", r.Window(), r.Unit())
	}
	ri, ok := r.Inner().(*RDPLedger)
	if !ok {
		t.Fatalf("inner = %T", r.Inner())
	}
	if ri.Spent() != inner.Spent() {
		t.Fatalf("restored inner spent %v, want %v", ri.Spent(), inner.Spent())
	}
}

func TestForceSpendIgnoresCeiling(t *testing.T) {
	l, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	// Replay may push spend past the total — the conservative direction.
	if err := l.ForceSpend(EpsCost(0.9)); err != nil {
		t.Fatal(err)
	}
	if err := l.ForceSpend(EpsCost(0.9)); err != nil {
		t.Fatal(err)
	}
	if got := l.Spent(); got != 1.8 {
		t.Fatalf("spent = %v, want 1.8", got)
	}
	if got := l.Remaining(); got != 0 {
		t.Fatalf("remaining = %v, want 0 (clamped)", got)
	}
	// But ordinary Spend still refuses.
	if err := l.Spend(EpsCost(0.01)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spend on overdrawn ledger: %v", err)
	}
	// Unrepresentable costs are still refused even in replay.
	if err := l.ForceSpend(RhoCost(0.1)); !errors.Is(err, ErrUnsupportedCost) {
		t.Fatalf("rho replay on basic ledger: %v", err)
	}
}

func TestZCDPForceSpendPricesLikeSpend(t *testing.T) {
	l, err := NewZCDPLedger(1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ForceSpend(EpsCost(0.2)); err != nil { // 0.02 rho
		t.Fatal(err)
	}
	if got, want := l.Spent(), PureToZCDP(0.2); got != want {
		t.Fatalf("replayed pure cost priced %v, want %v", got, want)
	}
}

func TestWindowedLedgerRestorePreservesBoundary(t *testing.T) {
	inner, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	now := base
	clock := func() time.Time { return now }
	l, err := NewWindowedLedger(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	l.SetNow(clock) // boundary at base+60s
	now = base.Add(40 * time.Second)
	if err := l.Spend(EpsCost(0.8)); err != nil {
		t.Fatal(err)
	}
	st, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// "Restart" 10 seconds later, still inside the original window: the
	// restored ledger must NOT grant a fresh window.
	inner2, _ := NewBasicLedger(1)
	l2, err := NewWindowedLedger(inner2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now = base.Add(50 * time.Second)
	l2.SetNow(clock)
	if err := l2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := l2.Spent(); got != 0.8 {
		t.Fatalf("restored spent = %v, want 0.8", got)
	}
	if err := l2.Spend(EpsCost(0.5)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("restart must not refill mid-window: %v", err)
	}
	// Cross the ORIGINAL boundary (base+60s): refill resumes on schedule.
	now = base.Add(61 * time.Second)
	if err := l2.Spend(EpsCost(0.5)); err != nil {
		t.Fatalf("refill at the original boundary: %v", err)
	}
	if got := l2.Spent(); got != 0.5 {
		t.Fatalf("post-refill spent = %v, want 0.5", got)
	}
}

func TestWindowedLedgerRestoreAfterDowntimeRefills(t *testing.T) {
	inner, _ := NewBasicLedger(1)
	base := time.Unix(2000, 0)
	now := base
	clock := func() time.Time { return now }
	l, _ := NewWindowedLedger(inner, time.Minute)
	l.SetNow(clock)
	if err := l.Spend(EpsCost(1)); err != nil {
		t.Fatal(err)
	}
	st, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Downtime crossed the boundary: the restored ledger refills on first
	// use, as it would have live.
	inner2, _ := NewBasicLedger(1)
	l2, _ := NewWindowedLedger(inner2, time.Minute)
	now = base.Add(2 * time.Minute)
	l2.SetNow(clock)
	if err := l2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if err := l2.Spend(EpsCost(0.3)); err != nil {
		t.Fatalf("spend after boundary-crossing downtime: %v", err)
	}
}

func TestWindowedReplayPinsIntoCurrentWindow(t *testing.T) {
	// Crash shape: snapshot at t=0 records boundary B; the boundary
	// passes live (refill), more releases spend the NEW window's budget
	// and land in the WAL; crash; restart after B. Replaying those
	// deductions must not be wiped by the first post-restart roll — that
	// would hand the current window double budget.
	base := time.Unix(3000, 0)
	now := base
	clock := func() time.Time { return now }

	inner, _ := NewBasicLedger(1)
	l, _ := NewWindowedLedger(inner, time.Minute)
	l.SetNow(clock) // boundary B = base+60s
	if err := l.Spend(EpsCost(0.4)); err != nil {
		t.Fatal(err)
	}
	st, err := l.Snapshot() // records next = B, spent 0.4
	if err != nil {
		t.Fatal(err)
	}

	// Restart at base+90s: B passed during the live post-snapshot period.
	inner2, _ := NewBasicLedger(1)
	l2, _ := NewWindowedLedger(inner2, time.Minute)
	now = base.Add(90 * time.Second)
	l2.SetNow(clock)
	if err := l2.Restore(st); err != nil {
		t.Fatal(err)
	}
	// WAL tail: deductions recorded after the pre-crash refill.
	if err := l2.ForceSpend(EpsCost(0.7)); err != nil {
		t.Fatal(err)
	}
	// The replayed spend survives the next live operation (no refill
	// until the NEXT boundary at base+120s).
	if got := l2.Spent(); got < 0.7 {
		t.Fatalf("replayed spend wiped by post-restart roll: %v", got)
	}
	if err := l2.Spend(EpsCost(0.5)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("current window handed out extra budget after replay: %v", err)
	}
	// The following boundary still refills on schedule.
	now = base.Add(121 * time.Second)
	if err := l2.Spend(EpsCost(0.5)); err != nil {
		t.Fatalf("refill at the next boundary: %v", err)
	}
}

func TestWindowedSnapshotRoundTripJSON(t *testing.T) {
	inner, _ := NewZCDPLedger(1, 1e-6)
	l, _ := NewWindowedLedger(inner, time.Hour)
	if err := l.Spend(EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, l).(*WindowedLedger)
	if r.Window() != time.Hour {
		t.Fatalf("window = %v", r.Window())
	}
	if r.Unit() != UnitRho {
		t.Fatalf("unit = %v", r.Unit())
	}
	if r.Spent() != l.Spent() {
		t.Fatalf("spent = %v, want %v", r.Spent(), l.Spent())
	}
	if _, ok := r.Inner().(*ZCDPLedger); !ok {
		t.Fatalf("inner = %T", r.Inner())
	}
}

func TestRestoreLedgerRejectsBadState(t *testing.T) {
	cases := []LedgerState{
		{Kind: "martian", Total: 1},
		{Kind: LedgerBasic, Total: -1},
		{Kind: LedgerBasic, Total: 1, Spent: -0.5},
		{Kind: LedgerZCDP, Total: 0.1, Delta: 0},                // missing delta
		{Kind: LedgerWindowed, WindowNanos: int64(time.Minute)}, // no inner
	}
	for _, st := range cases {
		if _, err := RestoreLedger(st); err == nil {
			t.Errorf("RestoreLedger(%+v) accepted invalid state", st)
		}
	}
}
