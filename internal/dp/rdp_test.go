package dp

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// ---------- curve and conversion fixtures ----------

// A single Gaussian release at known ρ must register exactly ρα at every
// grid order, and the (ε, δ) view must be the hand-computed min over the
// grid of ρα + ln(1/δ)/(α−1).
func TestRDPSingleGaussianFixture(t *testing.T) {
	const (
		rho   = 0.01
		delta = 1e-6
	)
	orders := []float64{2, 4, 8, 16}
	led, err := NewRDPLedger(4, delta, orders)
	if err != nil {
		t.Fatal(err)
	}
	if led.Unit() != UnitRDP {
		t.Fatalf("Unit() = %v, want rdp", led.Unit())
	}
	if got := led.Spent(); got != 0 {
		t.Fatalf("zero-release Spent() = %v, want exactly 0", got)
	}
	if err := led.Spend(RhoCost(rho)); err != nil {
		t.Fatal(err)
	}
	spent := led.SpentByOrder()
	for i, a := range orders {
		if want := rho * a; math.Abs(spent[i]-want) > 1e-15 {
			t.Errorf("spent at alpha=%v: %v, want %v", a, spent[i], want)
		}
	}
	// Hand-computed conversion: min over the grid of ρα + L/(α−1).
	l := math.Log(1 / delta)
	want := math.Inf(1)
	wantAlpha := 0.0
	for _, a := range orders {
		if e := rho*a + l/(a-1); e < want {
			want, wantAlpha = e, a
		}
	}
	if got := led.Spent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Spent() = %v, want hand-computed %v", got, want)
	}
	if got := led.BestOrder(); got != wantAlpha {
		t.Errorf("BestOrder() = %v, want %v", got, wantAlpha)
	}
	if got, want := led.Remaining(), 4-want; math.Abs(got-want) > 1e-12 {
		t.Errorf("Remaining() = %v, want %v", got, want)
	}
}

// Composition of k identical releases is exactly k times the one-release
// curve, per order (Mironov 2017, Proposition 1 — RDP composes by
// addition at each α).
func TestRDPCompositionIsKTimesCurve(t *testing.T) {
	const k = 7
	one, err := NewRDPLedger(100, 1e-6, nil) // huge budget: nothing refused
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRDPLedger(100, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := []Cost{EpsCost(0.3), RhoCost(0.002)}
	for _, c := range costs {
		if err := one.Spend(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		for _, c := range costs {
			if err := many.Spend(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	oneV, manyV := one.SpentByOrder(), many.SpentByOrder()
	for i, a := range one.Orders() {
		if want := float64(k) * oneV[i]; math.Abs(manyV[i]-want) > 1e-12*want {
			t.Errorf("alpha=%v: k releases spent %v, want k*curve = %v", a, manyV[i], want)
		}
	}
}

// The pure-DP pricing must be sound and strictly tighter than the αε²/2
// line zCDP uses, and capped by ε itself.
func TestPureRDPBounds(t *testing.T) {
	for _, tc := range []struct{ alpha, eps float64 }{
		{1.25, 0.001}, {2, 0.01}, {16, 0.05}, {64, 0.005}, {256, 0.001}, {2000, 0.1},
	} {
		got := PureRDP(tc.alpha, tc.eps)
		if !(got > 0) {
			t.Errorf("PureRDP(%v, %v) = %v, want > 0", tc.alpha, tc.eps, got)
		}
		if got > tc.eps {
			t.Errorf("PureRDP(%v, %v) = %v exceeds the D-infinity cap %v", tc.alpha, tc.eps, got, tc.eps)
		}
		if line := tc.alpha * tc.eps * tc.eps / 2; got >= line && got != tc.eps {
			t.Errorf("PureRDP(%v, %v) = %v not below the zCDP line %v", tc.alpha, tc.eps, got, line)
		}
	}
	// Huge αε must not overflow (the log-space sinh identity).
	if got := PureRDP(1e6, 1); math.IsInf(got, 1) || math.IsNaN(got) || got > 1 {
		t.Errorf("PureRDP(1e6, 1) = %v, want finite <= 1", got)
	}
}

// RDPEpsilon against a fully hand-computed fixture.
func TestRDPEpsilonFixture(t *testing.T) {
	orders := []float64{2, 4}
	spent := []float64{0.1, 0.2}
	l := math.Log(1e6)
	// min(0.1 + L/1, 0.2 + L/3): L=13.8..., so alpha=4 wins.
	want := 0.2 + l/3
	got, alpha := RDPEpsilon(orders, spent, 1e-6)
	if math.Abs(got-want) > 1e-12 || alpha != 4 {
		t.Errorf("RDPEpsilon = (%v, %v), want (%v, 4)", got, alpha, want)
	}
	// All-zero spend reads exactly 0.
	if e, a := RDPEpsilon(orders, []float64{0, 0}, 1e-6); e != 0 || a != 0 {
		t.Errorf("zero spend = (%v, %v), want (0, 0)", e, a)
	}
	// +Inf orders (uncovered by a curve cost) drop out.
	if e, a := RDPEpsilon(orders, []float64{0.1, math.Inf(1)}, 1e-6); e != 0.1+l || a != 2 {
		t.Errorf("inf-order conversion = (%v, %v), want (%v, 2)", e, a, 0.1+l)
	}
}

// An explicit curve cost rounds each grid order UP onto the nearest
// covering sample; grid orders above every sample become unusable.
func TestRDPCurveCostRoundsOrderUp(t *testing.T) {
	led, err := NewRDPLedger(50, 1e-6, []float64{2, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Spend(CurveCost(RDPPoint{Alpha: 4, Eps: 0.5}, RDPPoint{Alpha: 2, Eps: 0.1})); err != nil {
		t.Fatal(err)
	}
	spent := led.SpentByOrder()
	if spent[0] != 0.1 { // alpha=2 covered exactly
		t.Errorf("alpha=2 spent %v, want 0.1", spent[0])
	}
	if spent[1] != 0.5 { // alpha=3 rounds up to the alpha=4 sample
		t.Errorf("alpha=3 spent %v, want 0.5 (rounded up to alpha=4)", spent[1])
	}
	if !math.IsInf(spent[2], 1) { // alpha=8 uncovered
		t.Errorf("alpha=8 spent %v, want +Inf (uncovered)", spent[2])
	}
	// The other backends refuse curve costs outright.
	basic, _ := NewBasicLedger(1)
	if err := basic.Spend(CurveCost(RDPPoint{Alpha: 2, Eps: 0.1})); !errors.Is(err, ErrUnsupportedCost) {
		t.Errorf("curve on basic ledger: want ErrUnsupportedCost, got %v", err)
	}
	zcdp, _ := NewZCDPLedger(1, 1e-6)
	if err := zcdp.Spend(CurveCost(RDPPoint{Alpha: 2, Eps: 0.1})); !errors.Is(err, ErrUnsupportedCost) {
		t.Errorf("curve on zcdp ledger: want ErrUnsupportedCost, got %v", err)
	}
}

// ---------- budget enforcement ----------

// Budget exhaustion surfaces as ErrBudgetExhausted via errors.Is with the
// native accounting named in the message, mirroring the Basic and ZCDP
// tests.
func TestRDPLedgerBudgetExhaustion(t *testing.T) {
	led, err := NewRDPLedger(0.5, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	releases := 0
	for i := 0; i < 100000; i++ {
		if lastErr = led.Spend(EpsCost(0.005)); lastErr != nil {
			break
		}
		releases++
	}
	if !errors.Is(lastErr, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", lastErr)
	}
	if !strings.Contains(lastErr.Error(), "RDP") || !strings.Contains(lastErr.Error(), "alpha") {
		t.Errorf("overdraw message lacks native accounting: %q", lastErr.Error())
	}
	// Quadratically more than the pure count of 100, like zCDP.
	if releases < 200 {
		t.Errorf("rdp afforded %d releases at eps0=0.005 under nominal 0.5, want >= 200", releases)
	}
	// Exhausted means the (ε, δ) view is at (or within rounding of) the
	// nominal target and Remaining is ~0.
	if led.Spent() > led.Total()*(1+1e-9) {
		t.Errorf("Spent() = %v exceeded nominal %v", led.Spent(), led.Total())
	}
	// Bad costs are rejected without charge.
	before := led.SpentByOrder()
	if err := led.Spend(EpsCost(-1)); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=-1: want ErrInvalidEpsilon, got %v", err)
	}
	if err := led.Spend(RhoCost(math.Inf(1))); !errors.Is(err, ErrInvalidRho) {
		t.Errorf("rho=+Inf: want ErrInvalidRho, got %v", err)
	}
	after := led.SpentByOrder()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rejected costs moved the ledger at order %d: %v -> %v", i, before[i], after[i])
		}
	}
	led.Reset()
	if led.Spent() != 0 || led.Remaining() != 0.5 {
		t.Errorf("after Reset: spent %v remaining %v", led.Spent(), led.Remaining())
	}
}

func TestRDPLedgerRejectsBadParams(t *testing.T) {
	if _, err := NewRDPLedger(-1, 1e-6, nil); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=-1: got %v", err)
	}
	if _, err := NewRDPLedger(1, 0, nil); !errors.Is(err, ErrInvalidDelta) {
		t.Errorf("delta=0: got %v", err)
	}
	if _, err := NewRDPLedger(1, 1e-6, []float64{1}); !errors.Is(err, ErrInvalidOrder) {
		t.Errorf("order=1: got %v", err)
	}
	if _, err := NewRDPLedger(1, 1e-6, []float64{0.5, 2}); !errors.Is(err, ErrInvalidOrder) {
		t.Errorf("order=0.5: got %v", err)
	}
	// A grid whose largest order cannot certify the target is refused at
	// construction with actionable guidance, not at the first Spend.
	if _, err := NewRDPLedger(0.01, 1e-6, []float64{2, 4}); !errors.Is(err, ErrNoUsableOrder) {
		t.Errorf("uncertifiable grid: got %v", err)
	}
	// RDPOrdersFor extends the grid far enough for the same target.
	if _, err := NewRDPLedger(0.01, 1e-6, RDPOrdersFor(0.01, 1e-6)); err != nil {
		t.Errorf("RDPOrdersFor grid still uncertifiable: %v", err)
	}
}

// ---------- the headline ordering: rdp >= zcdp >= pure ----------

// On a mixed Laplace+Gaussian stream with the same nominal (ε, δ)
// budget, the RDP ledger sustains at least as many releases as the zCDP
// ledger, which sustains more than the pure one — the deterministic core
// of the updp-bench three-way duel. The pure ledger cannot express the
// Gaussian at all, so its stream charges the count in ε instead.
func TestRDPOutlastsZCDPOnMixedWorkload(t *testing.T) {
	const (
		nominal = 0.5
		delta   = 1e-6
		eps0    = 0.005
		rho0    = eps0 * eps0 / 2 // the zCDP price of eps0, so both streams match
	)
	basic, err := NewBasicLedger(nominal)
	if err != nil {
		t.Fatal(err)
	}
	zcdp, err := NewZCDPLedger(nominal, delta)
	if err != nil {
		t.Fatal(err)
	}
	rdp, err := NewRDPLedger(nominal, delta, RDPOrdersFor(nominal, delta))
	if err != nil {
		t.Fatal(err)
	}
	count := func(l Ledger, gaussianNative bool) int {
		n := 0
		for i := 0; i < 1000000; i++ {
			c := EpsCost(eps0)
			if i%2 == 1 && gaussianNative {
				c = RhoCost(rho0)
			}
			if l.Spend(c) != nil {
				return n
			}
			n++
		}
		return -1
	}
	nPure := count(basic, false)
	nZCDP := count(zcdp, true)
	nRDP := count(rdp, true)
	t.Logf("mixed workload sustained: pure=%d zcdp=%d rdp=%d", nPure, nZCDP, nRDP)
	if nPure != 100 {
		t.Errorf("pure sustained %d, want exactly nominal/eps0 = 100", nPure)
	}
	if nZCDP < 2*nPure {
		t.Errorf("zcdp sustained %d, want >= 2x pure's %d", nZCDP, nPure)
	}
	if nRDP < nZCDP {
		t.Errorf("rdp sustained %d < zcdp's %d — the generalized backend must never be looser", nRDP, nZCDP)
	}
}

// Racing spenders must never jointly overdraw: with a budget of exactly
// k releases at one order-independent price, exactly k of k+extra
// succeed. Run with -race.
func TestRDPLedgerConcurrentSpendExact(t *testing.T) {
	const (
		k     = 64
		extra = 64
		rho0  = 1e-4
	)
	// Single order 2: budget(2) = eps − L/(2−1); pick eps so the order-2
	// ceiling is exactly k·2ρ₀ — every Gaussian release costs exactly 2ρ₀
	// there, so the arithmetic is exact like the zCDP twin test.
	delta := 1e-6
	eps := k*2*rho0 + math.Log(1/delta)
	led, err := NewRDPLedger(eps, delta, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var succeeded, refused atomic.Int64
	for i := 0; i < k+extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch err := led.Spend(RhoCost(rho0)); {
			case err == nil:
				succeeded.Add(1)
			case errors.Is(err, ErrBudgetExhausted):
				refused.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if succeeded.Load() != k || refused.Load() != extra {
		t.Errorf("succeeded=%d refused=%d, want %d/%d", succeeded.Load(), refused.Load(), k, extra)
	}
	if got := led.SpentByOrder()[0]; math.Abs(got-k*2*rho0) > 1e-12 {
		t.Errorf("spent at order 2 = %v, want %v", got, k*2*rho0)
	}
}
