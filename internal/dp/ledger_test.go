package dp

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// ---------- conversions ----------

func TestZCDPConversionsRoundTrip(t *testing.T) {
	for _, tc := range []struct{ eps, delta float64 }{
		{0.1, 1e-6}, {1, 1e-6}, {1, 1e-9}, {4, 1e-5}, {0.01, 1e-6},
	} {
		rho := ZCDPRho(tc.eps, tc.delta)
		if !(rho > 0 && rho < tc.eps*tc.eps/2+1e-15) {
			t.Errorf("ZCDPRho(%v, %v) = %v, want in (0, eps^2/2]", tc.eps, tc.delta, rho)
		}
		back := ZCDPEpsilon(rho, tc.delta)
		if math.Abs(back-tc.eps) > 1e-9*tc.eps {
			t.Errorf("ZCDPEpsilon(ZCDPRho(%v,%v)) = %v, want %v", tc.eps, tc.delta, back, tc.eps)
		}
	}
	if got := PureToZCDP(2); got != 2 {
		t.Errorf("PureToZCDP(2) = %v, want 2", got)
	}
}

// Many small pure releases must be quadratically cheaper under zCDP: the
// whole point of the backend. With nominal (eps=1, delta=1e-6) and
// per-release eps0=0.01, basic composition affords 100 releases while the
// zCDP ledger affords rho_total/(eps0^2/2) >> 200.
func TestZCDPAffordsQuadraticallyMoreSmallReleases(t *testing.T) {
	const eps0 = 0.01
	basic, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	zcdp, err := NewZCDPLedger(1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	count := func(l Ledger) int {
		n := 0
		for l.Spend(EpsCost(eps0)) == nil {
			n++
		}
		return n
	}
	nb, nz := count(basic), count(zcdp)
	if nb != 100 {
		t.Errorf("basic ledger afforded %d releases, want 100", nb)
	}
	if nz < 2*nb {
		t.Errorf("zCDP ledger afforded %d releases, want >= 2x basic's %d", nz, nb)
	}
}

// ---------- BasicLedger ----------

func TestBasicLedgerSharesAccountantState(t *testing.T) {
	acct, err := NewAccountant(2)
	if err != nil {
		t.Fatal(err)
	}
	led := acct.Ledger()
	if err := led.Spend(EpsCost(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend(1); err != nil {
		t.Fatal(err)
	}
	if got := led.Spent(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Spent() = %v, want 1.5 (shared state)", got)
	}
	if led.Unit() != UnitEps {
		t.Errorf("Unit() = %v, want %v", led.Unit(), UnitEps)
	}
	if err := led.Spend(EpsCost(1)); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overdraw: want ErrBudgetExhausted, got %v", err)
	}
	// A natively-zCDP cost has no pure-eps guarantee and must be refused
	// without touching the budget.
	if err := led.Spend(RhoCost(0.001)); !errors.Is(err, ErrUnsupportedCost) {
		t.Errorf("rho cost on pure ledger: want ErrUnsupportedCost, got %v", err)
	}
	if got := led.Spent(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("refused costs moved the ledger: spent %v", got)
	}
	led.Reset()
	if got := led.Remaining(); got != 2 {
		t.Errorf("Remaining() after Reset = %v, want 2", got)
	}
}

// ---------- ZCDPLedger ----------

func TestZCDPLedgerPricing(t *testing.T) {
	led, err := NewZCDPLedgerFromRho(0.01, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if led.Unit() != UnitRho {
		t.Errorf("Unit() = %v, want %v", led.Unit(), UnitRho)
	}
	// A pure release at eps=0.1 costs eps^2/2 = 0.005 in rho.
	if err := led.Spend(EpsCost(0.1)); err != nil {
		t.Fatal(err)
	}
	if got := led.Spent(); math.Abs(got-0.005) > 1e-15 {
		t.Errorf("Spent() = %v, want 0.005", got)
	}
	// A native Gaussian release is charged its rho directly.
	if err := led.Spend(RhoCost(0.004)); err != nil {
		t.Fatal(err)
	}
	if got := led.Spent(); math.Abs(got-0.009) > 1e-15 {
		t.Errorf("Spent() = %v, want 0.009", got)
	}
	// Overdraw carries native units in the message.
	err = led.Spend(EpsCost(0.1))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if !strings.Contains(err.Error(), "rho=") || !strings.Contains(err.Error(), "zCDP") {
		t.Errorf("overdraw message lacks native units: %q", err.Error())
	}
	// Bad costs are rejected without charge.
	if err := led.Spend(EpsCost(-1)); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=-1: want ErrInvalidEpsilon, got %v", err)
	}
	if err := led.Spend(RhoCost(math.Inf(1))); !errors.Is(err, ErrInvalidRho) {
		t.Errorf("rho=+Inf: want ErrInvalidRho, got %v", err)
	}
	if got := led.Spent(); math.Abs(got-0.009) > 1e-15 {
		t.Errorf("rejected costs moved the ledger: spent %v", got)
	}
	// The (eps, delta) view grows with spend and never exceeds nominal.
	if se := led.SpentEpsilon(); !(se > 0 && se <= led.NominalEps()+1e-12) {
		t.Errorf("SpentEpsilon() = %v, nominal %v", se, led.NominalEps())
	}
}

func TestZCDPLedgerRejectsBadParams(t *testing.T) {
	if _, err := NewZCDPLedger(-1, 1e-6); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=-1: got %v", err)
	}
	if _, err := NewZCDPLedger(1, 0); !errors.Is(err, ErrInvalidDelta) {
		t.Errorf("delta=0: got %v", err)
	}
	if _, err := NewZCDPLedger(1, 1.5); !errors.Is(err, ErrInvalidDelta) {
		t.Errorf("delta=1.5: got %v", err)
	}
	if _, err := NewZCDPLedgerFromRho(0, 1e-6); !errors.Is(err, ErrInvalidRho) {
		t.Errorf("rho=0: got %v", err)
	}
}

// Racing spenders must never jointly overdraw the rho budget: with a
// budget of exactly k releases, exactly k of k+extra succeed. Run with
// -race; the point is the atomic check-and-deduct.
func TestZCDPLedgerConcurrentSpendExact(t *testing.T) {
	const (
		k     = 64
		extra = 64
		rho0  = 1e-4
	)
	led, err := NewZCDPLedgerFromRho(k*rho0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var succeeded, refused atomic.Int64
	for i := 0; i < k+extra; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the spenders charge natively in rho, half charge pure
			// releases priced at exactly rho0 = eps^2/2.
			var err error
			if i%2 == 0 {
				err = led.Spend(RhoCost(rho0))
			} else {
				err = led.Spend(EpsCost(math.Sqrt(2 * rho0)))
			}
			switch {
			case err == nil:
				succeeded.Add(1)
			case errors.Is(err, ErrBudgetExhausted):
				refused.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if succeeded.Load() != k || refused.Load() != extra {
		t.Errorf("succeeded=%d refused=%d, want %d/%d", succeeded.Load(), refused.Load(), k, extra)
	}
	if got := led.Spent(); math.Abs(got-k*rho0) > 1e-12 {
		t.Errorf("Spent() = %v, want %v", got, k*rho0)
	}
}

// ---------- WindowedLedger ----------

// fakeClock is a race-safe test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedLedgerRefills(t *testing.T) {
	inner, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewWindowedLedger(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	led.SetNow(clk.Now)

	if err := led.Spend(EpsCost(1)); err != nil {
		t.Fatal(err)
	}
	if err := led.Spend(EpsCost(0.5)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want exhausted within window, got %v", err)
	}
	// One window tick later the budget is whole again.
	clk.Advance(61 * time.Second)
	if got := led.Remaining(); got != 1 {
		t.Errorf("Remaining() after tick = %v, want 1", got)
	}
	if err := led.Spend(EpsCost(0.75)); err != nil {
		t.Errorf("post-refill spend: %v", err)
	}
	// Several missed windows refill once, and boundaries stay aligned.
	clk.Advance(10 * time.Minute)
	if got := led.Spent(); got != 0 {
		t.Errorf("Spent() after long gap = %v, want 0", got)
	}
	if led.Unit() != UnitEps || led.Total() != 1 {
		t.Errorf("Unit/Total = %v/%v, want eps/1", led.Unit(), led.Total())
	}
	if _, err := NewWindowedLedger(inner, 0); !errors.Is(err, ErrInvalidWindow) {
		t.Errorf("window=0: got %v", err)
	}
}

func TestWindowedLedgerOverZCDP(t *testing.T) {
	inner, err := NewZCDPLedgerFromRho(0.001, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewWindowedLedger(inner, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	led.SetNow(clk.Now)
	if err := led.Spend(RhoCost(0.001)); err != nil {
		t.Fatal(err)
	}
	if err := led.Spend(RhoCost(0.001)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want exhausted, got %v", err)
	}
	clk.Advance(2 * time.Hour)
	if err := led.Spend(RhoCost(0.001)); err != nil {
		t.Errorf("post-refill native spend: %v", err)
	}
	if led.Unit() != UnitRho {
		t.Errorf("Unit() = %v, want rho", led.Unit())
	}
}

// Refills racing spends must stay consistent: within any single window the
// inner ledger may never overdraw, no matter how the clock advances. Run
// with -race.
func TestWindowedLedgerConcurrentRefillVsSpend(t *testing.T) {
	inner, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewWindowedLedger(inner, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	led.SetNow(clk.Now)

	const spenders = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < spenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := led.Spend(EpsCost(0.3))
				if err != nil && !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected spend error: %v", err)
					return
				}
				// The inner ledger must never report more spent than total
				// (with the boundary tolerance): a refill racing a spend
				// would show up here or under -race.
				if sp := led.Spent(); sp > led.Total()*(1+1e-9) {
					t.Errorf("overdraw: spent %v > total %v", sp, led.Total())
					return
				}
			}
		}()
	}
	// Tick the clock across ~50 window boundaries while the spenders run.
	for i := 0; i < 50; i++ {
		clk.Advance(1100 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// ---------- Gaussian mechanism ----------

func TestGaussianMechanismCalibration(t *testing.T) {
	// sigma = sens/sqrt(2 rho): spot-check the formula and the moments.
	if got := GaussianSigma(1, 0.5); math.Abs(got-1) > 1e-15 {
		t.Fatalf("GaussianSigma(1, 0.5) = %v, want 1", got)
	}
	rng := xrand.New(11)
	const (
		n    = 200000
		rho  = 0.125 // sigma = 2
		want = 2.0
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := Gaussian(rng, 0, 1, rho)
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(std-want) > 0.02 {
		t.Errorf("Gaussian std = %v, want ~%v", std, want)
	}
}
