package dp

import (
	"math"
	"sync"
	"time"
)

// Odometer measures a budget's burn rate over a sliding wall-clock
// window — the operator's "how fast is this tenant spending" needle.
// Each successful deduction reports the ledger's new cumulative spend
// via Observe; Rate answers in native units per second over the window,
// and TimeToExhaustion projects when the remaining budget runs out at
// the current rate.
//
// The odometer deliberately tracks CUMULATIVE spend samples rather than
// deltas: a windowed ledger's Spent can drop on a refill tick, and the
// max(0, ·) below keeps a refill from reading as negative burn.
//
// Safe for concurrent use; the clock is injectable for tests (SetNow).
type Odometer struct {
	mu      sync.Mutex
	window  time.Duration
	now     func() time.Time
	samples []odoSample
}

type odoSample struct {
	t     time.Time
	spent float64
}

// DefaultOdometerWindow is the burn-rate window tenants get.
const DefaultOdometerWindow = 60 * time.Second

// NewOdometer returns an odometer over the given window (<= 0 means
// DefaultOdometerWindow).
func NewOdometer(window time.Duration) *Odometer {
	if window <= 0 {
		window = DefaultOdometerWindow
	}
	return &Odometer{window: window, now: time.Now}
}

// SetNow injects a clock (tests).
func (o *Odometer) SetNow(now func() time.Time) {
	o.mu.Lock()
	o.now = now
	o.mu.Unlock()
}

// Window reports the sliding window length.
func (o *Odometer) Window() time.Duration { return o.window }

// Observe records the ledger's cumulative spend after a deduction.
func (o *Odometer) Observe(spent float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	// Coalesce bursts: samples closer together than window/256 update in
	// place, bounding memory to ~256 samples plus slack regardless of
	// release rate.
	if n := len(o.samples); n > 0 && now.Sub(o.samples[n-1].t) < o.window/256 {
		o.samples[n-1].spent = spent
		return
	}
	o.samples = append(o.samples, odoSample{t: now, spent: spent})
	o.prune(now)
}

// prune drops samples older than the window. Callers hold o.mu.
func (o *Odometer) prune(now time.Time) {
	cut := now.Add(-o.window)
	i := 0
	for i < len(o.samples) && o.samples[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		o.samples = append(o.samples[:0], o.samples[i:]...)
	}
}

// Rate reports the burn rate in native units per second over the
// window: the spend delta between the oldest in-window sample and the
// newest, divided by the time since that oldest sample. Zero when
// nothing in the window is burning.
func (o *Odometer) Rate() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	o.prune(now)
	if len(o.samples) < 2 {
		return 0
	}
	first, last := o.samples[0], o.samples[len(o.samples)-1]
	dt := now.Sub(first.t).Seconds()
	if dt <= 0 {
		return 0
	}
	d := last.spent - first.spent
	if d < 0 {
		d = 0 // a windowed ledger refilled mid-window; burn is not negative
	}
	return d / dt
}

// TimeToExhaustion projects seconds until the remaining budget runs out
// at the current rate: +Inf when idle (rate 0), 0 when already
// exhausted.
func (o *Odometer) TimeToExhaustion(remaining float64) float64 {
	if remaining <= 0 {
		return 0
	}
	r := o.Rate()
	if r <= 0 {
		return math.Inf(1)
	}
	return remaining / r
}
