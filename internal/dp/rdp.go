package dp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file is the Rényi-DP composition backend: accounting over a grid
// of Rényi orders α > 1 (Mironov 2017), where every release is priced as
// a full RDP curve ε(α), the ledger composes per-order vectors by
// addition, and the scalar budget view is the optimal (ε, δ)-DP
// conversion — min over α of the standard RDP→DP bound. RDP subsumes the
// zCDP backend (ρ-zCDP is exactly the linear curve ε(α) = ρα) and is
// strictly tighter on mixed workloads, because the pure-DP→RDP bound it
// prices Laplace releases with (Bun & Steinke 2016, Proposition 3.3)
// lies strictly below the αε²/2 line zCDP is forced to use.

// Rényi-order errors.
var (
	// ErrInvalidOrder reports a Rényi order outside (1, ∞).
	ErrInvalidOrder = errors.New("dp: Rényi order must be > 1 and finite")
	// ErrNoUsableOrder reports an order grid on which no α can certify
	// the requested (ε, δ) target: every order's conversion overhead
	// ln(1/δ)/(α−1) already exceeds ε. The fix is a grid with larger
	// orders (RDPOrdersFor) or a larger ε.
	ErrNoUsableOrder = errors.New("dp: no Rényi order can certify the (eps, delta) target; extend the order grid to larger alpha")
)

// maxRDPOrders bounds the order grid; past this, per-release pricing and
// the status payload cost more than finer conversion wins.
const maxRDPOrders = 1024

// DefaultRDPOrders returns the default Rényi order grid, α from 1.25 to
// 64: dense near 1 (where small-δ conversions of large budgets land) and
// geometric above. The optimal conversion order for a target (ε, δ) is
// α* ≈ 1 + sqrt(ln(1/δ)/ρ) with ρ = ZCDPRho(ε, δ); when that exceeds 64
// — small ε at small δ — use RDPOrdersFor, which extends the grid to
// bracket it.
func DefaultRDPOrders() []float64 {
	return []float64{
		1.25, 1.5, 1.75, 2, 2.25, 2.5, 2.75, 3, 3.5, 4, 4.5, 5,
		6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64,
	}
}

// RDPOrdersFor returns an order grid tuned to a nominal (eps, delta)
// target: the default grid, extended geometrically until it brackets
// twice the optimal conversion order α* = 1 + sqrt(ln(1/δ)/ρ(ε, δ)). A
// grid that stops short of α* pays a discretization penalty that can
// leave RDP looser than zCDP; bracketing α* guarantees the conversion is
// at least as tight.
func RDPOrdersFor(eps, delta float64) []float64 {
	orders := DefaultRDPOrders()
	if CheckEpsilon(eps) != nil || CheckDelta(delta) != nil {
		return orders
	}
	rho := ZCDPRho(eps, delta)
	if rho <= 0 {
		return orders
	}
	target := 2 * (1 + math.Sqrt(math.Log(1/delta)/rho))
	for a := orders[len(orders)-1]; a < target && len(orders) < maxRDPOrders; {
		a *= 1.15
		orders = append(orders, a)
	}
	return orders
}

// lnCosh computes ln(cosh(x)) without overflow: x + ln(1+e^(−2x)) − ln 2.
func lnCosh(x float64) float64 {
	if x < 0 {
		x = -x
	}
	return x + math.Log1p(math.Exp(-2*x)) - math.Ln2
}

// PureRDP prices a pure ε-DP release at Rényi order α: the minimum of the
// trivial bound ε (Rényi divergence is dominated by D∞) and the tight
// randomized-response bound of Bun & Steinke 2016, Proposition 3.3,
//
//	(1/(α−1)) · ln( (sinh(αε) − sinh((α−1)ε)) / sinh(ε) ),
//
// evaluated in log-space via sinh a − sinh b = 2·cosh((a+b)/2)·sinh((a−b)/2)
// so large αε cannot overflow. The bound lies strictly below the αε²/2
// line the zCDP backend prices pure releases with, which is exactly where
// the RDP ledger's advantage on Laplace-heavy workloads comes from.
func PureRDP(alpha, eps float64) float64 {
	if alpha <= 1 || eps <= 0 {
		return math.Inf(1)
	}
	// sinh(αε)−sinh((α−1)ε) = 2·cosh((2α−1)ε/2)·sinh(ε/2) and
	// sinh(ε) = 2·sinh(ε/2)·cosh(ε/2), so the ratio is
	// cosh((2α−1)ε/2)/cosh(ε/2).
	bs := (lnCosh((2*alpha-1)*eps/2) - lnCosh(eps/2)) / (alpha - 1)
	return math.Min(eps, bs)
}

// GaussianRDP prices a ρ-zCDP release (the Gaussian mechanism) at Rényi
// order α: ε(α) = ρα, the defining curve of zCDP (Bun & Steinke 2016).
func GaussianRDP(alpha, rho float64) float64 { return rho * alpha }

// RDPToDP converts one point of an RDP guarantee into approximate DP:
// (α, εα)-RDP implies (εα + ln(1/δ)/(α−1), δ)-DP for every δ in (0, 1)
// (Mironov 2017, Proposition 3). The ledger takes the min over its grid.
func RDPToDP(epsAlpha, alpha, delta float64) float64 {
	return epsAlpha + math.Log(1/delta)/(alpha-1)
}

// RDPEpsilon is the optimal (ε, δ)-DP reading of a composed per-order
// spend vector: min over the grid of RDPToDP, with an all-zero spend
// reading exactly 0 (no release has happened). It also reports the
// arg-min order — the α currently doing the certifying (0 when spend is
// zero). Orders whose spend is +Inf (a curve cost that did not cover
// them) are skipped.
func RDPEpsilon(orders, spent []float64, delta float64) (eps, bestOrder float64) {
	zero := true
	for _, s := range spent {
		if s != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0, 0
	}
	eps = math.Inf(1)
	for i, a := range orders {
		if math.IsInf(spent[i], 1) {
			continue
		}
		if e := RDPToDP(spent[i], a, delta); e < eps {
			eps, bestOrder = e, a
		}
	}
	return eps, bestOrder
}

// checkOrders validates, sorts, and dedupes an order grid.
func checkOrders(orders []float64) ([]float64, error) {
	if len(orders) == 0 {
		orders = DefaultRDPOrders()
	}
	if len(orders) > maxRDPOrders {
		return nil, fmt.Errorf("%w: %d orders exceeds the cap %d", ErrInvalidOrder, len(orders), maxRDPOrders)
	}
	out := make([]float64, 0, len(orders))
	for _, a := range orders {
		if !(a > 1) || math.IsInf(a, 1) || math.IsNaN(a) {
			return nil, fmt.Errorf("%w: got %v", ErrInvalidOrder, a)
		}
		out = append(out, a)
	}
	sort.Float64s(out)
	dedup := out[:1]
	for _, a := range out[1:] {
		if a != dedup[len(dedup)-1] {
			dedup = append(dedup, a)
		}
	}
	return dedup, nil
}

// RDPLedger accounts in Rényi DP over a fixed grid of orders: every
// release contributes its full RDP curve sampled at the grid, the
// per-order spends add under composition (Mironov 2017, Proposition 1),
// and a release is affordable while at least one order's accumulated
// spend still converts to at most the nominal ε at the ledger's δ. The
// scalar Ledger views (Spent, Remaining, Total) report the (ε, δ)-DP
// conversion — the number an operator compares against the nominal
// target; SpentByOrder exposes the native per-order vector.
//
// Pricing: a pure ε cost contributes PureRDP(α, ε) at each order, a
// native ρ cost (Gaussian) contributes ρα, and an explicit Cost.Curve
// contributes, at each grid order, the smallest curve sample at an order
// ≥ the grid's (RDP is non-decreasing in α, so rounding the order up is
// sound); grid orders above every sample get +Inf and drop out of the
// conversion.
type RDPLedger struct {
	mu     sync.Mutex
	orders []float64 // ascending, > 1
	spent  []float64 // per-order cumulative RDP spend
	budget []float64 // per-order ceilings: ε − ln(1/δ)/(α−1); ≤ 0 means unusable
	eps    float64   // nominal ε target
	delta  float64
}

// NewRDPLedger returns an RDP ledger targeting (eps, delta)-DP over the
// given order grid (nil or empty means DefaultRDPOrders). It fails with
// ErrNoUsableOrder when no order on the grid can certify the target even
// at zero spend — the grid needs larger α (see RDPOrdersFor).
func NewRDPLedger(eps, delta float64, orders []float64) (*RDPLedger, error) {
	if err := CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := CheckDelta(delta); err != nil {
		return nil, err
	}
	grid, err := checkOrders(orders)
	if err != nil {
		return nil, err
	}
	l := &RDPLedger{
		orders: grid,
		spent:  make([]float64, len(grid)),
		budget: make([]float64, len(grid)),
		eps:    eps,
		delta:  delta,
	}
	usable := false
	for i, a := range grid {
		l.budget[i] = eps - math.Log(1/delta)/(a-1)
		if l.budget[i] > 0 {
			usable = true
		}
	}
	if !usable {
		return nil, fmt.Errorf("%w: max order %v gives conversion overhead %v > eps %v at delta %v",
			ErrNoUsableOrder, grid[len(grid)-1], math.Log(1/delta)/(grid[len(grid)-1]-1), eps, delta)
	}
	return l, nil
}

// curve prices a cost as a per-order RDP vector.
func (l *RDPLedger) curve(c Cost) ([]float64, error) {
	v := make([]float64, len(l.orders))
	switch {
	case len(c.Curve) > 0:
		for _, p := range c.Curve {
			if !(p.Alpha > 1) || math.IsNaN(p.Alpha) {
				return nil, fmt.Errorf("%w: curve point at alpha %v", ErrInvalidOrder, p.Alpha)
			}
			if p.Eps < 0 || math.IsNaN(p.Eps) {
				return nil, fmt.Errorf("%w: curve eps %v at alpha %v", ErrInvalidEpsilon, p.Eps, p.Alpha)
			}
		}
		for i, a := range l.orders {
			// Round the order UP onto the curve: an (α', ε')-RDP guarantee
			// with α' ≥ α implies (α, ε')-RDP, because a valid RDP curve is
			// non-decreasing in α. Orders past every sample are uncovered.
			best := math.Inf(1)
			for _, p := range c.Curve {
				if p.Alpha >= a && p.Eps < best {
					best = p.Eps
				}
			}
			v[i] = best
		}
	case c.Rho != 0:
		if err := CheckRho(c.Rho); err != nil {
			return nil, err
		}
		for i, a := range l.orders {
			v[i] = GaussianRDP(a, c.Rho)
		}
	default:
		if err := CheckEpsilon(c.Eps); err != nil {
			return nil, err
		}
		for i, a := range l.orders {
			v[i] = PureRDP(a, c.Eps)
		}
	}
	return v, nil
}

// Spend atomically charges one release: the cost's RDP curve is added to
// every order, and the charge is affordable while at least one order
// stays within its per-order ceiling ε − ln(1/δ)/(α−1) — equivalently,
// while the composed spend still converts to at most the nominal (ε, δ).
func (l *RDPLedger) Spend(c Cost) error {
	v, err := l.curve(c)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ok := false
	for i := range l.orders {
		// Tolerate float rounding at the boundary, as the other backends do.
		if l.budget[i] > 0 && l.spent[i]+v[i] <= l.budget[i]*(1+1e-12) {
			ok = true
			break
		}
	}
	if !ok {
		spentEps, _ := RDPEpsilon(l.orders, l.spent, l.delta)
		return fmt.Errorf("%w: spent eps(delta)=%v + requested %v > total eps=%v (RDP over %d orders alpha in [%v, %v], delta=%v)",
			ErrBudgetExhausted, spentEps, c, l.eps, len(l.orders), l.orders[0], l.orders[len(l.orders)-1], l.delta)
	}
	for i := range l.spent {
		l.spent[i] += v[i]
	}
	return nil
}

// Remaining reports the unspent budget in the (ε, δ) view: nominal ε
// minus the conversion of the spend so far (never negative).
func (l *RDPLedger) Remaining() float64 {
	r := l.eps - l.Spent()
	if r < 0 {
		return 0
	}
	return r
}

// Spent reports the spend so far in the (ε, δ) view: the optimal
// conversion min over α of spent(α) + ln(1/δ)/(α−1), exactly 0 before
// the first release.
func (l *RDPLedger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, _ := RDPEpsilon(l.orders, l.spent, l.delta)
	return e
}

// Total reports the nominal ε target — the (ε, δ)-DP guarantee that
// holds even when the ledger is fully spent.
func (l *RDPLedger) Total() float64 { return l.eps }

// Unit reports Rényi-DP accounting. The scalar views (Spent, Remaining,
// Total) are in converted (ε, δ)-DP units at the ledger's δ; the native
// state is the per-order vector (SpentByOrder).
func (l *RDPLedger) Unit() Unit { return UnitRDP }

// Reset refills the budget: the per-order spend vector zeroes.
func (l *RDPLedger) Reset() {
	l.mu.Lock()
	for i := range l.spent {
		l.spent[i] = 0
	}
	l.mu.Unlock()
}

// Delta reports the approximation parameter the conversion uses.
func (l *RDPLedger) Delta() float64 { return l.delta }

// NominalEps reports the ε target (same number as Total, named for
// symmetry with ZCDPLedger).
func (l *RDPLedger) NominalEps() float64 { return l.eps }

// SpentEpsilon reports the (ε, δ)-DP conversion of the spend so far —
// the same number as Spent, named for symmetry with ZCDPLedger.
func (l *RDPLedger) SpentEpsilon() float64 { return l.Spent() }

// Orders returns the ledger's order grid (ascending; a copy).
func (l *RDPLedger) Orders() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.orders...)
}

// SpentByOrder returns the native per-order RDP spend vector, parallel
// to Orders (a copy).
func (l *RDPLedger) SpentByOrder() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.spent...)
}

// BestOrder reports the order whose conversion currently certifies the
// spend — the arg-min α of the (ε, δ) view — or 0 before the first
// release.
func (l *RDPLedger) BestOrder() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, a := RDPEpsilon(l.orders, l.spent, l.delta)
	return a
}
