package dp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the pluggable composition layer: every release path in the
// repository (updp.Estimator, dpsql.DB, the serve tenants) charges its
// privacy cost to a Ledger rather than to the concrete Accountant, so the
// composition theorem in force — basic composition of pure ε (Lemma 2.2),
// zCDP composition (Bun & Steinke 2016), or a renewable window over either
// — is a per-ledger choice instead of a repository-wide constant.

// Ledger errors.
var (
	// ErrInvalidRho reports a non-positive or non-finite zCDP budget.
	ErrInvalidRho = errors.New("dp: rho must be positive and finite")
	// ErrInvalidDelta reports an approximation parameter outside (0, 1).
	ErrInvalidDelta = errors.New("dp: delta must be in (0, 1)")
	// ErrUnsupportedCost reports a release whose cost the ledger's
	// composition backend cannot account (e.g. a natively-zCDP Gaussian
	// release charged to a pure-ε ledger: the Gaussian mechanism satisfies
	// no finite pure-ε guarantee, so a pure ledger must refuse it).
	ErrUnsupportedCost = errors.New("dp: cost not representable in this ledger's composition backend")
	// ErrInvalidWindow reports a non-positive refill window.
	ErrInvalidWindow = errors.New("dp: refill window must be positive")
)

// CheckRho validates a zCDP budget.
func CheckRho(rho float64) error {
	if !(rho > 0) || math.IsInf(rho, 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidRho, rho)
	}
	return nil
}

// CheckDelta validates an approximation parameter.
func CheckDelta(delta float64) error {
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidDelta, delta)
	}
	return nil
}

// Unit names a ledger's native accounting unit.
type Unit string

// Accounting units.
const (
	// UnitEps is pure-DP ε (basic composition).
	UnitEps Unit = "eps"
	// UnitRho is zero-concentrated-DP ρ.
	UnitRho Unit = "rho"
	// UnitRDP is Rényi-DP accounting over an order grid. The native state
	// is a per-order vector (RDPLedger.SpentByOrder); the scalar Ledger
	// views are the optimal (ε, δ)-DP conversion at the ledger's δ.
	UnitRDP Unit = "rdp"
)

// RDPPoint is one sample of a mechanism's Rényi-DP curve: the mechanism
// satisfies (Alpha, Eps)-RDP.
type RDPPoint struct {
	Alpha float64 `json:"alpha"`
	Eps   float64 `json:"eps"`
}

// Cost is the privacy price of one release, in the units the mechanism's
// guarantee is stated in: pure-ε-DP mechanisms (Laplace, exponential, SVT
// — everything the paper builds on) carry Eps; natively-zCDP mechanisms
// (Gaussian) carry Rho; a mechanism whose guarantee is stated as a full
// Rényi curve (e.g. subsampled or otherwise exotically-composed releases)
// carries Curve. Exactly one representation is set; each ledger converts
// the cost into its own unit, or refuses it when no sound conversion
// exists (only the RDP backend can account an arbitrary Curve).
type Cost struct {
	Eps   float64    `json:"eps,omitempty"`   // pure-DP ε (zero when the release is charged in ρ or a curve)
	Rho   float64    `json:"rho,omitempty"`   // zCDP ρ (zero when the release is charged in ε or a curve)
	Curve []RDPPoint `json:"curve,omitempty"` // native RDP curve samples ε(α)
}

// EpsCost is the cost of a pure ε-DP release.
func EpsCost(eps float64) Cost { return Cost{Eps: eps} }

// RhoCost is the cost of a natively ρ-zCDP release.
func RhoCost(rho float64) Cost { return Cost{Rho: rho} }

// CurveCost is the cost of a release whose guarantee is a sampled RDP
// curve: the release satisfies (Alpha, Eps)-RDP at every point. Only the
// RDP backend can account it.
func CurveCost(points ...RDPPoint) Cost { return Cost{Curve: points} }

// String renders the cost in its native unit.
func (c Cost) String() string {
	if len(c.Curve) > 0 {
		return fmt.Sprintf("rdp-curve[%d points]", len(c.Curve))
	}
	if c.Rho != 0 {
		return fmt.Sprintf("rho=%v", c.Rho)
	}
	return fmt.Sprintf("eps=%v", c.Eps)
}

// Ledger is a composition backend: it prices releases, enforces a total
// budget with an atomic check-and-deduct, and reports spend in its native
// unit (Unit). Implementations must be safe for concurrent use — racing
// Spend calls may never jointly overdraw, the property every multi-release
// caller (Estimator, dpsql, the serve tenants) rests on.
type Ledger interface {
	// Spend atomically charges one release, failing with a wrapped
	// ErrBudgetExhausted (message in native units) on overdraw and with
	// ErrUnsupportedCost when the backend cannot soundly account the cost.
	Spend(c Cost) error
	// Remaining reports the unspent budget in native units (never negative).
	Remaining() float64
	// Spent reports the cumulative spend in native units.
	Spent() float64
	// Total reports the budget ceiling in native units.
	Total() float64
	// Unit names the native accounting unit.
	Unit() Unit
	// Reset refills the budget to Total (the windowed decorator's refill
	// primitive; it is NOT free post-processing — only a policy layer that
	// deliberately renews budgets, like WindowedLedger, may call it).
	Reset()
}

// ---------- conversions (Bun & Steinke 2016) ----------

// PureToZCDP converts a pure ε-DP guarantee into zCDP: an ε-DP mechanism
// satisfies (ε²/2)-zCDP (Bun & Steinke, Proposition 1.4). This is how a
// zCDP ledger prices the repository's Laplace-based releases.
func PureToZCDP(eps float64) float64 { return eps * eps / 2 }

// ZCDPEpsilon converts a ρ-zCDP guarantee into approximate DP: ρ-zCDP
// implies (ρ + 2·sqrt(ρ·ln(1/δ)), δ)-DP for every δ in (0, 1)
// (Bun & Steinke, Proposition 1.3).
func ZCDPEpsilon(rho, delta float64) float64 {
	if rho <= 0 {
		return 0
	}
	return rho + 2*math.Sqrt(rho*math.Log(1/delta))
}

// ZCDPRho inverts ZCDPEpsilon: the largest ρ whose zCDP guarantee still
// implies (eps, delta)-DP. Solving ρ + 2·sqrt(ρ·L) = ε with L = ln(1/δ)
// for sqrt(ρ) gives sqrt(ρ) = sqrt(L+ε) − sqrt(L).
func ZCDPRho(eps, delta float64) float64 {
	l := math.Log(1 / delta)
	s := math.Sqrt(l+eps) - math.Sqrt(l)
	return s * s
}

// ---------- BasicLedger: pure-ε basic composition ----------

// BasicLedger is the pure-ε composition backend (Lemma 2.2): costs add
// linearly and only pure-DP releases are accepted. It is a Ledger view of
// an Accountant and shares its state, so legacy Accountant holders and
// Ledger callers deduct from the same budget.
type BasicLedger struct{ acct *Accountant }

// NewBasicLedger returns a pure-ε ledger with the given total budget.
func NewBasicLedger(totalEps float64) (*BasicLedger, error) {
	acct, err := NewAccountant(totalEps)
	if err != nil {
		return nil, err
	}
	return &BasicLedger{acct: acct}, nil
}

// Ledger returns the accountant's Ledger view; both sides share one budget.
func (a *Accountant) Ledger() *BasicLedger { return &BasicLedger{acct: a} }

// Accountant returns the underlying shared accountant.
func (l *BasicLedger) Accountant() *Accountant { return l.acct }

// Spend charges a pure-ε release under basic composition. A native ρ or
// RDP-curve cost is refused: neither mechanism class has a finite pure-ε
// guarantee.
func (l *BasicLedger) Spend(c Cost) error {
	if c.Rho != 0 || len(c.Curve) > 0 {
		return fmt.Errorf("%w: pure-eps ledger cannot account a %v cost", ErrUnsupportedCost, c)
	}
	return l.acct.Spend(c.Eps)
}

// Remaining reports the unspent ε.
func (l *BasicLedger) Remaining() float64 { return l.acct.Remaining() }

// Spent reports the cumulative ε spend.
func (l *BasicLedger) Spent() float64 { return l.acct.Spent() }

// Total reports the ε ceiling.
func (l *BasicLedger) Total() float64 { return l.acct.Total() }

// Unit reports pure-DP ε.
func (l *BasicLedger) Unit() Unit { return UnitEps }

// Reset refills the budget to Total.
func (l *BasicLedger) Reset() { l.acct.Reset() }

// ---------- ZCDPLedger: zero-concentrated DP composition ----------

// ZCDPLedger accounts in zCDP ρ, where composition is additive in ρ and a
// pure ε-DP release costs only ε²/2 (PureToZCDP) — so k releases at ε₀
// each cost k·ε₀²/2 instead of k·ε₀, a quadratic win for the many-small-
// releases traffic a long-lived service sees. Natively-zCDP mechanisms
// (Gaussian) are charged their ρ directly. The total is derived from a
// nominal (ε, δ) target via ZCDPRho, so exhausting the ledger never
// exceeds (ε, δ)-DP overall.
type ZCDPLedger struct {
	mu       sync.Mutex
	totalRho float64
	spentRho float64
	eps      float64 // nominal ε the budget was derived from
	delta    float64
}

// NewZCDPLedger returns a ρ-ledger whose total is the largest ρ still
// implying (eps, delta)-DP.
func NewZCDPLedger(eps, delta float64) (*ZCDPLedger, error) {
	if err := CheckEpsilon(eps); err != nil {
		return nil, err
	}
	if err := CheckDelta(delta); err != nil {
		return nil, err
	}
	return &ZCDPLedger{totalRho: ZCDPRho(eps, delta), eps: eps, delta: delta}, nil
}

// NewZCDPLedgerFromRho returns a ρ-ledger with an explicit ρ total; the
// nominal ε is the (ε, delta)-DP translation of spending it all.
func NewZCDPLedgerFromRho(totalRho, delta float64) (*ZCDPLedger, error) {
	if err := CheckRho(totalRho); err != nil {
		return nil, err
	}
	if err := CheckDelta(delta); err != nil {
		return nil, err
	}
	return &ZCDPLedger{totalRho: totalRho, eps: ZCDPEpsilon(totalRho, delta), delta: delta}, nil
}

// rho prices a cost in ρ. An arbitrary RDP curve is refused: zCDP
// requires ε(α) ≤ ρα at EVERY order, which sampled curve points cannot
// promise — the RDP ledger is the backend for those.
func (l *ZCDPLedger) rho(c Cost) (float64, error) {
	if len(c.Curve) > 0 {
		return 0, fmt.Errorf("%w: zCDP ledger cannot account an RDP-curve cost %v", ErrUnsupportedCost, c)
	}
	if c.Rho != 0 {
		if err := CheckRho(c.Rho); err != nil {
			return 0, err
		}
		return c.Rho, nil
	}
	if err := CheckEpsilon(c.Eps); err != nil {
		return 0, err
	}
	return PureToZCDP(c.Eps), nil
}

// Spend atomically charges one release in ρ.
func (l *ZCDPLedger) Spend(c Cost) error {
	rho, err := l.rho(c)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Tolerate float rounding at the boundary, as the Accountant does.
	if l.spentRho+rho > l.totalRho*(1+1e-12) {
		return fmt.Errorf("%w: spent rho=%v + requested rho=%v > total rho=%v (zCDP, delta=%v)",
			ErrBudgetExhausted, l.spentRho, rho, l.totalRho, l.delta)
	}
	l.spentRho += rho
	return nil
}

// Remaining reports the unspent ρ (never negative).
func (l *ZCDPLedger) Remaining() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.totalRho - l.spentRho
	if r < 0 {
		return 0
	}
	return r
}

// Spent reports the cumulative ρ spend.
func (l *ZCDPLedger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spentRho
}

// Total reports the ρ ceiling.
func (l *ZCDPLedger) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalRho
}

// Unit reports zCDP ρ.
func (l *ZCDPLedger) Unit() Unit { return UnitRho }

// Reset refills the budget to Total.
func (l *ZCDPLedger) Reset() {
	l.mu.Lock()
	l.spentRho = 0
	l.mu.Unlock()
}

// Delta reports the approximation parameter the (ε, δ) view uses.
func (l *ZCDPLedger) Delta() float64 { return l.delta }

// NominalEps reports the ε target the total ρ was derived from: the
// (ε, δ)-DP guarantee that holds even when the ledger is fully spent.
func (l *ZCDPLedger) NominalEps() float64 { return l.eps }

// SpentEpsilon reports the (ε, δ)-DP translation of the spend so far
// (ZCDPEpsilon at the ledger's δ) — the number callers compare against the
// nominal ε.
func (l *ZCDPLedger) SpentEpsilon() float64 { return ZCDPEpsilon(l.Spent(), l.delta) }

// ---------- WindowedLedger: renewable budgets ----------

// WindowedLedger decorates any inner ledger with a fixed wall-clock refill
// window: at every window boundary the inner budget resets to full, making
// a long-lived tenant's budget a rate ("ε per hour") instead of a lifetime
// total. The privacy reading: each window is one accounted release period;
// the guarantee holds per window, and an adversary observing w windows
// faces at most w-fold composition of the window budget — the standard
// operating model for renewable DP budgets in production services.
//
// All access is serialized through the decorator's own mutex, so refills
// can never race a spend into overdraw.
type WindowedLedger struct {
	mu     sync.Mutex
	inner  Ledger
	window time.Duration
	now    func() time.Time
	next   time.Time // next refill boundary
}

// NewWindowedLedger wraps inner with a refill window.
func NewWindowedLedger(inner Ledger, window time.Duration) (*WindowedLedger, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: got %v", ErrInvalidWindow, window)
	}
	l := &WindowedLedger{inner: inner, window: window, now: time.Now}
	l.next = l.now().Add(window)
	return l, nil
}

// SetNow injects a clock for tests. Call before the ledger is shared
// between goroutines; the next boundary is re-anchored to the new clock.
func (l *WindowedLedger) SetNow(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.next = now().Add(l.window)
}

// roll refills the inner ledger when one or more window boundaries have
// passed. Callers hold l.mu.
func (l *WindowedLedger) roll() {
	now := l.now()
	if now.Before(l.next) {
		return
	}
	l.inner.Reset()
	// Advance to the first boundary strictly after now in O(1), keeping
	// boundaries phase-aligned to the creation instant.
	missed := now.Sub(l.next)/l.window + 1
	l.next = l.next.Add(missed * l.window)
}

// Spend refills if a boundary passed, then charges the inner ledger.
func (l *WindowedLedger) Spend(c Cost) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll()
	return l.inner.Spend(c)
}

// Remaining reports the unspent budget in the current window.
func (l *WindowedLedger) Remaining() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll()
	return l.inner.Remaining()
}

// Spent reports the spend within the current window.
func (l *WindowedLedger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll()
	return l.inner.Spent()
}

// Total reports the per-window budget.
func (l *WindowedLedger) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Total()
}

// Unit reports the inner ledger's unit.
func (l *WindowedLedger) Unit() Unit { return l.inner.Unit() }

// Reset refills immediately and restarts the window from now.
func (l *WindowedLedger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Reset()
	l.next = l.now().Add(l.window)
}

// Inner returns the decorated ledger (for status reporting).
func (l *WindowedLedger) Inner() Ledger { return l.inner }

// Window returns the refill period.
func (l *WindowedLedger) Window() time.Duration { return l.window }
