package dp

import (
	"math"
	"testing"
)

// TestParallelCostIdentity: at bound <= 1 the grouped release costs
// exactly the per-group cost, whatever its representation.
func TestParallelCostIdentity(t *testing.T) {
	costs := []Cost{
		EpsCost(0.7),
		RhoCost(0.02),
		CurveCost(RDPPoint{Alpha: 2, Eps: 0.1}, RDPPoint{Alpha: 8, Eps: 0.4}),
	}
	for _, c := range costs {
		for _, b := range []int{0, 1} {
			got := ParallelCost(c, b)
			if got.Eps != c.Eps || got.Rho != c.Rho || len(got.Curve) != len(c.Curve) {
				t.Fatalf("ParallelCost(%v, %d) = %v, want identity", c, b, got)
			}
			for i := range c.Curve {
				if got.Curve[i] != c.Curve[i] {
					t.Fatalf("ParallelCost(%v, %d) curve point %d changed", c, b, i)
				}
			}
		}
	}
}

// TestParallelCostSequentialFallback: bound > 1 scales every
// representation by the bound, and zero fields stay zero (exactly one
// representation remains set).
func TestParallelCostSequentialFallback(t *testing.T) {
	if got := ParallelCost(EpsCost(0.25), 3); got.Eps != 0.75 || got.Rho != 0 || got.Curve != nil {
		t.Fatalf("eps fallback: got %+v", got)
	}
	if got := ParallelCost(RhoCost(0.01), 4); got.Rho != 0.04 || got.Eps != 0 || got.Curve != nil {
		t.Fatalf("rho fallback: got %+v", got)
	}
	in := CurveCost(RDPPoint{Alpha: 2, Eps: 0.1}, RDPPoint{Alpha: 16, Eps: 0.9})
	got := ParallelCost(in, 2)
	if got.Eps != 0 || got.Rho != 0 || len(got.Curve) != 2 {
		t.Fatalf("curve fallback: got %+v", got)
	}
	for i, p := range in.Curve {
		if got.Curve[i].Alpha != p.Alpha || got.Curve[i].Eps != 2*p.Eps {
			t.Fatalf("curve point %d: got %+v, want alpha=%v eps=%v", i, got.Curve[i], p.Alpha, 2*p.Eps)
		}
	}
	if in.Curve[0].Eps != 0.1 {
		t.Fatal("ParallelCost mutated its input curve")
	}
}

// TestParallelCostAllLedgers: the scaled cost stays representable in
// every backend that accepted the per-group cost — a pure-ε per-group
// cost lands on pure, zcdp, and rdp ledgers; a ρ cost on zcdp and rdp;
// a curve cost on rdp — and the spend equals the scaled amount.
func TestParallelCostAllLedgers(t *testing.T) {
	per := EpsCost(0.1)
	cost := ParallelCost(per, 2) // 0.2 eps total

	bl, err := NewBasicLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.Spend(cost); err != nil {
		t.Fatalf("pure ledger refused parallel cost: %v", err)
	}
	if got := bl.Spent(); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("pure spend = %v, want 0.2", got)
	}

	zl, err := NewZCDPLedger(4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := zl.Spend(cost); err != nil {
		t.Fatalf("zcdp ledger refused parallel cost: %v", err)
	}
	if got, want := zl.Spent(), PureToZCDP(0.2); math.Abs(got-want) > 1e-15 {
		t.Fatalf("zcdp spend = %v, want %v", got, want)
	}

	rl, err := NewRDPLedger(1, 1e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.Spend(cost); err != nil {
		t.Fatalf("rdp ledger refused parallel cost: %v", err)
	}
	orders := rl.Orders()
	for i, s := range rl.SpentByOrder() {
		if want := PureRDP(orders[i], 0.2); math.Abs(s-want) > 1e-12 {
			t.Fatalf("rdp spend at alpha=%v: %v, want %v", orders[i], s, want)
		}
	}

	// A scaled curve cost is still only representable on rdp.
	curve := ParallelCost(CurveCost(RDPPoint{Alpha: 2, Eps: 0.001}), 3)
	if err := bl.Spend(curve); err == nil {
		t.Fatal("pure ledger accepted a curve cost")
	}
	rl2, err := NewRDPLedger(20, 1e-6, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rl2.Spend(curve); err != nil {
		t.Fatalf("rdp refused scaled curve: %v", err)
	}
	if got := rl2.SpentByOrder()[0]; math.Abs(got-0.003) > 1e-15 {
		t.Fatalf("rdp curve spend = %v, want 0.003", got)
	}
}
