package dp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestCheckEpsilon(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if CheckEpsilon(bad) == nil {
			t.Errorf("CheckEpsilon(%v) should fail", bad)
		}
	}
	if CheckEpsilon(0.5) != nil {
		t.Error("CheckEpsilon(0.5) should pass")
	}
}

func TestCheckBeta(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.1, 1.5, math.NaN()} {
		if CheckBeta(bad) == nil {
			t.Errorf("CheckBeta(%v) should fail", bad)
		}
	}
	if CheckBeta(1.0/3) != nil {
		t.Error("CheckBeta(1/3) should pass")
	}
}

func TestLaplaceMechanismUnbiased(t *testing.T) {
	rng := xrand.New(1)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += Laplace(rng, 10, 1, 0.5)
	}
	if got := sum / trials; math.Abs(got-10) > 0.1 {
		t.Errorf("mean release = %v, want ~10", got)
	}
}

func TestLaplaceTail(t *testing.T) {
	// t = scale*ln(1/beta): at beta=e^-1, t=scale.
	if got := LaplaceTail(2, math.Exp(-1)); math.Abs(got-2) > 1e-12 {
		t.Errorf("LaplaceTail = %v", got)
	}
}

func TestAmplificationRoundTrip(t *testing.T) {
	for _, eta := range []float64{0.01, 0.1, 0.5} {
		for _, eps := range []float64{0.1, 0.5, 1} {
			sub := SubsampleBudget(eps, eta)
			back := AmplifiedEps(sub, eta)
			if math.Abs(back-eps) > 1e-12 {
				t.Errorf("eta=%v eps=%v: round trip %v", eta, eps, back)
			}
			if sub < eps {
				t.Errorf("subsample budget %v should exceed total %v", sub, eps)
			}
		}
	}
	// Small-eps approximation: amplified ~ eta*eps.
	if got := AmplifiedEps(0.001, 0.1); math.Abs(got-0.0001) > 1e-6 {
		t.Errorf("small-eps amplification = %v", got)
	}
	if got := SubsampleBudget(1, 1); got != 1 {
		t.Errorf("eta=1 should be identity, got %v", got)
	}
}

func TestAccountant(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overdraw should fail, got %v", err)
	}
	if err := a.Spend(0.4); err != nil {
		t.Errorf("exact-fit spend should pass: %v", err)
	}
	if r := a.Remaining(); r > 1e-9 {
		t.Errorf("remaining = %v", r)
	}
	if s := a.Spent(); math.Abs(s-1) > 1e-12 {
		t.Errorf("spent = %v", s)
	}
	if _, err := NewAccountant(-1); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestSVTStopsAtHighQuery(t *testing.T) {
	// Queries: 0,0,...,0,100 with threshold 50: must stop at the jump.
	rng := xrand.New(2)
	const jump = 20
	stops := map[int]int{}
	for trial := 0; trial < 200; trial++ {
		idx, err := SVT(rng, 50, 1.0, func(i int) (float64, bool) {
			if i < jump {
				return 0, true
			}
			return 100, true
		}, 100)
		if err != nil {
			t.Fatal(err)
		}
		stops[idx]++
	}
	if stops[jump] < 150 {
		t.Errorf("SVT stop distribution %v, want mostly %d", stops, jump)
	}
}

func TestSVTLemma25DoesNotStopEarly(t *testing.T) {
	// All queries far below threshold: SVT should exhaust the cap.
	rng := xrand.New(3)
	early := 0
	for trial := 0; trial < 100; trial++ {
		idx, err := SVT(rng, 1000, 1.0, func(i int) (float64, bool) {
			return 0, true
		}, 50)
		if err == nil && idx > 0 {
			early++
		}
	}
	if early > 2 {
		t.Errorf("SVT stopped early %d/100 times with a huge margin", early)
	}
}

func TestSVTSequenceEnd(t *testing.T) {
	rng := xrand.New(4)
	_, err := SVT(rng, 1000, 1.0, func(i int) (float64, bool) {
		if i > 5 {
			return 0, false
		}
		return 0, true
	}, 0)
	if !errors.Is(err, ErrSVTNoStop) {
		t.Errorf("want ErrSVTNoStop, got %v", err)
	}
}

func TestSVTInvalidEps(t *testing.T) {
	rng := xrand.New(5)
	if _, err := SVT(rng, 0, -1, func(i int) (float64, bool) { return 0, true }, 10); err == nil {
		t.Error("invalid eps should fail")
	}
}

func TestSVTLemma26Slack(t *testing.T) {
	got := SVTLemma26Slack(0.5, 0.1)
	want := 6 / 0.5 * math.Log(20.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("slack = %v, want %v", got, want)
	}
}

func TestClippedMeanBasic(t *testing.T) {
	rng := xrand.New(6)
	data := []float64{1, 2, 3, 4, 1000}
	// With a huge eps the noise is negligible; 1000 clips to 10.
	got, err := ClippedMean(rng, data, 0, 10, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 2 + 3 + 4 + 10) / 5
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("clipped mean = %v, want %v", got, want)
	}
}

func TestClippedMeanNoiseScale(t *testing.T) {
	// Empirical std of the release should match sqrt(2)*(hi-lo)/(eps n).
	rng := xrand.New(7)
	data := make([]float64, 100)
	const eps = 0.5
	scale := 1.0 / (eps * 100) // hi-lo = 1
	var sum, sumsq float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		v, err := ClippedMean(rng, data, 0, 1, eps)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	std := math.Sqrt(sumsq/trials - mean*mean)
	want := scale * math.Sqrt2
	if math.Abs(std-want)/want > 0.05 {
		t.Errorf("noise std = %v, want ~%v", std, want)
	}
}

func TestClippedMeanErrors(t *testing.T) {
	rng := xrand.New(8)
	if _, err := ClippedMean(rng, nil, 0, 1, 1); !errors.Is(err, ErrEmptyData) {
		t.Error("empty data")
	}
	if _, err := ClippedMean(rng, []float64{1}, 2, 1, 1); !errors.Is(err, ErrEmptyDomain) {
		t.Error("inverted range")
	}
	if _, err := ClippedMean(rng, []float64{1}, 0, 1, 0); err == nil {
		t.Error("bad eps")
	}
}

func TestReportNoisyMaxPicksClearWinner(t *testing.T) {
	rng := xrand.New(9)
	values := []float64{0, 0, 100, 0}
	wins := 0
	for i := 0; i < 200; i++ {
		if ReportNoisyMax(rng, values, 1, 1.0) == 2 {
			wins++
		}
	}
	if wins < 190 {
		t.Errorf("clear winner chosen only %d/200 times", wins)
	}
}

func TestNoisyCount(t *testing.T) {
	rng := xrand.New(10)
	var sum float64
	for i := 0; i < 100000; i++ {
		sum += NoisyCount(rng, 42, 1.0)
	}
	if got := sum / 100000; math.Abs(got-42) > 0.1 {
		t.Errorf("mean noisy count = %v", got)
	}
}
