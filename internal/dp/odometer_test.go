package dp

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestOdometerRate(t *testing.T) {
	o := NewOdometer(10 * time.Second)
	clock := time.Unix(1000, 0)
	o.SetNow(func() time.Time { return clock })

	if got := o.Rate(); got != 0 {
		t.Errorf("empty odometer rate = %v, want 0", got)
	}
	// Spend 0.1 units/second for 5 seconds.
	for i := 0; i <= 5; i++ {
		o.Observe(0.1 * float64(i))
		clock = clock.Add(time.Second)
	}
	// At t=+6s the window holds samples at spends 0..0.5 over 6 seconds.
	got := o.Rate()
	if math.Abs(got-0.5/6) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, 0.5/6)
	}
	// Projection: 1.0 remaining at that rate.
	tte := o.TimeToExhaustion(1.0)
	if math.Abs(tte-1.0/(0.5/6)) > 1e-9 {
		t.Errorf("time-to-exhaustion = %v", tte)
	}
	if o.TimeToExhaustion(0) != 0 {
		t.Errorf("exhausted budget should project 0")
	}

	// Idle long enough and the window empties: rate decays to exactly 0
	// and the projection to +Inf.
	clock = clock.Add(time.Minute)
	if got := o.Rate(); got != 0 {
		t.Errorf("idle rate = %v, want 0", got)
	}
	if !math.IsInf(o.TimeToExhaustion(1), 1) {
		t.Errorf("idle projection should be +Inf")
	}
}

func TestOdometerRefillNotNegative(t *testing.T) {
	o := NewOdometer(10 * time.Second)
	clock := time.Unix(1000, 0)
	o.SetNow(func() time.Time { return clock })
	o.Observe(5)
	clock = clock.Add(time.Second)
	o.Observe(0.1) // a windowed ledger refilled: cumulative spend dropped
	clock = clock.Add(time.Second)
	if got := o.Rate(); got != 0 {
		t.Errorf("rate after refill = %v, want 0 (never negative)", got)
	}
}

func TestOdometerCoalescesBursts(t *testing.T) {
	o := NewOdometer(time.Minute)
	clock := time.Unix(1000, 0)
	o.SetNow(func() time.Time { return clock })
	// 100k observations at the same instant must not hold 100k samples.
	for i := 0; i < 100000; i++ {
		o.Observe(float64(i))
	}
	o.mu.Lock()
	n := len(o.samples)
	o.mu.Unlock()
	if n > 16 {
		t.Errorf("burst kept %d samples, want coalesced", n)
	}
}

// Run with -race: concurrent Observe and Rate.
func TestOdometerConcurrent(t *testing.T) {
	o := NewOdometer(time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.Observe(float64(w*1000 + i))
				_ = o.Rate()
				_ = o.TimeToExhaustion(10)
			}
		}(w)
	}
	wg.Wait()
}
