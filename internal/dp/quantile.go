package dp

import (
	"errors"
	"math"
	"sort"

	"repro/internal/xrand"
)

// ErrEmptyDomain reports a quantile domain with lo > hi.
var ErrEmptyDomain = errors.New("dp: empty quantile domain")

// FiniteDomainQuantile is Algorithm 2: the inverse sensitivity mechanism
// (exponential mechanism with the path-length score, §2.5) releasing the
// tau-th order statistic (1-based) of integer data over the finite ordered
// domain [lo, hi]. With probability >= 1-beta the result has rank error
// at most (4/eps)·log(|X|/beta) (Lemma 2.8).
//
// The target rank is clamped away from the extremes per Algorithm 2 lines
// 1-7; data values outside the domain are clipped into it (a deterministic
// per-record map that preserves neighboring relations).
//
// The domain may be astronomically large (e.g. all of [−2^61, 2^61]): the
// mechanism groups it into maximal constant-score segments — O(n) of them —
// and samples with the Gumbel-max trick in log space, so the run time is
// O(n log n) independent of |X|.
func FiniteDomainQuantile(rng *xrand.RNG, data []int64, tau int, lo, hi int64, eps, beta float64) (int64, error) {
	if err := CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if err := CheckBeta(beta); err != nil {
		return 0, err
	}
	if lo > hi {
		return 0, ErrEmptyDomain
	}
	n := len(data)
	if n == 0 {
		return 0, ErrEmptyData
	}

	// Domain size |X| = hi - lo + 1, exact in uint64, logged in float64.
	span := uint64(hi) - uint64(lo) // two's-complement difference is exact
	logDomain := math.Log(float64(span) + 1)

	// Algorithm 2 lines 1-7: clamp tau away from the extremes.
	slack := 2 / eps * (logDomain + math.Log(1/beta))
	tauP := float64(tau)
	if tauP <= slack {
		tauP = slack
	} else if tauP >= float64(n)-slack {
		tauP = float64(n) - slack
	}
	// Keep the target a valid rank even when n is too small for the lemma.
	tauPrime := math.Min(math.Max(tauP, 1), float64(n))

	xs := make([]int64, n)
	for i, v := range data {
		switch {
		case v < lo:
			xs[i] = lo
		case v > hi:
			xs[i] = hi
		default:
			xs[i] = v
		}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

	// Enumerate maximal segments of constant score. The score of a point y
	// is -len(y) with len(y) = max(0, tau' - rank_le(y), rank_lt(y) - tau'),
	// the number of records that must change for y to become the tau'-th
	// order statistic (§2.5).
	type segment struct {
		a, b int64 // inclusive
		lw   float64
	}
	segs := make([]segment, 0, 2*n+1)
	halfEps := eps / 2
	addSeg := func(a, b int64, rankLT, rankLE int) {
		if a > b {
			return
		}
		length := math.Max(0, math.Max(tauPrime-float64(rankLE), float64(rankLT)-tauPrime))
		count := float64(uint64(b)-uint64(a)) + 1
		segs = append(segs, segment{a: a, b: b, lw: math.Log(count) - halfEps*length})
	}

	prev := lo       // next uncovered domain point
	covered := false // whether the segment list already reaches hi
	for i := 0; i < n; {
		v := xs[i]
		j := i
		for j < n && xs[j] == v {
			j++
		}
		// Gap strictly before v: rank_lt = rank_le = i throughout.
		if v > prev {
			addSeg(prev, v-1, i, i)
		}
		// The data value itself: rank_lt = i, rank_le = j.
		addSeg(v, v, i, j)
		if v == hi {
			covered = true
			break
		}
		prev = v + 1
		i = j
	}
	if !covered && prev <= hi {
		// Trailing gap above the largest data value: all n records below.
		addSeg(prev, hi, n, n)
	}

	// Gumbel-max sampling over segments == exponential mechanism over X.
	best := -1
	bestKey := math.Inf(-1)
	for k := range segs {
		key := segs[k].lw + rng.Gumbel()
		if key > bestKey {
			bestKey = key
			best = k
		}
	}
	if best < 0 {
		return 0, ErrEmptyDomain
	}
	s := segs[best]
	return rng.Int64Range(s.a, s.b), nil
}

// QuantileRankSlack returns the (4/eps)·log(|X|/beta) rank-error bound of
// Lemma 2.8, with |X| passed as a float64 domain size.
func QuantileRankSlack(domainSize, eps, beta float64) float64 {
	return 4 / eps * math.Log(domainSize/beta)
}
