package dp

// Parallel composition (McSherry 2009): mechanisms run on DISJOINT
// subsets of the data jointly satisfy the MAXIMUM of their individual
// guarantees, not the sum. The grouped release path (dpsql GROUP BY,
// the serve histogram endpoint) earns the precondition by clamping each
// user to a bounded number of groups during the per-user collapse: at
// contribution bound 1 the groups partition the users and the whole
// grouped answer is priced as ONE release.

// ParallelCost prices a grouped release from its per-group cost. per is
// the cost of releasing ONE group's answer; bound is the maximum number
// of groups a single user contributes to.
//
// bound <= 1 is parallel composition proper: the groups are disjoint in
// users, the joint guarantee is the per-group maximum, and the whole
// grouped release costs exactly `per` — independent of how many groups
// exist. (bound 0 is treated as 1, matching dpsql's default.)
//
// bound > 1 is the honest fallback to sequential (group) composition: a
// user seen by up to `bound` groups faces at most bound-fold composition
// of the per-group guarantee, so every representation scales by bound —
// Eps and Rho linearly (basic and zCDP composition are additive), and
// each RDP curve point's ε(α) linearly (RDP composition is per-order
// additive, so bound-fold self-composition multiplies the curve).
//
// The result keeps the input's representation — exactly one of Eps, Rho,
// Curve is set whenever that held for per — so every ledger backend that
// accepts the per-group cost accepts the parallel-composed one.
func ParallelCost(per Cost, bound int) Cost {
	if bound <= 1 {
		return per
	}
	k := float64(bound)
	out := Cost{Eps: per.Eps * k, Rho: per.Rho * k}
	if len(per.Curve) > 0 {
		out.Curve = make([]RDPPoint, len(per.Curve))
		for i, p := range per.Curve {
			out.Curve[i] = RDPPoint{Alpha: p.Alpha, Eps: p.Eps * k}
		}
	}
	return out
}
