package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// Racing spenders must never jointly overdraw: with a budget of exactly
// k·eps, exactly k of the k+extra concurrent Spend calls may succeed.
// Run with -race; the point is atomic check-and-deduct, not throughput.
func TestAccountantConcurrentSpendExact(t *testing.T) {
	const (
		k     = 64
		extra = 64
		eps   = 0.25
	)
	acct, err := NewAccountant(k * eps)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded, refused := 0, 0
	for i := 0; i < k+extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := acct.Spend(eps)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				succeeded++
			case errors.Is(err, ErrBudgetExhausted):
				refused++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if succeeded != k || refused != extra {
		t.Errorf("succeeded=%d refused=%d, want %d/%d", succeeded, refused, k, extra)
	}
	if got := acct.Spent(); math.Abs(got-k*eps) > 1e-9 {
		t.Errorf("Spent() = %v, want %v", got, k*eps)
	}
	if got := acct.Remaining(); got > 1e-9 {
		t.Errorf("Remaining() = %v, want 0", got)
	}
}

// Readers racing a writer must see internally consistent totals.
func TestAccountantConcurrentReaders(t *testing.T) {
	acct, err := NewAccountant(1000)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = acct.Spend(0.001)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if acct.Spent() < 0 || acct.Remaining() > acct.Total() {
					t.Error("inconsistent accountant state")
					return
				}
			}
		}()
	}
	wg.Wait()
}
