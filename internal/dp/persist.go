package dp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// This file is the persistence face of the composition backends: every
// ledger can serialize its state (Snapshot), be rebuilt from one
// (RestoreLedger / Restore), and absorb a replayed deduction without the
// overdraw check (ForceSpend). The durable store (internal/store) records
// ledger deductions in a write-ahead log before a mechanism's answer is
// returned and compacts full ledger state into snapshots; on boot it
// restores the snapshot and force-replays the WAL tail, so post-restart
// spend is always >= the spend of every answered release. ForceSpend
// deliberately admits spend beyond Total — after a crash the conservative
// direction is to over-count, never to refill.

// Ledger kinds a LedgerState can name.
const (
	// LedgerBasic is BasicLedger (pure-ε basic composition).
	LedgerBasic = "basic"
	// LedgerZCDP is ZCDPLedger (zCDP ρ-accounting).
	LedgerZCDP = "zcdp"
	// LedgerWindowed is WindowedLedger (renewable window over an inner backend).
	LedgerWindowed = "windowed"
)

// ErrBadLedgerState reports a LedgerState that no ledger can be rebuilt
// from (unknown kind, invalid totals, missing inner state).
var ErrBadLedgerState = errors.New("dp: invalid ledger state")

// LedgerState is the serializable state of a composition backend — what a
// snapshot stores and a restart rebuilds. Total and Spent are in the
// ledger's native unit; Spent may exceed Total (a crash-replayed ledger
// over-counts rather than refills). Windowed states carry the refill
// geometry — window length and the absolute next boundary — so a restart
// preserves the wall-clock phase instead of granting a fresh window.
type LedgerState struct {
	Kind  string  `json:"kind"`
	Unit  Unit    `json:"unit"`
	Total float64 `json:"total"`
	Spent float64 `json:"spent"`

	// zCDP: the nominal (ε, δ) target the ρ total was derived from.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`

	// Windowed: refill period and the absolute next boundary.
	WindowNanos    int64        `json:"window_nanos,omitempty"`
	NextRefillUnix int64        `json:"next_refill_unix_nano,omitempty"`
	Inner          *LedgerState `json:"inner,omitempty"`
}

// StatefulLedger is a Ledger whose state survives restarts: it can be
// snapshotted, restored, and force-replayed. Every ledger in this package
// implements it.
type StatefulLedger interface {
	Ledger
	// Snapshot captures the full serializable state.
	Snapshot() (LedgerState, error)
	// Restore overwrites the ledger's state from a snapshot.
	Restore(LedgerState) error
	// ForceSpend charges a replayed deduction without the overdraw check:
	// WAL replay must never refuse a deduction that was already answered,
	// even if it pushes Spent past Total (later Spend calls will refuse).
	// It still fails on costs the backend cannot represent.
	ForceSpend(c Cost) error
}

// checkSpent validates a restored cumulative spend (>= 0, finite; it MAY
// exceed the total).
func checkSpent(spent float64) error {
	if spent < 0 || math.IsNaN(spent) || math.IsInf(spent, 0) {
		return fmt.Errorf("%w: spent %v", ErrBadLedgerState, spent)
	}
	return nil
}

// RestoreLedger rebuilds a concrete ledger from a snapshot state — the
// boot path of the durable store.
func RestoreLedger(st LedgerState) (StatefulLedger, error) {
	switch st.Kind {
	case LedgerBasic:
		l, err := NewBasicLedger(st.Total)
		if err != nil {
			return nil, err
		}
		if err := l.Restore(st); err != nil {
			return nil, err
		}
		return l, nil
	case LedgerZCDP:
		l, err := NewZCDPLedgerFromRho(st.Total, st.Delta)
		if err != nil {
			return nil, err
		}
		if err := l.Restore(st); err != nil {
			return nil, err
		}
		return l, nil
	case LedgerWindowed:
		if st.Inner == nil {
			return nil, fmt.Errorf("%w: windowed state without inner", ErrBadLedgerState)
		}
		// The inner ledger is fully restored here, so only the window
		// geometry remains for the decorator — restoring the inner a
		// second time through l.Restore would silently depend on every
		// inner Restore being idempotent.
		inner, err := RestoreLedger(*st.Inner)
		if err != nil {
			return nil, err
		}
		l, err := NewWindowedLedger(inner, time.Duration(st.WindowNanos))
		if err != nil {
			return nil, err
		}
		if err := l.restoreWindow(st); err != nil {
			return nil, err
		}
		return l, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadLedgerState, st.Kind)
	}
}

// ---------- Accountant internals shared by BasicLedger ----------

// restore overwrites the accountant's state.
func (a *Accountant) restore(total, spent float64) {
	a.mu.Lock()
	a.total, a.spent = total, spent
	a.mu.Unlock()
}

// forceSpend adds eps without the overdraw check (WAL replay).
func (a *Accountant) forceSpend(eps float64) {
	a.mu.Lock()
	a.spent += eps
	a.mu.Unlock()
}

// ---------- BasicLedger ----------

// Snapshot captures the pure-ε state.
func (l *BasicLedger) Snapshot() (LedgerState, error) {
	return LedgerState{
		Kind:  LedgerBasic,
		Unit:  UnitEps,
		Total: l.acct.Total(),
		Spent: l.acct.Spent(),
	}, nil
}

// Restore overwrites the budget from a snapshot.
func (l *BasicLedger) Restore(st LedgerState) error {
	if st.Kind != LedgerBasic {
		return fmt.Errorf("%w: kind %q into a basic ledger", ErrBadLedgerState, st.Kind)
	}
	if err := CheckEpsilon(st.Total); err != nil {
		return err
	}
	if err := checkSpent(st.Spent); err != nil {
		return err
	}
	l.acct.restore(st.Total, st.Spent)
	return nil
}

// ForceSpend charges a replayed pure-ε deduction without the overdraw
// check. Native-ρ costs remain unrepresentable.
func (l *BasicLedger) ForceSpend(c Cost) error {
	if c.Rho != 0 {
		return fmt.Errorf("%w: pure-eps ledger cannot account a zCDP-native cost %v", ErrUnsupportedCost, c)
	}
	if err := CheckEpsilon(c.Eps); err != nil {
		return err
	}
	l.acct.forceSpend(c.Eps)
	return nil
}

// ---------- ZCDPLedger ----------

// Snapshot captures the ρ state plus the nominal (ε, δ) target.
func (l *ZCDPLedger) Snapshot() (LedgerState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerState{
		Kind:  LedgerZCDP,
		Unit:  UnitRho,
		Total: l.totalRho,
		Spent: l.spentRho,
		Eps:   l.eps,
		Delta: l.delta,
	}, nil
}

// Restore overwrites the budget from a snapshot.
func (l *ZCDPLedger) Restore(st LedgerState) error {
	if st.Kind != LedgerZCDP {
		return fmt.Errorf("%w: kind %q into a zcdp ledger", ErrBadLedgerState, st.Kind)
	}
	if err := CheckRho(st.Total); err != nil {
		return err
	}
	if err := CheckDelta(st.Delta); err != nil {
		return err
	}
	if err := checkSpent(st.Spent); err != nil {
		return err
	}
	eps := st.Eps
	if eps == 0 {
		eps = ZCDPEpsilon(st.Total, st.Delta)
	}
	l.mu.Lock()
	l.totalRho, l.spentRho, l.eps, l.delta = st.Total, st.Spent, eps, st.Delta
	l.mu.Unlock()
	return nil
}

// ForceSpend charges a replayed deduction — priced exactly as Spend would
// (ε²/2 for pure costs, ρ directly) — without the overdraw check.
func (l *ZCDPLedger) ForceSpend(c Cost) error {
	rho, err := l.rho(c)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.spentRho += rho
	l.mu.Unlock()
	return nil
}

// ---------- WindowedLedger ----------

// Snapshot captures the inner state plus the refill geometry: the window
// length and the absolute next boundary, so a restart resumes the same
// wall-clock phase (downtime that crossed a boundary still refills, and
// downtime that did not grants nothing). The inner ledger must itself be
// stateful. The outer Total/Spent mirror the inner's at capture time for
// human inspection of snapshot files only — every restore path reads
// Inner, never them.
func (l *WindowedLedger) Snapshot() (LedgerState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll()
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return LedgerState{}, fmt.Errorf("%w: windowed inner ledger %T is not snapshottable", ErrBadLedgerState, l.inner)
	}
	inner, err := sl.Snapshot()
	if err != nil {
		return LedgerState{}, err
	}
	return LedgerState{
		Kind:           LedgerWindowed,
		Unit:           l.inner.Unit(),
		Total:          l.inner.Total(),
		Spent:          l.inner.Spent(),
		WindowNanos:    int64(l.window),
		NextRefillUnix: l.next.UnixNano(),
		Inner:          &inner,
	}, nil
}

// Restore overwrites the inner state and re-anchors the next refill
// boundary at the snapshot's absolute instant (not "now + window"): a
// restart must not grant a fresh window. A restored boundary already in
// the past refills on the next operation, exactly as a passed boundary
// would have live.
func (l *WindowedLedger) Restore(st LedgerState) error {
	if st.Inner == nil {
		return fmt.Errorf("%w: windowed state without inner", ErrBadLedgerState)
	}
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return fmt.Errorf("%w: windowed inner ledger %T is not restorable", ErrBadLedgerState, l.inner)
	}
	if err := l.restoreWindow(st); err != nil {
		return err
	}
	return sl.Restore(*st.Inner)
}

// restoreWindow applies only the decorator's own state — window length
// and absolute next boundary — leaving the inner ledger untouched (the
// RestoreLedger path has already restored it).
func (l *WindowedLedger) restoreWindow(st LedgerState) error {
	if st.Kind != LedgerWindowed {
		return fmt.Errorf("%w: kind %q into a windowed ledger", ErrBadLedgerState, st.Kind)
	}
	if st.WindowNanos <= 0 {
		return fmt.Errorf("%w: got %v", ErrInvalidWindow, time.Duration(st.WindowNanos))
	}
	l.mu.Lock()
	l.window = time.Duration(st.WindowNanos)
	l.next = time.Unix(0, st.NextRefillUnix)
	l.mu.Unlock()
	return nil
}

// ForceSpend charges the inner ledger without refilling, and pins the
// replayed deduction into the CURRENT window by advancing a stale
// boundary (phase-aligned) without the reset a live roll would do. The
// stale-boundary case is exactly the crash shape where refilling would
// be wrong: the snapshot's boundary predates WAL-tail deductions that
// may belong to a window refilled after the snapshot, and wiping them on
// the first post-restart roll would hand that window double budget. The
// cost of pinning is over-counting — a replayed deduction from a window
// completed before the crash is attributed to the current one — which is
// the conservative direction (spend is never under-counted).
func (l *WindowedLedger) ForceSpend(c Cost) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return fmt.Errorf("%w: windowed inner ledger %T cannot replay", ErrBadLedgerState, l.inner)
	}
	if now := l.now(); !now.Before(l.next) {
		missed := now.Sub(l.next)/l.window + 1
		l.next = l.next.Add(missed * l.window)
	}
	return sl.ForceSpend(c)
}
