package dp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// This file is the persistence face of the composition backends: every
// ledger can serialize its state (Snapshot), be rebuilt from one
// (RestoreLedger / Restore), and absorb a replayed deduction without the
// overdraw check (ForceSpend). The durable store (internal/store) records
// ledger deductions in a write-ahead log before a mechanism's answer is
// returned and compacts full ledger state into snapshots; on boot it
// restores the snapshot and force-replays the WAL tail, so post-restart
// spend is always >= the spend of every answered release. ForceSpend
// deliberately admits spend beyond Total — after a crash the conservative
// direction is to over-count, never to refill.

// Ledger kinds a LedgerState can name.
const (
	// LedgerBasic is BasicLedger (pure-ε basic composition).
	LedgerBasic = "basic"
	// LedgerZCDP is ZCDPLedger (zCDP ρ-accounting).
	LedgerZCDP = "zcdp"
	// LedgerRDP is RDPLedger (Rényi accounting over an order grid).
	LedgerRDP = "rdp"
	// LedgerWindowed is WindowedLedger (renewable window over an inner backend).
	LedgerWindowed = "windowed"
)

// ErrBadLedgerState reports a LedgerState that no ledger can be rebuilt
// from (unknown kind, invalid totals, missing inner state).
var ErrBadLedgerState = errors.New("dp: invalid ledger state")

// LedgerState is the serializable state of a composition backend — what a
// snapshot stores and a restart rebuilds. Total and Spent are in the
// ledger's native unit; Spent may exceed Total (a crash-replayed ledger
// over-counts rather than refills). Windowed states carry the refill
// geometry — window length and the absolute next boundary — so a restart
// preserves the wall-clock phase instead of granting a fresh window.
type LedgerState struct {
	Kind  string  `json:"kind"`
	Unit  Unit    `json:"unit"`
	Total float64 `json:"total"`
	Spent float64 `json:"spent"`

	// zCDP / RDP: the nominal (ε, δ) target. For zCDP the ρ total was
	// derived from it; for RDP it IS the total (Total mirrors Eps).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`

	// RDP: the order grid and the per-order spend vector (parallel to
	// Orders) — the native state; Spent mirrors the (ε, δ) conversion for
	// human inspection of snapshot files only.
	Orders   []float64 `json:"orders,omitempty"`
	SpentRDP []float64 `json:"spent_rdp,omitempty"`

	// Windowed: refill period and the absolute next boundary.
	WindowNanos    int64        `json:"window_nanos,omitempty"`
	NextRefillUnix int64        `json:"next_refill_unix_nano,omitempty"`
	Inner          *LedgerState `json:"inner,omitempty"`
}

// StatefulLedger is a Ledger whose state survives restarts: it can be
// snapshotted, restored, and force-replayed. Every ledger in this package
// implements it.
type StatefulLedger interface {
	Ledger
	// Snapshot captures the full serializable state.
	Snapshot() (LedgerState, error)
	// Restore overwrites the ledger's state from a snapshot.
	Restore(LedgerState) error
	// ForceSpend charges a replayed deduction without the overdraw check:
	// WAL replay must never refuse a deduction that was already answered,
	// even if it pushes Spent past Total (later Spend calls will refuse).
	// It still fails on costs the backend cannot represent.
	ForceSpend(c Cost) error
}

// checkSpent validates a restored cumulative spend (>= 0, finite; it MAY
// exceed the total).
func checkSpent(spent float64) error {
	if spent < 0 || math.IsNaN(spent) || math.IsInf(spent, 0) {
		return fmt.Errorf("%w: spent %v", ErrBadLedgerState, spent)
	}
	return nil
}

// RestoreLedger rebuilds a concrete ledger from a snapshot state — the
// boot path of the durable store.
func RestoreLedger(st LedgerState) (StatefulLedger, error) {
	switch st.Kind {
	case LedgerBasic:
		l, err := NewBasicLedger(st.Total)
		if err != nil {
			return nil, err
		}
		if err := l.Restore(st); err != nil {
			return nil, err
		}
		return l, nil
	case LedgerZCDP:
		l, err := NewZCDPLedgerFromRho(st.Total, st.Delta)
		if err != nil {
			return nil, err
		}
		if err := l.Restore(st); err != nil {
			return nil, err
		}
		return l, nil
	case LedgerRDP:
		eps := st.Eps
		if eps == 0 {
			eps = st.Total
		}
		l, err := NewRDPLedger(eps, st.Delta, st.Orders)
		if err != nil {
			return nil, err
		}
		if err := l.Restore(st); err != nil {
			return nil, err
		}
		return l, nil
	case LedgerWindowed:
		if st.Inner == nil {
			return nil, fmt.Errorf("%w: windowed state without inner", ErrBadLedgerState)
		}
		// The inner ledger is fully restored here, so only the window
		// geometry remains for the decorator — restoring the inner a
		// second time through l.Restore would silently depend on every
		// inner Restore being idempotent.
		inner, err := RestoreLedger(*st.Inner)
		if err != nil {
			return nil, err
		}
		l, err := NewWindowedLedger(inner, time.Duration(st.WindowNanos))
		if err != nil {
			return nil, err
		}
		if err := l.restoreWindow(st); err != nil {
			return nil, err
		}
		return l, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadLedgerState, st.Kind)
	}
}

// ---------- Accountant internals shared by BasicLedger ----------

// restore overwrites the accountant's state.
func (a *Accountant) restore(total, spent float64) {
	a.mu.Lock()
	a.total, a.spent = total, spent
	a.mu.Unlock()
}

// forceSpend adds eps without the overdraw check (WAL replay).
func (a *Accountant) forceSpend(eps float64) {
	a.mu.Lock()
	a.spent += eps
	a.mu.Unlock()
}

// ---------- BasicLedger ----------

// Snapshot captures the pure-ε state.
func (l *BasicLedger) Snapshot() (LedgerState, error) {
	return LedgerState{
		Kind:  LedgerBasic,
		Unit:  UnitEps,
		Total: l.acct.Total(),
		Spent: l.acct.Spent(),
	}, nil
}

// Restore overwrites the budget from a snapshot.
func (l *BasicLedger) Restore(st LedgerState) error {
	if st.Kind != LedgerBasic {
		return fmt.Errorf("%w: kind %q into a basic ledger", ErrBadLedgerState, st.Kind)
	}
	if err := CheckEpsilon(st.Total); err != nil {
		return err
	}
	if err := checkSpent(st.Spent); err != nil {
		return err
	}
	l.acct.restore(st.Total, st.Spent)
	return nil
}

// ForceSpend charges a replayed pure-ε deduction without the overdraw
// check. Native-ρ and RDP-curve costs remain unrepresentable.
func (l *BasicLedger) ForceSpend(c Cost) error {
	if c.Rho != 0 || len(c.Curve) > 0 {
		return fmt.Errorf("%w: pure-eps ledger cannot account a %v cost", ErrUnsupportedCost, c)
	}
	if err := CheckEpsilon(c.Eps); err != nil {
		return err
	}
	l.acct.forceSpend(c.Eps)
	return nil
}

// ---------- ZCDPLedger ----------

// Snapshot captures the ρ state plus the nominal (ε, δ) target.
func (l *ZCDPLedger) Snapshot() (LedgerState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerState{
		Kind:  LedgerZCDP,
		Unit:  UnitRho,
		Total: l.totalRho,
		Spent: l.spentRho,
		Eps:   l.eps,
		Delta: l.delta,
	}, nil
}

// Restore overwrites the budget from a snapshot.
func (l *ZCDPLedger) Restore(st LedgerState) error {
	if st.Kind != LedgerZCDP {
		return fmt.Errorf("%w: kind %q into a zcdp ledger", ErrBadLedgerState, st.Kind)
	}
	if err := CheckRho(st.Total); err != nil {
		return err
	}
	if err := CheckDelta(st.Delta); err != nil {
		return err
	}
	if err := checkSpent(st.Spent); err != nil {
		return err
	}
	eps := st.Eps
	if eps == 0 {
		eps = ZCDPEpsilon(st.Total, st.Delta)
	}
	l.mu.Lock()
	l.totalRho, l.spentRho, l.eps, l.delta = st.Total, st.Spent, eps, st.Delta
	l.mu.Unlock()
	return nil
}

// ForceSpend charges a replayed deduction — priced exactly as Spend would
// (ε²/2 for pure costs, ρ directly) — without the overdraw check.
func (l *ZCDPLedger) ForceSpend(c Cost) error {
	rho, err := l.rho(c)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.spentRho += rho
	l.mu.Unlock()
	return nil
}

// ---------- RDPLedger ----------

// rdpSpentExhausted encodes an order whose live spend is +Inf (a curve
// cost left it uncovered, killing it for the ledger's lifetime) inside
// a LedgerState: JSON cannot carry +Inf, so the state uses -1 — a value
// no real spend can take — and Restore maps it back.
const rdpSpentExhausted = -1

// Snapshot captures the per-order spend vector plus the (ε, δ) target
// and the order grid. Total and Spent carry the converted (ε, δ) view
// for human inspection; the vector is what a restart rebuilds from.
// Orders at +Inf spend are encoded as rdpSpentExhausted so the state
// stays JSON-serializable.
func (l *RDPLedger) Snapshot() (LedgerState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	spentEps, _ := RDPEpsilon(l.orders, l.spent, l.delta)
	spent := make([]float64, len(l.spent))
	for i, s := range l.spent {
		if math.IsInf(s, 1) {
			s = rdpSpentExhausted
		}
		spent[i] = s
	}
	return LedgerState{
		Kind:     LedgerRDP,
		Unit:     UnitRDP,
		Total:    l.eps,
		Spent:    spentEps,
		Eps:      l.eps,
		Delta:    l.delta,
		Orders:   append([]float64(nil), l.orders...),
		SpentRDP: spent,
	}, nil
}

// Restore overwrites the per-order state from a snapshot. The snapshot's
// grid replaces the ledger's own (the vector is meaningless on any other
// grid) and must already be normalized — strictly ascending, each order
// > 1 — exactly as Snapshot writes it: sorting here would silently
// re-pair spends with the wrong orders, so a shuffled grid is refused as
// corrupt instead. An absent SpentRDP restores as zero spend. Per-order
// spends may exceed their ceilings — a crash-replayed ledger
// over-counts, never refills — and the rdpSpentExhausted sentinel
// restores to the +Inf it encodes.
func (l *RDPLedger) Restore(st LedgerState) error {
	if st.Kind != LedgerRDP {
		return fmt.Errorf("%w: kind %q into an rdp ledger", ErrBadLedgerState, st.Kind)
	}
	eps := st.Eps
	if eps == 0 {
		eps = st.Total
	}
	if err := CheckEpsilon(eps); err != nil {
		return err
	}
	if err := CheckDelta(st.Delta); err != nil {
		return err
	}
	grid, err := checkOrders(st.Orders)
	if err != nil {
		return err
	}
	if len(st.Orders) > 0 && len(grid) != len(st.Orders) {
		return fmt.Errorf("%w: rdp orders not normalized (duplicates)", ErrBadLedgerState)
	}
	for i := range grid {
		if len(st.Orders) > 0 && grid[i] != st.Orders[i] {
			return fmt.Errorf("%w: rdp orders not sorted ascending", ErrBadLedgerState)
		}
	}
	spent := append([]float64(nil), st.SpentRDP...)
	if len(spent) == 0 {
		spent = make([]float64, len(grid))
	}
	if len(spent) != len(grid) {
		return fmt.Errorf("%w: %d spends for %d orders", ErrBadLedgerState, len(spent), len(grid))
	}
	for i, s := range spent {
		switch {
		case s == rdpSpentExhausted || math.IsInf(s, 1):
			// A curve cost left the order uncovered pre-crash; it stays
			// dead (+Inf drops out of every conversion).
			spent[i] = math.Inf(1)
		case s < 0 || math.IsNaN(s):
			return fmt.Errorf("%w: rdp spend %v", ErrBadLedgerState, s)
		}
	}
	budget := make([]float64, len(grid))
	for i, a := range grid {
		budget[i] = eps - math.Log(1/st.Delta)/(a-1)
	}
	l.mu.Lock()
	l.orders = grid
	l.spent = spent
	l.budget = budget
	l.eps, l.delta = eps, st.Delta
	l.mu.Unlock()
	return nil
}

// ForceSpend charges a replayed deduction — priced exactly as Spend
// would, the full per-order curve — without the affordability check.
func (l *RDPLedger) ForceSpend(c Cost) error {
	v, err := l.curve(c)
	if err != nil {
		return err
	}
	l.mu.Lock()
	for i := range l.spent {
		l.spent[i] += v[i]
	}
	l.mu.Unlock()
	return nil
}

// ---------- WindowedLedger ----------

// Snapshot captures the inner state plus the refill geometry: the window
// length and the absolute next boundary, so a restart resumes the same
// wall-clock phase (downtime that crossed a boundary still refills, and
// downtime that did not grants nothing). The inner ledger must itself be
// stateful. The outer Total/Spent mirror the inner's at capture time for
// human inspection of snapshot files only — every restore path reads
// Inner, never them.
func (l *WindowedLedger) Snapshot() (LedgerState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roll()
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return LedgerState{}, fmt.Errorf("%w: windowed inner ledger %T is not snapshottable", ErrBadLedgerState, l.inner)
	}
	inner, err := sl.Snapshot()
	if err != nil {
		return LedgerState{}, err
	}
	return LedgerState{
		Kind:           LedgerWindowed,
		Unit:           l.inner.Unit(),
		Total:          l.inner.Total(),
		Spent:          l.inner.Spent(),
		WindowNanos:    int64(l.window),
		NextRefillUnix: l.next.UnixNano(),
		Inner:          &inner,
	}, nil
}

// Restore overwrites the inner state and re-anchors the next refill
// boundary at the snapshot's absolute instant (not "now + window"): a
// restart must not grant a fresh window. A restored boundary already in
// the past refills on the next operation, exactly as a passed boundary
// would have live.
func (l *WindowedLedger) Restore(st LedgerState) error {
	if st.Inner == nil {
		return fmt.Errorf("%w: windowed state without inner", ErrBadLedgerState)
	}
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return fmt.Errorf("%w: windowed inner ledger %T is not restorable", ErrBadLedgerState, l.inner)
	}
	if err := l.restoreWindow(st); err != nil {
		return err
	}
	return sl.Restore(*st.Inner)
}

// restoreWindow applies only the decorator's own state — window length
// and absolute next boundary — leaving the inner ledger untouched (the
// RestoreLedger path has already restored it).
func (l *WindowedLedger) restoreWindow(st LedgerState) error {
	if st.Kind != LedgerWindowed {
		return fmt.Errorf("%w: kind %q into a windowed ledger", ErrBadLedgerState, st.Kind)
	}
	if st.WindowNanos <= 0 {
		return fmt.Errorf("%w: got %v", ErrInvalidWindow, time.Duration(st.WindowNanos))
	}
	l.mu.Lock()
	l.window = time.Duration(st.WindowNanos)
	l.next = time.Unix(0, st.NextRefillUnix)
	l.mu.Unlock()
	return nil
}

// ForceSpend charges the inner ledger without refilling, and pins the
// replayed deduction into the CURRENT window by advancing a stale
// boundary (phase-aligned) without the reset a live roll would do. The
// stale-boundary case is exactly the crash shape where refilling would
// be wrong: the snapshot's boundary predates WAL-tail deductions that
// may belong to a window refilled after the snapshot, and wiping them on
// the first post-restart roll would hand that window double budget. The
// cost of pinning is over-counting — a replayed deduction from a window
// completed before the crash is attributed to the current one — which is
// the conservative direction (spend is never under-counted).
func (l *WindowedLedger) ForceSpend(c Cost) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	sl, ok := l.inner.(StatefulLedger)
	if !ok {
		return fmt.Errorf("%w: windowed inner ledger %T cannot replay", ErrBadLedgerState, l.inner)
	}
	if now := l.now(); !now.Before(l.next) {
		missed := now.Sub(l.next)/l.window + 1
		l.next = l.next.Add(missed * l.window)
	}
	return sl.ForceSpend(c)
}
