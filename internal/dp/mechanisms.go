package dp

import (
	"math"

	"repro/internal/xrand"
)

// ClippedMean releases mean(Clip(D, [lo, hi])) + Lap((hi-lo)/(eps·n)), the
// eps-DP clipped mean estimator of §2.6. It returns an error for empty data
// or an inverted range.
func ClippedMean(rng *xrand.RNG, data []float64, lo, hi, eps float64) (float64, error) {
	if err := CheckEpsilon(eps); err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, ErrEmptyData
	}
	if lo > hi {
		return 0, ErrEmptyDomain
	}
	n := float64(len(data))
	var sum, comp float64
	for _, x := range data {
		v := x
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		t := sum + v
		if math.Abs(sum) >= math.Abs(v) {
			comp += (sum - t) + v
		} else {
			comp += (v - t) + sum
		}
		sum = t
	}
	mean := (sum + comp) / n
	return mean + rng.Laplace((hi-lo)/(eps*n)), nil
}

// ReportNoisyMax returns the index of the maximum of values after adding
// independent Lap(2·sensitivity/eps) noise to each. For histogram counts
// (sensitivity 1 per bin under a one-record change) the release is eps-DP.
// Used by the KV18-style baselines.
func ReportNoisyMax(rng *xrand.RNG, values []float64, sensitivity, eps float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, v := range values {
		nv := v + rng.Laplace(2*sensitivity/eps)
		if nv > bestV {
			bestV = nv
			best = i
		}
	}
	return best
}

// NoisyCount releases count + Lap(1/eps) for a sensitivity-1 count.
func NoisyCount(rng *xrand.RNG, count int, eps float64) float64 {
	return float64(count) + rng.Laplace(1/eps)
}

// GaussianSigma returns the noise standard deviation that makes the
// Gaussian mechanism ρ-zCDP for a query with the given global
// sensitivity: σ = Δ/sqrt(2ρ) (Bun & Steinke 2016, Proposition 1.6).
func GaussianSigma(sensitivity, rho float64) float64 {
	return sensitivity / math.Sqrt(2*rho)
}

// Gaussian releases value + N(0, σ²) with σ = GaussianSigma(sensitivity,
// rho), a ρ-zCDP release. Unlike Laplace it satisfies no finite pure-ε
// guarantee, so its cost must be charged natively (RhoCost) to a ledger
// whose backend composes in ρ — a pure-ε ledger refuses it.
func Gaussian(rng *xrand.RNG, value, sensitivity, rho float64) float64 {
	return value + GaussianSigma(sensitivity, rho)*rng.Gaussian()
}
