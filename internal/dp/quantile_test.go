package dp

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// rankErr computes the rank error of release y against target rank tau in
// sorted data: how many data elements lie strictly between X_tau and y.
func rankErr(sorted []int64, tau int, y int64) int {
	n := len(sorted)
	if tau < 1 {
		tau = 1
	}
	if tau > n {
		tau = n
	}
	target := sorted[tau-1]
	lo, hi := target, y
	if lo > hi {
		lo, hi = hi, lo
	}
	cnt := 0
	for _, v := range sorted {
		if v > lo && v < hi {
			cnt++
		}
	}
	return cnt
}

func TestQuantileRankError(t *testing.T) {
	rng := xrand.New(1)
	n := 2000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(100000)) - 50000
	}
	sorted := append([]int64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	const eps, beta = 1.0, 0.1
	bound := QuantileRankSlack(100001, eps, beta)
	fails := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		tau := n / 2
		y, err := FiniteDomainQuantile(rng, data, tau, -50000, 50000, eps, beta)
		if err != nil {
			t.Fatal(err)
		}
		// Allow the clamp slack (2/eps log) on top of the sampling slack.
		if float64(rankErr(sorted, tau, y)) > 2*bound {
			fails++
		}
	}
	if float64(fails) > beta*float64(trials)*2+5 {
		t.Errorf("rank error exceeded bound in %d/%d trials", fails, trials)
	}
}

func TestQuantileMedianOfConcentratedData(t *testing.T) {
	// All mass at one point: the mechanism must return (near) that point
	// even over a huge domain.
	rng := xrand.New(2)
	data := make([]int64, 500)
	for i := range data {
		data[i] = 77
	}
	const B = int64(1) << 40
	hits := 0
	for trial := 0; trial < 100; trial++ {
		y, err := FiniteDomainQuantile(rng, data, 250, -B, B, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if y == 77 {
			hits++
		}
	}
	if hits < 90 {
		t.Errorf("concentrated median found only %d/100 times", hits)
	}
}

func TestQuantileWithinDomain(t *testing.T) {
	rng := xrand.New(3)
	if err := quick.Check(func(seed uint64, tauRaw uint8) bool {
		rr := xrand.New(seed)
		n := 50
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rr.Intn(2000)) - 1000
		}
		tau := int(tauRaw)%n + 1
		y, err := FiniteDomainQuantile(rr, data, tau, -1000, 1000, 0.5, 0.2)
		return err == nil && y >= -1000 && y <= 1000
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestQuantileClipsOutOfDomainData(t *testing.T) {
	rng := xrand.New(4)
	data := []int64{-5000, 0, 5000, 1, 2, 3, -1, -2, -3, 4}
	y, err := FiniteDomainQuantile(rng, data, 5, -10, 10, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if y < -10 || y > 10 {
		t.Errorf("release %d outside domain", y)
	}
}

func TestQuantileExtremeRanksClamped(t *testing.T) {
	// tau=1 and tau=n over a big domain should not return garbage far from
	// the data (Algorithm 2's clamp prevents the unbounded-error corner).
	rng := xrand.New(5)
	n := 5000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i) // 0..4999
	}
	const B = int64(1) << 30
	for _, tau := range []int{1, n} {
		for trial := 0; trial < 20; trial++ {
			y, err := FiniteDomainQuantile(rng, data, tau, -B, B, 1.0, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if y < -1000 || y > int64(n)+1000 {
				t.Errorf("tau=%d: release %d far outside data range", tau, y)
			}
		}
	}
}

func TestQuantileHugeDomainUniformTieBreak(t *testing.T) {
	// Two values, median between them: releases should fall in [a, b] and
	// spread over the gap (the zero-score segment).
	rng := xrand.New(6)
	data := []int64{100, 200}
	seen := map[int64]bool{}
	for trial := 0; trial < 300; trial++ {
		y, err := FiniteDomainQuantile(rng, data, 1, -1_000_000, 1_000_000, 2.0, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		seen[y] = true
	}
	distinct := len(seen)
	if distinct < 10 {
		t.Errorf("only %d distinct releases; gap should be sampled uniformly", distinct)
	}
}

func TestQuantileErrors(t *testing.T) {
	rng := xrand.New(7)
	if _, err := FiniteDomainQuantile(rng, nil, 1, 0, 10, 1, 0.1); !errors.Is(err, ErrEmptyData) {
		t.Error("empty data")
	}
	if _, err := FiniteDomainQuantile(rng, []int64{1}, 1, 10, 0, 1, 0.1); !errors.Is(err, ErrEmptyDomain) {
		t.Error("inverted domain")
	}
	if _, err := FiniteDomainQuantile(rng, []int64{1}, 1, 0, 10, -1, 0.1); err == nil {
		t.Error("bad eps")
	}
	if _, err := FiniteDomainQuantile(rng, []int64{1}, 1, 0, 10, 1, 2); err == nil {
		t.Error("bad beta")
	}
}

func TestQuantileSingletonDomain(t *testing.T) {
	rng := xrand.New(8)
	y, err := FiniteDomainQuantile(rng, []int64{5, 5, 5}, 2, 5, 5, 1, 0.1)
	if err != nil || y != 5 {
		t.Errorf("singleton domain: y=%d err=%v", y, err)
	}
}

func TestQuantileFullInt64SpanDomain(t *testing.T) {
	// Domain [-2^61, 2^61]: the segment arithmetic must not overflow.
	rng := xrand.New(9)
	const B = int64(1) << 61
	data := []int64{-3, 0, 3, 1, -1, 2, -2, 0, 1, -1}
	y, err := FiniteDomainQuantile(rng, data, 5, -B, B, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if y < -B || y > B {
		t.Errorf("out of domain: %d", y)
	}
}

func TestQuantileDistributionSkewedToCorrectSide(t *testing.T) {
	// Rank 3n/4 should land above rank n/4 essentially always.
	rng := xrand.New(10)
	n := 1000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(10000))
	}
	wins := 0
	for trial := 0; trial < 100; trial++ {
		q1, err1 := FiniteDomainQuantile(rng, data, n/4, 0, 10000, 1.0, 0.1)
		q3, err2 := FiniteDomainQuantile(rng, data, 3*n/4, 0, 10000, 1.0, 0.1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if q3 > q1 {
			wins++
		}
	}
	if wins < 95 {
		t.Errorf("q3 > q1 in only %d/100 trials", wins)
	}
}
