package serve

import (
	"encoding/json"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// The self-watchdog: a goroutine that watches the release-latency
// window and, when the p99 breaches the SLO for K consecutive windows,
// captures everything a post-mortem needs — CPU/heap/goroutine
// profiles, a /metrics scrape, and the flight recorder's retained
// traces — into one timestamped incident directory. The point is that
// the evidence is taken WHILE the service is bad: by the time an
// operator is paged, the slow releases are already in the bundle.

// watchdogConfig is the resolved watchdog tuning (from Options).
type watchdogConfig struct {
	slo      time.Duration // p99 threshold
	window   time.Duration // aggregation window (0 → 10s)
	windows  int           // consecutive breaching windows to trigger (0 → 2)
	dir      string        // incident bundle parent directory
	cooldown time.Duration // min gap between captures (0 → 10min)
}

// maxWindowSamples caps the per-window latency buffer: past it, new
// samples overwrite random-ish slots (modulo the arrival counter) so a
// flood can't grow memory while the p99 stays representative enough to
// detect a breach.
const maxWindowSamples = 8192

type watchdog struct {
	s   *Server
	cfg watchdogConfig

	mu      sync.Mutex
	samples []time.Duration
	arrived uint64 // total samples this window (for the overwrite slot)

	breaches    int       // consecutive breaching windows so far
	lastCapture time.Time // zero until the first bundle

	quit chan struct{}
	done chan struct{}

	// captured counts incident bundles written (read by tests under mu).
	captured int
}

func newWatchdog(s *Server, cfg watchdogConfig) *watchdog {
	if cfg.window <= 0 {
		cfg.window = 10 * time.Second
	}
	if cfg.windows <= 0 {
		cfg.windows = 2
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = 10 * time.Minute
	}
	return &watchdog{
		s:    s,
		cfg:  cfg,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func (d *watchdog) start() { go d.run() }

// stop halts the loop and waits for it; an in-flight capture finishes
// first, so Close never leaves a half-written bundle behind.
func (d *watchdog) stop() {
	close(d.quit)
	<-d.done
}

// observe feeds one finished release's end-to-end latency into the
// current window. Called from finishRelease on request goroutines.
func (d *watchdog) observe(total time.Duration) {
	d.mu.Lock()
	if len(d.samples) < maxWindowSamples {
		d.samples = append(d.samples, total)
	} else {
		d.samples[d.arrived%maxWindowSamples] = total
	}
	d.arrived++
	d.mu.Unlock()
}

// run is the watchdog loop: every window, compute the p99 of the
// window's releases and track consecutive breaches.
func (d *watchdog) run() {
	defer close(d.done)
	tick := time.NewTicker(d.cfg.window)
	defer tick.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-tick.C:
			d.evaluate()
		}
	}
}

func (d *watchdog) evaluate() {
	d.mu.Lock()
	window := d.samples
	d.samples = nil
	d.arrived = 0
	d.mu.Unlock()

	if len(window) == 0 {
		// An idle window is not healthy evidence either way; a breach
		// streak survives a gap in traffic rather than resetting.
		return
	}
	p99 := quantileDur(window, 0.99)
	if p99 <= d.cfg.slo {
		d.mu.Lock()
		d.breaches = 0
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	d.breaches++
	trigger := d.breaches >= d.cfg.windows &&
		(d.lastCapture.IsZero() || time.Since(d.lastCapture) >= d.cfg.cooldown)
	if trigger {
		d.lastCapture = time.Now()
		d.breaches = 0
	}
	d.mu.Unlock()
	if trigger {
		d.capture(p99, len(window))
	}
}

// quantileDur is the q-th quantile of durations (sorts its argument).
func quantileDur(xs []time.Duration, q float64) time.Duration {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	ix := int(float64(len(xs)) * q)
	if ix >= len(xs) {
		ix = len(xs) - 1
	}
	return xs[ix]
}

// capture writes one incident bundle. Failures are logged, never fatal —
// the watchdog must not take down the service it is diagnosing.
func (d *watchdog) capture(p99 time.Duration, windowN int) {
	stamp := time.Now().UTC().Format("20060102T150405.000Z")
	dir := filepath.Join(d.cfg.dir, "incident-"+stamp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("serve: watchdog: creating incident dir: %v", err)
		return
	}
	log.Printf("serve: watchdog: p99 %v over SLO %v — capturing incident bundle to %s",
		p99.Round(time.Millisecond), d.cfg.slo, dir)

	// CPU profile first (it needs wall time to mean anything); bounded
	// by the window so a tiny test window stays fast.
	cpuDur := d.cfg.window
	if cpuDur > time.Second {
		cpuDur = time.Second
	}
	if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
		if err := pprof.StartCPUProfile(f); err == nil {
			time.Sleep(cpuDur)
			pprof.StopCPUProfile()
		} else {
			// A profile already running elsewhere (a concurrent test or
			// an operator's manual capture) is not ours to fight.
			log.Printf("serve: watchdog: cpu profile: %v", err)
		}
		_ = f.Close()
	}
	for _, prof := range []struct{ name, file string }{
		{"heap", "heap.pprof"},
		{"goroutine", "goroutine.txt"},
	} {
		f, err := os.Create(filepath.Join(dir, prof.file))
		if err != nil {
			continue
		}
		debug := 0
		if prof.name == "goroutine" {
			debug = 1 // text dump with stacks, readable without `go tool pprof`
		}
		_ = pprof.Lookup(prof.name).WriteTo(f, debug)
		_ = f.Close()
	}
	_ = os.WriteFile(filepath.Join(dir, "metrics.prom"),
		[]byte(d.s.metrics.reg.RenderText()), 0o644)
	if d.s.recorder != nil {
		resp := TraceListResponse{Traces: []TraceSummary{}}
		for _, rt := range d.s.recorder.Traces() {
			resp.Traces = append(resp.Traces, traceSummary(rt))
		}
		if b, err := json.MarshalIndent(resp, "", "  "); err == nil {
			_ = os.WriteFile(filepath.Join(dir, "traces.json"), b, 0o644)
		}
	}
	meta := map[string]any{
		"time":            stamp,
		"p99_ms":          durMs(p99),
		"slo_ms":          durMs(d.cfg.slo),
		"window_ms":       durMs(d.cfg.window),
		"window_releases": windowN,
		"windows_needed":  d.cfg.windows,
		"cooldown_ms":     durMs(d.cfg.cooldown),
	}
	if b, err := json.MarshalIndent(meta, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(dir, "incident.json"), b, 0o644)
	}
	d.mu.Lock()
	d.captured++
	d.mu.Unlock()
}

// capturedCount reports how many bundles have been written (tests).
func (d *watchdog) capturedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.captured
}
