package serve

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// provisionGrouped creates a pure tenant with the given budget and a
// grouped table where every user contributes rows to three groups in a
// known first-seen order: user i's rows arrive in groups (i%3, i+1%3,
// i+2%3) — 12 users, 4 first-seen per group (the clamp fixture the dpsql
// tests pin, here driven through the wire).
func provisionGrouped(t *testing.T, c *client, id string, eps float64) {
	t.Helper()
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{ID: id, Epsilon: eps, Shards: 4}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: %d", code)
	}
	if code := c.do("POST", "/v1/tenants/"+id+"/tables", CreateTableRequest{
		Name:       "events",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}, {Name: "grp", Kind: "string"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table: %d", code)
	}
	groups := []string{"a", "b", "c"}
	var rows [][]any
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 12; i++ {
			rows = append(rows, []any{fmt.Sprintf("u%02d", i), float64(10*i + pass), groups[(i+pass)%3]})
		}
	}
	if code := c.do("POST", "/v1/tenants/"+id+"/tables/events/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}
}

// TestHistogramEndpoint: the histogram release returns one noisy count
// per group (sorted by key, contribution-clamped), charges exactly ONE
// release's ε for the whole grouped answer, appends exactly one audit
// record, and replays byte-identical repeats from the cache for free.
func TestHistogramEndpoint(t *testing.T) {
	srv := New(Options{Seed: 5, Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := newClient(t, ts.URL)
	provisionGrouped(t, c, "acme", 1e7)

	const eps = 1e6 // noise ~1e-6: rounded counts are exact
	var h HistogramResponse
	if code := c.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
		Table: "events", GroupBy: "grp", Epsilon: eps,
	}, &h); code != http.StatusOK {
		t.Fatalf("histogram: %d", code)
	}
	if h.EpsSpent != eps || h.Cached {
		t.Fatalf("histogram meta: %+v", h)
	}
	if len(h.Buckets) != 3 {
		t.Fatalf("buckets: %+v", h.Buckets)
	}
	// Default bound 1: each of the 12 users counts only in its first-seen
	// group — 4 per group, in sorted key order.
	for i, want := range []string{"a", "b", "c"} {
		if h.Buckets[i].Group != want || math.Round(h.Buckets[i].Count) != 4 {
			t.Fatalf("bucket %d = %+v, want group %q count 4", i, h.Buckets[i], want)
		}
	}

	// Exactly one deduction of the full ε for the grouped release, and
	// exactly one audit record.
	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	if st.Spent != eps {
		t.Fatalf("spend after one grouped release = %v, want exactly %v", st.Spent, eps)
	}
	if st.Histograms != 1 || st.AuditRecords != 1 {
		t.Fatalf("counters: histograms=%d audit=%d, want 1/1", st.Histograms, st.AuditRecords)
	}
	var audit AuditResponse
	if code := c.do("GET", "/v1/tenants/acme/audit", nil, &audit); code != http.StatusOK {
		t.Fatal("audit")
	}
	if audit.Total != 1 || audit.Records[0].Path != "histogram" || audit.Records[0].Cost.Eps != eps {
		t.Fatalf("audit: total=%d records=%+v", audit.Total, audit.Records)
	}

	// Byte-identical repeat: cached, free, still one audit record.
	var h2 HistogramResponse
	if code := c.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
		Table: "events", GroupBy: "grp", Epsilon: eps,
	}, &h2); code != http.StatusOK {
		t.Fatal("cached histogram")
	}
	if !h2.Cached || math.Float64bits(h2.Buckets[0].Count) != math.Float64bits(h.Buckets[0].Count) {
		t.Fatalf("replay not cached-identical: %+v vs %+v", h2, h)
	}
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	if st.Spent != eps || st.AuditRecords != 1 {
		t.Fatalf("cached replay charged: spent=%v audit=%d", st.Spent, st.AuditRecords)
	}

	// Unbounded legacy mode is reachable over the wire: every user counts
	// in all three groups.
	var h3 HistogramResponse
	if code := c.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
		Table: "events", GroupBy: "grp", Epsilon: eps, ContributionBound: -1,
	}, &h3); code != http.StatusOK {
		t.Fatal("unbounded histogram")
	}
	for i := range h3.Buckets {
		if math.Round(h3.Buckets[i].Count) != 12 {
			t.Fatalf("unbounded bucket %d = %+v, want count 12", i, h3.Buckets[i])
		}
	}
}

// TestGroupedQueryAndEstimate: group_by on /query and /estimate flows
// through the same parallel-priced path — full-ε spend per grouped
// release, grouped estimate responses carry Groups, and the malformed
// shapes map to the new error codes.
func TestGroupedQueryAndEstimate(t *testing.T) {
	srv := New(Options{Seed: 6, Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := newClient(t, ts.URL)
	provisionGrouped(t, c, "acme", 100)

	var q QueryResponse
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT AVG(v) FROM events", GroupBy: "grp", Epsilon: 0.5,
	}, &q); code != http.StatusOK {
		t.Fatalf("grouped query: %d", code)
	}
	if len(q.Rows) != 3 || q.Rows[0].Group != "a" || q.EpsSpent != 0.5 {
		t.Fatalf("grouped query result: %+v", q)
	}
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "events", Column: "v", Stat: "mean", GroupBy: "grp", Epsilon: 0.5,
	}, &est); code != http.StatusOK {
		t.Fatalf("grouped estimate: %d", code)
	}
	if len(est.Groups) != 3 || est.Groups[2].Group != "c" || est.EpsSpent != 0.5 {
		t.Fatalf("grouped estimate result: %+v", est)
	}
	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	if st.Spent != 1.0 {
		t.Fatalf("two grouped releases at eps=0.5 spent %v, want exactly 1", st.Spent)
	}
	if st.AuditRecords != 2 {
		t.Fatalf("audit records = %d, want 2 (one per grouped release)", st.AuditRecords)
	}

	// Error surface: each malformed shape refuses before any charge.
	bad := []struct {
		path string
		body any
		code int
	}{
		{"/v1/tenants/acme/estimate", EstimateRequest{Table: "events", Column: "v", Stat: "empirical_mean", GroupBy: "grp", Epsilon: 1}, http.StatusBadRequest},
		{"/v1/tenants/acme/estimate", EstimateRequest{Table: "events", Stat: "count", GroupBy: "grp", Rho: 0.01}, http.StatusBadRequest},
		{"/v1/tenants/acme/estimate", EstimateRequest{Table: "events", Column: "v", Stat: "mean", GroupBy: "grp", Unit: "record", Epsilon: 1}, http.StatusBadRequest},
		{"/v1/tenants/acme/estimate", EstimateRequest{Table: "events", Column: "v", Stat: "mean", GroupBy: "grp", Epsilon: 1, ContributionBound: -2}, http.StatusBadRequest},
		{"/v1/tenants/acme/query", QueryRequest{SQL: "SELECT AVG(v) FROM events", GroupBy: "grp", Epsilon: 1, ContributionBound: -2}, http.StatusBadRequest},
		{"/v1/tenants/acme/histogram", HistogramRequest{Table: "events", Epsilon: 1}, http.StatusBadRequest},
		{"/v1/tenants/acme/histogram", HistogramRequest{Table: "events", GroupBy: "grp", Epsilon: 1, ContributionBound: -5}, http.StatusBadRequest},
		{"/v1/tenants/acme/histogram", HistogramRequest{Table: "nope", GroupBy: "grp", Epsilon: 1}, http.StatusNotFound},
	}
	for i, b := range bad {
		var e apiError
		if code := c.do("POST", b.path, b.body, &e); code != b.code {
			t.Fatalf("bad request %d: code %d (%+v), want %d", i, code, e, b.code)
		}
	}
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	if st.Spent != 1.0 || st.AuditRecords != 2 {
		t.Fatalf("refused requests charged: spent=%v audit=%d", st.Spent, st.AuditRecords)
	}
}

// TestGroupedCrashDrill: a grouped release is acked, the server dies
// without flush, the directory re-opens — the single deduction and its
// single audit record survive, exactly once (never doubled, never lost).
func TestGroupedCrashDrill(t *testing.T) {
	dir := t.TempDir()
	_, cA, stopA := openDurable(t, dir, 21)
	provisionGrouped(t, cA, "acme", 100)

	var h HistogramResponse
	if code := cA.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
		Table: "events", GroupBy: "grp", Epsilon: 2,
	}, &h); code != http.StatusOK {
		t.Fatalf("histogram: %d", code)
	}
	var q QueryResponse
	if code := cA.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT MEDIAN(v) FROM events", GroupBy: "grp", Epsilon: 3, ContributionBound: -1,
	}, &q); code != http.StatusOK {
		t.Fatalf("grouped query: %d", code)
	}
	var before TenantStatus
	if code := cA.do("GET", "/v1/tenants/acme", nil, &before); code != http.StatusOK {
		t.Fatal("status")
	}
	if before.Spent != 5 || before.AuditRecords != 2 {
		t.Fatalf("pre-kill: spent=%v audit=%d, want 5/2", before.Spent, before.AuditRecords)
	}
	stopA() // crash: no Close, no flush

	srvB, cB, stopB := openDurable(t, dir, 22)
	defer stopB()
	defer srvB.Close()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if after.Spent != before.Spent {
		t.Fatalf("grouped spend not exactly recovered: %v -> %v", before.Spent, after.Spent)
	}
	var audit AuditResponse
	if code := cB.do("GET", "/v1/tenants/acme/audit", nil, &audit); code != http.StatusOK {
		t.Fatal("recovered audit")
	}
	if audit.Total != 2 {
		t.Fatalf("recovered audit total = %d, want exactly 2", audit.Total)
	}
	if audit.Records[0].Path != "histogram" || audit.Records[0].Cost.Eps != 2 ||
		audit.Records[1].Path != "query" || audit.Records[1].Cost.Eps != 3 {
		t.Fatalf("recovered audit records: %+v", audit.Records)
	}
	// The recovered table still answers grouped releases with the same
	// clamp semantics.
	var h2 HistogramResponse
	if code := cB.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
		Table: "events", GroupBy: "grp", Epsilon: 10,
	}, &h2); code != http.StatusOK {
		t.Fatal("recovered histogram")
	}
	if len(h2.Buckets) != 3 {
		t.Fatalf("recovered buckets: %+v", h2.Buckets)
	}
}

// TestConcurrentGroupedReleasesIngestFlush races grouped releases
// against ingest batches and snapshot flushes on a durable sharded
// tenant (run under -race in CI), then checks the books: one audit
// record per charged grouped release and spend equal to the audit sum.
func TestConcurrentGroupedReleasesIngestFlush(t *testing.T) {
	dir := t.TempDir()
	srv, c, stop := openDurable(t, dir, 23)
	defer stop()
	defer srv.Close()
	provisionGrouped(t, c, "acme", 1e6)

	const perWorker = 6
	var wg sync.WaitGroup
	var released [3]int
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := newClient(t, c.base)
			for i := 0; i < perWorker; i++ {
				eps := 0.001 * float64(1+w*perWorker+i) // distinct: no cache hits
				var code int
				if w%2 == 0 {
					code = cl.do("POST", "/v1/tenants/acme/histogram", HistogramRequest{
						Table: "events", GroupBy: "grp", Epsilon: eps,
					}, nil)
				} else {
					code = cl.do("POST", "/v1/tenants/acme/query", QueryRequest{
						SQL: "SELECT COUNT(*) FROM events", GroupBy: "grp", Epsilon: eps,
					}, nil)
				}
				if code == http.StatusOK {
					released[w]++
				} else if code != http.StatusServiceUnavailable {
					t.Errorf("worker %d release %d: code %d", w, i, code)
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		cl := newClient(t, c.base)
		for i := 0; i < perWorker; i++ {
			rows := [][]any{{fmt.Sprintf("x%03d", i), float64(i), "a"}}
			if code := cl.do("POST", "/v1/tenants/acme/tables/events/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
				t.Errorf("ingest %d: code %d", i, code)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := srv.Flush(); err != nil {
				t.Errorf("flush %d: %v", i, err)
			}
		}
	}()
	wg.Wait()

	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	var audit AuditResponse
	if code := c.do("GET", "/v1/tenants/acme/audit", nil, &audit); code != http.StatusOK {
		t.Fatal("audit")
	}
	want := uint64(released[0] + released[1] + released[2])
	if audit.Total != want {
		t.Fatalf("audit records = %d, want %d (one per charged grouped release)", audit.Total, want)
	}
	var sum float64
	for audit.NextAfter != 0 || len(audit.Records) > 0 {
		for _, r := range audit.Records {
			sum += r.NativeCost
		}
		if audit.NextAfter == 0 {
			break
		}
		next := fmt.Sprintf("/v1/tenants/acme/audit?after=%d", audit.NextAfter)
		audit = AuditResponse{}
		if code := c.do("GET", next, nil, &audit); code != http.StatusOK {
			t.Fatal("audit page")
		}
	}
	if math.Abs(sum-st.Spent) > 1e-9 {
		t.Fatalf("audit sum %v != spend %v", sum, st.Spent)
	}
}
