package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promNameRE is the Prometheus metric-name grammar. The guard test below
// holds every registered instrument to it so a typo'd name cannot ship
// (a scraper would silently drop the series).
var promNameRE = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)

// promLineRE validates one exposition sample line: name, optional
// {labels}, a space, and a float value (Prometheus floats include +Inf).
var promLineRE = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

func TestMetricNamesValid(t *testing.T) {
	srv := New(Options{Seed: 1})
	defer srv.Close()
	names := srv.metrics.reg.Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, n := range names {
		if !promNameRE.MatchString(n) {
			t.Errorf("metric name %q does not match %s", n, promNameRE)
		}
	}
}

// scrape fetches /metrics raw and parses the samples.
func scrape(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for i, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Fatalf("exposition line %d is not valid Prometheus text: %q", i+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d value: %v", i+1, err)
		}
		samples[line[:sp]] = v
	}
	return samples, string(body)
}

// TestMetricsExposition drives real releases through both paths and
// checks the scrape: valid text format, per-stage histograms, per-tenant
// budget gauges, and counters that agree with what actually happened.
func TestMetricsExposition(t *testing.T) {
	srv := New(Options{Seed: 2, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 200)

	if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatalf("estimate: %d", code)
	}
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	// Replay the query verbatim: must be a cache hit, not a second charge.
	var q QueryResponse
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 0.5,
	}, &q); code != http.StatusOK || !q.Cached {
		t.Fatalf("replay: code=%d cached=%v", code, q.Cached)
	}

	samples, body := scrape(t, ts.URL)

	wantExact := map[string]float64{
		`updp_releases_total{path="estimate"}`: 1,
		`updp_releases_total{path="query"}`:    2,
		`updp_cache_hits_total`:                1,
		`updp_cache_misses_total`:              2, // the estimate and the first query
		`updp_tenants`:                         1,
		`updp_release_seconds_count{path="estimate"}`: 1,
		`updp_release_seconds_count{path="query"}`:    2,
		`updp_tenant_budget_total{tenant="acme"}`:     10,
		`updp_ingest_rows_total`:                      400,
	}
	for k, want := range wantExact {
		if got, ok := samples[k]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", k, got, ok, want)
		}
	}
	// The budget gauges balance: total = spent + remaining.
	spent := samples[`updp_tenant_budget_spent{tenant="acme"}`]
	remaining := samples[`updp_tenant_budget_remaining{tenant="acme"}`]
	if spent <= 0 || spent+remaining != 10 {
		t.Errorf("budget gauges: spent=%v remaining=%v, want spent>0 and sum=10", spent, remaining)
	}
	// Per-stage histograms saw the stages both paths exercise.
	for _, stage := range []string{"queue_wait", "cache_lookup", "scan", "noise", "ledger_deduct"} {
		k := `updp_release_stage_seconds_count{stage="` + stage + `"}`
		if samples[k] <= 0 {
			t.Errorf("%s = %v, want > 0", k, samples[k])
		}
	}
	// Every sample family has HELP and TYPE commentary.
	for _, fam := range []string{"updp_releases_total", "updp_release_stage_seconds", "updp_tenant_budget_spent"} {
		if !strings.Contains(body, "# HELP "+fam+" ") || !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing # HELP / # TYPE", fam)
		}
	}
	// An idle tenant's time-to-exhaustion renders as +Inf in the
	// exposition (valid Prometheus), while TenantStatus omits it.
	if v, ok := samples[`updp_tenant_seconds_to_exhaustion{tenant="acme"}`]; !ok {
		t.Error("updp_tenant_seconds_to_exhaustion gauge missing")
	} else if v <= 0 {
		t.Errorf("seconds_to_exhaustion = %v, want > 0 (finite or +Inf)", v)
	}
}

// TestStatsMetricsParity: /v1/stats and /metrics read the same
// instruments, so their counters are equal on a quiescent server.
func TestStatsMetricsParity(t *testing.T) {
	srv := New(Options{Seed: 3, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 100)

	for i := 0; i < 3; i++ {
		p := 0.2 + 0.2*float64(i)
		if code := c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: 0.1,
		}, nil); code != http.StatusOK {
			t.Fatalf("estimate %d: %d", i, code)
		}
	}
	if code := c.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT AVG(v) FROM metrics", Epsilon: 0.2,
	}, nil); code != http.StatusOK {
		t.Fatal("query")
	}

	var st ServerStats
	if code := c.do("GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatal("stats")
	}
	samples, _ := scrape(t, ts.URL)
	pairs := []struct {
		stat   int64
		series string
	}{
		{st.Queries, `updp_releases_total{path="query"}`},
		{st.Estimates, `updp_releases_total{path="estimate"}`},
		{st.Refusals, `updp_budget_refusals_total`},
		{st.Shed, `updp_shed_total`},
		{st.CacheHits, `updp_cache_hits_total`},
		{st.CacheMisses, `updp_cache_misses_total`},
		{st.CacheEvictions, `updp_cache_evictions_total`},
	}
	for _, p := range pairs {
		if got := samples[p.series]; got != float64(p.stat) {
			t.Errorf("%s: /metrics=%v /v1/stats=%d", p.series, got, p.stat)
		}
	}
}

// TestReleaseIDHeader: every release response carries X-Release-Id, on
// success, cache replay, and refusal alike.
func TestReleaseIDHeader(t *testing.T) {
	srv := New(Options{Seed: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1, 50)

	post := func(path string, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	seen := map[string]bool{}
	check := func(resp *http.Response, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantCode)
		}
		id := resp.Header.Get("X-Release-Id")
		if id == "" {
			t.Fatal("no X-Release-Id header")
		}
		if seen[id] {
			t.Fatalf("release id %q repeated", id)
		}
		seen[id] = true
	}
	check(post("/v1/tenants/acme/estimate", `{"table":"metrics","column":"v","stat":"mean","epsilon":0.5}`), http.StatusOK)
	check(post("/v1/tenants/acme/query", `{"sql":"SELECT COUNT(*) FROM metrics","epsilon":0.5}`), http.StatusOK)
	check(post("/v1/tenants/acme/query", `{"sql":"SELECT COUNT(*) FROM metrics","epsilon":0.5}`), http.StatusOK) // replay
	check(post("/v1/tenants/acme/estimate", `{"table":"metrics","column":"v","stat":"median","epsilon":0.5}`), http.StatusTooManyRequests)
}

// TestConcurrentScrape races releases, status reads, and /metrics
// scrapes (run with -race): the gauges read live tenant state while
// handlers mutate it.
func TestConcurrentScrape(t *testing.T) {
	srv := New(Options{Seed: 5, Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1e6, 100)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p := 0.01 + 0.02*float64(g*10+i)
				c.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
					Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: 0.01,
				}, nil)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// No t.Fatal off the test goroutine: scrape by hand.
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				var st TenantStatus
				c.do("GET", "/v1/tenants/acme", nil, &st)
			}
		}()
	}
	wg.Wait()
	samples, _ := scrape(t, ts.URL)
	if got := samples[`updp_releases_total{path="estimate"}`]; got != 40 {
		t.Fatalf("concurrent estimates counted %v, want 40", got)
	}
}
