package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/store"
)

// shardSeedTenant creates a tenant with the given shard count and loads
// the standard metrics table (same data as seedTenant, same seed).
func shardSeedTenant(t *testing.T, c *client, id string, shards int, nUsers int) {
	t.Helper()
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{ID: id, Epsilon: 1e6, Shards: shards}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: status %d", code)
	}
	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/"+id, nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	want := shards
	if want == 0 {
		want = 1
	}
	if st.Shards != want {
		t.Fatalf("tenant shards = %d, want %d", st.Shards, want)
	}
	seedTenantTable(t, c, id, nUsers)
}

// seedTenantTable creates and fills the metrics table for an existing
// tenant (deterministic rows, multiple rows per user).
func seedTenantTable(t *testing.T, c *client, id string, nUsers int) {
	t.Helper()
	code := c.do("POST", "/v1/tenants/"+id+"/tables", CreateTableRequest{
		Name: "metrics",
		Columns: []ColumnSpec{
			{Name: "uid", Kind: "string"},
			{Name: "v", Kind: "float"},
			{Name: "n", Kind: "int"},
			{Name: "grp", Kind: "string"},
		},
		UserColumn: "uid",
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("create table: status %d", code)
	}
	rows := make([][]any, 0, 2*nUsers)
	for u := 0; u < nUsers; u++ {
		uid := fmt.Sprintf("u%05d", u)
		grp := "a"
		if u%2 == 1 {
			grp = "b"
		}
		for r := 0; r < 2; r++ {
			rows = append(rows, []any{uid, 100 + float64((u*7+r*3)%41) - 20, float64(u % 13), grp})
		}
	}
	var ins InsertRowsResponse
	if code := c.do("POST", "/v1/tenants/"+id+"/tables/metrics/rows", InsertRowsRequest{Rows: rows}, &ins); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if ins.Inserted != len(rows) {
		t.Fatalf("inserted %d of %d", ins.Inserted, len(rows))
	}
}

// shardReleaseSuite runs a fixed, order-deterministic sequence of
// releases covering every scan shape (per-user collapse, record unit,
// empirical int sums, SQL with GROUP BY and WHERE, counts) and returns
// the released values.
func shardReleaseSuite(t *testing.T, c *client, id string) []float64 {
	t.Helper()
	var out []float64
	ests := []EstimateRequest{
		{Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5},
		{Table: "metrics", Column: "v", Stat: "median", Epsilon: 0.5},
		{Table: "metrics", Column: "v", Stat: "quantile", P: 0.9, Epsilon: 0.5},
		{Table: "metrics", Column: "v", Stat: "iqr", Epsilon: 0.5},
		{Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5, Unit: "record"},
		{Table: "metrics", Column: "n", Stat: "empirical_mean", Epsilon: 0.5},
		{Table: "metrics", Column: "n", Stat: "empirical_quantile", Tau: 10, Epsilon: 0.5},
		{Table: "metrics", Stat: "count", Epsilon: 0.5},
		{Table: "metrics", Stat: "count", Epsilon: 0.5, Unit: "record"},
	}
	for i, req := range ests {
		var resp EstimateResponse
		if code := c.do("POST", "/v1/tenants/"+id+"/estimate", req, &resp); code != http.StatusOK {
			t.Fatalf("estimate %d: status %d", i, code)
		}
		out = append(out, resp.Value)
	}
	sqls := []string{
		"SELECT AVG(v) FROM metrics",
		"SELECT MEDIAN(v), COUNT(*) FROM metrics GROUP BY grp",
		"SELECT SUM(v) FROM metrics WHERE v < 110",
	}
	for _, q := range sqls {
		var resp QueryResponse
		if code := c.do("POST", "/v1/tenants/"+id+"/query", QueryRequest{SQL: q, Epsilon: 1}, &resp); code != http.StatusOK {
			t.Fatalf("query %q: status %d", q, code)
		}
		for _, row := range resp.Rows {
			out = append(out, row.Values...)
		}
	}
	return out
}

// tenantSpend reads a tenant's native-unit spend.
func tenantSpend(t *testing.T, c *client, id string) float64 {
	t.Helper()
	var st TenantStatus
	if code := c.do("GET", "/v1/tenants/"+id, nil, &st); code != http.StatusOK {
		t.Fatal("status")
	}
	return st.Spent
}

// TestShardedTenantEquivalence is the acceptance equivalence drill: a
// sharded tenant (N=4) and an unsharded twin on identically-seeded
// servers produce identical per-user aggregates, identical release
// answers, and identical ledger spend — including after a
// snapshot+restart round-trip.
func TestShardedTenantEquivalence(t *testing.T) {
	dir1, dir4 := t.TempDir(), t.TempDir()
	const users = 120
	srv1, c1, stop1 := openDurable(t, dir1, 7)
	srv4, c4, stop4 := openDurable(t, dir4, 7)
	shardSeedTenant(t, c1, "twin", 1, users)
	shardSeedTenant(t, c4, "twin", 4, users)

	// Identical per-user aggregates straight off the storage layer.
	userMeans := func(srv *Server) []float64 {
		tn, ok := srv.Tenant("twin")
		if !ok {
			t.Fatal("no tenant")
		}
		tab, err := tn.DB().TableByName("metrics")
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.NumRows(); got != 2*users {
			t.Fatalf("rows = %d", got)
		}
		m, err := tab.UserMeans("v")
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if !reflect.DeepEqual(userMeans(srv1), userMeans(srv4)) {
		t.Fatal("per-user aggregates diverged between N=1 and N=4")
	}

	// Identical release answers and identical spend.
	a1 := shardReleaseSuite(t, c1, "twin")
	a4 := shardReleaseSuite(t, c4, "twin")
	if !reflect.DeepEqual(a1, a4) {
		t.Fatalf("release answers diverged:\nN=1: %v\nN=4: %v", a1, a4)
	}
	s1, s4 := tenantSpend(t, c1, "twin"), tenantSpend(t, c4, "twin")
	if s1 != s4 || s1 <= 0 {
		t.Fatalf("spend diverged: %v vs %v", s1, s4)
	}

	// Snapshot + restart round-trip: compact, crash without Close, boot a
	// fresh pair on the same dirs with matching seeds.
	if err := srv1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := srv4.Flush(); err != nil {
		t.Fatal(err)
	}
	stop1()
	stop4()
	srv1b, c1b, stop1b := openDurable(t, dir1, 99)
	defer stop1b()
	defer srv1b.Close()
	srv4b, c4b, stop4b := openDurable(t, dir4, 99)
	defer stop4b()
	defer srv4b.Close()

	if got := tenantSpend(t, c1b, "twin"); got != s1 {
		t.Fatalf("N=1 spend not preserved: %v -> %v", s1, got)
	}
	if got := tenantSpend(t, c4b, "twin"); got != s4 {
		t.Fatalf("N=4 spend not preserved: %v -> %v", s4, got)
	}
	if !reflect.DeepEqual(userMeans(srv1b), userMeans(srv4b)) {
		t.Fatal("per-user aggregates diverged after restart")
	}
	b1 := shardReleaseSuite(t, c1b, "twin")
	b4 := shardReleaseSuite(t, c4b, "twin")
	if !reflect.DeepEqual(b1, b4) {
		t.Fatalf("post-restart answers diverged:\nN=1: %v\nN=4: %v", b1, b4)
	}
	if g1, g4 := tenantSpend(t, c1b, "twin"), tenantSpend(t, c4b, "twin"); g1 != g4 {
		t.Fatalf("post-restart spend diverged: %v vs %v", g1, g4)
	}
}

// TestShardConcurrentIngestReleaseFlush races multi-shard ingestion,
// fan-out releases, and snapshot compaction on one durable sharded
// tenant (run under -race in CI), then crashes without Close and asserts
// the recovered spend covers every answered release.
func TestShardConcurrentIngestReleaseFlush(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 8)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 1e6, Shards: 4}, nil); code != http.StatusCreated {
		t.Fatal("create")
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "m",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatal("table")
	}
	const (
		ingesters = 4
		batches   = 15
		releasers = 3
		releases  = 12
		eps       = 0.01
	)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := [][]any{
					{fmt.Sprintf("u%d-%d", g, b), float64(b)},
					{fmt.Sprintf("w%d-%d", b, g), float64(g)},
				}
				cA.do("POST", "/v1/tenants/acme/tables/m/rows", InsertRowsRequest{Rows: rows}, nil)
			}
		}(g)
	}
	okReleases := make([]int, releasers)
	for g := 0; g < releasers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				var code int
				if i%3 == 0 {
					code = cA.do("POST", "/v1/tenants/acme/query", QueryRequest{
						SQL: fmt.Sprintf("SELECT AVG(v) FROM m WHERE v < %d", 1000+g*100+i), Epsilon: eps,
					}, nil)
				} else {
					p := 0.01 + 0.9*float64(g*releases+i)/float64(releasers*releases)
					code = cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
						Table: "m", Column: "v", Stat: "quantile", P: p, Epsilon: eps,
					}, nil)
				}
				if code == http.StatusOK {
					okReleases[g]++
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if err := srvA.Flush(); err != nil {
			t.Errorf("Flush: %v", err)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	answered := 0
	for _, n := range okReleases {
		answered += n
	}
	stopA() // crash without Close

	srvB, cB, stopB := openDurable(t, dir, 9)
	defer stopB()
	defer srvB.Close()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if after.Shards != 4 {
		t.Fatalf("recovered shards = %d", after.Shards)
	}
	minSpend := eps * float64(answered)
	if after.Spent < minSpend*(1-1e-9) {
		t.Fatalf("recovered spend %v < %v (%d answered releases) — a deduction was lost",
			after.Spent, minSpend, answered)
	}
}

// TestShardWALReplayPreservesRowOrder: a WAL-tail-only recovery (no
// snapshot) must rebuild the table in the exact pre-crash insertion
// order, not shard-major order — insertBatch logs one record per
// contiguous same-shard run, so replaying the records back to back
// reproduces the interleaving record-unit releases depend on.
func TestShardWALReplayPreservesRowOrder(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 11)
	shardSeedTenant(t, cA, "acme", 4, 60) // interleaved users across shards
	colFloats := func(srv *Server) []float64 {
		tn, ok := srv.Tenant("acme")
		if !ok {
			t.Fatal("no tenant")
		}
		tab, err := tn.DB().TableByName("metrics")
		if err != nil {
			t.Fatal(err)
		}
		xs, err := tab.ColumnFloats("v")
		if err != nil {
			t.Fatal(err)
		}
		return xs
	}
	before := colFloats(srvA)
	// One release fsyncs the WAL (hardening the buffered row records);
	// crash WITHOUT flush so recovery replays the tail, never a snapshot.
	if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatal("release")
	}
	stopA()

	srvB, _, stopB := openDurable(t, dir, 12)
	defer stopB()
	defer srvB.Close()
	if !reflect.DeepEqual(before, colFloats(srvB)) {
		t.Fatal("WAL-tail replay changed the global insertion order")
	}
}

// TestShardTornTailRecovery tears the buffered tail of a sharded
// tenant's WAL (a crash mid-append of a shard-tagged rows record) and
// asserts recovery never loses a deduction.
func TestShardTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	_, cA, stopA := openDurable(t, dir, 4)
	shardSeedTenant(t, cA, "acme", 4, 40)
	const eps = 0.25
	answers := 0
	for i := 0; i < 6; i++ {
		p := 0.05 + 0.15*float64(i)
		if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile", P: p, Epsilon: eps,
		}, nil); code == http.StatusOK {
			answers++
		}
	}
	// More ingestion after the releases: buffered, shard-tagged records
	// past the last fsynced deduction.
	cA.do("POST", "/v1/tenants/acme/tables/metrics/rows", InsertRowsRequest{
		Rows: [][]any{{"zz1", 1.0, 2.0, "a"}, {"zz2", 3.0, 4.0, "b"}},
	}, nil)
	stopA() // crash without Close: the row records may never be flushed

	// Tear the tail further: a half-written shard-tagged record.
	wal := filepath.Join(dir, "acme", "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"seq":9999,"type":"rows","rows_table":"metrics","shard":3,"rows":[[{"k":2,"s":"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srvB, cB, stopB := openDurable(t, dir, 5)
	defer stopB()
	defer srvB.Close()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	want := eps * float64(answers)
	if after.Spent < want*(1-1e-9) {
		t.Fatalf("torn shard-tagged tail lost a deduction: spend %v < %v", after.Spent, want)
	}
}

// TestPR3DataDirBootsSharded is the backward-compatibility acceptance
// check: a data directory written in the pre-shard record format (no
// shards in the tenant config, untagged rows records — exactly the bytes
// PR 3 produced, since zero-valued shard fields are omitted) must boot
// under the sharded build as a single-shard tenant with its spend
// preserved and keep serving ingests and releases.
func TestPR3DataDirBootsSharded(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := st.CreateTenant("legacy", store.TenantConfig{Epsilon: 4, Accounting: "pure"})
	if err != nil {
		t.Fatal(err)
	}
	schema := dpsql.TableState{
		Name:    "events",
		Columns: []dpsql.Column{{Name: "uid", Kind: dpsql.KindString}, {Name: "v", Kind: dpsql.KindFloat}},
		UserCol: "uid",
	}
	if err := tl.AppendTable(schema); err != nil {
		t.Fatal(err)
	}
	rows := make([][]dpsql.Value, 0, 24)
	for u := 0; u < 8; u++ {
		for r := 0; r < 3; r++ {
			rows = append(rows, []dpsql.Value{dpsql.Str(fmt.Sprintf("u%d", u)), dpsql.Float(float64(10*u + r))})
		}
	}
	if err := tl.AppendRows("events", 0, rows); err != nil {
		t.Fatal(err)
	}
	if err := tl.AppendDeduct(dp.EpsCost(1.5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv, c, stop := openDurable(t, dir, 3)
	defer stop()
	defer srv.Close()
	var status TenantStatus
	if code := c.do("GET", "/v1/tenants/legacy", nil, &status); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if status.Spent < 1.5 {
		t.Fatalf("legacy spend not preserved: %v", status.Spent)
	}
	if status.Shards != 1 {
		t.Fatalf("legacy tenant shards = %d, want 1", status.Shards)
	}
	tn, _ := srv.Tenant("legacy")
	tab, err := tn.DB().TableByName("events")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumShards() != 1 || tab.NumRows() != len(rows) {
		t.Fatalf("legacy table: shards=%d rows=%d", tab.NumShards(), tab.NumRows())
	}
	// The tenant keeps working: ingest, release, and a flushed snapshot
	// round-trips under the new format.
	if code := c.do("POST", "/v1/tenants/legacy/tables/events/rows", InsertRowsRequest{
		Rows: [][]any{{"u9", 99.0}},
	}, nil); code != http.StatusOK {
		t.Fatal("ingest into legacy tenant")
	}
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/legacy/estimate", EstimateRequest{
		Table: "events", Column: "v", Stat: "median", Epsilon: 0.5,
	}, &est); code != http.StatusOK {
		t.Fatal("release on legacy tenant")
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
}
