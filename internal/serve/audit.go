package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/store"
)

// The serve half of the DP audit log: every release the ledger actually
// charged gets exactly one audit record — appended after the charge
// lands and before the answer is acknowledged, so the log replays the
// tenant's real spend history (budget-refused attempts and cache replays
// charge nothing and are absent by construction). Durable tenants write
// store.AuditLog (fsynced per line); in-memory tenants get memAudit so
// the endpoint behaves identically either way.

// auditSink is what a tenant's audit log must provide. store.AuditLog is
// the durable implementation; memAudit the in-memory one.
type auditSink interface {
	Append(rec *store.AuditRecord) error
	Page(after uint64, limit int) ([]store.AuditRecord, error)
	Len() uint64
}

// memAuditMax bounds the records an in-memory tenant retains (newest
// kept). Len still counts every record ever appended, so pagination
// cursors and the spend-matching invariant stay monotone; a page that
// would reach into the discarded prefix simply starts at the oldest
// retained record.
const memAuditMax = 4096

// memAudit is the in-memory auditSink: same seq discipline as the
// durable log, bounded retention, no durability.
type memAudit struct {
	mu   sync.Mutex
	seq  uint64
	recs []store.AuditRecord
}

func (a *memAudit) Append(rec *store.AuditRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Same hard invariant the durable log enforces in reconcile: audit
	// seqs are gap-free. The newest retained record must sit exactly at
	// the counter; anything else means the history this sink attests to
	// has a hole, and appending past it would silently legitimize it.
	if n := len(a.recs); n > 0 && a.recs[n-1].Seq != a.seq {
		return fmt.Errorf("serve: audit seq gap: newest record at %d, counter at %d", a.recs[n-1].Seq, a.seq)
	}
	a.seq++
	rec.Seq = a.seq
	if rec.TimeUnix == 0 {
		rec.TimeUnix = time.Now().UnixNano()
	}
	a.recs = append(a.recs, *rec)
	if len(a.recs) > memAuditMax {
		a.recs = append(a.recs[:0:0], a.recs[len(a.recs)-memAuditMax:]...)
	}
	return nil
}

func (a *memAudit) Page(after uint64, limit int) ([]store.AuditRecord, error) {
	if limit <= 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []store.AuditRecord
	for _, r := range a.recs {
		if r.Seq <= after {
			continue
		}
		out = append(out, r)
		if len(out) == limit {
			break
		}
	}
	return out, nil
}

func (a *memAudit) Len() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// auditRelease appends the audit line for a CHARGED release. The caller
// invokes it on every path where rel.spent is true — success or
// mechanism failure after the deduction — and must withhold the answer
// if it errors (a durable append failure means the acknowledged-implies-
// audited invariant cannot hold, the same class as a WAL failure).
//
// NativeCost is the charge in the ledger's unit when that charge is a
// scalar: pure keeps ε; zcdp records ρ (the native ρ for Gaussian
// releases, ε²/2 for pure ones). An rdp charge is a per-order vector —
// no scalar adds up — so NativeCost is omitted and BestOrder records the
// order certifying the tenant's cumulative spend after this release.
func (s *Server) auditRelease(t *Tenant, rel *release) error {
	rec := store.AuditRecord{
		ReleaseID: rel.id,
		Path:      rel.path,
		Mechanism: rel.mech,
		Cost:      rel.cost,
		Unit:      string(t.led.Unit()),
	}
	switch t.accounting {
	case "zcdp":
		if rel.cost.Rho > 0 {
			rec.NativeCost = rel.cost.Rho
		} else {
			rec.NativeCost = dp.PureToZCDP(rel.cost.Eps)
		}
	case "rdp":
		inner := t.led
		if wl, ok := inner.(*dp.WindowedLedger); ok {
			inner = wl.Inner()
		}
		if b, ok := inner.(*dp.RDPLedger); ok {
			rec.BestOrder = b.BestOrder()
		}
	default: // pure
		rec.NativeCost = rel.cost.Eps
	}
	t0 := time.Now()
	if err := t.audit.Append(&rec); err != nil {
		return fmt.Errorf("%w: recording audit line (budget charged, release withheld): %v", errPersist, err)
	}
	if t.log == nil {
		// Durable appends count themselves through store.Metrics.
		s.metrics.auditRecords.Inc()
	}
	s.observeStage(rel, "audit", time.Since(t0))
	return nil
}

// openAudit builds the tenant's audit sink: the durable log on a durable
// server, memAudit otherwise.
func (s *Server) openAudit(id string) (auditSink, error) {
	if s.st == nil {
		return &memAudit{}, nil
	}
	al, err := s.st.OpenAudit(id)
	if err != nil {
		return nil, fmt.Errorf("%w: opening audit log: %v", errPersist, err)
	}
	return al, nil
}

// ---------- the audit endpoint ----------

const (
	auditDefaultLimit = 100
	auditMaxLimit     = 1000
)

// handleAudit serves GET /v1/tenants/{tenant}/audit?after=SEQ&limit=N —
// the charged-release history, oldest first, paginated by seq cursor.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	t, ok := s.pathTenant(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	after := uint64(0)
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_cursor", fmt.Errorf("serve: after must be a non-negative integer: %v", err))
			return
		}
		after = n
	}
	limit := auditDefaultLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad_limit", fmt.Errorf("serve: limit must be a positive integer, got %q", v))
			return
		}
		limit = n
		if limit > auditMaxLimit {
			limit = auditMaxLimit
		}
	}
	recs, err := t.audit.Page(after, limit)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "audit_failed", err)
		return
	}
	resp := AuditResponse{Tenant: t.id, Total: t.audit.Len(), Records: recs}
	if len(recs) == limit && recs[len(recs)-1].Seq < resp.Total {
		resp.NextAfter = recs[len(recs)-1].Seq
	}
	writeJSON(w, http.StatusOK, resp)
}
