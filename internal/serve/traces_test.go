package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postRelease fires one release request and returns (status, release id).
func postRelease(t *testing.T, base, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Release-Id")
}

// TestTraceExplorerShardedRelease: a release on a sharded tenant leaves
// a retrievable trace whose scan stage carries one child span per shard,
// each tagged with its shard index and row count.
func TestTraceExplorerShardedRelease(t *testing.T) {
	const shards = 4
	srv := New(Options{Seed: 11, Workers: 4, DefaultShards: shards})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 200)

	code, id := postRelease(t, ts.URL, "/v1/tenants/acme/estimate",
		`{"table":"metrics","column":"v","stat":"mean","epsilon":0.5}`)
	if code != http.StatusOK || id == "" {
		t.Fatalf("estimate: status %d id %q", code, id)
	}

	var detail TraceDetail
	if code := c.do("GET", "/v1/traces/"+id, nil, &detail); code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: status %d", id, code)
	}
	if detail.ID != id || detail.Tenant != "acme" || detail.Path != "estimate" {
		t.Fatalf("trace envelope = %+v", detail.TraceSummary)
	}
	var scan *TraceSpan
	for _, sp := range detail.Spans {
		if sp.Stage == "scan" {
			scan = sp
		}
	}
	if scan == nil {
		t.Fatalf("no scan span in %+v", detail.Spans)
	}
	if len(scan.Children) != shards {
		t.Fatalf("scan has %d child spans, want one per shard (%d): %+v",
			len(scan.Children), shards, scan.Children)
	}
	seenShard := map[int64]bool{}
	var rows int64
	for _, ch := range scan.Children {
		if ch.Stage != "scan_shard" {
			t.Errorf("scan child stage = %q", ch.Stage)
		}
		si, ok := ch.Attrs["shard"]
		if !ok || seenShard[si] {
			t.Errorf("shard attr missing or repeated: %+v", ch.Attrs)
		}
		seenShard[si] = true
		rows += ch.Attrs["rows"]
	}
	if rows != 400 { // 200 users × 2 rows each
		t.Errorf("per-shard rows sum to %d, want 400", rows)
	}

	// The listing carries the same release, and the filters work.
	var list TraceListResponse
	if code := c.do("GET", "/v1/traces?tenant=acme", nil, &list); code != http.StatusOK || len(list.Traces) == 0 {
		t.Fatalf("list: status %d traces %d", code, len(list.Traces))
	}
	if code := c.do("GET", "/v1/traces?tenant=nobody", nil, &list); code != http.StatusOK || len(list.Traces) != 0 {
		t.Fatalf("tenant filter leaked: %+v", list.Traces)
	}
	if code := c.do("GET", "/v1/traces?min_ms=1e9", nil, &list); code != http.StatusOK || len(list.Traces) != 0 {
		t.Fatalf("min_ms filter leaked: %+v", list.Traces)
	}
	var apiErr struct {
		Code string `json:"code"`
	}
	if code := c.do("GET", "/v1/traces/r-nope-0", nil, &apiErr); code != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Fatalf("unknown id: status %d code %q", code, apiErr.Code)
	}
}

// TestSlowReleaseLogAndRetrieval (satellite): a release forced over
// SlowRelease emits exactly one structured log line carrying the release
// id, and that id retrieves the full trace from GET /v1/traces/{id}.
func TestSlowReleaseLogAndRetrieval(t *testing.T) {
	srv := New(Options{Seed: 12, Workers: 2, SlowRelease: time.Nanosecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 10, 100)

	prev := log.Writer()
	var buf bytes.Buffer
	log.SetOutput(&buf)
	code, id := postRelease(t, ts.URL, "/v1/tenants/acme/query",
		`{"sql":"SELECT AVG(v) FROM metrics","epsilon":0.5}`)
	log.SetOutput(prev)
	if code != http.StatusOK || id == "" {
		t.Fatalf("query: status %d id %q", code, id)
	}

	lines := 0
	for _, ln := range strings.Split(buf.String(), "\n") {
		if strings.Contains(ln, "slow release id=") {
			lines++
			if !strings.Contains(ln, "id="+id+" ") {
				t.Errorf("slow line does not carry the release id %q: %s", id, ln)
			}
			for _, stage := range []string{"scan=", "noise=", "deduct="} {
				if !strings.Contains(ln, stage) {
					t.Errorf("slow line missing %s span: %s", stage, ln)
				}
			}
			if strings.Contains(ln, "scan_shard") {
				t.Errorf("slow line leaked per-shard child spans: %s", ln)
			}
		}
	}
	if lines != 1 {
		t.Fatalf("want exactly one slow-release line, got %d:\n%s", lines, buf.String())
	}

	var detail TraceDetail
	if code := c.do("GET", "/v1/traces/"+id, nil, &detail); code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: status %d", id, code)
	}
	if detail.Outcome != "slow" {
		t.Errorf("outcome = %q, want slow", detail.Outcome)
	}
}

// TestRecorderRetainsSlowUnderLoad: under concurrent load every
// noteworthy (here: slow) release survives in the recorder, and a
// second flood on a small ring stays bounded at the ring cap.
func TestRecorderRetainsSlowUnderLoad(t *testing.T) {
	// Phase 1: every release is slow (threshold 1ns); all must be
	// retrievable afterwards — tail-sampling never drops them while they
	// fit the ring.
	srv := New(Options{Seed: 13, Workers: 4, SlowRelease: time.Nanosecond, TraceRing: 64})
	ts := httptest.NewServer(srv)
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1e6, 100)
	prev := log.Writer()
	log.SetOutput(io.Discard) // every release logs a slow line here
	defer log.SetOutput(prev)

	const n = 48
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct ε per request so no release replays from the
			// response cache — each one runs the full pipeline.
			body := fmt.Sprintf(`{"table":"metrics","column":"v","stat":"mean","epsilon":%g}`, 0.1+float64(i)*1e-4)
			code, id := postRelease(t, ts.URL, "/v1/tenants/acme/estimate", body)
			if code != http.StatusOK {
				t.Errorf("estimate %d: status %d", i, code)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			continue // request already failed the test above
		}
		var detail TraceDetail
		if code := c.do("GET", "/v1/traces/"+id, nil, &detail); code != http.StatusOK {
			t.Errorf("slow release %s dropped from the recorder", id)
		}
	}
	ts.Close()
	srv.Close()

	// Phase 2: a flood of healthy releases on a small ring stays bounded
	// at the cap (nothing noteworthy, so only the recent ring fills).
	srv2 := New(Options{Seed: 14, Workers: 4, SlowRelease: -1, TraceRing: 16})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := newClient(t, ts2.URL)
	seedTenant(t, c2, "acme", 1e6, 50)
	for i := 0; i < 100; i++ {
		body := fmt.Sprintf(`{"table":"metrics","column":"v","stat":"mean","epsilon":%g}`, 0.1+float64(i)*1e-4)
		if code, _ := postRelease(t, ts2.URL, "/v1/tenants/acme/estimate", body); code != http.StatusOK {
			t.Fatalf("estimate %d: status %d", i, code)
		}
	}
	var list TraceListResponse
	if code := c2.do("GET", "/v1/traces", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if got := len(list.Traces); got > 2*16 || got < 16 {
		t.Fatalf("retained %d traces after 100 releases on a 16-ring, want within [16, 32]", got)
	}

	var decoded map[string]any
	b, _ := json.Marshal(list.Traces[0])
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("summary not JSON-round-trippable: %v", err)
	}
}
