package serve

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/updp"
)

// This file is the estimator release path: validation, the single budget
// deduction, the shard-fanned contribution scan, and the stat dispatch
// onto the universal estimators. The handler half (HTTP decode, cache,
// counters) lives in handlers.go.

// estimate validates the request, then hands the whole release — unit
// collapse, budget deduction, and mechanism — to a worker. Validation
// happens on the handler goroutine so data-independent mistakes (bad stat
// name, unknown table) cost nothing; the table scan and the Spend both
// run inside the pool, so the Workers bound really caps the CPU cost per
// release and a shed request (full queue) is never charged. Once the
// budget is deducted the charge sticks even if the mechanism fails.
// The request is already canonicalized (stat/unit lower-cased, defaults
// applied) by the handler.
func (s *Server) estimate(t *Tenant, req EstimateRequest, rel *release) (float64, []GroupValue, error) {
	tab, err := t.db.TableByName(req.Table)
	if err != nil {
		return 0, nil, err
	}
	if err := validateEstimate(req); err != nil {
		return 0, nil, err
	}
	var (
		value  float64
		groups []GroupValue
		runErr error
	)
	ran, wait := s.pool.doTimed(func() {
		if req.GroupBy != "" {
			groups, runErr = s.runGroupedEstimate(t, req, rel)
		} else {
			value, runErr = s.runEstimate(t, tab, req, rel)
		}
	})
	if !ran {
		s.metrics.shed.Inc()
		return 0, nil, ErrOverloaded
	}
	s.observeStage(rel, "queue_wait", wait)
	return value, groups, runErr
}

// groupedAggSpec maps a grouped estimate's stat onto the SQL layer's
// aggregate (validateEstimate has already rejected stats with no grouped
// form).
func groupedAggSpec(req EstimateRequest) dpsql.AggSpec {
	switch req.Stat {
	case "count":
		return dpsql.AggSpec{Kind: dpsql.AggCount}
	case "variance":
		return dpsql.AggSpec{Kind: dpsql.AggVar, Col: req.Column}
	case "stddev":
		return dpsql.AggSpec{Kind: dpsql.AggStdDev, Col: req.Column}
	case "iqr":
		return dpsql.AggSpec{Kind: dpsql.AggIQR, Col: req.Column}
	case "median":
		return dpsql.AggSpec{Kind: dpsql.AggMedian, Col: req.Column}
	case "quantile":
		return dpsql.AggSpec{Kind: dpsql.AggQuantile, Col: req.Column, P: req.P}
	default: // "mean"
		return dpsql.AggSpec{Kind: dpsql.AggAvg, Col: req.Column}
	}
}

// runGroupedEstimate executes one grouped estimator release on a worker
// goroutine: the statistic is released once per group of the group_by
// column through the grouped SQL executor — bounded per-user group
// contributions, one parallel-composed deduction, one audit record, the
// same scan fan-out and stage spans a grouped query gets.
func (s *Server) runGroupedEstimate(t *Tenant, req EstimateRequest, rel *release) ([]GroupValue, error) {
	q := &dpsql.Query{
		Table:   req.Table,
		GroupBy: req.GroupBy,
		Aggs:    []dpsql.AggSpec{groupedAggSpec(req)},
	}
	rl := &releaseLedger{inner: t.spender, rel: rel}
	res, err := t.db.ExecQueryTraced(s.splitRNG(), q, req.Epsilon, dpsql.ExecOpts{
		Ledger:       rl,
		GroupBound:   req.ContributionBound,
		Observe:      func(stage string, d time.Duration) { s.observeStage(rel, stage, d) },
		ObserveShard: shardSpanObserver(rel),
	})
	if err != nil {
		return nil, err
	}
	groups := make([]GroupValue, 0, len(res.Rows))
	for _, row := range res.Rows {
		groups = append(groups, GroupValue{Group: row.Group.String(), Value: row.Value})
	}
	return groups, nil
}

// runEstimate executes one estimator release on a worker goroutine.
//
// Sharded scan: the contribution pull below fans out over the table's
// shards (dpsql readers run per-shard partial scans through the server's
// worker pool — see DB.SetFanout) and merges the partial per-user
// aggregates before anything else happens. The merge is pure
// reorganization of already-collapsed per-user summaries, so exactly one
// deduction is charged per release and the mechanism sees bit-for-bit the
// input a monolithic table would have produced — shard count changes
// wall-clock, never noise semantics or spend.
func (s *Server) runEstimate(t *Tenant, tab *dpsql.Table, req EstimateRequest, rel *release) (float64, error) {
	stat := req.Stat
	empiricalStat := stat == "empirical_mean" || stat == "empirical_quantile"

	// Pull the contributions (consistent per-shard snapshots, merged): one
	// value per user (the shared replace-one-user reduction), or the raw
	// rows in insertion order when the request says a row IS a user. Count
	// needs only the unit count — no column read, no per-user numeric
	// collapse. This is the release's "scan" stage.
	scanStart := time.Now()
	var (
		n   int
		xs  []float64
		zs  []int64
		err error
	)
	// Per-user readers fan over the shards; each shard's partial scan
	// lands as a child span under "scan" (shard index + row count), so a
	// straggler shard is attributable from the retained trace. The
	// record-order readers (ColumnInts/ColumnFloats/NumRows) are
	// merge-dominated snapshot walks with no per-shard fan to attribute.
	shardObs := dpsql.ShardObserver(shardSpanObserver(rel))
	switch {
	case stat == "count" && req.Unit == "record":
		n = tab.NumRows()
	case stat == "count":
		n = tab.NumUsers(shardObs)
	case empiricalStat && req.Unit == "record":
		zs, err = tab.ColumnInts(req.Column)
	case empiricalStat:
		zs, err = tab.UserIntSums(req.Column, shardObs)
	case req.Unit == "record":
		xs, err = tab.ColumnFloats(req.Column)
	default:
		xs, err = tab.UserMeans(req.Column, shardObs)
	}
	if err != nil {
		return 0, err
	}
	s.observeStage(rel, "scan", time.Since(scanStart))

	// Atomically reserve the budget in the cost's native unit, then
	// release. The tenant's ledger decides whether the cost is affordable
	// — or even representable (a pure-ε ledger refuses native-ρ costs).
	cost := dp.EpsCost(req.Epsilon)
	if req.Rho > 0 {
		cost = dp.RhoCost(req.Rho)
	}
	// Count releases have a fixed noise shape, so they register with the
	// noise bank BEFORE parking on the durable commit barrier: every
	// count release in the same commit batch is in flight here together,
	// and the cohort size tells the bank how much noise one bulk draw
	// should cover.
	if stat == "count" {
		defer s.noise.enter()()
	}
	// t.spender is the tenant ledger (WAL-interposed on a durable server:
	// the deduction is on disk before the mechanism may run); the
	// per-release wrap stamps the charge onto this release for auditing.
	rl := &releaseLedger{inner: t.spender, rel: rel}
	if err := rl.Spend(cost); err != nil {
		return 0, err
	}
	noiseStart := time.Now()
	defer func() { s.observeStage(rel, "noise", time.Since(noiseStart)) }()
	o := []updp.Option{updp.WithBeta(req.Beta), updp.WithSeed(s.splitRNG().Uint64())}
	var value float64
	switch stat {
	case "count":
		// Unit count (sensitivity 1 under one-unit change): Laplace when
		// charged in ε, Gaussian — the natively-zCDP mechanism — in ρ.
		// Noise comes from the bank: same-shape count releases dispatched
		// together after the commit barrier share one bulk draw.
		if req.Rho > 0 {
			value = float64(n) + s.noise.draw("gaussian", dp.GaussianSigma(1, req.Rho))
		} else {
			value = float64(n) + s.noise.draw("laplace", 1/req.Epsilon)
		}
	case "mean":
		value, err = updp.Mean(xs, req.Epsilon, o...)
	case "variance":
		// Scale parameters are non-negative; projecting the raw release
		// onto [0, ∞) is free post-processing (as the SQL path does).
		value, err = clampNonNeg(updp.Variance(xs, req.Epsilon, o...))
	case "stddev":
		value, err = updp.StdDev(xs, req.Epsilon, o...)
	case "iqr":
		value, err = clampNonNeg(updp.IQR(xs, req.Epsilon, o...))
	case "median":
		value, err = updp.Median(xs, req.Epsilon, o...)
	case "quantile":
		value, err = updp.Quantile(xs, req.P, req.Epsilon, o...)
	case "empirical_mean":
		value, err = updp.EmpiricalMean(zs, req.Epsilon, o...)
	case "empirical_quantile":
		var v int64
		v, err = updp.EmpiricalQuantile(zs, req.Tau, req.Epsilon, o...)
		value = float64(v)
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("serve: mechanism produced non-finite value")
	}
	return value, nil
}

// clampNonNeg projects a scale release onto [0, ∞), passing errors through.
func clampNonNeg(v float64, err error) (float64, error) {
	if err == nil && v < 0 {
		v = 0
	}
	return v, err
}
