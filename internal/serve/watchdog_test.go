package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWatchdogIncidentBundle: an induced p99 breach (1ns SLO — every
// release breaches) produces exactly one incident bundle containing the
// CPU, heap, and goroutine profiles plus the metrics scrape and the
// retained traces; the cooldown suppresses retriggering.
func TestWatchdogIncidentBundle(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{
		Seed:             21,
		Workers:          2,
		SLOLatency:       time.Nanosecond,
		SLOWindow:        50 * time.Millisecond,
		SLOWindows:       1,
		IncidentDir:      dir,
		IncidentCooldown: time.Hour,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1e6, 50)

	release := func(i int) {
		body := fmt.Sprintf(`{"table":"metrics","column":"v","stat":"mean","epsilon":%g}`, 0.1+float64(i)*1e-4)
		if code, _ := postRelease(t, ts.URL, "/v1/tenants/acme/estimate", body); code != http.StatusOK {
			t.Fatalf("estimate %d: status %d", i, code)
		}
	}

	// Keep traffic flowing until the watchdog fires (window 50ms, one
	// breaching window suffices). Deadline generously above the window.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; srv.watchdog.capturedCount() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never captured a bundle")
		}
		release(i)
		time.Sleep(10 * time.Millisecond)
	}

	// More breaching traffic across several windows: the cooldown must
	// suppress a second capture.
	for i := 0; i < 12; i++ {
		release(1000 + i)
		time.Sleep(15 * time.Millisecond)
	}
	if got := srv.watchdog.capturedCount(); got != 1 {
		t.Fatalf("captured %d bundles, want exactly 1 (cooldown)", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("incident dir holds %d entries, want 1", len(entries))
	}
	bundle := filepath.Join(dir, entries[0].Name())
	for _, f := range []string{"cpu.pprof", "heap.pprof", "goroutine.txt", "metrics.prom", "traces.json", "incident.json"} {
		st, err := os.Stat(filepath.Join(bundle, f))
		if err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("bundle file %s is empty", f)
		}
	}
	var meta struct {
		P99Ms float64 `json:"p99_ms"`
		SLOMs float64 `json:"slo_ms"`
	}
	b, err := os.ReadFile(filepath.Join(bundle, "incident.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.P99Ms <= meta.SLOMs {
		t.Errorf("incident.json records p99 %vms <= slo %vms", meta.P99Ms, meta.SLOMs)
	}
	var traces TraceListResponse
	tb, err := os.ReadFile(filepath.Join(bundle, "traces.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tb, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Error("bundle traces.json retained no releases")
	}
}

// TestWatchdogDisarmed: without SLO options no watchdog runs and the
// traces endpoint still works — observability features are independent.
func TestWatchdogDisarmed(t *testing.T) {
	srv := New(Options{Seed: 22})
	defer srv.Close()
	if srv.watchdog != nil {
		t.Fatal("watchdog armed without SLOLatency/IncidentDir")
	}
}
