package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// respCache replays byte-identical repeated releases. Replaying a stored
// DP answer is free post-processing: the mechanism already ran once, and
// re-serving the same released value reveals nothing new — whereas
// re-running the mechanism would both cost fresh budget and let a client
// average away the noise. Keys are canonicalized request fingerprints
// (lower-cased names, defaults applied, %q-quoted segments), so two
// requests that differ only in spelling share an entry and crafted names
// cannot collide across field boundaries.
//
// Eviction is LRU: when the cache is full the least-recently-replayed
// entry makes room, so a dashboard's hot repeated queries survive a scan
// of one-off requests (the old drop-on-full wiped the hot set with the
// cold). Evictions are counted and surfaced in /v1/stats — a high rate
// means the working set outgrew the cache, each evicted-then-repeated
// release costing real budget.
//
// Entries are invalidated wholesale when the tenant ingests rows: a new
// data version means a repeated request is a genuinely new release and
// must be charged again. The cache is versioned so a release that raced
// an ingestion — snapshot taken before, put attempted after — is
// discarded instead of cached as if it were fresh.
type respCache struct {
	mu      sync.Mutex
	ver     int64 // bumped on every invalidation (data version)
	cap     int
	ll      *list.List // front = most recently used
	index   map[string]*list.Element
	evicted int64
	// global, when set, is the server-wide eviction counter bumped
	// alongside the local one — /v1/stats and /metrics read one
	// instrument instead of sweeping every tenant's cache mutex under
	// the registry lock.
	global *obs.Counter
}

// cacheEntry is one LRU node's payload.
type cacheEntry struct {
	key string
	val any
}

// cacheMaxEntries bounds a tenant's cache.
const cacheMaxEntries = 4096

func newRespCache(global *obs.Counter) *respCache {
	return &respCache{
		cap:    cacheMaxEntries,
		ll:     list.New(),
		index:  map[string]*list.Element{},
		global: global,
	}
}

// get returns the stored response for key, if any, marking it
// most-recently-used.
func (c *respCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// version returns the current data version. Read it before taking the
// data snapshot a release will answer from, and pass it to putAt.
func (c *respCache) version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// putAt stores a successful release's response under key, unless the data
// version moved since ver was read (an ingestion raced the release — the
// answer may predate it and must not be replayed as current). A full
// cache evicts its least-recently-used entry. Stored values are treated
// as immutable.
func (c *respCache) putAt(key string, v any, ver int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ver != ver {
		return
	}
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(&cacheEntry{key: key, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).key)
		c.evicted++
		if c.global != nil {
			c.global.Inc()
		}
	}
}

// clear drops every entry and bumps the data version (called on
// ingestion). Invalidations are not evictions: the entries are stale,
// not crowded out.
func (c *respCache) clear() {
	c.mu.Lock()
	c.ver++
	c.ll.Init()
	c.index = map[string]*list.Element{}
	c.mu.Unlock()
}

// evictions reports how many entries LRU pressure has pushed out.
func (c *respCache) evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// size reports the current entry count (tests).
func (c *respCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
