package serve

import "sync"

// respCache replays byte-identical repeated releases. Replaying a stored
// DP answer is free post-processing: the mechanism already ran once, and
// re-serving the same released value reveals nothing new — whereas
// re-running the mechanism would both cost fresh budget and let a client
// average away the noise. Keys are canonicalized request fingerprints
// (lower-cased names, defaults applied, %q-quoted segments), so two
// requests that differ only in spelling share an entry and crafted names
// cannot collide across field boundaries.
//
// Entries are invalidated wholesale when the tenant ingests rows: a new
// data version means a repeated request is a genuinely new release and
// must be charged again. The cache is versioned so a release that raced
// an ingestion — snapshot taken before, put attempted after — is
// discarded instead of cached as if it were fresh.
type respCache struct {
	mu      sync.Mutex
	ver     int64 // bumped on every invalidation (data version)
	entries map[string]any
}

// cacheMaxEntries bounds a tenant's cache; when full the cache is dropped
// wholesale (entries are tiny and rebuild for free on the next releases,
// so a simple bound beats LRU bookkeeping here).
const cacheMaxEntries = 4096

func newRespCache() *respCache {
	return &respCache{entries: map[string]any{}}
}

// get returns the stored response for key, if any.
func (c *respCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// version returns the current data version. Read it before taking the
// data snapshot a release will answer from, and pass it to putAt.
func (c *respCache) version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// putAt stores a successful release's response under key, unless the data
// version moved since ver was read (an ingestion raced the release — the
// answer may predate it and must not be replayed as current). Stored
// values are treated as immutable.
func (c *respCache) putAt(key string, v any, ver int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ver != ver {
		return
	}
	if len(c.entries) >= cacheMaxEntries {
		c.entries = map[string]any{}
	}
	c.entries[key] = v
}

// clear drops every entry and bumps the data version (called on
// ingestion).
func (c *respCache) clear() {
	c.mu.Lock()
	c.ver++
	c.entries = map[string]any{}
	c.mu.Unlock()
}

// size reports the current entry count (tests).
func (c *respCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
