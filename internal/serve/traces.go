package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// The trace explorer: GET /v1/traces lists the flight recorder's
// retained releases (newest first, filterable), and GET /v1/traces/{id}
// returns one release's full span tree — the id is the same one in the
// X-Release-Id response header, the slow-release log line, and the audit
// record, so any of those leads here.

// shardSpanObserver adapts a release trace into the per-shard scan hook
// the dpsql layer calls from its fan-out workers: each shard's partial
// scan becomes a child span under the "scan" stage, tagged with the
// shard index and the rows it walked. Trace recording is mutex-guarded,
// so concurrent shards are safe.
func shardSpanObserver(rel *release) func(shard, rows int, d time.Duration) {
	return func(shard, rows int, d time.Duration) {
		rel.tr.ObserveChild("scan_shard", "scan", d,
			obs.Attr{Key: "shard", Value: int64(shard)},
			obs.Attr{Key: "rows", Value: int64(rows)})
	}
}

// TraceSummary is one retained release in the GET /v1/traces listing.
type TraceSummary struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Path    string    `json:"path"`
	Mech    string    `json:"mech,omitempty"`
	Status  int       `json:"status"`
	Outcome string    `json:"outcome"`
	Start   time.Time `json:"start"`
	TotalMs float64   `json:"total_ms"`
}

// TraceListResponse is the GET /v1/traces wire shape.
type TraceListResponse struct {
	Traces []TraceSummary `json:"traces"`
}

// TraceSpan is one node of a release's span tree.
type TraceSpan struct {
	Stage      string           `json:"stage"`
	StartMs    float64          `json:"start_ms"`
	DurationMs float64          `json:"duration_ms"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*TraceSpan     `json:"children,omitempty"`
}

// TraceDetail is the GET /v1/traces/{id} wire shape: the summary
// envelope plus the nested span tree.
type TraceDetail struct {
	TraceSummary
	Spans []*TraceSpan `json:"spans"`
}

func traceSummary(rt *obs.RecordedTrace) TraceSummary {
	return TraceSummary{
		ID:      rt.ID,
		Tenant:  rt.Tenant,
		Path:    rt.Path,
		Mech:    rt.Mech,
		Status:  rt.Status,
		Outcome: rt.Outcome,
		Start:   rt.Start,
		TotalMs: durMs(rt.Total),
	}
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// spanTree nests recorded spans by their parent stage names. Spans link
// by name because children complete before their parents (a shard span
// closes before the enclosing "scan" stage lands), so two passes: build
// every node, then attach each child to the last node bearing its
// parent's stage name — or promote it to a root if the parent never
// recorded (an aborted release can drop a stage; its children should
// still render).
func spanTree(spans []obs.Span) []*TraceSpan {
	nodes := make([]*TraceSpan, len(spans))
	byStage := make(map[string]*TraceSpan, len(spans))
	for i, sp := range spans {
		n := &TraceSpan{
			Stage:      sp.Stage,
			StartMs:    durMs(sp.Start),
			DurationMs: durMs(sp.D),
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]int64, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[i] = n
		byStage[sp.Stage] = n
	}
	var roots []*TraceSpan
	for i, sp := range spans {
		if sp.Parent != "" {
			if p := byStage[sp.Parent]; p != nil && p != nodes[i] {
				p.Children = append(p.Children, nodes[i])
				continue
			}
		}
		roots = append(roots, nodes[i])
	}
	return roots
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, "tracing_disabled",
			errors.New("serve: trace retention is disabled (Options.TraceRing < 0)"))
		return
	}
	var minTotal time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, "bad_min_ms",
				errors.New("serve: min_ms must be a non-negative number"))
			return
		}
		minTotal = time.Duration(ms * float64(time.Millisecond))
	}
	tenant := r.URL.Query().Get("tenant")
	resp := TraceListResponse{Traces: []TraceSummary{}}
	for _, rt := range s.recorder.Traces() {
		if tenant != "" && rt.Tenant != tenant {
			continue
		}
		if rt.Total < minTotal {
			continue
		}
		resp.Traces = append(resp.Traces, traceSummary(rt))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, "tracing_disabled",
			errors.New("serve: trace retention is disabled (Options.TraceRing < 0)"))
		return
	}
	id := r.PathValue("id")
	rt, ok := s.recorder.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found",
			errors.New("serve: no retained trace with that release id (evicted, or never recorded)"))
		return
	}
	writeJSON(w, http.StatusOK, TraceDetail{
		TraceSummary: traceSummary(rt),
		Spans:        spanTree(rt.Spans),
	})
}
