package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/obs"
	"repro/internal/store"
)

// errPersist marks a durability failure on a release path: the in-memory
// charge stands (conservative) but the answer is withheld, because an
// answer whose deduction is not on disk could be refunded by a crash.
var errPersist = errors.New("serve: persistence failure")

// tenantLedger is the spender every tenant's release paths charge
// through (both the estimate endpoint directly and the SQL endpoint via
// dpsql.DB.SetLedger). It wraps the composition backend with the
// tenant's cross-cutting per-deduction concerns:
//
//   - durability (durable tenants): the deduction is recorded in the
//     write-ahead log — flushed and fsynced — after the in-memory
//     check-and-deduct succeeds and before Spend returns, so no
//     mechanism ever runs (and no answer is ever released) on a
//     deduction a crash could forget. The tenant's persist lock (read
//     side) excludes the pair from racing a snapshot capture, so a
//     deduction is never both inside a snapshot and replayed from the
//     WAL after it (double-counting). If the log write fails, Spend
//     fails with errPersist while the in-memory charge stands:
//     over-counting is the conservative direction, and the log is
//     fail-stop anyway (ErrLogBroken) so the tenant degrades to 500s
//     rather than silently un-durable releases.
//   - telemetry: the in-memory deduct, the time parked on the commit
//     barrier, and the shared batch fsync are timed into the
//     ledger_deduct / group_commit_wait / wal_fsync stage histograms,
//     and the budget odometer observes the new cumulative spend (feeding
//     the burn-rate and time-to-exhaustion gauges).
type tenantLedger struct {
	t *Tenant
	s *Server
}

// Spend charges the real ledger, then (durable tenants) durably records
// the deduction.
func (w *tenantLedger) Spend(c dp.Cost) error { return w.SpendTraced(c, nil) }

// SpendTraced is Spend attributing its internals to a release trace:
// the in-memory deduct, the time parked on the commit barrier, and the
// shared batch fsync land as child spans under the release's "deduct"
// stage (tr nil skips the spans; the histograms record either way).
// releaseLedger discovers this method by interface assertion, so the
// per-release wrapper threads the trace without store ever importing obs.
func (w *tenantLedger) SpendTraced(c dp.Cost, tr *obs.Trace) error {
	if w.t.log != nil {
		w.t.persistMu.RLock()
		defer w.t.persistMu.RUnlock()
	}
	t0 := time.Now()
	if err := w.t.led.Spend(c); err != nil {
		return err
	}
	d := time.Since(t0)
	w.s.metrics.stageSeconds.With("ledger_deduct").Observe(d.Seconds())
	if tr != nil {
		tr.ObserveChild("ledger_deduct", "deduct", d)
	}
	if w.t.log != nil {
		// CommitDeduct parks on the tenant's group-commit barrier: one
		// shared fsync acks every deduction (and audit record) batched
		// with this one. Waited is the parked time before the batch
		// started; Fsync is the shared barrier itself.
		ct, err := w.t.log.CommitDeduct(c)
		if err != nil {
			return fmt.Errorf("%w: recording deduction (budget charged, release withheld): %v", errPersist, err)
		}
		w.s.metrics.stageSeconds.With("group_commit_wait").Observe(ct.Waited.Seconds())
		w.s.metrics.stageSeconds.With("wal_fsync").Observe(ct.Fsync.Seconds())
		if tr != nil {
			// The nesting mirrors the barrier's anatomy: the entry parks
			// (group_commit_wait, under deduct), then the batch's shared
			// fsync clears it (wal_fsync, under group_commit_wait).
			tr.ObserveChild("group_commit_wait", "deduct", ct.Waited)
			tr.ObserveChild("wal_fsync", "group_commit_wait", ct.Fsync)
		}
	}
	w.t.odo.Observe(w.t.led.Spent())
	return nil
}

func (w *tenantLedger) Remaining() float64 { return w.t.led.Remaining() }
func (w *tenantLedger) Spent() float64     { return w.t.led.Spent() }
func (w *tenantLedger) Total() float64     { return w.t.led.Total() }
func (w *tenantLedger) Unit() dp.Unit      { return w.t.led.Unit() }
func (w *tenantLedger) Reset()             { w.t.led.Reset() }

// restoreTenant rebuilds one live tenant from recovered durable state:
// the ledger from the snapshot state (or fresh from the creation config
// when the tenant never compacted), with every WAL-tail deduction
// force-replayed on top — replay never refuses a deduction that was
// already answered, even past the ceiling — and the tables imported
// through the same validation a live request passes.
func (s *Server) restoreTenant(rec *store.RecoveredTenant) (*Tenant, error) {
	var (
		led dp.Ledger
		err error
	)
	accounting := rec.Config.Accounting
	if rec.Ledger != nil {
		led, err = dp.RestoreLedger(*rec.Ledger)
	} else {
		led, accounting, _, err = buildLedger(rec.Config)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
	}
	sl, ok := led.(dp.StatefulLedger)
	if !ok {
		return nil, fmt.Errorf("serve: restoring tenant %q: ledger %T is not replayable", rec.ID, led)
	}
	for _, c := range rec.Deducts {
		if err := sl.ForceSpend(c); err != nil {
			return nil, fmt.Errorf("serve: replaying deduction for tenant %q: %w", rec.ID, err)
		}
	}
	// The tenant's configured topology is authoritative for every table;
	// a pre-shard directory (Shards 0) recovers as a single-shard tenant
	// and keeps behaving exactly as it did — new tables included.
	shards := rec.Config.Shards
	if shards < 1 {
		shards = 1
	}
	db := s.newTenantDB(shards)
	for _, ts := range rec.Tables {
		if _, err := db.Import(ts); err != nil {
			return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
		}
	}
	t := &Tenant{
		id:         rec.ID,
		db:         db,
		led:        led,
		accounting: accounting,
		windowSecs: rec.Config.WindowSeconds,
		shards:     shards,
		cache:      newRespCache(s.metrics.cacheEvictions),
		created:    time.Now(),
		cfg:        rec.Config,
		log:        rec.Log,
		odo:        dp.NewOdometer(0),
	}
	if t.audit, err = s.openAudit(rec.ID); err != nil {
		return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
	}
	t.spender = &tenantLedger{t: t, s: s}
	db.SetLedger(t.spender)
	return t, nil
}

// flushTenant compacts one tenant's full state into a snapshot and
// rotates its WAL. The persist lock (write side) excludes every mutation
// — ingest, DDL, deduct+log — for the duration, so the snapshot and the
// post-rotation WAL partition the record stream exactly. That exclusivity
// is also the cost: releases and ingests on THIS tenant stall while the
// snapshot serializes and fsyncs (other tenants are unaffected), which
// bounds how large a tenant can get before compaction pauses hurt —
// off-path compaction over immutable WAL segments is the ROADMAP
// follow-up if that ceiling is reached.
func (s *Server) flushTenant(t *Tenant) error {
	if t.log == nil {
		return nil
	}
	t.persistMu.Lock()
	defer t.persistMu.Unlock()
	sl, ok := t.led.(dp.StatefulLedger)
	if !ok {
		return fmt.Errorf("serve: tenant %q ledger %T is not snapshottable", t.id, t.led)
	}
	ls, err := sl.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: snapshotting tenant %q: %w", t.id, err)
	}
	return t.log.WriteSnapshot(store.TenantSnapshot{
		Config: t.cfg,
		Ledger: ls,
		Tables: t.db.Export(),
	})
}

// maybeSnapshot compacts a tenant whose WAL outgrew the threshold, on a
// background goroutine: the triggering request's answer is already
// computed and charged, so it must not wait out a full-state serialize
// and fsync. The single-flight guard keeps bursts from piling up
// goroutines behind the persist lock. Best-effort: a failed compaction
// leaves the WAL authoritative, costing replay time, never recorded
// spend.
func (s *Server) maybeSnapshot(t *Tenant) {
	if t.log == nil || t.log.RecordsSinceSnapshot() < s.snapEvery {
		return
	}
	if !t.compacting.CompareAndSwap(false, true) {
		return // a compaction is already in flight
	}
	go func() {
		defer t.compacting.Store(false)
		_ = s.flushTenant(t)
	}()
}

// Flush compacts every tenant into a fresh snapshot (durable servers
// only) — the graceful-shutdown path, also exposed for benchmarks and
// operational checkpoints.
func (s *Server) Flush() error {
	if s.st == nil {
		return nil
	}
	s.mu.RLock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	var firstErr error
	for _, t := range tenants {
		if err := s.flushTenant(t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DataDir reports the durable data directory ("" for in-memory servers).
func (s *Server) DataDir() string {
	if s.st == nil {
		return ""
	}
	return s.st.Dir()
}
