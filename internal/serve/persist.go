package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/obs"
	"repro/internal/store"
)

// errPersist marks a durability failure on a release path: the in-memory
// charge stands (conservative) but the answer is withheld, because an
// answer whose deduction is not on disk could be refunded by a crash.
var errPersist = errors.New("serve: persistence failure")

// tenantLedger is the spender every tenant's release paths charge
// through (both the estimate endpoint directly and the SQL endpoint via
// dpsql.DB.SetLedger). It wraps the composition backend with the
// tenant's cross-cutting per-deduction concerns:
//
//   - durability (durable tenants): the deduction is recorded in the
//     write-ahead log — flushed and fsynced — after the in-memory
//     check-and-deduct succeeds and before Spend returns, so no
//     mechanism ever runs (and no answer is ever released) on a
//     deduction a crash could forget. The tenant's persist lock (read
//     side) excludes the pair from racing a snapshot capture, so a
//     deduction is never both inside a snapshot and replayed from the
//     WAL after it (double-counting). If the log write fails, Spend
//     fails with errPersist while the in-memory charge stands:
//     over-counting is the conservative direction, and the log is
//     fail-stop anyway (ErrLogBroken) so the tenant degrades to 500s
//     rather than silently un-durable releases.
//   - telemetry: the in-memory deduct, the time parked on the commit
//     barrier, and the shared batch fsync are timed into the
//     ledger_deduct / group_commit_wait / wal_fsync stage histograms,
//     and the budget odometer observes the new cumulative spend (feeding
//     the burn-rate and time-to-exhaustion gauges).
type tenantLedger struct {
	t *Tenant
	s *Server
}

// Spend charges the real ledger, then (durable tenants) durably records
// the deduction.
func (w *tenantLedger) Spend(c dp.Cost) error { return w.SpendTraced(c, nil) }

// SpendTraced is Spend attributing its internals to a release trace:
// the in-memory deduct, the time parked on the commit barrier, and the
// shared batch fsync land as child spans under the release's "deduct"
// stage (tr nil skips the spans; the histograms record either way).
// releaseLedger discovers this method by interface assertion, so the
// per-release wrapper threads the trace without store ever importing obs.
func (w *tenantLedger) SpendTraced(c dp.Cost, tr *obs.Trace) error {
	if w.t.log != nil {
		w.t.persistMu.RLock()
		defer w.t.persistMu.RUnlock()
	}
	t0 := time.Now()
	if err := w.t.led.Spend(c); err != nil {
		return err
	}
	d := time.Since(t0)
	w.s.metrics.stageSeconds.With("ledger_deduct").Observe(d.Seconds())
	if tr != nil {
		tr.ObserveChild("ledger_deduct", "deduct", d)
	}
	if w.t.log != nil {
		// CommitDeduct parks on the tenant's group-commit barrier: one
		// shared fsync acks every deduction (and audit record) batched
		// with this one. Waited is the parked time before the batch
		// started; Fsync is the shared barrier itself.
		ct, err := w.t.log.CommitDeduct(c)
		if err != nil {
			return fmt.Errorf("%w: recording deduction (budget charged, release withheld): %v", errPersist, err)
		}
		w.s.metrics.stageSeconds.With("group_commit_wait").Observe(ct.Waited.Seconds())
		w.s.metrics.stageSeconds.With("wal_fsync").Observe(ct.Fsync.Seconds())
		if tr != nil {
			// The nesting mirrors the barrier's anatomy: the entry parks
			// (group_commit_wait, under deduct), then the batch's shared
			// fsync clears it (wal_fsync, under group_commit_wait).
			tr.ObserveChild("group_commit_wait", "deduct", ct.Waited)
			tr.ObserveChild("wal_fsync", "group_commit_wait", ct.Fsync)
		}
	}
	w.t.odo.Observe(w.t.led.Spent())
	return nil
}

func (w *tenantLedger) Remaining() float64 { return w.t.led.Remaining() }
func (w *tenantLedger) Spent() float64     { return w.t.led.Spent() }
func (w *tenantLedger) Total() float64     { return w.t.led.Total() }
func (w *tenantLedger) Unit() dp.Unit      { return w.t.led.Unit() }
func (w *tenantLedger) Reset()             { w.t.led.Reset() }

// restoreTenant rebuilds one live tenant from recovered durable state:
// the ledger from the snapshot state (or fresh from the creation config
// when the tenant never compacted), with every WAL-tail deduction
// force-replayed on top — replay never refuses a deduction that was
// already answered, even past the ceiling — and the tables imported
// through the same validation a live request passes.
func (s *Server) restoreTenant(rec *store.RecoveredTenant) (*Tenant, error) {
	var (
		led dp.Ledger
		err error
	)
	accounting := rec.Config.Accounting
	if rec.Ledger != nil {
		led, err = dp.RestoreLedger(*rec.Ledger)
	} else {
		led, accounting, _, err = buildLedger(rec.Config)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
	}
	sl, ok := led.(dp.StatefulLedger)
	if !ok {
		return nil, fmt.Errorf("serve: restoring tenant %q: ledger %T is not replayable", rec.ID, led)
	}
	for _, c := range rec.Deducts {
		if err := sl.ForceSpend(c); err != nil {
			return nil, fmt.Errorf("serve: replaying deduction for tenant %q: %w", rec.ID, err)
		}
	}
	// The tenant's configured topology is authoritative for every table;
	// a pre-shard directory (Shards 0) recovers as a single-shard tenant
	// and keeps behaving exactly as it did — new tables included.
	shards := rec.Config.Shards
	if shards < 1 {
		shards = 1
	}
	db := s.newTenantDB(shards)
	for _, ts := range rec.Tables {
		if _, err := db.Import(ts); err != nil {
			return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
		}
	}
	t := &Tenant{
		id:         rec.ID,
		db:         db,
		led:        led,
		accounting: accounting,
		windowSecs: rec.Config.WindowSeconds,
		shards:     shards,
		cache:      newRespCache(s.metrics.cacheEvictions),
		created:    time.Now(),
		cfg:        rec.Config,
		log:        rec.Log,
		odo:        dp.NewOdometer(0),
	}
	if t.audit, err = s.openAudit(rec.ID); err != nil {
		return nil, fmt.Errorf("serve: restoring tenant %q: %w", rec.ID, err)
	}
	t.spender = &tenantLedger{t: t, s: s}
	db.SetLedger(t.spender)
	return t, nil
}

// flushTenant synchronously captures one tenant's full live state into a
// snapshot and rotates its WAL. The persist lock (write side) excludes
// every mutation — ingest, DDL, deduct+log — for the duration, so the
// snapshot and the post-rotation WAL partition the record stream exactly.
// That exclusivity stalls releases and ingests on THIS tenant while the
// snapshot serializes and fsyncs, which is why this path is reserved for
// shutdown (Flush) and explicit checkpoints, where a final exact capture
// of in-memory state is the point. Steady-state compaction goes through
// compactTenant instead, which replays sealed WAL segments off the hot
// path and never takes persistMu at all.
func (s *Server) flushTenant(t *Tenant) error {
	if t.log == nil {
		return nil
	}
	t.persistMu.Lock()
	defer t.persistMu.Unlock()
	sl, ok := t.led.(dp.StatefulLedger)
	if !ok {
		return fmt.Errorf("serve: tenant %q ledger %T is not snapshottable", t.id, t.led)
	}
	ls, err := sl.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: snapshotting tenant %q: %w", t.id, err)
	}
	return t.log.WriteSnapshot(store.TenantSnapshot{
		Config: t.cfg,
		Ledger: ls,
		Tables: t.db.Export(),
	})
}

// replayLedger rebuilds a ledger state from a prior snapshot state (or
// fresh from the tenant config when there is none) plus the deductions
// recorded in sealed WAL segments — the serve-side half of off-path
// compaction, mirroring restoreTenant's recovery semantics exactly:
// replay force-spends past the ceiling rather than refuse a deduction
// that was already answered. It reads only its arguments, never live
// tenant state, so compaction can run concurrently with releases.
func (s *Server) replayLedger(cfg store.TenantConfig, prev *dp.LedgerState, deducts []dp.Cost) (dp.LedgerState, error) {
	var (
		led dp.Ledger
		err error
	)
	if prev != nil {
		led, err = dp.RestoreLedger(*prev)
	} else {
		led, _, _, err = buildLedger(cfg)
	}
	if err != nil {
		return dp.LedgerState{}, err
	}
	sl, ok := led.(dp.StatefulLedger)
	if !ok {
		return dp.LedgerState{}, fmt.Errorf("serve: ledger %T is not replayable", led)
	}
	for _, c := range deducts {
		if err := sl.ForceSpend(c); err != nil {
			return dp.LedgerState{}, err
		}
	}
	return sl.Snapshot()
}

// compactTenant folds one tenant's sealed WAL segments into a fresh
// snapshot without stalling the tenant: the log seals its active tail
// (microseconds under the log lock), then the merge reads only immutable
// files — no persistMu, no shard locks — while releases, ingests, and
// group commit proceed at full speed. The duration lands on the "compact"
// stage histogram (store's CompactionSeconds histogram times the same
// interval from inside the log, so the two views stay in sync).
func (s *Server) compactTenant(t *Tenant) error {
	if t.log == nil {
		return nil
	}
	t0 := time.Now()
	err := t.log.Compact(t.cfg, s.replayLedger)
	s.metrics.stageSeconds.With("compact").Observe(time.Since(t0).Seconds())
	return err
}

// CompactTenant compacts one tenant's WAL into a fresh snapshot off the
// hot path — the operational/benchmark entry point for forcing the
// steady-state compaction that maybeSnapshot otherwise triggers by
// threshold. No-op for in-memory tenants.
func (s *Server) CompactTenant(id string) error {
	t, ok := s.tenantByID(id)
	if !ok {
		return fmt.Errorf("serve: unknown tenant %q", id)
	}
	return s.compactTenant(t)
}

// maybeSnapshot compacts a tenant whose WAL outgrew the threshold, on a
// background goroutine: the triggering request's answer is already
// computed and charged, so it must not wait out a segment replay. The
// single-flight guard keeps bursts from piling up goroutines per tenant
// (the log's own compactMu additionally serializes against explicit
// CompactTenant calls). Best-effort: a failed compaction leaves the WAL
// segments authoritative, costing replay time, never recorded spend.
func (s *Server) maybeSnapshot(t *Tenant) {
	if t.log == nil || t.log.RecordsSinceSnapshot() < s.snapEvery {
		return
	}
	if !t.compacting.CompareAndSwap(false, true) {
		return // a compaction is already in flight
	}
	go func() {
		defer t.compacting.Store(false)
		_ = s.compactTenant(t)
	}()
}

// Flush compacts every tenant into a fresh snapshot (durable servers
// only) — the graceful-shutdown path, also exposed for benchmarks and
// operational checkpoints.
func (s *Server) Flush() error {
	if s.st == nil {
		return nil
	}
	s.mu.RLock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	var firstErr error
	for _, t := range tenants {
		if err := s.flushTenant(t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DataDir reports the durable data directory ("" for in-memory servers).
func (s *Server) DataDir() string {
	if s.st == nil {
		return ""
	}
	return s.st.Dir()
}
