package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openDurable starts a durable test server on dir.
func openDurable(t *testing.T, dir string, seed uint64, opts ...func(*Options)) (*Server, *client, func()) {
	t.Helper()
	o := Options{Seed: seed, Workers: 4, DataDir: dir}
	for _, f := range opts {
		f(&o)
	}
	srv, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	hs := httptest.NewServer(srv)
	return srv, newClient(t, hs.URL), hs.Close
}

// TestRestartRoundTrip is the acceptance scenario: create a zcdp tenant
// on a durable server, ingest, release, kill WITHOUT flush, re-open the
// same data dir — queries must answer from recovered data and the
// reported spend (native units and (ε, δ) view) must be >= the pre-kill
// spend, never refilled.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, cA, stopA := openDurable(t, dir, 1)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{
		ID: "acme", Epsilon: 16, Accounting: "zcdp", Delta: 1e-6,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant: %d", code)
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "metrics",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table: %d", code)
	}
	rows := make([][]any, 0, 400)
	for u := 0; u < 200; u++ {
		uid := fmt.Sprintf("u%03d", u)
		rows = append(rows, []any{uid, 100.0 + float64(u%7)}, []any{uid, 100.0 - float64(u%5)})
	}
	var ins InsertRowsResponse
	if code := cA.do("POST", "/v1/tenants/acme/tables/metrics/rows", InsertRowsRequest{Rows: rows}, &ins); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}
	// Mixed releases: estimator (direct ledger path) and SQL (dpsql
	// ledger path) plus a natively-ρ count — all three deduct routes.
	var est EstimateResponse
	if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "median", Epsilon: 0.5,
	}, &est); code != http.StatusOK {
		t.Fatalf("estimate: %d", code)
	}
	var q QueryResponse
	if code := cA.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT AVG(v) FROM metrics", Epsilon: 0.5,
	}, &q); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Stat: "count", Rho: 0.001,
	}, &est); code != http.StatusOK {
		t.Fatalf("rho count: %d", code)
	}
	var before TenantStatus
	if code := cA.do("GET", "/v1/tenants/acme", nil, &before); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if before.Spent <= 0 {
		t.Fatalf("pre-kill spend = %v, want > 0", before.Spent)
	}
	// Kill without flush: only the listener stops; srvA.Close (which
	// would snapshot) is never called. The WAL alone must carry the spend
	// — every deduction was fsynced before its answer was released.
	stopA()

	srvB, cB, stopB := openDurable(t, dir, 2)
	defer stopB()
	defer srvB.Close()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatalf("recovered status: %d", code)
	}
	if after.Accounting != "zcdp" || after.Unit != "rho" || after.Delta != 1e-6 {
		t.Fatalf("recovered accounting config: %+v", after)
	}
	if after.Spent < before.Spent {
		t.Fatalf("native spend refilled: %v -> %v", before.Spent, after.Spent)
	}
	if after.SpentEpsilon < before.SpentEpsilon {
		t.Fatalf("(eps, delta) spend view refilled: %v -> %v", before.SpentEpsilon, after.SpentEpsilon)
	}
	if after.Total != before.Total {
		t.Fatalf("budget ceiling changed: %v -> %v", before.Total, after.Total)
	}
	// Queries answer from the recovered rows.
	var q2 QueryResponse
	if code := cB.do("POST", "/v1/tenants/acme/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM metrics", Epsilon: 2,
	}, &q2); code != http.StatusOK {
		t.Fatalf("recovered query: %d", code)
	}
	// COUNT is user-level: ~200 users, Laplace scale 1/2 — a deviation
	// beyond ±30 is astronomically unlikely.
	if n := q2.Rows[0].Values[0]; n < 170 || n > 230 {
		t.Fatalf("recovered COUNT(*) = %v, want ~200 (rows lost?)", n)
	}
	var est2 EstimateResponse
	if code := cB.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "metrics", Column: "v", Stat: "mean", Epsilon: 0.5,
	}, &est2); code != http.StatusOK {
		t.Fatalf("recovered estimate: %d", code)
	}
	// Deterministic integrity check, no mechanism noise: the recovered
	// table holds byte-for-byte the ingested rows.
	tn, ok := srvB.Tenant("acme")
	if !ok {
		t.Fatal("recovered tenant not registered")
	}
	tab, err := tn.DB().TableByName("metrics")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(rows) {
		t.Fatalf("recovered %d rows, ingested %d", tab.NumRows(), len(rows))
	}
	means, err := tab.UserMeans("v")
	if err != nil {
		t.Fatal(err)
	}
	// u000 contributed 100+0 and 100-0 -> mean exactly 100.
	if len(means) != 200 || means[0] != 100 {
		t.Fatalf("recovered user means corrupted: n=%d first=%v", len(means), means[0])
	}
}

// TestRestartNeverRefillsExhaustedBudget: an exhausted tenant stays
// exhausted across a crash — the attack the store exists to close.
func TestRestartNeverRefillsExhaustedBudget(t *testing.T) {
	dir := t.TempDir()
	_, cA, stopA := openDurable(t, dir, 3)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 1}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "m",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatalf("table: %d", code)
	}
	rows := make([][]any, 50)
	for u := range rows {
		rows[u] = []any{fmt.Sprintf("u%02d", u), float64(u)}
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables/m/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatal("insert")
	}
	// Exhaust: 2 releases at 0.5 spend the whole eps=1.
	for i := 0; i < 2; i++ {
		req := EstimateRequest{Table: "m", Column: "v", Stat: "mean", Epsilon: 0.5, Beta: 0.1 + 0.01*float64(i)}
		if code := cA.do("POST", "/v1/tenants/acme/estimate", req, nil); code != http.StatusOK {
			t.Fatalf("release %d: %d", i, code)
		}
	}
	if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "m", Column: "v", Stat: "median", Epsilon: 0.5,
	}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("overdraw pre-crash: %d, want 429", code)
	}
	stopA() // crash

	srvB, cB, stopB := openDurable(t, dir, 4)
	defer stopB()
	defer srvB.Close()
	if code := cB.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "m", Column: "v", Stat: "median", Epsilon: 0.5,
	}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("crash refilled the budget: post-restart release got %d, want 429", code)
	}
}

// TestCloseFlushCompacts: a graceful Close writes snapshots, so the next
// boot replays from the snapshot with an empty WAL tail.
func TestCloseFlushCompacts(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 5)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 8}, nil); code != http.StatusCreated {
		t.Fatal("create")
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "m",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatal("table")
	}
	rows := make([][]any, 40)
	for u := range rows {
		rows[u] = []any{fmt.Sprintf("u%02d", u), float64(u)}
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables/m/rows", InsertRowsRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatal("insert")
	}
	if code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
		Table: "m", Column: "v", Stat: "mean", Epsilon: 0.5,
	}, nil); code != http.StatusOK {
		t.Fatal("estimate")
	}
	stopA()
	if err := srvA.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "acme", "snapshot.json"))
	if err != nil || len(snap) == 0 {
		t.Fatalf("Close did not write a snapshot: %v", err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "acme", "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 0 {
		t.Fatalf("WAL not rotated after flush: %d bytes", len(wal))
	}

	srvB, cB, stopB := openDurable(t, dir, 6)
	defer stopB()
	defer srvB.Close()
	var st TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &st); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if st.Spent != 0.5 || st.Total != 8 {
		t.Fatalf("recovered ledger: spent=%v total=%v", st.Spent, st.Total)
	}
}

// TestDurableTenantIDValidation: ids become directory names; traversal
// must be refused at the API boundary.
func TestDurableTenantIDValidation(t *testing.T) {
	srv, c, stop := openDurable(t, t.TempDir(), 7)
	defer stop()
	defer srv.Close()
	if code := c.do("POST", "/v1/tenants", CreateTenantRequest{ID: "..", Epsilon: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("id '..': %d, want 400", code)
	}
}

// TestConcurrentIngestVsFlush races streaming ingestion and releases
// against snapshot compaction, then crash-recovers and checks the spend
// invariant (run with -race).
func TestConcurrentIngestVsFlush(t *testing.T) {
	dir := t.TempDir()
	srvA, cA, stopA := openDurable(t, dir, 8)
	if code := cA.do("POST", "/v1/tenants", CreateTenantRequest{ID: "acme", Epsilon: 1e6}, nil); code != http.StatusCreated {
		t.Fatal("create")
	}
	if code := cA.do("POST", "/v1/tenants/acme/tables", CreateTableRequest{
		Name:       "m",
		Columns:    []ColumnSpec{{Name: "uid", Kind: "string"}, {Name: "v", Kind: "float"}},
		UserColumn: "uid",
	}, nil); code != http.StatusCreated {
		t.Fatal("table")
	}
	const (
		ingesters = 4
		batches   = 20
		releasers = 2
		releases  = 15
	)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := [][]any{{fmt.Sprintf("u%d-%d", g, b), float64(b)}}
				cA.do("POST", "/v1/tenants/acme/tables/m/rows", InsertRowsRequest{Rows: rows}, nil)
			}
		}(g)
	}
	okReleases := make([]int, releasers)
	for g := 0; g < releasers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				p := 0.01 + 0.9*float64(g*releases+i)/float64(releasers*releases)
				code := cA.do("POST", "/v1/tenants/acme/estimate", EstimateRequest{
					Table: "m", Column: "v", Stat: "quantile", P: p, Epsilon: 0.01,
				}, nil)
				if code == http.StatusOK {
					okReleases[g]++
				}
			}
		}(g)
	}
	flushes := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if err := srvA.Flush(); err != nil {
			t.Errorf("Flush: %v", err)
		}
		flushes++
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	var before TenantStatus
	if code := cA.do("GET", "/v1/tenants/acme", nil, &before); code != http.StatusOK {
		t.Fatal("status")
	}
	answered := okReleases[0] + okReleases[1]
	stopA() // crash without Close

	srvB, cB, stopB := openDurable(t, dir, 9)
	defer stopB()
	defer srvB.Close()
	var after TenantStatus
	if code := cB.do("GET", "/v1/tenants/acme", nil, &after); code != http.StatusOK {
		t.Fatal("recovered status")
	}
	if after.Spent < before.Spent {
		t.Fatalf("spend regressed across %d flushes: %v -> %v", flushes, before.Spent, after.Spent)
	}
	minSpend := 0.01 * float64(answered)
	if after.Spent < minSpend*(1-1e-9) {
		t.Fatalf("recovered spend %v < %v (%d answered releases) — a deduction was lost",
			after.Spent, minSpend, answered)
	}
}

// TestInMemoryServerUnchanged: without DataDir nothing touches disk and
// the legacy New constructor still works.
func TestInMemoryServerUnchanged(t *testing.T) {
	srv := New(Options{Seed: 10})
	defer srv.Close()
	if srv.DataDir() != "" {
		t.Fatalf("in-memory server has a data dir: %q", srv.DataDir())
	}
	if _, err := srv.CreateTenant("x", 1); err != nil {
		t.Fatal(err)
	}
}
