package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// noiseBank vectorizes noise sampling for fixed-shape mechanisms: when
// the group-commit barrier releases a batch of parked mechanisms
// together, those sharing a distribution shape (same family, same scale
// parameter) take their noise from one bulk draw instead of splitting
// one generator per release. The bank sizes each bulk draw adaptively to
// the number of such releases currently in flight — alone it draws one
// variate (no waste, no latency), at pool-width concurrency it draws the
// cohort's worth in one pass.
//
// Only mechanisms whose noise shape is known up front can bank: the
// count statistic (Laplace(1/ε) or N(0, σ(ρ)²), sensitivity fixed at 1)
// qualifies; the universal estimators do not (their noise scale is
// data-dependent, discovered mid-mechanism). Statistical semantics are
// unchanged — every variate still comes from the server's seeded root
// generator through the same samplers, in bank-arrival order rather than
// release-arrival order, which is the same distribution over outcomes.
type noiseBank struct {
	inflight atomic.Int64

	mu      sync.Mutex
	rng     *xrand.RNG
	buckets map[noiseShape][]float64
}

// noiseShape keys a bucket: a distribution family plus its one scale
// parameter (Laplace scale b, or Gaussian sigma).
type noiseShape struct {
	family string
	param  float64
}

// maxBulk caps one bulk draw — past this, the amortization has flattened
// and a bigger prefetch only risks drawing variates no release claims.
const maxBulk = 64

// maxShapes bounds the bucket map: workloads that vary the scale on
// every release (distinct ε per request) would otherwise grow one
// leftover bucket per shape forever. Past the cap, leftovers for new
// shapes are dropped — wasted variates, never wrong ones.
const maxShapes = 256

func newNoiseBank(rng *xrand.RNG) *noiseBank {
	return &noiseBank{rng: rng, buckets: map[noiseShape][]float64{}}
}

// enter marks one bankable release in flight and returns its exit; the
// live count is the bulk-draw sizing signal.
func (b *noiseBank) enter() func() {
	b.inflight.Add(1)
	return func() { b.inflight.Add(-1) }
}

// draw returns one variate of the shape, refilling the shape's bucket
// with a bulk draw sized to the in-flight cohort when it runs dry.
func (b *noiseBank) draw(family string, param float64) float64 {
	shape := noiseShape{family: family, param: param}
	b.mu.Lock()
	defer b.mu.Unlock()
	bucket := b.buckets[shape]
	if len(bucket) == 0 {
		n := int(b.inflight.Load())
		if n < 1 {
			n = 1
		}
		if n > maxBulk {
			n = maxBulk
		}
		switch family {
		case "laplace":
			bucket = dist.BulkLaplace(b.rng, param, n)
		case "gaussian":
			bucket = dist.BulkGaussian(b.rng, param, n)
		default:
			panic("serve: unknown noise shape family " + family)
		}
	}
	v := bucket[len(bucket)-1]
	if len(bucket) > 1 {
		if _, held := b.buckets[shape]; held || len(b.buckets) < maxShapes {
			b.buckets[shape] = bucket[:len(bucket)-1]
		}
	} else {
		delete(b.buckets, shape)
	}
	return v
}
