package serve

import (
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/dp"
	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the serve layer's telemetry surface: the metric registry
// (rendered at GET /metrics in Prometheus text format), the per-release
// trace context that carries a release ID through every stage, and the
// slow-release log. docs/OBSERVABILITY.md is the operator's catalog of
// every name registered here.

// defaultSlowRelease is the slow-release log threshold when
// Options.SlowRelease is zero.
const defaultSlowRelease = 250 * time.Millisecond

// metricsSet holds every instrument the server writes. Counters double
// as the backing store for /v1/stats, so the JSON and Prometheus views
// can never disagree (one source of truth, read atomically).
type metricsSet struct {
	reg *obs.Registry

	releases       *obs.CounterVec // by path: "query" | "estimate" | "histogram"
	refusals       *obs.Counter
	shed           *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	ingestRows     *obs.Counter
	auditRecords   *obs.Counter

	releaseSeconds *obs.HistogramVec // end-to-end, by path
	stageSeconds   *obs.HistogramVec // per stage (see observeStage callers)
	ingestSeconds  *obs.HistogramVec // ingestion batch, by stage

	// storeMet is handed to store.SetMetrics so the durability engine's
	// fsync/snapshot/WAL instruments land on the same registry.
	storeMet *store.Metrics
}

func newMetricsSet() *metricsSet {
	reg := obs.NewRegistry()
	lat := obs.LatencyBuckets()
	m := &metricsSet{
		reg:            reg,
		releases:       reg.CounterVec("updp_releases_total", "Release attempts by path (query = SQL, estimate = direct estimator, histogram = grouped count).", "path"),
		refusals:       reg.Counter("updp_budget_refusals_total", "Releases refused because the tenant budget could not afford them."),
		shed:           reg.Counter("updp_shed_total", "Requests shed by the full worker queue (HTTP 503)."),
		cacheHits:      reg.Counter("updp_cache_hits_total", "Releases replayed from a tenant response cache (budget-free)."),
		cacheMisses:    reg.Counter("updp_cache_misses_total", "Release attempts that missed the response cache."),
		cacheEvictions: reg.Counter("updp_cache_evictions_total", "LRU evictions across every tenant response cache."),
		ingestRows:     reg.Counter("updp_ingest_rows_total", "Rows accepted through the ingestion endpoint."),
		auditRecords:   reg.Counter("updp_audit_records_total", "DP audit records appended (one per charged release)."),
		releaseSeconds: reg.HistogramVec("updp_release_seconds", "End-to-end release latency by path, successful or not.", lat, "path"),
		stageSeconds:   reg.HistogramVec("updp_release_stage_seconds", "Release-path stage latency; docs/OBSERVABILITY.md catalogs the stages.", lat, "stage"),
		ingestSeconds:  reg.HistogramVec("updp_ingest_stage_seconds", "Ingestion-batch stage latency: store (decode + sharded insert) and wal (row-record append).", lat, "stage"),
	}
	m.storeMet = &store.Metrics{
		FsyncSeconds:      reg.Histogram("updp_wal_fsync_seconds", "WAL flush+fsync latency (one per commit batch; the release path's durability barrier).", lat),
		SnapshotSeconds:   reg.Histogram("updp_snapshot_write_seconds", "Synchronous tenant snapshot latency (serialize, write, fsync, rename) — the shutdown/Flush path.", lat),
		CompactionSeconds: reg.Histogram("updp_compaction_seconds", "Off-path WAL compaction latency: seal tail, replay sealed segments, publish snapshot, delete covered segments.", lat),
		WALRecords:        reg.Counter("updp_wal_records_total", "WAL records appended across every tenant log."),
		WALBytes:          reg.Counter("updp_wal_bytes_total", "WAL bytes appended across every tenant log."),
		AuditFsyncSeconds: reg.Histogram("updp_audit_fsync_seconds", "Audit-log hardening (flush+fsync) latency on durable tenants.", lat),
		AuditRecords:      m.auditRecords,
		BatchSize:         reg.Histogram("updp_wal_batch_size", "Entries (deductions + audit records) acked per group-commit fsync barrier.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
	return m
}

// registerGauges installs the live-state collectors: values derived from
// server state at scrape time rather than accumulated by request paths.
// Called once from Open, after the Server is fully constructed.
func (s *Server) registerGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc("updp_pool_queue_depth", "Release jobs queued but not yet running.", nil, func(emit obs.EmitGauge) {
		emit(float64(len(s.pool.jobs)))
	})
	reg.GaugeFunc("updp_pool_workers", "Worker pool size.", nil, func(emit obs.EmitGauge) {
		emit(float64(s.pool.workers))
	})
	reg.GaugeFunc("updp_tenants", "Registered tenants.", nil, func(emit obs.EmitGauge) {
		s.mu.RLock()
		n := len(s.tenants)
		s.mu.RUnlock()
		emit(float64(n))
	})
	reg.GaugeFunc("updp_uptime_seconds", "Seconds since the server started.", nil, func(emit obs.EmitGauge) {
		emit(time.Since(s.start).Seconds())
	})
	if s.st != nil {
		reg.GaugeFunc("updp_wal_segments", "Sealed (immutable, fully fsynced) WAL segments on disk across every durable tenant; compaction folds them into the snapshot and deletes them.", nil, func(emit obs.EmitGauge) {
			emit(float64(s.st.Segments()))
		})
	}
	// The per-tenant budget odometer: total/spent/remaining in the
	// tenant's NATIVE unit (ε for pure, ρ for zcdp, converted ε for rdp —
	// mixing units across tenants is inherent to heterogeneous backends;
	// dashboards should group by tenant), burn rate over the sliding
	// odometer window, and the projected time to exhaustion (+Inf renders
	// when the tenant is idle — valid Prometheus, and exactly what "never
	// at this rate" means).
	tenantGauge := func(name, help string, val func(t *Tenant) float64) {
		reg.GaugeFunc(name, help, []string{"tenant"}, func(emit obs.EmitGauge) {
			for _, t := range s.snapshotTenants() {
				emit(val(t), t.id)
			}
		})
	}
	tenantGauge("updp_tenant_budget_total", "Tenant budget total, native units.",
		func(t *Tenant) float64 { return t.led.Total() })
	tenantGauge("updp_tenant_budget_spent", "Tenant budget spent, native units (within the current window for windowed tenants).",
		func(t *Tenant) float64 { return t.led.Spent() })
	tenantGauge("updp_tenant_budget_remaining", "Tenant budget remaining, native units.",
		func(t *Tenant) float64 { return t.led.Remaining() })
	tenantGauge("updp_tenant_burn_per_second", "Budget burn rate over the odometer window, native units per second.",
		func(t *Tenant) float64 { return t.odo.Rate() })
	tenantGauge("updp_tenant_seconds_to_exhaustion", "Projected seconds until the budget exhausts at the current burn rate (+Inf when idle).",
		func(t *Tenant) float64 { return t.odo.TimeToExhaustion(t.led.Remaining()) })
}

// snapshotTenants copies the registry out from under the lock so a
// scrape never holds it across ledger reads.
func (s *Server) snapshotTenants() []*Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}

// MetricsHandler serves the registry in the Prometheus text exposition
// format — mounted at GET /metrics on the API mux, and mountable on a
// separate listener by the binary (-metrics-addr).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, s.metrics.reg.RenderText())
	})
}

// ---------- per-release trace context ----------

// release is one in-flight release's observability context: the release
// ID (echoed in the X-Release-Id response header, stamped on the audit
// line, printed by the slow-release log), the span trace, and — filled
// in by releaseLedger — whether and what the release actually charged.
type release struct {
	id    string
	path  string // "query" | "estimate" | "histogram"
	mech  string // audit mechanism name: "sql", or the estimate stat
	tr    *obs.Trace
	spent bool
	cost  dp.Cost
}

func newRelease(path string) *release {
	id := obs.NewID()
	return &release{id: id, path: path, tr: obs.NewTrace(id)}
}

// observeStage records one stage duration into both the server-wide
// stage histogram (with the release ID as the bucket's exemplar) and
// the release's own trace.
func (s *Server) observeStage(rel *release, stage string, d time.Duration) {
	s.metrics.stageSeconds.With(stage).ObserveExemplar(d.Seconds(), rel.id)
	rel.tr.Observe(stage, d)
}

// finishRelease closes out a release: the trace's end time freezes,
// end-to-end latency lands in the per-path histogram (release ID as
// exemplar), the structured slow-release log line fires when the
// release crossed the threshold, and the completed trace is retained in
// the flight recorder — slow/errored/shed releases tail-sampled so they
// survive any flood of healthy ones. The recorded ID is the same one in
// the X-Release-Id header and on the audit line, so a dashboard bucket,
// a log grep, and GET /v1/traces/{id} all meet at the same trace.
func (s *Server) finishRelease(t *Tenant, rel *release, status int) {
	rel.tr.Finish()
	total := rel.tr.Total()
	s.metrics.releaseSeconds.With(rel.path).ObserveExemplar(total.Seconds(), rel.id)
	slow := s.slowRel > 0 && total >= s.slowRel
	if slow {
		log.Printf("serve: slow release id=%s tenant=%s path=%s mech=%s status=%d total=%v stages: %s",
			rel.id, t.id, rel.path, rel.mech, status, total.Round(time.Microsecond), rel.tr)
	}
	outcome := "ok"
	switch {
	case status == http.StatusServiceUnavailable:
		outcome = "shed"
	case status >= 500:
		outcome = "error"
	case slow:
		outcome = "slow"
	}
	if s.recorder != nil {
		s.recorder.Record(&obs.RecordedTrace{
			ID:      rel.id,
			Tenant:  t.id,
			Path:    rel.path,
			Mech:    rel.mech,
			Status:  status,
			Outcome: outcome,
			Start:   rel.tr.Start(),
			Total:   total,
			Spans:   rel.tr.Spans(),
		}, slow || status >= 500)
	}
	if s.watchdog != nil {
		s.watchdog.observe(total)
	}
}

// releaseLedger attributes the single deduction a release charges to
// its release context: it times the whole durable Spend (in-memory
// check-and-deduct + WAL fsync) as the trace's "deduct" span and
// captures the charged cost for the audit line. The fine-grained
// ledger_deduct / wal_fsync split lands in the stage histograms via
// tenantLedger underneath. The SQL path installs this per call through
// dpsql.ExecOpts.Ledger; the estimate path calls it directly.
type releaseLedger struct {
	inner dp.Ledger
	rel   *release
}

func (rl *releaseLedger) Spend(c dp.Cost) error {
	t0 := time.Now()
	var err error
	// tenantLedger exposes SpendTraced so the durable spend's internals
	// (ledger_deduct, group_commit_wait, wal_fsync) nest under this
	// release's "deduct" span; plain ledgers just Spend.
	if ts, ok := rl.inner.(interface {
		SpendTraced(dp.Cost, *obs.Trace) error
	}); ok {
		err = ts.SpendTraced(c, rl.rel.tr)
	} else {
		err = rl.inner.Spend(c)
	}
	rl.rel.tr.Observe("deduct", time.Since(t0))
	if err == nil {
		rl.rel.spent = true
		rl.rel.cost = c
	}
	return err
}

func (rl *releaseLedger) Remaining() float64 { return rl.inner.Remaining() }
func (rl *releaseLedger) Spent() float64     { return rl.inner.Spent() }
func (rl *releaseLedger) Total() float64     { return rl.inner.Total() }
func (rl *releaseLedger) Unit() dp.Unit      { return rl.inner.Unit() }
func (rl *releaseLedger) Reset()             { rl.inner.Reset() }
