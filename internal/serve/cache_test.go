package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRespCacheLRUEviction(t *testing.T) {
	c := newRespCache(nil)
	c.cap = 3
	ver := c.version()
	c.putAt("a", 1, ver)
	c.putAt("b", 2, ver)
	c.putAt("c", 3, ver)
	// Touch "a": it becomes most-recently-used, so the next insert must
	// evict "b" (the LRU), not "a" (what drop-on-full would have wiped).
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.putAt("d", 4, ver)
	if c.size() != 3 {
		t.Fatalf("size = %d, want 3", c.size())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("recently-used entry %q evicted", k)
		}
	}
	if got := c.evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Re-putting an existing key updates in place, no eviction.
	c.putAt("a", 10, ver)
	if v, _ := c.get("a"); v != 10 {
		t.Fatalf("update in place: got %v", v)
	}
	if c.size() != 3 || c.evictions() != 1 {
		t.Fatalf("update evicted: size=%d evictions=%d", c.size(), c.evictions())
	}
}

func TestRespCacheVersionFenceSurvivesLRU(t *testing.T) {
	c := newRespCache(nil)
	ver := c.version()
	c.clear() // version moves
	c.putAt("stale", 1, ver)
	if _, ok := c.get("stale"); ok {
		t.Fatal("stale put landed despite version fence")
	}
	ver2 := c.version()
	c.putAt("fresh", 2, ver2)
	if _, ok := c.get("fresh"); !ok {
		t.Fatal("fresh put missing")
	}
	// clear resets entries but not the eviction counter semantics.
	c.clear()
	if c.size() != 0 {
		t.Fatalf("size after clear = %d", c.size())
	}
	if c.evictions() != 0 {
		t.Fatalf("invalidations counted as evictions: %d", c.evictions())
	}
}

// TestCacheEvictionsInStats drives a tiny cache through the HTTP surface
// and checks the counter lands in /v1/stats and the tenant status.
func TestCacheEvictionsInStats(t *testing.T) {
	srv := New(Options{Seed: 20, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := newClient(t, ts.URL)
	seedTenant(t, c, "acme", 1e6, 60)
	tn, _ := srv.Tenant("acme")
	tn.cache.cap = 4 // shrink so distinct releases overflow it

	for i := 0; i < 8; i++ {
		req := EstimateRequest{
			Table: "metrics", Column: "v", Stat: "quantile",
			P: 0.1 + 0.09*float64(i), Epsilon: 0.01,
		}
		if code := c.do("POST", "/v1/tenants/acme/estimate", req, nil); code != http.StatusOK {
			t.Fatalf("release %d: %d", i, code)
		}
	}
	var st ServerStats
	if code := c.do("GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatal("stats")
	}
	if st.CacheEvictions != 4 {
		t.Fatalf("server cache_evictions = %d, want 4", st.CacheEvictions)
	}
	var tst TenantStatus
	if code := c.do("GET", "/v1/tenants/acme", nil, &tst); code != http.StatusOK {
		t.Fatal("tenant status")
	}
	if tst.CacheEvictions != 4 {
		t.Fatalf("tenant cache_evictions = %d, want 4", tst.CacheEvictions)
	}
	// The 4 survivors still replay for free.
	req := EstimateRequest{Table: "metrics", Column: "v", Stat: "quantile", P: 0.1 + 0.09*7, Epsilon: 0.01}
	var est EstimateResponse
	if code := c.do("POST", "/v1/tenants/acme/estimate", req, &est); code != http.StatusOK {
		t.Fatal("replay")
	}
	if !est.Cached {
		t.Fatal("most recent release not replayed from cache")
	}
}
