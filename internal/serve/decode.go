package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dp"
	"repro/internal/dpsql"
	"repro/internal/store"
	"repro/updp"
)

// This file is the HTTP wire surface: request/response types, JSON
// encoding helpers, the error-to-status mapping, and request decoding,
// canonicalization, and validation. Handlers (handlers.go) orchestrate;
// the estimator dispatch lives in estimate.go. Nothing here touches a
// ledger or a mechanism — everything in this file is budget-free by
// construction.

// ---------- wire types ----------

// CreateTenantRequest creates a tenant with a nominal budget and a
// composition backend. Accounting picks the backend: "pure" (default,
// basic composition of pure ε), "zcdp" (ρ-accounting at an (ε, δ)
// target; Delta defaults to 1e-6 and every pure release is priced at
// ε²/2), or "rdp" (Rényi accounting over a grid of orders α at the same
// (ε, δ) target: every release is priced as its full RDP curve, composed
// per order, with the budget enforced on the optimal conversion — at
// least as tight as zcdp, strictly tighter on mixed Laplace+Gaussian
// traffic). Orders customizes the rdp grid (empty = the default α ∈
// [1.25, 64]; small ε at small δ needs larger orders — see
// docs/ACCOUNTING.md). WindowSeconds > 0 additionally makes the budget
// renewable: it refills to full every WindowSeconds of wall-clock time.
// Shards picks the tenant's table partition count (0 = server default):
// tables are hash-partitioned by user id into this many shards, striping
// ingestion across per-shard locks and fanning release scans over the
// worker pool — a pure storage topology, invisible to answers, noise,
// and budget.
type CreateTenantRequest struct {
	ID            string    `json:"id"`
	Epsilon       float64   `json:"epsilon"`
	Accounting    string    `json:"accounting,omitempty"`
	Delta         float64   `json:"delta,omitempty"`
	WindowSeconds float64   `json:"window_seconds,omitempty"`
	Shards        int       `json:"shards,omitempty"`
	Orders        []float64 `json:"orders,omitempty"`
}

// TenantStatus is the budget and counter view of one tenant. Total,
// Spent, and Remaining are in the backend's native unit (Unit: "eps" for
// pure tenants, "rho" for zcdp, "rdp" for rdp tenants — whose native
// state is the per-order vector, so their scalar fields already carry
// the converted (ε, δ) view); the *_epsilon fields are the (ε, δ)-DP
// view — for pure tenants they mirror the native numbers, for zcdp
// tenants spent_epsilon is the ρ→(ε, δ) conversion of the spend at the
// tenant's δ. For rdp tenants Orders is the Rényi grid, SpentRDP the
// per-order cumulative RDP spend (parallel to Orders), and BestOrder the
// α whose conversion currently certifies the spend. For windowed tenants
// the spend is within the current window. Shards is the tenant's table
// partition count.
type TenantStatus struct {
	ID         string  `json:"id"`
	Accounting string  `json:"accounting"`
	Unit       string  `json:"unit"`
	Total      float64 `json:"total"`
	Spent      float64 `json:"spent"`
	Remaining  float64 `json:"remaining"`

	TotalEpsilon     float64   `json:"total_epsilon"`
	SpentEpsilon     float64   `json:"spent_epsilon"`
	RemainingEpsilon float64   `json:"remaining_epsilon"`
	Delta            float64   `json:"delta,omitempty"`
	WindowSeconds    float64   `json:"window_seconds,omitempty"`
	Shards           int       `json:"shards,omitempty"`
	Orders           []float64 `json:"orders,omitempty"`
	SpentRDP         []float64 `json:"spent_rdp,omitempty"`
	BestOrder        float64   `json:"best_order,omitempty"`

	Queries        int64 `json:"queries"`
	Estimates      int64 `json:"estimates"`
	Histograms     int64 `json:"histograms"`
	Refusals       int64 `json:"refusals"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`

	// The budget odometer: burn rate in native units per second over the
	// odometer's sliding window, and the projected seconds until the
	// budget exhausts at that rate — omitted when the tenant is idle
	// (the projection is +Inf, which JSON cannot carry). AuditRecords is
	// the audit log's record count (one per charged release).
	BurnPerSecond       float64 `json:"burn_per_second"`
	SecondsToExhaustion float64 `json:"seconds_to_exhaustion,omitempty"`
	AuditRecords        uint64  `json:"audit_records"`
}

// ColumnSpec is one column in a CreateTableRequest: kind is "float",
// "int", or "string".
type ColumnSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// CreateTableRequest creates a table; UserColumn designates the privacy
// unit.
type CreateTableRequest struct {
	Name       string       `json:"name"`
	Columns    []ColumnSpec `json:"columns"`
	UserColumn string       `json:"user_column"`
}

// InsertRowsRequest appends rows; each row is positional, parallel to the
// table's columns. Numeric cells are JSON numbers, string cells strings.
type InsertRowsRequest struct {
	Rows [][]any `json:"rows"`
}

// InsertRowsResponse reports how many rows were stored.
type InsertRowsResponse struct {
	Inserted int `json:"inserted"`
}

// QueryRequest runs one dpsql SELECT with budget ε.
//
// GroupBy, when set, appends a GROUP BY over the named (public-category)
// column to the SQL — a convenience equal to writing it in the statement.
// ContributionBound caps how many groups one user may contribute to in a
// grouped query: 0 means the default cap of 1 (each user counts in its
// first-seen group only, and the whole grouped answer is priced by
// parallel composition as ONE release of the full ε); c >= 1 caps at c
// (priced as c-fold sequential composition — same total ε, per-group
// accuracy ε/c); -1 disables clamping and restores the legacy even
// ε-split across groups. Ignored for ungrouped queries.
type QueryRequest struct {
	SQL               string  `json:"sql"`
	GroupBy           string  `json:"group_by,omitempty"`
	Epsilon           float64 `json:"epsilon"`
	ContributionBound int     `json:"contribution_bound,omitempty"`
}

// QueryResultRow is one released row.
type QueryResultRow struct {
	Group  string    `json:"group,omitempty"`
	Values []float64 `json:"values"`
}

// QueryResponse is a released SQL answer. Cached reports a replay of a
// byte-identical earlier release (free — no budget was spent on it).
type QueryResponse struct {
	Rows     []QueryResultRow `json:"rows"`
	EpsSpent float64          `json:"eps_spent"`
	Cached   bool             `json:"cached,omitempty"`
}

// EstimateRequest runs one estimator release on a column. Stat is one of
// mean, variance, stddev, iqr, median, quantile (with P), count,
// empirical_mean, empirical_quantile (with Tau). Beta defaults to 0.1.
// Count privatizes the number of privacy units alone and ignores Column.
//
// Unit picks the privacy unit: "user" (default) collapses rows to one
// contribution per user first; "record" skips the collapse for datasets
// where a row IS a user (record-level DP — weaker when users own several
// rows, exact when they don't).
//
// Rho, valid for stat "count" only, releases the count through the
// Gaussian mechanism charged natively in zCDP ρ instead of ε — the
// cheapest way to count on a zcdp tenant (charged ρ directly) or an rdp
// tenant (charged the curve ρα); a pure tenant refuses it (the Gaussian
// mechanism has no finite pure-ε guarantee). Set either Epsilon or Rho,
// not both.
// GroupBy, when set, releases the statistic once per group of the named
// (public-category) column through the grouped SQL path — one release,
// priced by parallel composition under ContributionBound (see
// QueryRequest). Grouped estimates support the user unit and ε charging
// only, and the stats mean, variance, stddev, iqr, median, quantile, and
// count (the empirical stats and native-ρ counts have no grouped form);
// the response carries Groups instead of Value.
type EstimateRequest struct {
	Table             string  `json:"table"`
	Column            string  `json:"column"`
	Stat              string  `json:"stat"`
	GroupBy           string  `json:"group_by,omitempty"`
	P                 float64 `json:"p,omitempty"`
	Tau               int     `json:"tau,omitempty"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	Rho               float64 `json:"rho,omitempty"`
	Beta              float64 `json:"beta,omitempty"`
	Unit              string  `json:"unit,omitempty"`
	ContributionBound int     `json:"contribution_bound,omitempty"`
}

// GroupValue is one group's released value in a grouped estimate.
type GroupValue struct {
	Group string  `json:"group"`
	Value float64 `json:"value"`
}

// EstimateResponse is a released estimate; exactly one of EpsSpent and
// RhoSpent is set, matching how the release was charged. Cached reports a
// replay of a byte-identical earlier release (free post-processing — no
// budget was spent on this response). Grouped estimates carry one entry
// per released group in Groups (sorted by group key) and leave Value 0.
type EstimateResponse struct {
	Value    float64      `json:"value"`
	Groups   []GroupValue `json:"groups,omitempty"`
	EpsSpent float64      `json:"eps_spent,omitempty"`
	RhoSpent float64      `json:"rho_spent,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
}

// HistogramRequest releases a count-by-key histogram over a public
// categorical column: one noisy user count per group, as one grouped
// release priced by parallel composition under ContributionBound (see
// QueryRequest — same semantics, same default cap of 1).
type HistogramRequest struct {
	Table             string  `json:"table"`
	GroupBy           string  `json:"group_by"`
	Epsilon           float64 `json:"epsilon"`
	ContributionBound int     `json:"contribution_bound,omitempty"`
}

// HistogramBucket is one group's noisy user count.
type HistogramBucket struct {
	Group string  `json:"group"`
	Count float64 `json:"count"`
}

// HistogramResponse is a released histogram, buckets sorted by group
// key. Cached reports a free replay of a byte-identical earlier release.
type HistogramResponse struct {
	Buckets  []HistogramBucket `json:"buckets"`
	EpsSpent float64           `json:"eps_spent"`
	Cached   bool              `json:"cached,omitempty"`
}

// AuditResponse is one page of a tenant's DP audit log, oldest first.
// Total is the full record count; NextAfter, when set, is the cursor to
// pass as ?after= for the next page (absent on the last page).
type AuditResponse struct {
	Tenant    string              `json:"tenant"`
	Total     uint64              `json:"total"`
	Records   []store.AuditRecord `json:"records"`
	NextAfter uint64              `json:"next_after,omitempty"`
}

// ServerStats is the server-wide counter view. CacheEvictions counts LRU
// evictions across every tenant's response cache; DataDir names the
// durable store's directory (empty for in-memory servers). Every counter
// here reads the same instrument /metrics exposes — the two views cannot
// disagree.
type ServerStats struct {
	Tenants        int     `json:"tenants"`
	Workers        int     `json:"workers"`
	Queries        int64   `json:"queries"`
	Estimates      int64   `json:"estimates"`
	Histograms     int64   `json:"histograms"`
	Refusals       int64   `json:"refusals"`
	Shed           int64   `json:"shed"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	DataDir        string  `json:"data_dir,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// ---------- encoding and error mapping ----------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), Code: code})
}

// writeReleaseErr maps a release error onto the HTTP surface, returning
// the status it wrote (the release trace records it).
func writeReleaseErr(w http.ResponseWriter, err error) int {
	status, code := http.StatusBadRequest, "bad_request"
	switch {
	case errors.Is(err, dp.ErrBudgetExhausted):
		status, code = http.StatusTooManyRequests, "budget_exhausted"
	case errors.Is(err, errPersist):
		status, code = http.StatusInternalServerError, "persist_failed"
	case errors.Is(err, dp.ErrUnsupportedCost):
		status, code = http.StatusBadRequest, "unsupported_cost"
	case errors.Is(err, ErrOverloaded):
		status, code = http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, dpsql.ErrNoTable), errors.Is(err, dpsql.ErrNoColumn):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, dpsql.ErrTooFewUsers), errors.Is(err, updp.ErrTooFewSamples):
		status, code = http.StatusUnprocessableEntity, "too_few_users"
	case errors.Is(err, errBadGroupBy):
		status, code = http.StatusBadRequest, "bad_group_by"
	case errors.Is(err, dpsql.ErrBadGroupBound):
		status, code = http.StatusBadRequest, "bad_contribution_bound"
	}
	writeErr(w, status, code, err)
	return status
}

// errBadGroupBy reports a group_by combined with a request shape that has
// no grouped form (mapped to the "bad_group_by" error code).
var errBadGroupBy = errors.New("serve: invalid group_by request")

// ---------- decoding and validation ----------

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", fmt.Errorf("serve: decoding body: %w", err))
		return false
	}
	return true
}

// pathTenant resolves the {tenant} path segment, writing 404 on a miss.
func (s *Server) pathTenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	id := r.PathValue("tenant")
	t, ok := s.tenantByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no_tenant", fmt.Errorf("serve: no tenant %q", id))
	}
	return t, ok
}

// decodeColumnKind maps a wire column kind onto the schema layer's.
func decodeColumnKind(kind string) (dpsql.Kind, error) {
	switch strings.ToLower(kind) {
	case "float", "double", "real":
		return dpsql.KindFloat, nil
	case "int", "integer", "bigint":
		return dpsql.KindInt, nil
	case "string", "text", "varchar":
		return dpsql.KindString, nil
	default:
		return 0, fmt.Errorf("serve: unknown column kind %q", kind)
	}
}

// decodeCell maps one wire row cell onto a dpsql Value. JSON numbers
// decode as float64; Table.Insert converts integral floats into INT
// columns.
func decodeCell(cell any) (dpsql.Value, error) {
	switch c := cell.(type) {
	case float64:
		return dpsql.Float(c), nil
	case string:
		return dpsql.Str(c), nil
	default:
		return dpsql.Value{}, fmt.Errorf("unsupported JSON type %T", cell)
	}
}

// canonicalizeEstimate normalizes an estimate request in place so
// spelled-differently-but-equal requests share one cache entry and one
// validation path: names and modes are lower-cased, defaults applied, and
// fields the stat ignores zeroed (they must not split the cache into
// separately-charged entries for semantically identical requests).
func canonicalizeEstimate(req *EstimateRequest) {
	req.Stat = strings.ToLower(req.Stat)
	req.Unit = strings.ToLower(req.Unit)
	if req.Unit == "" {
		req.Unit = "user"
	}
	if req.Beta == 0 {
		req.Beta = 0.1
	}
	if req.Stat != "quantile" {
		req.P = 0
	}
	if req.Stat != "empirical_quantile" {
		req.Tau = 0
	}
	if req.Stat == "count" {
		// Count privatizes the unit count alone: no column, no utility
		// parameter.
		req.Column = ""
		req.Beta = 0
	}
	if req.GroupBy != "" {
		// Grouped estimates run through the SQL path, which fixes β = 0.1;
		// a client-supplied Beta must not split the cache.
		req.Beta = 0
	} else {
		// The bound only means something for grouped releases.
		req.ContributionBound = 0
	}
}

// estimateCacheKey fingerprints a canonicalized estimate request. Names
// are %q-quoted so crafted table/column strings cannot collide across
// field boundaries.
func estimateCacheKey(req EstimateRequest) string {
	return fmt.Sprintf("est|%q|%q|%s|gb=%q|p=%g|tau=%d|eps=%g|rho=%g|beta=%g|unit=%s|cb=%d",
		strings.ToLower(req.Table), strings.ToLower(req.Column), req.Stat,
		strings.ToLower(req.GroupBy), req.P, req.Tau, req.Epsilon, req.Rho,
		req.Beta, req.Unit, req.ContributionBound)
}

// validateEstimate checks the data-independent parts of a canonicalized
// estimate request — stat name, unit, quantile parameters, the ρ-charging
// rules. It runs on the handler goroutine before any budget is touched,
// so a malformed request costs nothing.
func validateEstimate(req EstimateRequest) error {
	switch req.Unit {
	case "user", "record":
	default:
		return fmt.Errorf("serve: unknown privacy unit %q (want \"user\" or \"record\")", req.Unit)
	}
	switch req.Stat {
	case "mean", "variance", "stddev", "iqr", "median", "empirical_mean", "count":
	case "quantile":
		if !(req.P > 0 && req.P < 1) {
			return fmt.Errorf("%w: got %v", updp.ErrInvalidQuantile, req.P)
		}
	case "empirical_quantile":
		if req.Tau < 1 {
			return fmt.Errorf("serve: empirical_quantile needs tau >= 1, got %d", req.Tau)
		}
	default:
		return fmt.Errorf("serve: unknown stat %q", req.Stat)
	}
	if req.Rho != 0 {
		// Native zCDP charging exists exactly for the Gaussian mechanism,
		// which serves the sensitivity-1 count; the universal estimators
		// are pure-DP constructions and always charge ε.
		if req.Stat != "count" {
			return fmt.Errorf("serve: rho charging supports stat \"count\" only, got %q", req.Stat)
		}
		if req.Epsilon != 0 {
			return fmt.Errorf("serve: set either epsilon or rho, not both")
		}
		if err := dp.CheckRho(req.Rho); err != nil {
			return err
		}
	}
	if req.GroupBy != "" {
		// Grouped estimates run through the user-level grouped SQL path:
		// no record unit, no empirical stats, no native-ρ charging.
		if req.Unit != "user" {
			return fmt.Errorf("%w: group_by needs unit \"user\", got %q", errBadGroupBy, req.Unit)
		}
		if req.Stat == "empirical_mean" || req.Stat == "empirical_quantile" {
			return fmt.Errorf("%w: stat %q has no grouped form", errBadGroupBy, req.Stat)
		}
		if req.Rho != 0 {
			return fmt.Errorf("%w: grouped releases charge epsilon, not rho", errBadGroupBy)
		}
	}
	if req.ContributionBound < -1 {
		return fmt.Errorf("%w: got %d", dpsql.ErrBadGroupBound, req.ContributionBound)
	}
	return nil
}
